"""Authoring a custom simulated workload and comparing analysis methods.

Shows the simulator's program API (generators yielding MPI-style ops)
on a new workload the paper never saw: a 1D pipeline with a gradually
degrading stage, plus a late-sender pattern.  Then runs our variation
analysis *and* all four baselines on it, demonstrating how the methods
complement each other, and round-trips the trace through both on-disk
formats.

Run::

    python examples/custom_workload.py
"""

from pathlib import Path

import numpy as np

from repro.baselines import (
    analyze_profile_only,
    cluster_phases,
    search_patterns,
    select_representatives,
)
from repro.core import analyze_trace
from repro.sim import NetworkModel, ops, simulate
from repro.trace import read_trace, write_binary, write_jsonl

OUT = Path(__file__).parent / "output" / "custom"


def pipeline_program(rank: int, size: int):
    """A software pipeline: rank r receives from r-1, works, sends to r+1.

    Stage 2's cost grows 4% per iteration (a leak, a growing queue, a
    fragmenting allocator...), slowly starving everything downstream.
    """
    iterations = 25
    yield ops.Enter("main")
    yield ops.Compute(0.002, region="setup")
    for it in range(iterations):
        yield ops.Enter("pipeline_step")
        if rank > 0:
            yield ops.Recv(rank - 1, size=32 * 1024, tag=it)
        cost = 0.008
        if rank == 2:
            cost *= 1.04**it  # the degrading stage
        yield ops.Compute(cost, region="stage_kernel")
        if rank < size - 1:
            yield ops.Send(rank + 1, size=32 * 1024, tag=it)
        yield ops.Leave("pipeline_step")
    yield ops.Barrier()
    yield ops.Leave("main")


def main() -> None:
    print("simulating a 8-stage software pipeline with a degrading stage...")
    result = simulate(
        8,
        pipeline_program,
        network=NetworkModel(latency=5e-6, bandwidth=2e9),
        name="pipeline",
    )
    trace = result.trace
    print(f"  {trace.num_events} events, {result.messages} messages\n")

    # --- our analysis -----------------------------------------------------
    analysis = analyze_trace(trace)
    print(analysis.report())
    print(f"\ntrend: {analysis.trend.describe()}")
    assert analysis.trend.increasing, "the degradation must show as a trend"
    assert 2 in analysis.hot_ranks(), analysis.hot_ranks()

    # --- baselines on the same trace ---------------------------------------
    print("\n--- baselines on the same trace ---")
    po = analyze_profile_only(trace)
    print(f"profile-only flags ranks: {po.flagged_ranks()} "
          "(sees the skew, not the trend)")

    ps = search_patterns(trace)
    top = ps.top(1)[0]
    print(f"pattern search top finding: [{top.pattern}] {top.region} "
          f"severity {top.severity:.3g}s, delayers {top.delaying_ranks}")

    rep = select_representatives(trace, similarity_threshold=0.2)
    print(f"representatives keep {len(rep.representatives)} of "
          f"{trace.num_processes} ranks; rank 2 visible: "
          f"{rep.is_visible(2)}")

    cl = cluster_phases(trace, k=3, min_duration=0.001)
    print(f"phase clustering: {len(cl.bursts)} bursts in clusters of sizes "
          f"{cl.cluster_sizes().tolist()}")

    # --- trace I/O round trip ---------------------------------------------
    OUT.mkdir(parents=True, exist_ok=True)
    binary = OUT / "pipeline.rpt"
    text = OUT / "pipeline.jsonl"
    write_binary(trace, binary)
    write_jsonl(trace, text)
    reloaded = read_trace(binary)
    assert reloaded.num_events == trace.num_events
    print(f"\ntrace written to {binary} ({binary.stat().st_size} bytes) "
          f"and {text} ({text.stat().st_size} bytes)")

    from repro.viz import render_analysis

    written = render_analysis(analysis, OUT, show_messages=True)
    print("rendered views:")
    for name, path in written.items():
        print(f"  {name}: {path}")


if __name__ == "__main__":
    main()
