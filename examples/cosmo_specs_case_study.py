"""Case study A: COSMO-SPECS load imbalance (paper Section VII-A, Fig 4).

Simulates the coupled weather code on 100 MPI processes with a static
decomposition and a growing cloud, then walks the analyst's workflow:

1. the master timeline shows MPI time (red) growing over the run;
2. plain segment durations only say iterations get slower *everywhere*;
3. the SOS heat map points at ranks {44, 45, 54, 55, 64, 65} — the
   processes whose subdomains hold the cloud — with rank 54 hottest.

Run::

    python examples/cosmo_specs_case_study.py
"""

from pathlib import Path

import numpy as np

from repro.core import analyze_trace
from repro.sim.workloads import cosmo_specs
from repro.viz import heat_to_ansi, render_analysis

OUT = Path(__file__).parent / "output" / "cosmo_specs"


def main() -> None:
    print("simulating COSMO-SPECS (100 ranks, 60 iterations)...")
    trace = cosmo_specs.generate(processes=100, iterations=60)
    print(f"  {trace.num_events} events, {trace.duration:.1f}s simulated\n")

    analysis = analyze_trace(trace)
    print(analysis.report())

    # --- Figure 4a: MPI fraction over time -------------------------------
    d = trace.duration
    shares = [
        analysis.profile.mpi_fraction(i * d / 6, (i + 1) * d / 6)
        for i in range(6)
    ]
    print("\nMPI time share per sixth of the run (Fig 4a):")
    print("  " + "  ".join(f"{100 * s:5.1f}%" for s in shares))

    # --- Figure 4b: the SOS heat map in the terminal ---------------------
    matrix, _edges = analysis.heat_matrix(bins=100)
    print(f"\nSOS heat map of {analysis.dominant_name!r} "
          "(blue=fast, red=slow; Fig 4b):")
    print(heat_to_ansi(matrix, row_labels=trace.ranks, max_rows=25))

    hot = analysis.hot_ranks()
    print(f"\nhot ranks: {sorted(hot)} — paper: [44, 45, 54, 55, 64, 65]")
    print(f"hottest:   {analysis.hottest_rank()} — paper: 54")

    # Why: those ranks own the cloud. Show the per-rank SOS as a grid.
    totals = analysis.sos.per_rank_total().reshape(10, 10)
    print("\nper-rank total SOS arranged as the 10x10 process grid:")
    for row in range(10):
        print("  " + " ".join(f"{totals[row, col]:5.2f}" for col in range(10)))

    written = render_analysis(analysis, OUT, show_messages=False)
    print("\nrendered views:")
    for name, path in written.items():
        print(f"  {name}: {path}")


if __name__ == "__main__":
    main()
