"""Quickstart: instrument Python code, analyze it, find the hotspot.

Demonstrates the full round trip on a toy "parallel" program:

1. instrument application code with :mod:`repro.measure` (the Score-P
   substitute) — here four logical workers with a deliberately slow
   worker 3;
2. run the performance-variation analysis (dominant function →
   SOS-times → detection);
3. print the report and render the color-coded views.

Run::

    python examples/quickstart.py
"""

from pathlib import Path

from repro.core import analyze_trace
from repro.measure import ManualClock, Measurement
from repro.trace.definitions import Paradigm

OUT = Path(__file__).parent / "output" / "quickstart"


def simulated_app(measurement: Measurement,
                  workers: int = 4, iterations: int = 10) -> None:
    """A tiny bulk-synchronous 'application' with one slow worker.

    Real code would use one shared
    :class:`~repro.measure.clock.WallClock`; here every worker gets its
    own :class:`ManualClock` so a single driver thread can replay all
    of them deterministically (timestamps only need to be monotonic per
    location).
    """
    clocks = [ManualClock() for _ in range(workers)]
    recorders = [
        measurement.process(rank, clock=clocks[rank]) for rank in range(workers)
    ]
    for rec in recorders:
        rec.enter("main")

    for _it in range(iterations):
        # Each worker computes; worker 3 is consistently slower
        # (imagine an unlucky data partition).
        compute_done = []
        for rank, rec in enumerate(recorders):
            rec.enter("iteration")
            with rec.region("compute_tile"):
                cost = 0.010 * (1.9 if rank == 3 else 1.0)
                clocks[rank].advance(cost)
                rec.add_counter("tiles", 1.0)
            compute_done.append(clocks[rank].now())
        # Barrier semantics: everyone leaves when the slowest arrives.
        barrier_exit = max(compute_done) + 0.0002
        for rank, rec in enumerate(recorders):
            with rec.region("MPI_Barrier", paradigm=Paradigm.MPI):
                clocks[rank].set(barrier_exit)
            rec.leave("iteration")

    for rec in recorders:
        rec.leave("main")


def main() -> None:
    measurement = Measurement(name="quickstart-app")
    simulated_app(measurement)
    trace = measurement.finish(check_stacks=True)

    print(f"collected {trace.num_events} events from "
          f"{trace.num_processes} workers\n")

    analysis = analyze_trace(trace)
    print(analysis.report())

    # The detector should point straight at worker 3.
    assert analysis.hot_ranks() == [3], analysis.hot_ranks()

    from repro.viz import render_analysis

    written = render_analysis(analysis, OUT, bins=128)
    print("\nrendered views:")
    for name, path in written.items():
        print(f"  {name}: {path}")


if __name__ == "__main__":
    main()
