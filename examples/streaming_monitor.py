"""Live monitoring: catch a performance anomaly while the run executes.

The paper remarks that in-situ analysis is feasible (Section III);
this example shows our streaming implementation in action.  We play
the role of a measurement system delivering event chunks as a
simulated application executes, and watch the
:class:`~repro.core.streaming.StreamingAnalyzer` raise an alert the
moment the anomalous invocation completes — with a third of the run
still ahead — then confirm against the post-mortem analysis.

Run::

    python examples/streaming_monitor.py
"""

import numpy as np

from repro.core import analyze_trace
from repro.core.streaming import StreamingAnalyzer
from repro.sim.workloads.synthetic import SyntheticConfig, generate


def chunked_delivery(trace, chunk_seconds=0.02):
    """Yield (virtual_time, rank, chunk) in global time order.

    Emulates how a measurement system flushes per-process buffers
    periodically: chunks from different ranks interleave by time.
    """
    cursors = {rank: 0 for rank in trace.ranks}
    t = trace.t_min
    while any(cursors[r] < len(trace.events_of(r)) for r in trace.ranks):
        t += chunk_seconds
        for rank in trace.ranks:
            events = trace.events_of(rank)
            start = cursors[rank]
            stop = int(np.searchsorted(events.time, t, side="right"))
            if stop > start:
                cursors[rank] = stop
                yield t, rank, events[start:stop]


def main() -> None:
    # The "application": 16 ranks, an OS interruption hits rank 9 in
    # iteration 25 of 40.
    config = SyntheticConfig(
        ranks=16,
        iterations=40,
        outliers={(9, 25): 0.08},
        jitter_sigma=0.005,
        seed=21,
    )
    print("simulating the run (this produces the event stream)...")
    trace = generate(config)
    run_end = trace.t_max

    # The monitor: dominant function known from a previous run.
    analyzer = StreamingAnalyzer(
        trace.regions, trace.num_processes, dominant="iteration",
        alert_threshold=4.0,
    )

    print("replaying the run through the live monitor:\n")
    first_alert_time = None
    for t, rank, chunk in chunked_delivery(trace):
        for alert in analyzer.feed(rank, chunk):
            if first_alert_time is None:
                first_alert_time = t
            print(f"  [t={t:.3f}s] ALERT {alert}")

    assert first_alert_time is not None, "the planted anomaly must alert"
    remaining = 100 * (run_end - first_alert_time) / run_end
    print(f"\nfirst alert at t={first_alert_time:.3f}s of {run_end:.3f}s "
          f"({remaining:.0f}% of the run still ahead)")

    print(f"running totals flag ranks: {analyzer.snapshot_hot_ranks()}")

    # Post-mortem cross-check: identical SOS values.
    batch = analyze_trace(trace)
    for rank in trace.ranks:
        np.testing.assert_allclose(
            analyzer.sos_series(rank), batch.sos[rank].sos
        )
    print("post-mortem analysis agrees with the streamed SOS values.")
    hot = batch.imbalance.hottest_segment()
    print(f"post-mortem hottest segment: rank {hot.rank}, "
          f"iteration {hot.segment_index} (matches the live alert)")


if __name__ == "__main__":
    main()
