"""Case study C: WRF floating-point exceptions (Section VII-C, Fig 6).

Simulates the WRF 12km CONUS stand-in on 64 MPI processes: ~11 s of
init + I/O, then iterations with ~25% MPI share caused by rank 39
computing slower under a storm of SSE floating-point exception
microtraps.  Shows how the SOS heat map (Fig 6b) and the hardware
counter heat map (Fig 6c) tell the same story.

Run::

    python examples/wrf_counters.py
"""

from pathlib import Path

import numpy as np

from repro.core import analyze_trace
from repro.core.metrics import (
    binned_metric_matrix,
    metric_sos_correlation,
    per_rank_metric_total,
)
from repro.profiles import profile_trace
from repro.sim.countermodel import FPU_EXCEPTIONS
from repro.sim.workloads import wrf
from repro.viz import heat_to_ansi, render_analysis

OUT = Path(__file__).parent / "output" / "wrf"


def main() -> None:
    print("simulating WRF 12km CONUS (64 ranks, 40 timesteps)...")
    trace = wrf.generate()
    print(f"  {trace.num_events} events, {trace.duration:.1f}s simulated\n")

    # --- Fig 6a: run structure -----------------------------------------
    stats = profile_trace(trace).stats
    print(f"init + I/O phase: {stats.of('wrf_init').inclusive_max:.1f} s "
          "(paper: ~11 s)")
    analysis = analyze_trace(trace)
    mpi = analysis.profile.mpi_fraction(
        analysis.segmentation.t_min, trace.t_max
    )
    print(f"MPI share during iterations: {100 * mpi:.1f}% (paper: 25%)\n")

    # --- Fig 6b: SOS analysis -------------------------------------------
    print(analysis.report())
    print(f"\nflagged ranks: {analysis.hot_ranks()} (paper: Process 39)")

    # --- Fig 6c: the counter confirms the root cause ---------------------
    fpu = per_rank_metric_total(trace, FPU_EXCEPTIONS)
    sos = analysis.sos.per_rank_total()
    corr = metric_sos_correlation(fpu, sos)
    print(f"\n{FPU_EXCEPTIONS}:")
    print(f"  rank with most exceptions: {int(np.argmax(fpu))} "
          f"({fpu.max():.2e} total)")
    print(f"  correlation with per-rank SOS: r = {corr:.4f} "
          "(paper: 'perfectly match')")

    matrix, _ = binned_metric_matrix(trace, FPU_EXCEPTIONS, bins=100)
    print("\ncounter heat map (exceptions/s per rank over time, Fig 6c):")
    print(heat_to_ansi(matrix, row_labels=trace.ranks, max_rows=20))

    written = render_analysis(analysis, OUT)
    print("\nrendered views (incl. the Fig 6c counter chart):")
    for name, path in written.items():
        print(f"  {name}: {path}")


if __name__ == "__main__":
    main()
