"""Case study B: COSMO-SPECS+FD4 process interruption (Section VII-B, Fig 5).

Simulates the dynamically load-balanced weather code on 200 MPI
processes and reproduces the paper's drill-down workflow:

1. the coarse analysis flags a single iteration on rank 20 (Fig 5b);
2. refining the dominant function ("choosing a function with a smaller
   inclusive time") isolates the one interrupted invocation (Fig 5c);
3. PAPI_TOT_CYC confirms the OS interruption: the invocation burned
   far fewer cycles per second of wall time than its peers.

Also demonstrates trace zooming: the slow iteration is clipped out and
rendered on its own, like the paper's second measurement run that kept
only slow iterations.

Run::

    python examples/fd4_interruption.py
"""

from pathlib import Path

import numpy as np

from repro.core import analyze_trace
from repro.core.metrics import segment_metric_delta
from repro.sim.countermodel import PAPI_TOT_CYC
from repro.sim.workloads import cosmo_specs_fd4
from repro.trace import clip_trace
from repro.viz import render_analysis, render_timeline_png

OUT = Path(__file__).parent / "output" / "fd4"


def main() -> None:
    print("simulating COSMO-SPECS+FD4 (200 ranks, dynamic balancing)...")
    result = cosmo_specs_fd4.generate_result()
    trace = result.trace
    print(f"  {trace.num_events} events; balanced compute imbalance "
          f"{trace.attributes['mean_balanced_imbalance']}\n")

    # --- coarse pass (Fig 5b) ------------------------------------------
    analysis = analyze_trace(trace)
    coarse_hot = analysis.imbalance.hottest_segment()
    print(f"coarse segmentation by {analysis.dominant_name!r}:")
    print(f"  hottest segment: rank {coarse_hot.rank}, iteration "
          f"{coarse_hot.segment_index} "
          f"[{coarse_hot.t_start:.3f}s, {coarse_hot.t_stop:.3f}s]")
    print(f"  -> paper: 'a high SOS-time for Process 20'\n")

    # --- refinement (Fig 5c) ------------------------------------------
    fine = analysis.at_function("specs_timestep")
    fine_hot = fine.imbalance.hottest_segment()
    print("finer segmentation by 'specs_timestep':")
    print(f"  hottest invocation: rank {fine_hot.rank}, invocation "
          f"{fine_hot.segment_index}, SOS {fine_hot.sos * 1e3:.1f} ms "
          f"(anomaly score {fine_hot.score:.0f})")

    # --- PAPI_TOT_CYC root-cause confirmation ---------------------------
    deltas = segment_metric_delta(trace, PAPI_TOT_CYC, fine.segmentation)
    row = fine.sos.ranks.index(fine_hot.rank)
    durations = fine.segmentation[fine_hot.rank].duration
    with np.errstate(invalid="ignore"):
        rates = deltas[row] / durations
    hot_rate = rates[fine_hot.segment_index]
    typical = float(np.nanmedian(np.delete(rates, fine_hot.segment_index)))
    print("\nPAPI_TOT_CYC rate of that invocation vs its peers:")
    print(f"  interrupted: {hot_rate:.3e} cycles/s")
    print(f"  typical:     {typical:.3e} cycles/s")
    print(f"  -> the process was interrupted (wall time without cycles);")
    print("     paper attributes it to operating-system influence.\n")

    # --- zoom into the slow iteration, like the paper's Figure 5a ------
    pad = (coarse_hot.t_stop - coarse_hot.t_start) * 0.1
    zoom = clip_trace(
        trace, coarse_hot.t_start - pad, coarse_hot.t_stop + pad,
        name="slow iteration",
    )
    OUT.mkdir(parents=True, exist_ok=True)
    render_timeline_png(zoom, OUT / "slow_iteration_timeline.png",
                        show_messages=True, max_messages=800)
    print(f"zoomed timeline: {OUT / 'slow_iteration_timeline.png'}")

    written = render_analysis(fine, OUT, bins=512)
    print("fine-grained views:")
    for name, path in written.items():
        print(f"  {name}: {path}")


if __name__ == "__main__":
    main()
