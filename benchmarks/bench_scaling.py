"""E10 — scalability of the analysis ("lightweight", Section VIII).

The paper calls the approach lightweight; this benchmark quantifies
the claim for our implementation: end-to-end analysis throughput
(events per second) as the trace grows in ranks and iterations, plus
individual benchmarks of the two heaviest stages (replay, SOS).
"""

import pytest

from repro.core import analyze_trace, compute_sos, segment_trace
from repro.profiles import replay_trace
from repro.sim.workloads.synthetic import SyntheticConfig, generate


def _trace(ranks, iterations):
    return generate(
        SyntheticConfig(
            ranks=ranks,
            iterations=iterations,
            subiters=2,
            jitter_sigma=0.005,
            seed=ranks * 1000 + iterations,
        )
    )


@pytest.mark.parametrize(
    "ranks,iterations",
    [(8, 50), (32, 50), (64, 100)],
    ids=["8rx50it", "32rx50it", "64rx100it"],
)
def test_analysis_scaling(benchmark, report, bench_meta, ranks, iterations):
    trace = _trace(ranks, iterations)
    analysis = benchmark(analyze_trace, trace)
    events = trace.num_events
    bench_meta(events=events)
    rate = events / benchmark.stats["mean"]
    report(
        f"E10_scaling_{ranks}r_{iterations}it",
        [
            f"analysis throughput at {ranks} ranks x {iterations} iterations",
            f"  events: {events}",
            f"  mean analysis time: {benchmark.stats['mean'] * 1e3:.1f} ms",
            f"  throughput: {rate / 1e6:.2f} M events/s",
            f"  dominant: {analysis.dominant_name!r}",
        ],
    )


def test_replay_stage(benchmark, bench_meta, cosmo_trace):
    """Stack replay is the dominant cost; track it in isolation."""
    tables = benchmark(replay_trace, cosmo_trace)
    bench_meta(events=cosmo_trace.num_events)
    assert sum(len(t) for t in tables.values()) > 0


def test_segmentation_and_sos_stage(benchmark, cosmo_trace, cosmo_analysis):
    tables = cosmo_analysis.profile.tables
    region = cosmo_analysis.dominant_region

    def stage():
        segmentation = segment_trace(tables, region)
        return compute_sos(cosmo_trace, segmentation, tables)

    sos = benchmark(stage)
    assert sos.per_rank_total().size == 100
