"""E11 (extension) — streaming vs. post-mortem analysis.

The paper states in-situ analysis "is feasible as well" (Section III);
our :class:`~repro.core.streaming.StreamingAnalyzer` implements it.
This benchmark measures the streaming path's event throughput against
the batch pipeline and verifies the alert arrives *during* the stream,
long before the run ends.
"""

import numpy as np

from repro.core import analyze_trace
from repro.core.streaming import StreamingAnalyzer
from repro.sim.workloads.synthetic import SyntheticConfig, generate


def _trace():
    return generate(
        SyntheticConfig(
            ranks=16,
            iterations=40,
            subiters=2,
            outliers={(9, 25): 0.08},
            jitter_sigma=0.005,
            seed=21,
        )
    )


def stream_all(trace, chunk=256):
    analyzer = StreamingAnalyzer(
        trace.regions, trace.num_processes, dominant="iteration"
    )
    for rank in trace.ranks:
        events = trace.events_of(rank)
        for i in range(0, len(events), chunk):
            analyzer.feed(rank, events[i : i + chunk])
    return analyzer


def test_streaming_analysis(benchmark, report, bench_meta):
    trace = _trace()
    analyzer = benchmark(stream_all, trace)
    bench_meta(events=trace.num_events)

    assert len(analyzer.alerts) >= 1
    alert = analyzer.alerts[0]
    assert alert.segment.rank == 9 and alert.segment.index == 25

    batch = analyze_trace(trace)
    for rank in trace.ranks:
        np.testing.assert_allclose(
            analyzer.sos_series(rank), batch.sos[rank].sos
        )

    events = trace.num_events
    mean = benchmark.stats["mean"]
    # How early does the alert fire?  It completes with segment 25 of
    # 40, i.e. with ~37% of the run still ahead.
    remaining = 1.0 - (alert.segment.index + 1) / 40
    report(
        "E11_streaming_in_situ",
        [
            "Streaming (in-situ) analysis — the paper's Section III remark",
            f"  events streamed: {events}",
            f"  streaming pass: {mean * 1e3:.1f} ms "
            f"({events / mean / 1e6:.2f} M events/s)",
            f"  alert: {alert}",
            f"  raised with {100 * remaining:.0f}% of the run still ahead",
            "  SOS values identical to the post-mortem analysis (asserted)",
        ],
    )
