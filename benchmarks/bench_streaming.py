"""E11 (extension) — streaming vs. post-mortem analysis.

The paper states in-situ analysis "is feasible as well" (Section III);
our :class:`~repro.core.streaming.StreamingAnalyzer` implements it.
This benchmark measures the streaming path's event throughput against
the batch pipeline and verifies the alert arrives *during* the stream,
long before the run ends.  A second benchmark drives the vectorised
steady-state path with large chunks over a multi-million-event stream
and records throughput plus peak RSS into ``BENCH_streaming.json``
(and the canonical repo-root copy ``BENCH_stream.json``).
"""

import resource

import numpy as np

from repro.core import analyze_trace
from repro.core.streaming import StreamingAnalyzer
from repro.sim.workloads.synthetic import SyntheticConfig, generate


def _trace():
    return generate(
        SyntheticConfig(
            ranks=16,
            iterations=40,
            subiters=2,
            outliers={(9, 25): 0.08},
            jitter_sigma=0.005,
            seed=21,
        )
    )


def stream_all(trace, chunk=256):
    analyzer = StreamingAnalyzer(
        trace.regions, trace.num_processes, dominant="iteration"
    )
    for rank in trace.ranks:
        events = trace.events_of(rank)
        for i in range(0, len(events), chunk):
            analyzer.feed(rank, events[i : i + chunk])
    return analyzer


def test_streaming_analysis(benchmark, report, bench_meta):
    trace = _trace()
    analyzer = benchmark(stream_all, trace)
    bench_meta(events=trace.num_events)

    assert len(analyzer.alerts) >= 1
    alert = analyzer.alerts[0]
    assert alert.segment.rank == 9 and alert.segment.index == 25

    batch = analyze_trace(trace)
    for rank in trace.ranks:
        np.testing.assert_allclose(
            analyzer.sos_series(rank), batch.sos[rank].sos
        )

    events = trace.num_events
    mean = benchmark.stats["mean"]
    # How early does the alert fire?  It completes with segment 25 of
    # 40, i.e. with ~37% of the run still ahead.
    remaining = 1.0 - (alert.segment.index + 1) / 40
    report(
        "E11_streaming_in_situ",
        [
            "Streaming (in-situ) analysis — the paper's Section III remark",
            f"  events streamed: {events}",
            f"  streaming pass: {mean * 1e3:.1f} ms "
            f"({events / mean / 1e6:.2f} M events/s)",
            f"  alert: {alert}",
            f"  raised with {100 * remaining:.0f}% of the run still ahead",
            "  SOS values identical to the post-mortem analysis (asserted)",
        ],
    )


def _dense_stream(n_invocations=120_000, inner=12):
    """Millions of synthetic events straight from NumPy tiles.

    An ``iteration { work*inner, MPI_Allreduce }`` pattern per
    invocation — the steady-state shape the vectorised chunk processor
    is built for — without paying the simulator's per-event Python
    cost to construct it.
    """
    from repro.trace.definitions import Paradigm, RegionRegistry
    from repro.trace.events import EventList

    regions = RegionRegistry()
    r_iter = regions.register("iteration")
    r_work = regions.register("work")
    r_sync = regions.register("MPI_Allreduce", paradigm=Paradigm.MPI)

    pattern = (
        [(0, r_iter)]
        + [(0, r_work), (1, r_work)] * inner
        + [(0, r_sync), (1, r_sync), (1, r_iter)]
    )
    kinds = np.tile(np.array([k for k, _ in pattern], np.uint8),
                    n_invocations)
    refs = np.tile(np.array([r for _, r in pattern], np.int32),
                   n_invocations)
    n = kinds.size
    events = EventList(
        time=np.arange(n, dtype=np.float64) * 1e-7,
        kind=kinds,
        ref=refs,
        partner=np.full(n, -1, np.int32),
        size=np.zeros(n, np.int64),
        tag=np.zeros(n, np.int32),
        value=np.zeros(n, np.float64),
    )
    return regions, events


def test_streaming_throughput(benchmark, report, bench_meta):
    """Vectorised steady-state throughput on 64k-event chunks.

    The acceptance bar for the cursor-engine PR is 5 M events/s on the
    large-chunk path; the recorded number lands in
    ``BENCH_streaming.json`` and the repo-root ``BENCH_stream.json``.
    """
    regions, events = _dense_stream()
    n = len(events)
    chunk = 65536

    def run():
        analyzer = StreamingAnalyzer(regions, 16, dominant="iteration")
        for i in range(0, n, chunk):
            analyzer.feed(0, events[i : i + chunk])
        return analyzer

    analyzer = benchmark(run)
    assert len(analyzer.segments(0)) == 120_000

    best = float(benchmark.stats.stats.min)
    throughput = n / best
    peak_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    # The repo-root BENCH_stream.json canonical copy is written by the
    # shared _bench_record fixture (one writer, two paths) — no inline
    # duplicate here, so the copies cannot drift.
    bench_meta(
        events=n,
        chunk_events=chunk,
        peak_rss_bytes=peak_rss,
        throughput_events_per_s=throughput,
    )

    report(
        "E12_streaming_throughput",
        [
            "Vectorised streaming steady state (64k-event chunks)",
            f"  events streamed: {n}",
            f"  best round: {best * 1e3:.1f} ms "
            f"({throughput / 1e6:.2f} M events/s)",
            f"  peak RSS: {peak_rss / 1e6:.0f} MB",
            "  target: >= 5 M events/s on the large-chunk path",
        ],
    )
