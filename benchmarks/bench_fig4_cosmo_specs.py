"""E4 — Figure 4: COSMO-SPECS load-imbalance case study.

Regenerates both panels: (a) the growing MPI share over the run and
(b) the SOS heat map flagging exactly ranks {44, 45, 54, 55, 64, 65}
with rank 54 hottest.  Benchmarks the full analysis pipeline on the
100-rank trace.
"""

import numpy as np

from repro.core import analyze_trace
from repro.sim.workloads.cosmo_specs import HOT_RANKS, PEAK_RANK


def test_fig4_cosmo_specs(benchmark, report, bench_meta, cosmo_trace):
    analysis = benchmark.pedantic(
        analyze_trace, args=(cosmo_trace,), rounds=3, iterations=1
    )
    bench_meta(events=cosmo_trace.num_events)

    trace = analysis.trace
    d = trace.duration
    profile = analysis.profile
    shares = [
        profile.mpi_fraction(i * d / 6, (i + 1) * d / 6) for i in range(6)
    ]
    hot = analysis.hot_ranks()
    totals = analysis.sos.per_rank_total()

    assert set(hot) == set(HOT_RANKS)
    assert analysis.hottest_rank() == PEAK_RANK

    lines = [
        "Figure 4a — MPI time share over the run (sixths of the runtime)",
        "  "
        + "  ".join(f"{100 * s:5.1f}%" for s in shares),
        "  paper: MPI share grows until it dominates towards the end",
        "",
        "Figure 4b — SOS heat map findings",
        f"  flagged ranks: {sorted(hot)}",
        f"  paper:         {sorted(HOT_RANKS)}",
        f"  hottest rank:  {analysis.hottest_rank()} (paper: {PEAK_RANK})",
        f"  plain-duration trend: {analysis.duration_trend.describe()}",
        "",
        "per-rank total SOS (top 8):",
    ]
    for rank in np.argsort(-totals)[:8]:
        lines.append(f"  rank {int(rank):>3}: {totals[rank]:.3f} s")
    lines += [
        "",
        f"trace: {trace.num_processes} processes, {trace.num_events} events, "
        f"{trace.duration:.1f} s simulated runtime",
    ]
    report("E4_fig4_cosmo_specs", lines)
