"""E3 — Figure 3: SOS-time computation.

Regenerates the paper's worked example: plain segment durations are
identical across processes (6 / 3 / 5) while SOS-times expose the
hidden per-process imbalance (first iteration: 5 / 3 / 1).  Benchmarks
the SOS computation on the full COSMO-SPECS trace.
"""

import numpy as np

from repro.core import compute_sos, segment_trace, select_dominant
from repro.paper import FIGURE3_CALC, figure3_trace
from repro.profiles import replay_trace


def test_fig3_sos_times(benchmark, report, cosmo_trace, cosmo_analysis):
    tables = cosmo_analysis.profile.tables
    segmentation = cosmo_analysis.segmentation
    sos = benchmark(compute_sos, cosmo_trace, segmentation, tables)
    assert sos.per_rank_total().max() > 0

    fig3 = figure3_trace()
    toy_tables = replay_trace(fig3)
    toy_sel = select_dominant(fig3, tables=toy_tables)
    toy_seg = segment_trace(toy_tables, toy_sel.region)
    toy_sos = compute_sos(fig3, toy_seg, toy_tables)

    durations = toy_sos.duration_matrix()
    matrix = toy_sos.matrix()
    np.testing.assert_allclose(matrix, np.asarray(FIGURE3_CALC).T)

    lines = [
        "Figure 3 — segment durations vs. SOS-times (3 processes)",
        "",
        "plain segment durations (identical across processes -> the",
        "computational imbalance is hidden):",
    ]
    for rank in range(3):
        lines.append(
            f"  Process {rank}: "
            + "  ".join(f"{v:4g}" for v in durations[rank])
        )
    lines += ["", "SOS-times (synchronization subtracted):"]
    for rank in range(3):
        lines.append(
            f"  Process {rank}: " + "  ".join(f"{v:4g}" for v in matrix[rank])
        )
    lines += [
        "",
        "paper: 'the SOS-time of Process 2 shows 1 compared to a",
        "SOS-time of 5 for Process 0' (first iteration) -- reproduced.",
        "",
        "benchmark payload: SOS computation over the COSMO-SPECS trace "
        f"({segmentation.total_segments} segments)",
    ]
    report("E3_fig3_sos_time", lines)
