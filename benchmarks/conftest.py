"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark regenerates one paper artifact (figure/table) and both
prints and persists the rows/series the paper reports, so a
``pytest benchmarks/ --benchmark-only`` run leaves a full
paper-versus-measured record under ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report():
    """Callable writing one experiment's result table to disk + stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def emit(experiment: str, lines: list[str]) -> None:
        text = "\n".join(lines) + "\n"
        (RESULTS_DIR / f"{experiment}.txt").write_text(text)
        print(f"\n=== {experiment} ===")
        print(text)

    return emit


@pytest.fixture(scope="session")
def cosmo_trace():
    from repro.sim.workloads import cosmo_specs

    return cosmo_specs.generate(processes=100, iterations=60)


@pytest.fixture(scope="session")
def cosmo_analysis(cosmo_trace):
    from repro.core import analyze_trace

    return analyze_trace(cosmo_trace)


@pytest.fixture(scope="session")
def fd4_trace():
    from repro.sim.workloads import cosmo_specs_fd4

    return cosmo_specs_fd4.generate()


@pytest.fixture(scope="session")
def fd4_analysis(fd4_trace):
    from repro.core import analyze_trace

    return analyze_trace(fd4_trace)


@pytest.fixture(scope="session")
def wrf_trace():
    from repro.sim.workloads import wrf

    return wrf.generate()


@pytest.fixture(scope="session")
def wrf_analysis(wrf_trace):
    from repro.core import analyze_trace

    return analyze_trace(wrf_trace)
