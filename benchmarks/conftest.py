"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark regenerates one paper artifact (figure/table) and both
prints and persists the rows/series the paper reports, so a
``pytest benchmarks/ --benchmark-only`` run leaves a full
paper-versus-measured record under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).parent.parent

#: Benchmarks whose records are additionally mirrored to a canonical
#: repo-root copy (the cross-PR perf trajectory lives there).  Keys are
#: the ``bench_<module>`` suffix, values the root file name — the two
#: copies are written from the same serialized payload in the same
#: teardown, so they cannot diverge.  ``scripts/check_bench_sync.py``
#: keeps this mapping honest in CI.
CANONICAL_ROOT_COPIES = {
    "fastpath": "BENCH_fastpath.json",
    "lint": "BENCH_lint.json",
    "sim": "BENCH_sim.json",
    "hb": "BENCH_hb.json",
    "streaming": "BENCH_stream.json",
}


@pytest.fixture(scope="session")
def report():
    """Callable writing one experiment's result table to disk + stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def emit(experiment: str, lines: list[str]) -> None:
        text = "\n".join(lines) + "\n"
        (RESULTS_DIR / f"{experiment}.txt").write_text(text)
        print(f"\n=== {experiment} ===")
        print(text)

    return emit


# ---------------------------------------------------------------------------
# Machine-readable benchmark records (BENCH_<name>.json)
# ---------------------------------------------------------------------------

_GIT_SHA: str | None = None
_BENCH_RECORDS: dict[str, dict[str, dict]] = {}


def _git_sha() -> str | None:
    global _GIT_SHA
    if _GIT_SHA is None:
        try:
            _GIT_SHA = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).parent,
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
        except Exception:
            _GIT_SHA = ""
    return _GIT_SHA or None


@pytest.fixture
def bench_meta(request):
    """Attach metadata (events, trace_bytes, ...) to this test's record.

    ``bench_meta(events=n, trace_bytes=m, **anything)`` merges the
    fields into the test's entry in ``BENCH_<module>.json``; an
    ``events`` count additionally derives ``events_per_s`` from the
    recorded wall-clock.
    """

    def attach(**fields) -> None:
        merged = getattr(request.node, "_bench_meta", {})
        merged.update(fields)
        request.node._bench_meta = merged

    return attach


@pytest.fixture(autouse=True)
def _bench_record(request):
    """Persist one JSON entry per benchmark test, keyed by module.

    Every ``bench_<name>.py`` run leaves a ``BENCH_<name>.json`` next
    to the text reports: wall-clock (pytest-benchmark's best round when
    the ``benchmark`` fixture was used, the test duration otherwise),
    optional events/s and trace size from :func:`bench_meta`, plus the
    git revision — the cross-PR perf trajectory in machine form.
    """
    import repro.obs as obs

    # Record telemetry counters alongside the timings: each test runs
    # under its own collector (unless one is already active) and its
    # counter totals land in the JSON record.  Only flag-guarded
    # counters fire on the hot paths, so the timed sections stay
    # representative.
    fresh = not obs.enabled()
    col = obs.enable() if fresh else obs.collector()
    # Resolve the benchmark fixture *now* — requesting it during
    # teardown is rejected once fixtures start finalising, but the
    # object stays readable (its stats fill in as the test runs).
    bench = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    t0 = time.perf_counter()
    try:
        yield
    finally:
        wall = time.perf_counter() - t0
        if fresh:
            col = obs.disable()
    module = request.module.__name__.rpartition(".")[2]
    if not module.startswith("bench_"):
        return
    name = module[len("bench_"):]
    entry: dict = {"wall_s": wall, "timer": "test"}
    stats = getattr(bench, "stats", None)
    if stats is not None:
        entry = {"wall_s": float(stats.stats.min), "timer": "benchmark"}
    counters = col.counters() if col is not None else {}
    if counters:
        entry["counters"] = {
            key: round(value, 9) for key, value in sorted(counters.items())
        }
    entry.update(getattr(request.node, "_bench_meta", {}))
    events = entry.get("events")
    if events and entry["wall_s"] > 0 and "events_per_s" not in entry:
        entry["events_per_s"] = events / entry["wall_s"]
    record = _BENCH_RECORDS.setdefault(name, {})
    record[request.node.name] = entry
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"bench": name, "git_sha": _git_sha(), "results": record}
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(text)
    root_name = CANONICAL_ROOT_COPIES.get(name)
    if root_name:
        (REPO_ROOT / root_name).write_text(text)


@pytest.fixture(scope="session")
def cosmo_trace():
    from repro.sim.workloads import cosmo_specs

    return cosmo_specs.generate(processes=100, iterations=60)


@pytest.fixture(scope="session")
def cosmo_analysis(cosmo_trace):
    from repro.core import analyze_trace

    return analyze_trace(cosmo_trace)


@pytest.fixture(scope="session")
def fd4_trace():
    from repro.sim.workloads import cosmo_specs_fd4

    return cosmo_specs_fd4.generate()


@pytest.fixture(scope="session")
def fd4_analysis(fd4_trace):
    from repro.core import analyze_trace

    return analyze_trace(fd4_trace)


@pytest.fixture(scope="session")
def wrf_trace():
    from repro.sim.workloads import wrf

    return wrf.generate()


@pytest.fixture(scope="session")
def wrf_analysis(wrf_trace):
    from repro.core import analyze_trace

    return analyze_trace(wrf_trace)
