"""E5 — Figure 5: COSMO-SPECS+FD4 process-interruption case study.

Regenerates the drill-down story: the coarse segmentation flags rank
20 (Fig 5b); refining to a finer dominant function isolates the single
interrupted invocation (Fig 5c); its PAPI_TOT_CYC rate is anomalously
low.  Benchmarks the refinement step (re-segmentation + SOS + detection
re-using the replay).
"""

import numpy as np

from repro.core.metrics import segment_metric_delta
from repro.sim.countermodel import PAPI_TOT_CYC


def test_fig5_fd4_interruption(benchmark, report, fd4_analysis):
    fine = benchmark.pedantic(
        fd4_analysis.at_function, args=("specs_timestep",), rounds=3,
        iterations=1,
    )

    coarse_hot = fd4_analysis.imbalance.hottest_segment()
    fine_hot = fine.imbalance.hottest_segment()
    assert coarse_hot.rank == 20
    assert fine_hot.rank == 20

    trace = fd4_analysis.trace
    deltas = segment_metric_delta(trace, PAPI_TOT_CYC, fine.segmentation)
    row = fine.sos.ranks.index(20)
    durations = fine.segmentation[20].duration
    with np.errstate(invalid="ignore"):
        rates = deltas[row] / durations
    hot_rate = rates[fine_hot.segment_index]
    typical = float(np.nanmedian(np.delete(rates, fine_hot.segment_index)))

    lines = [
        "Figure 5b — coarse runtime variation analysis "
        f"(dominant: {fd4_analysis.dominant_name!r})",
        f"  hottest segment: rank {coarse_hot.rank}, iteration "
        f"{coarse_hot.segment_index}, SOS {coarse_hot.sos:.4f} s",
        "  paper: 'a high SOS-time for Process 20'",
        "",
        "Figure 5c — finer segmentation (dominant: 'specs_timestep')",
        f"  hottest invocation: rank {fine_hot.rank}, invocation "
        f"{fine_hot.segment_index} "
        f"[{fine_hot.t_start:.3f}s, {fine_hot.t_stop:.3f}s]",
        f"  anomaly score (min of rank/step robust z): {fine_hot.score:.1f}",
        "  paper: 'a single function call ... runs significantly longer'",
        "",
        "PAPI_TOT_CYC validation (paper: low assigned cycles):",
        f"  interrupted invocation: {hot_rate:.3e} cycles/s",
        f"  typical invocation:     {typical:.3e} cycles/s",
        f"  ratio: {hot_rate / typical:.2f} (interruption adds wall time "
        "without cycles)",
        "",
        f"balanced imbalance before interruption: "
        f"{trace.attributes['mean_balanced_imbalance']} (FD4 active)",
        f"trace: {trace.num_processes} processes, {trace.num_events} events",
    ]
    report("E5_fig5_cosmo_specs_fd4", lines)
