"""E-session — AnalysisSession caching and parallel replay.

Measures what the session refactor buys on the two heavyweight case
studies (W1 = COSMO-SPECS at 100 ranks, W2 = WRF at 64 ranks):

* cold analysis (empty disk cache) vs warm analysis (all artifacts
  present) — the warm path must perform zero replay/profile
  recomputation and be substantially faster,
* serial vs parallel per-rank stack replay,
* in-session refinement cost (``refined()`` as a pure cache hit).

Timings and speedups land in ``benchmarks/results/`` and are copied
into EXPERIMENTS.md.
"""

import shutil
import time

from repro.core import AnalysisSession
from repro.profiles import replay_trace


def _timed(fn, repeats=3):
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return value, best


def _cold_vs_warm(trace, cache_root):
    """One cold run filling the cache, then timed warm sessions."""
    shutil.rmtree(cache_root, ignore_errors=True)

    def cold():
        shutil.rmtree(cache_root, ignore_errors=True)
        return AnalysisSession(trace, cache_dir=cache_root).analysis()

    _, t_cold = _timed(cold)

    warm_session = None

    def warm():
        nonlocal warm_session
        warm_session = AnalysisSession(trace, cache_dir=cache_root)
        return warm_session.analysis()

    _, t_warm = _timed(warm)
    assert warm_session.stats.total_computed("replay") == 0
    assert warm_session.stats.total_computed("stats") == 0
    assert warm_session.stats.total_computed("sos") == 0
    return t_cold, t_warm


def _serial_vs_parallel(trace):
    _, t_serial = _timed(lambda: replay_trace(trace))
    _, t_parallel = _timed(lambda: replay_trace(trace, parallel=True))
    return t_serial, t_parallel


def _refinement_cost(trace):
    session = AnalysisSession(trace)
    analysis, t_first = _timed(lambda: session.analysis(), repeats=1)
    if len(analysis.selection.candidates) < 2:
        return t_first, float("nan")
    _, t_refine = _timed(lambda: analysis.refined())
    return t_first, t_refine


def _workload_lines(name, trace, tmp_root):
    t_cold, t_warm = _cold_vs_warm(trace, tmp_root / f"{name}-cache")
    t_ser, t_par = _serial_vs_parallel(trace)
    t_first, t_refine = _refinement_cost(trace)
    return [
        f"{name}: {trace.num_processes} ranks, {trace.num_events} events",
        f"  cold analysis (empty cache):   {t_cold * 1e3:8.1f} ms",
        f"  warm analysis (disk cache):    {t_warm * 1e3:8.1f} ms"
        f"   ({t_cold / t_warm:4.1f}x speedup, zero recomputation)",
        f"  serial replay:                 {t_ser * 1e3:8.1f} ms",
        f"  parallel replay (threads):     {t_par * 1e3:8.1f} ms"
        f"   ({t_ser / t_par:4.2f}x)",
        f"  first in-session analysis:     {t_first * 1e3:8.1f} ms",
        f"  refined() (session cache hit): {t_refine * 1e3:8.1f} ms",
        "",
    ]


def test_session_cache_speedups(
    benchmark, report, bench_meta, cosmo_trace, wrf_trace, tmp_path_factory
):
    tmp_root = tmp_path_factory.mktemp("session-bench")
    bench_meta(events=cosmo_trace.num_events)
    lines = ["Session caching — cold vs warm, serial vs parallel replay", ""]
    lines += _workload_lines("W1 cosmo_specs", cosmo_trace, tmp_root)
    lines += _workload_lines("W2 wrf", wrf_trace, tmp_root)

    # The benchmarked statement: a fully warm session analysis on W1.
    cache = tmp_root / "W1 cosmo_specs-cache"
    benchmark.pedantic(
        lambda: AnalysisSession(cosmo_trace, cache_dir=cache).analysis(),
        rounds=3,
        iterations=1,
    )
    report("Esession_cache", lines)
