"""E9 — baseline comparison (paper Section II).

Runs the four related-work analyses plus our variation analysis on the
same traces and tabulates what each can and cannot localise — the
qualitative comparison the paper's related-work section makes,
turned into a measurable table:

* profile-only (TAU/HPCToolkit style): rank-level skew only, no time axis;
* pattern search (Scalasca style): wait states + delayer attribution;
* representatives (Mohror et al.): may hide the anomalous rank;
* phase clustering (Gonzalez et al.): phase types, no localisation;
* this work: rank + segment + trend localisation.
"""


from repro.baselines import (
    analyze_profile_only,
    cluster_phases,
    search_patterns,
    select_representatives,
)
from repro.core import analyze_trace
from repro.sim.workloads.synthetic import SyntheticConfig, generate


def build_traces():
    slow = generate(
        SyntheticConfig(ranks=16, iterations=12, slow_ranks={11: 1.8},
                        jitter_sigma=0.01, seed=8)
    )
    outlier = generate(
        SyntheticConfig(ranks=16, iterations=12, outliers={(4, 7): 0.15},
                        jitter_sigma=0.01, seed=9)
    )
    return slow, outlier


def run_comparison(slow, outlier):
    rows = {}

    def evaluate(trace, planted_rank, planted_segment):
        analysis = analyze_trace(trace)
        ours_rank = planted_rank in analysis.hot_ranks() or any(
            h.rank == planted_rank for h in analysis.imbalance.hot_segments
        )
        ours_segment = (
            planted_segment in analysis.hot_segments()
            if planted_segment
            else None
        )
        po = analyze_profile_only(trace)
        ps = search_patterns(trace)
        rep = select_representatives(trace, similarity_threshold=0.25)
        cl = cluster_phases(trace, k=4, min_duration=0.001)
        return {
            "ours(rank)": ours_rank,
            "ours(segment)": ours_segment,
            "profile-only(rank)": planted_rank in po.flagged_ranks(),
            "patterns(delayer)": planted_rank in ps.delayers()[:3],
            "representatives(visible)": rep.is_visible(planted_rank),
            "clustering(bursts)": len(cl.bursts) > 0,
        }

    rows["persistent slow rank 11"] = evaluate(slow, 11, None)
    rows["single outlier (4, it 7)"] = evaluate(outlier, 4, (4, 7))
    return rows


def test_baseline_comparison(benchmark, report):
    slow, outlier = build_traces()
    rows = benchmark.pedantic(
        run_comparison, args=(slow, outlier), rounds=1, iterations=1
    )

    persistent = rows["persistent slow rank 11"]
    single = rows["single outlier (4, it 7)"]
    assert persistent["ours(rank)"]
    assert single["ours(segment)"]

    lines = [
        "Baseline comparison — who localises the planted problem?",
        "",
    ]
    for scenario, result in rows.items():
        lines.append(f"[{scenario}]")
        for method, value in result.items():
            lines.append(f"  {method:<26} {value}")
        lines.append("")
    lines += [
        "notes:",
        " - profile-only sees run totals: fine for persistent skew,",
        "   structurally blind to single invocations and trends;",
        " - pattern search attributes collective delays to the slow",
        "   rank but offers no over-time view;",
        " - representative selection at a typical threshold may drop",
        "   the anomalous rank from the reduced view;",
        " - phase clustering characterises burst classes without",
        "   pointing at a rank/time;",
        " - the SOS heat map localises both rank and invocation.",
    ]
    report("E9_baseline_comparison", lines)
