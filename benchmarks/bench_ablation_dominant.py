"""E8 — ablation: the dominant-function heuristic vs. alternatives.

Section IV argues that neither "maximum aggregated inclusive time"
alone (selects ``main``: no segmentation over time) nor raw invocation
counts (selects tiny leaf functions: segments too small, noisy) yield
good segments; the paper's criterion (max inclusive among functions
with >= 2p invocations) does.  This ablation runs all three policies on
the COSMO-SPECS trace and compares what the downstream detector can do.
"""

import numpy as np

from repro.core import compute_sos, detect_imbalances, segment_trace
from repro.sim.workloads.cosmo_specs import HOT_RANKS


def _select_max_inclusive(trace, stats):
    """Alternative 1: plain argmax of aggregated inclusive time."""
    return int(np.argmax(stats.inclusive_sum))


def _select_max_count(trace, stats):
    """Alternative 2: most frequently invoked function."""
    return int(np.argmax(stats.count))


def _evaluate(trace, analysis, region):
    tables = analysis.profile.tables
    segmentation = segment_trace(tables, region)
    sos = compute_sos(trace, segmentation, tables)
    detection = detect_imbalances(sos)
    counts = segmentation.counts()
    return {
        "name": trace.regions[region].name,
        "segments_per_rank": float(counts.mean()) if counts.size else 0.0,
        "hot_ranks": [h.rank for h in detection.hot_ranks],
    }


def run_ablation(cosmo_trace, cosmo_analysis):
    stats = cosmo_analysis.profile.stats
    paper_region = cosmo_analysis.dominant_region
    alt1 = _select_max_inclusive(cosmo_trace, stats)
    alt2 = _select_max_count(cosmo_trace, stats)
    return {
        "paper-heuristic": _evaluate(cosmo_trace, cosmo_analysis, paper_region),
        "max-inclusive-only": _evaluate(cosmo_trace, cosmo_analysis, alt1),
        "max-invocation-count": _evaluate(cosmo_trace, cosmo_analysis, alt2),
    }


def test_ablation_dominant_heuristic(benchmark, report, cosmo_trace,
                                     cosmo_analysis):
    results = benchmark.pedantic(
        run_ablation, args=(cosmo_trace, cosmo_analysis), rounds=1,
        iterations=1,
    )

    paper = results["paper-heuristic"]
    alt1 = results["max-inclusive-only"]
    assert set(paper["hot_ranks"]) == set(HOT_RANKS)
    # max-inclusive picks 'main': exactly one segment per rank.
    assert alt1["segments_per_rank"] == 1.0

    lines = [
        "Ablation — segmentation function selection policies "
        "(COSMO-SPECS, 100 ranks)",
        "",
        f"{'policy':<22}{'selected':<24}{'segs/rank':>10}  hot ranks",
    ]
    for policy, r in results.items():
        hot = sorted(r["hot_ranks"])
        shown = hot if len(hot) <= 8 else f"{hot[:8]}... ({len(hot)})"
        lines.append(
            f"{policy:<22}{r['name']:<24}{r['segments_per_rank']:>10.1f}  {shown}"
        )
    lines += [
        "",
        f"ground truth hot ranks: {sorted(HOT_RANKS)}",
        "",
        "paper (Section IV): top call-level functions 'provide no",
        "segmentation of the overall runtime' (main: 1 segment/rank,",
        "so temporal variation is invisible); the 2p criterion picks",
        "the iteration function.",
    ]
    report("E8_ablation_dominant_heuristic", lines)
