"""E1 — Figure 1: inclusive vs. exclusive time.

Regenerates the paper's definitional example (``foo`` inclusive 6,
exclusive 4) and benchmarks the profiling substrate that computes
those quantities at scale.
"""


from repro.paper import figure1_trace
from repro.profiles import profile_trace


def test_fig1_inclusive_exclusive(benchmark, report, bench_meta, cosmo_trace):
    profile = benchmark(profile_trace, cosmo_trace)
    bench_meta(events=cosmo_trace.num_events)

    fig1 = profile_trace(figure1_trace())
    foo = fig1.stats.of("foo")
    bar = fig1.stats.of("bar")
    assert foo.inclusive_sum == 6.0 and foo.exclusive_sum == 4.0

    report(
        "E1_fig1_inclusive_exclusive",
        [
            "Figure 1 — inclusive vs. exclusive time of one invocation",
            f"{'function':<10}{'inclusive':>12}{'exclusive':>12}   paper",
            f"{'foo':<10}{foo.inclusive_sum:>12g}{foo.exclusive_sum:>12g}"
            "   incl=6, excl=4",
            f"{'bar':<10}{bar.inclusive_sum:>12g}{bar.exclusive_sum:>12g}"
            "   incl=2 (sub-call)",
            "",
            "benchmark payload: full profile of the COSMO-SPECS trace "
            f"({cosmo_trace.num_events} events, "
            f"{cosmo_trace.num_processes} processes)",
        ],
    )
