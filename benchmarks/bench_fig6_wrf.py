"""E6 — Figure 6: WRF floating-point-exception case study.

Regenerates all three panels: (a) the ~11 s init phase and ~25% MPI
share during iterations, (b) the SOS heat map flagging rank 39 and
(c) the FPU-exception counter whose per-rank pattern matches the SOS
analysis.  Benchmarks the counter heat-map binning.
"""

import numpy as np

from repro.core.metrics import (
    binned_metric_matrix,
    metric_sos_correlation,
    per_rank_metric_total,
)
from repro.profiles import profile_trace
from repro.sim.countermodel import FPU_EXCEPTIONS


def test_fig6_wrf(benchmark, report, bench_meta, wrf_trace, wrf_analysis):
    bench_meta(events=wrf_trace.num_events)
    matrix, _edges = benchmark(
        binned_metric_matrix, wrf_trace, FPU_EXCEPTIONS, bins=512
    )
    assert matrix.shape[0] == 64

    stats = profile_trace(wrf_trace).stats
    init_seconds = stats.of("wrf_init").inclusive_max
    iters_start = wrf_analysis.segmentation.t_min
    mpi_share = wrf_analysis.profile.mpi_fraction(
        iters_start, wrf_trace.t_max
    )
    hot = wrf_analysis.hot_ranks()
    fpu = per_rank_metric_total(wrf_trace, FPU_EXCEPTIONS)
    sos = wrf_analysis.sos.per_rank_total()
    corr = metric_sos_correlation(fpu, sos)

    assert hot == [39]

    lines = [
        "Figure 6a — timeline structure",
        f"  init + I/O phase: {init_seconds:.1f} s (paper: about 11 s)",
        f"  MPI share during iterations: {100 * mpi_share:.1f}% "
        "(paper: 25%)",
        "",
        "Figure 6b — SOS heat map findings",
        f"  flagged ranks: {hot} (paper: Process 39)",
        f"  rank 39 SOS total: {sos[39]:.2f} s vs median "
        f"{np.median(sos):.2f} s",
        "",
        "Figure 6c — FR_FPU_EXCEPTIONS_SSE_MICROTRAPS",
        f"  max counter on rank: {int(np.argmax(fpu))} "
        f"({fpu.max():.3e} exceptions)",
        f"  next-highest rank total: {np.sort(fpu)[-2]:.3e}",
        f"  per-rank correlation counter vs SOS: r = {corr:.4f} "
        "(paper: 'perfectly match')",
        "",
        f"trace: {wrf_trace.num_processes} processes, "
        f"{wrf_trace.num_events} events, {wrf_trace.duration:.1f} s",
    ]
    report("E6_fig6_wrf", lines)
