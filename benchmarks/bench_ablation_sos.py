"""E7 — ablation: SOS-time vs. plain inclusive durations.

The paper's Section V argues that comparing plain inclusive durations
cannot identify *which* process causes an imbalance, because waiting
peers absorb it inside synchronization calls.  This ablation makes the
claim quantitative: over a sweep of planted imbalance factors, we run
the identical detector once on SOS values and once on plain durations
and record which one recovers the planted rank.
"""

import numpy as np

from repro.core import analyze_trace, detect_imbalances
from repro.core.sos import RankSOS, SOSResult
from repro.sim.workloads.synthetic import SyntheticConfig, generate


def _duration_view(sos):
    """An SOSResult whose values are the plain segment durations."""
    return SOSResult(
        sos.segmentation,
        {
            r: RankSOS(
                rank=r,
                duration=sos[r].duration,
                sync_time=np.zeros_like(sos[r].duration),
                sos=sos[r].duration,
            )
            for r in sos.ranks
        },
        sos.classifier,
    )


def _detected(result, planted_rank):
    report = detect_imbalances(result)
    return planted_rank in [h.rank for h in report.hot_ranks]


def run_sweep(factors):
    rows = []
    for factor in factors:
        trace = generate(
            SyntheticConfig(
                ranks=16,
                iterations=12,
                slow_ranks={11: factor},
                jitter_sigma=0.01,
                seed=int(factor * 100),
            )
        )
        analysis = analyze_trace(trace)
        sos_hit = _detected(analysis.sos, 11)
        dur_hit = _detected(_duration_view(analysis.sos), 11)
        rows.append((factor, sos_hit, dur_hit))
    return rows


def test_ablation_sos_vs_durations(benchmark, report):
    factors = (1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 3.0)
    rows = benchmark.pedantic(run_sweep, args=(factors,), rounds=1,
                              iterations=1)

    # SOS must catch every material imbalance; plain durations must
    # miss them all (the waiting peers equalise the durations).
    for factor, sos_hit, dur_hit in rows:
        if factor >= 1.25:
            assert sos_hit, f"SOS missed factor {factor}"
        assert not dur_hit, f"plain durations should not localise {factor}"

    lines = [
        "Ablation — detector input: SOS-time vs. plain inclusive duration",
        "(planted: rank 11 of 16 slowed by the given factor)",
        "",
        f"{'factor':>8}{'SOS detects':>14}{'durations detect':>18}",
    ]
    for factor, sos_hit, dur_hit in rows:
        lines.append(
            f"{factor:>8g}{str(sos_hit):>14}{str(dur_hit):>18}"
        )
    lines += [
        "",
        "paper (Section V): 'With the direct comparison of dominant",
        "function durations, we cannot identify the processes that",
        "cause the differences.' -- reproduced: the plain-duration",
        "detector never localises the slow rank, SOS always does once",
        "the imbalance is material.",
    ]
    report("E7_ablation_sos_vs_duration", lines)
