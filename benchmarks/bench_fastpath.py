"""E16 — zero-copy trace I/O (.rpt v2) + fused single-pass analysis.

The fast path attacks both ends of the pipeline measured in E15:

* the **fused kernel** (:func:`repro.core.fused.fused_bootstrap`) folds
  validation, stack replay and the per-rank statistics partial into one
  pass over each event stream, and the downstream trend/imbalance
  detectors run vectorised row-wise kernels;
* **`.rpt` v2 with raw columns** serves ``np.frombuffer`` views of an
  mmap — a cold full-trace load touches no decompressor and copies no
  bytes — and **lazy column projection** loads only the columns a pass
  declares (replay needs 3 of 7).

Acceptance targets (ISSUE 4): end-to-end analysis of the E15 workload
(16 ranks × 1500 iterations, 504k events) >= 3x faster than the pre-PR
324.0 ms baseline, and cold v2 reads of a >= 2M-event trace >= 5x
faster than the v1 zlib path.

Results land in ``benchmarks/results/E16_fastpath.txt`` and
``BENCH_fastpath.json``; EXPERIMENTS.md (E16) records the trajectory.
"""

import time

import pytest

from repro.core import analyze_trace
from repro.profiles.replay import REPLAY_COLUMNS
from repro.trace import write_binary
from repro.trace.reader import TraceIndex

#: Best-of-3 `analyze_trace` wall-clock on the E15 workload at the
#: commit preceding the fast path (same host class as EXPERIMENTS E15).
PRE_PR_ANALYZE_S = 0.324
ANALYZE_TARGET_SPEEDUP = 3.0
COLD_READ_TARGET_SPEEDUP = 5.0


def _timed(fn, repeats=3):
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return value, best


@pytest.fixture(scope="module")
def e15_trace():
    """The E15-scale workload: 16 ranks x 1500 iterations, 504k events."""
    from repro.sim.workloads.synthetic import SyntheticConfig, generate

    trace = generate(SyntheticConfig(ranks=16, iterations=1500, seed=3))
    assert trace.num_events >= 500_000, f"only {trace.num_events} events"
    return trace


@pytest.fixture(scope="module")
def big_rpt_pair(tmp_path_factory):
    """A >= 2M-event trace written as .rpt v1 (zlib) and v2 (raw)."""
    from repro.sim.workloads.synthetic import SyntheticConfig, generate

    trace = generate(SyntheticConfig(ranks=32, iterations=3000, seed=5))
    assert trace.num_events >= 2_000_000, f"only {trace.num_events} events"
    root = tmp_path_factory.mktemp("fastpath")
    v1 = root / "big_v1.rpt"
    v2 = root / "big_v2.rpt"
    write_binary(trace, v1, version=1)
    write_binary(trace, v2, version=2, codec="raw")
    return trace, v1, v2


def test_fused_analyze_speedup(e15_trace, report, bench_meta):
    trace = e15_trace
    total = trace.num_events
    for _ in range(2):  # warm-up: imports, ufunc dispatch, caches
        analyze_trace(trace)

    analysis, t_analyze = _timed(lambda: analyze_trace(trace))
    assert analysis.dominant_name is not None

    speedup = PRE_PR_ANALYZE_S / t_analyze
    bench_meta(
        wall_s=t_analyze,
        timer="best-of-3",
        events=total,
        baseline_wall_s=PRE_PR_ANALYZE_S,
        speedup_vs_baseline=speedup,
    )
    report(
        "E16_fastpath",
        [
            f"trace: 16 ranks x 1500 iterations, {total} events",
            "",
            f"end-to-end analyze (fused kernel), best of 3: "
            f"{t_analyze * 1e3:.1f} ms "
            f"({total / t_analyze / 1e6:.2f} M events/s)",
            f"pre-PR baseline: {PRE_PR_ANALYZE_S * 1e3:.1f} ms",
            f"speedup: {speedup:.2f}x "
            f"(target >= {ANALYZE_TARGET_SPEEDUP:.0f}x)",
        ],
    )
    assert speedup >= ANALYZE_TARGET_SPEEDUP, (
        f"fused analyze is only {speedup:.2f}x faster than the "
        f"{PRE_PR_ANALYZE_S * 1e3:.0f} ms baseline "
        f"(target {ANALYZE_TARGET_SPEEDUP}x)"
    )


def test_cold_v2_read_speedup(big_rpt_pair, report, bench_meta):
    trace, v1, v2 = big_rpt_pair
    total = trace.num_events

    t1, t_v1 = _timed(lambda: TraceIndex(v1).load())
    t2, t_v2 = _timed(lambda: TraceIndex(v2).load())
    _, t_v2_proj = _timed(
        lambda: TraceIndex(v2).load(None, columns=REPLAY_COLUMNS)
    )
    # v2 raw serves the identical events straight off the mmap.
    assert all(t1.events_of(r) == t2.events_of(r) for r in t1.ranks)

    speedup = t_v1 / t_v2
    bench_meta(
        wall_s=t_v2,
        timer="best-of-3",
        events=total,
        trace_bytes=v2.stat().st_size,
        v1_wall_s=t_v1,
        v1_trace_bytes=v1.stat().st_size,
        projected_wall_s=t_v2_proj,
        speedup_vs_v1=speedup,
    )
    report(
        "E16_fastpath_cold_read",
        [
            f"trace: 32 ranks x 3000 iterations, {total} events",
            "",
            f"v1 (all-zlib) full load, best of 3:  {t_v1 * 1e3:.1f} ms",
            f"v2 (raw/mmap) full load, best of 3:  {t_v2 * 1e3:.1f} ms",
            f"v2 load projected to {'/'.join(REPLAY_COLUMNS)}: "
            f"{t_v2_proj * 1e3:.1f} ms",
            f"cold-read speedup: {speedup:.1f}x "
            f"(target >= {COLD_READ_TARGET_SPEEDUP:.0f}x)",
        ],
    )
    assert speedup >= COLD_READ_TARGET_SPEEDUP, (
        f"v2 cold read is only {speedup:.1f}x faster than v1 "
        f"(target {COLD_READ_TARGET_SPEEDUP}x)"
    )
