"""E12 (extension) — load-balancer design choices (the FD4 substrate).

The COSMO-SPECS+FD4 case study depends on our balancer actually
balancing.  This ablation quantifies the design choices DESIGN.md
calls out: partitioning algorithm (uniform / greedy / exact) and curve
(Hilbert / Morton / row-major), on the cloud-weight fields the
workload produces.
"""

import numpy as np

from repro.balance import (
    DynamicLoadBalancer,
    curve_order,
    imbalance_of,
    partition_exact,
    partition_greedy,
    partition_uniform,
)
from repro.sim.workloads.base import CloudField


def cloud_weights(step: int = 20) -> np.ndarray:
    cloud = CloudField(
        nx=40, ny=40, center=(18.0, 22.0), sigma=5.0,
        max_amplitude=6.0, growth_steps=30, drift=(0.08, 0.04),
    )
    return cloud.weights(step)


def run_ablation(parts: int = 200):
    weights = cloud_weights().ravel()
    order = curve_order(40, 40, curve="hilbert")
    ordered = weights[order]

    rows = {}
    b = partition_uniform(len(ordered), parts)
    rows["uniform (static)"] = imbalance_of(ordered, b)
    b = partition_greedy(ordered, parts)
    rows["greedy CCP"] = imbalance_of(ordered, b)
    b = partition_exact(ordered, parts)
    rows["exact CCP"] = imbalance_of(ordered, b)

    curves = {}
    for curve in ("row", "morton", "hilbert"):
        lb = DynamicLoadBalancer(40, 40, parts, curve=curve, method="exact")
        result = lb.balance(weights)
        # Boundary length proxy: cells whose right/down neighbour is
        # owned by a different rank (communication surface).
        a = result.assignment.reshape(40, 40)
        cuts = int(np.count_nonzero(np.diff(a, axis=0))) + int(
            np.count_nonzero(np.diff(a, axis=1))
        )
        curves[curve] = (result.imbalance, cuts)
    return rows, curves


def test_ablation_balancer(benchmark, report):
    rows, curves = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    assert rows["exact CCP"] <= rows["greedy CCP"] + 1e-9
    assert rows["exact CCP"] < rows["uniform (static)"]
    # Hilbert partitions have shorter boundaries than Morton/row.
    assert curves["hilbert"][1] <= curves["morton"][1]

    lines = [
        "Balancer ablation on a cloud-weight field (1600 blocks, 200 ranks)",
        "",
        "partitioning algorithm (Hilbert order) -> bottleneck imbalance:",
    ]
    for name, imb in rows.items():
        lines.append(f"  {name:<18} max/mean = {imb:.4f}")
    lines += [
        "",
        "curve choice (exact CCP) -> imbalance, boundary cells:",
    ]
    for curve, (imb, cuts) in curves.items():
        lines.append(f"  {curve:<10} imbalance {imb:.4f}, boundary {cuts}")
    lines += [
        "",
        "uniform static decomposition is what the COSMO-SPECS baseline",
        "suffers from (case A); exact chains-on-chains on the Hilbert",
        "curve is what keeps case B balanced so only the OS interruption",
        "stands out.",
    ]
    report("E12_ablation_balancer", lines)
