"""E2 — Figure 2: time-dominant function identification.

Regenerates the paper's selection example (``main`` wins on inclusive
time but fails the 2p invocation criterion; ``a`` is dominant) and
benchmarks the selection on the full COSMO-SPECS trace.
"""

from repro.core import select_dominant
from repro.paper import figure2_trace
from repro.profiles import profile_trace


def test_fig2_dominant_selection(benchmark, report, cosmo_trace, cosmo_analysis):
    profile = cosmo_analysis.profile
    selection = benchmark(
        select_dominant, cosmo_trace, stats=profile.stats, tables=profile.tables
    )
    assert selection.name == "timeloop_iteration"

    fig2 = figure2_trace()
    stats = profile_trace(fig2).stats
    toy = select_dominant(fig2)
    assert toy.name == "a"

    lines = [
        "Figure 2 — dominant-function selection (3 processes, 2p = 6)",
        f"{'function':<10}{'incl':>8}{'count':>8}   eligible?",
    ]
    for name in ("main", "i", "a", "b", "c"):
        row = stats.of(name)
        eligible = "yes" if row.count >= 6 else "no (count < 2p)"
        marker = "  <- dominant" if name == toy.name else ""
        lines.append(
            f"{name:<10}{row.inclusive_sum:>8g}{row.count:>8}   {eligible}{marker}"
        )
    lines += [
        "",
        "paper: main has aggregated inclusive time 54 but only 3",
        "invocations; a (36 time steps, 9 invocations) is dominant.",
        "",
        "benchmark payload: selection over the COSMO-SPECS trace; "
        f"selected {selection.name!r} from "
        f"{len(selection.candidates)} candidates",
    ]
    report("E2_fig2_dominant_function", lines)
