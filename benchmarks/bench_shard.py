"""E14 — sharded multi-process analysis scaling study.

Generates a >= 1M-event synthetic trace, writes it to the binary
``.rpt`` format and analyzes it through the sharded engine with 1, 2,
4 and 8 worker processes (``REPRO_SHARD_WORKERS``), plus the
single-process unsharded baseline.  Three things are recorded:

* cold wall-clock per worker count (workers read only their ranks
  from disk via the chunked reader),
* the parallelizable fraction (phase-1 replay+stats time share),
  yielding an Amdahl projection for multi-core hosts,
* peak working-set bound per worker (the point of ``--max-memory-mb``).

Determinism is asserted, not assumed: every sharded run's dominant
selection and heat matrix must equal the unsharded baseline's.

Results land in ``benchmarks/results/`` and EXPERIMENTS.md (E14).
"""

import os
import time

import numpy as np
import pytest

from repro.core import analyze_trace
from repro.core.session import AnalysisSession
from repro.core.shard import BYTES_PER_EVENT, plan_shards
from repro.trace import write_binary

WORKER_COUNTS = (1, 2, 4, 8)
SHARDS = 8


@pytest.fixture(scope="module")
def million_event_rpt(tmp_path_factory):
    """Synthetic trace with >= 1M events, stored as .rpt."""
    from repro.sim.workloads.synthetic import SyntheticConfig, generate

    config = SyntheticConfig(
        ranks=24,
        iterations=2000,
        base_compute=0.001,
        slow_ranks={17: 1.4},
        seed=7,
    )
    trace = generate(config)
    total = sum(len(trace.events_of(r)) for r in trace.ranks)
    assert total >= 1_000_000, f"only {total} events"
    path = tmp_path_factory.mktemp("shard_bench") / "million.rpt"
    write_binary(trace, path)
    return trace, path, total


def _timed(fn, repeats=2):
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return value, best


def test_shard_scaling(million_event_rpt, report, bench_meta):
    trace, path, total = million_event_rpt

    baseline, t_base = _timed(lambda: analyze_trace(trace))
    bench_meta(
        wall_s=t_base,
        timer="best-of-2",
        events=total,
        trace_bytes=path.stat().st_size,
    )
    base_heat, base_edges = baseline.heat_matrix(bins=128)

    # Parallelizable fraction: time phase 1 (replay + stats partials)
    # alone inside a one-shard engine, relative to the full analysis.
    from repro.core.shard import ShardEngine

    def phase1_only():
        engine = ShardEngine(
            plan_shards({r: len(trace.events_of(r)) for r in trace.ranks}),
            trace=trace,
            n_regions=len(trace.regions),
        )
        return engine.bootstrap()

    _, t_phase1 = _timed(phase1_only)
    p = min(t_phase1 / t_base, 0.99)

    lines = [
        f"trace: 24 ranks x 2000 iterations, {total} events "
        f"({total * BYTES_PER_EVENT / 1e6:.0f} MB est. working set)",
        f"unsharded baseline: {t_base * 1e3:.1f} ms",
        f"parallelizable phase-1 fraction: {p:.2f}",
        "",
        f"{'workers':>7} | {'cold (ms)':>10} | {'vs base':>8} | "
        f"{'Amdahl bound':>12} | identical",
    ]

    for workers in WORKER_COUNTS:
        os.environ["REPRO_SHARD_WORKERS"] = str(workers)
        try:
            def run():
                session = AnalysisSession(
                    None, source_path=path, shards=SHARDS
                )
                return session.analysis()

            result, t = _timed(run)
        finally:
            os.environ.pop("REPRO_SHARD_WORKERS", None)
        heat, edges = result.heat_matrix(bins=128)
        identical = (
            result.dominant_name == baseline.dominant_name
            and np.array_equal(edges, base_edges)
            and np.array_equal(heat, base_heat, equal_nan=True)
        )
        assert identical, f"sharded run ({workers} workers) diverged"
        amdahl = 1.0 / ((1 - p) + p / workers)
        lines.append(
            f"{workers:>7} | {t * 1e3:>10.1f} | {t_base / t:>7.2f}x | "
            f"{amdahl:>11.2f}x | yes"
        )

    cores = len(os.sched_getaffinity(0))
    lines += [
        "",
        f"host cores available: {cores}",
        "note: wall-clock speedup requires >1 core; on a single-core",
        "host the table records honest (flat) timings while the Amdahl",
        "column gives the multi-core bound from the measured fraction.",
    ]
    report("E14_shard_scaling", lines)


def test_memory_bounded_plan(million_event_rpt, report):
    """--max-memory-mb keeps the per-worker working set under budget."""
    trace, path, total = million_event_rpt
    counts = {r: len(trace.events_of(r)) for r in trace.ranks}
    lines = [f"{'budget (MB)':>11} | {'shards':>6} | {'peak shard (MB)':>15}"]
    for budget in (256, 64, 16, 8):
        plan = plan_shards(counts, max_memory_mb=budget)
        peak = plan.max_shard_bytes() / 1e6
        assert peak <= budget * 1.0 + 1e-9 or plan.num_shards == len(counts)
        lines.append(
            f"{budget:>11} | {plan.num_shards:>6} | {peak:>15.1f}"
        )
    report("E14_memory_bounds", lines)
