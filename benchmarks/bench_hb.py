"""E18 — cross-rank happens-before analysis throughput.

The TL3xx rules promise static cross-rank answers at lint speed, so
this benchmark measures the full hb pass — per-rank match-record
extraction, global message-match graph assembly and the five TL3xx
rules — on the >= 500k-event synthetic trace the lint benchmark uses
(halo exchanges + collectives every iteration, so the match graph is
dense).

Acceptance target: >= 5 Mevents/s for the complete pass.  The stages
are also timed separately so a regression names its phase.

Results land in ``benchmarks/results/E18_hb_throughput.txt`` and
``BENCH_hb.json`` (canonical copy at the repo root).
"""

import time

import pytest

from repro.lint import LintConfig, lint_trace
from repro.lint.hb import MatchGraph, match_records_for_trace

TARGET_MEVENTS_S = 5.0


@pytest.fixture(scope="module")
def big_trace():
    from repro.sim.workloads.synthetic import SyntheticConfig, generate

    config = SyntheticConfig(
        ranks=16,
        iterations=1500,
        base_compute=0.001,
        slow_ranks={11: 1.3},
        seed=11,
    )
    trace = generate(config)
    total = sum(len(trace.events_of(r)) for r in trace.ranks)
    assert total >= 500_000, f"only {total} events"
    return trace, total


def _timed(fn, repeats=3):
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return value, best


def test_hb_pass_throughput(big_trace, report, bench_meta):
    trace, total = big_trace
    hb_only = LintConfig(select=("TL3*",))

    # Stage timings: extraction dominates (it reads every event);
    # assembly and the rules run over a few entries per message.
    (records, _shared), t_extract = _timed(
        lambda: match_records_for_trace(trace)
    )
    graph, t_assemble = _timed(
        lambda: MatchGraph.from_records(records, trace.num_processes)
    )
    assert graph.complete
    assert graph.num_matched == graph.num_sends  # healthy workload

    # Full pass, end to end (what `repro lint --select 'TL3*'` pays).
    hb_report, t_full = _timed(lambda: lint_trace(trace, config=hb_only))
    assert hb_report.ok, hb_report.to_text()

    mevents = total / t_full / 1e6
    bench_meta(
        wall_s=t_full,
        timer="best-of-3",
        events=total,
        sends=graph.num_sends,
        recvs=graph.num_recvs,
        matched=graph.num_matched,
        extract_wall_s=t_extract,
        assemble_wall_s=t_assemble,
        mevents_per_s=mevents,
    )

    lines = [
        f"trace: 16 ranks x 1500 iterations, {total} events",
        f"match graph: {graph.num_sends} sends, {graph.num_recvs} recvs, "
        f"{graph.num_matched} matched, "
        f"{sum(len(r.coll_ref) for r in graph.records.values())} "
        f"collective calls",
        "",
        f"{'stage':>28} | {'best of 3 (ms)':>14} | {'Mevents/s':>9}",
        f"{'record extraction':>28} | {t_extract * 1e3:>14.1f} | "
        f"{total / t_extract / 1e6:>9.2f}",
        f"{'graph assembly':>28} | {t_assemble * 1e3:>14.1f} | "
        f"{total / t_assemble / 1e6:>9.2f}",
        f"{'full TL3xx pass':>28} | {t_full * 1e3:>14.1f} | "
        f"{mevents:>9.2f}",
        "",
        f"hb pass throughput: {mevents:.2f} Mevents/s "
        f"(target >= {TARGET_MEVENTS_S:.0f})",
        "diagnostics: 0 (healthy workload is TL3xx-silent at this scale)",
    ]
    report("E18_hb_throughput", lines)
    assert mevents >= TARGET_MEVENTS_S, (
        f"hb pass at {mevents:.2f} Mevents/s "
        f"(target {TARGET_MEVENTS_S} Mevents/s)"
    )
