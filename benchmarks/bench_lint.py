"""E15 — tracelint throughput versus replay-based analysis.

The lint pass exists to be a pre-flight gate, so its whole value rests
on being much cheaper than the analysis it guards.  This benchmark
measures, on a >= 500k-event synthetic trace:

* full-rule-set lint wall-clock (in-memory and chunked-from-file),
* the replay-based full analysis wall-clock on the same trace,
* the resulting speedup factor (acceptance target: >= 3x; the
  original 10x gap was structural and E16's fused kernel closed most
  of it from the analysis side),
* lint events/second throughput.

The trace is generated healthy, so the run also re-asserts the
"bundled workloads lint clean" contract at benchmark scale.

Results land in ``benchmarks/results/E15_lint_throughput.txt`` and
EXPERIMENTS.md (E15).
"""

import time

import pytest

from repro.core import analyze_trace
from repro.lint import lint_path, lint_trace
from repro.trace import write_binary

# Was 10.0 before the fused analysis kernel (E16): lint's margin
# shrank because the analysis it guards got ~3x faster, not because
# lint regressed.  It must still comfortably undercut the analysis.
TARGET_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def big_trace(tmp_path_factory):
    from repro.sim.workloads.synthetic import SyntheticConfig, generate

    config = SyntheticConfig(
        ranks=16,
        iterations=1500,
        base_compute=0.001,
        slow_ranks={11: 1.3},
        seed=11,
    )
    trace = generate(config)
    total = sum(len(trace.events_of(r)) for r in trace.ranks)
    assert total >= 500_000, f"only {total} events"
    path = tmp_path_factory.mktemp("lint_bench") / "big.rpt"
    write_binary(trace, path)
    return trace, path, total


def _timed(fn, repeats=3):
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return value, best


def test_lint_vs_replay_throughput(big_trace, report, bench_meta):
    trace, path, total = big_trace

    lint_report, t_lint = _timed(lambda: lint_trace(trace))
    assert lint_report.ok, lint_report.to_text()
    assert lint_report.num_events == total

    path_report, t_lint_path = _timed(lambda: lint_path(path))
    assert path_report.ok, path_report.to_text()
    assert path_report.diagnostics == lint_report.diagnostics

    _, t_analyze = _timed(lambda: analyze_trace(trace), repeats=2)

    bench_meta(
        wall_s=t_lint,
        timer="best-of-3",
        events=total,
        trace_bytes=path.stat().st_size,
        lint_path_wall_s=t_lint_path,
        analyze_wall_s=t_analyze,
    )
    speedup = t_analyze / t_lint
    assert speedup >= TARGET_SPEEDUP, (
        f"lint is only {speedup:.1f}x faster than replay analysis "
        f"(target {TARGET_SPEEDUP}x)"
    )

    lines = [
        f"trace: 16 ranks x 1500 iterations, {total} events",
        f"rules run: {len(lint_report.rules_run)} (full default set)",
        "",
        f"{'pass':>28} | {'best of 3 (ms)':>14} | {'Mevents/s':>9}",
        f"{'lint (in-memory)':>28} | {t_lint * 1e3:>14.1f} | "
        f"{total / t_lint / 1e6:>9.2f}",
        f"{'lint (chunked from .rpt)':>28} | {t_lint_path * 1e3:>14.1f} | "
        f"{total / t_lint_path / 1e6:>9.2f}",
        f"{'replay-based full analysis':>28} | {t_analyze * 1e3:>14.1f} | "
        f"{total / t_analyze / 1e6:>9.2f}",
        "",
        f"lint speedup vs replay analysis: {speedup:.1f}x "
        f"(target >= {TARGET_SPEEDUP:.0f}x)",
        "diagnostics: 0 (healthy workload lints clean at this scale)",
    ]
    report("E15_lint_throughput", lines)
