"""E19 — vectorized simulator fast path + direct-to-v2 columnar emission.

The trace *generators* became the bottleneck once analysis went fused
(E16: 504k events analysed in ~50 ms but simulated in ~1.8 s).  This
PR rebuilds the emission pipeline:

* the engine records through preallocated NumPy column buffers
  (``ColumnarTraceSink``) instead of per-event Python objects;
* declarative iteration structure (``LoopSpec``) lets the engine skip
  the generator protocol entirely and compute whole timestamp columns
  with array arithmetic — proven bitwise-identical to the interpreted
  path by ``tests/test_sim_sink.py`` and the fuzz oracle;
* ``SimResult.write`` serialises the buffers straight into ``.rpt`` v2
  codec blobs without ever building a ``Trace``.

Acceptance target (ISSUE 9): >= 10x events/s on the W1-class workload
(16 ranks x 1500 iterations, 504k events) against the pre-PR engine,
measured best-of-3.  The asserts below double as the CI perf-smoke
throughput gate.

Results land in ``benchmarks/results/E19_sim_throughput.txt`` and
``BENCH_sim.json`` (canonical copy at the repo root).
"""

import time

from repro.sim.workloads.synthetic import SyntheticConfig, generate_result

#: Pre-PR best-of-3 generation throughput (events/s) on the same host
#: class, measured at commit fc99823 (the engine before this PR).
PRE_PR_EVENTS_PER_S = {
    "w1": 279_561,  # synthetic 16 x 1500, seed=3
    "idle_wave": 261_102,  # 64 ranks x 100 iterations
    "late_sender": 383_346,  # 12 ranks x 20 iterations, scaled run
    "serialization": 348_702,
}
W1_TARGET_SPEEDUP = 10.0
IDLE_WAVE_TARGET_SPEEDUP = 8.0
#: Floor for the general (non-LoopSpec) interpreter: it was rebuilt
#: too (dict dispatch, list-cursor ready queue, columnar recording)
#: and must not regress below the pre-PR engine.
GENERAL_FLOOR_EVENTS_PER_S = 250_000


def _timed(fn, repeats=3):
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return value, best


def _throughput(make_result, repeats=3):
    result, best = _timed(make_result, repeats=repeats)
    return result, best, result.events / best


def test_w1_generation_throughput(report, bench_meta):
    """The headline gate: 504k-event W1 workload, fast path, >= 10x."""
    config = SyntheticConfig(ranks=16, iterations=1500, seed=3)
    generate_result(config)  # warm-up: imports, ufunc dispatch

    result, best, events_per_s = _throughput(lambda: generate_result(config))
    assert result.events >= 500_000, f"only {result.events} events"

    baseline = PRE_PR_EVENTS_PER_S["w1"]
    speedup = events_per_s / baseline
    bench_meta(
        wall_s=best,
        timer="best-of-3",
        events=result.events,
        baseline_events_per_s=baseline,
        speedup_vs_baseline=speedup,
    )
    report(
        "E19_sim_throughput",
        [
            f"workload: synthetic 16 ranks x 1500 iterations, "
            f"{result.events} events",
            "",
            f"fast-path generation, best of 3: {best * 1e3:.1f} ms "
            f"({events_per_s / 1e6:.2f} M events/s)",
            f"pre-PR baseline: {baseline / 1e3:.0f} k events/s",
            f"speedup: {speedup:.1f}x (target >= "
            f"{W1_TARGET_SPEEDUP:.0f}x)",
        ],
    )
    assert speedup >= W1_TARGET_SPEEDUP, (
        f"fast path is only {speedup:.2f}x the pre-PR engine "
        f"({events_per_s:.0f} vs {baseline} events/s, "
        f"target {W1_TARGET_SPEEDUP}x)"
    )


def test_idle_wave_throughput(report, bench_meta):
    """Phenomenon workload on the fast path (larger rank count)."""
    from repro.sim.workloads.idle_wave import IdleWaveConfig
    from repro.sim.workloads.idle_wave import generate_result as idle_wave

    config = IdleWaveConfig(ranks=64, iterations=100, source_rank=32)
    idle_wave(config)  # warm-up

    result, best, events_per_s = _throughput(lambda: idle_wave(config))
    baseline = PRE_PR_EVENTS_PER_S["idle_wave"]
    speedup = events_per_s / baseline
    bench_meta(
        wall_s=best,
        timer="best-of-3",
        events=result.events,
        baseline_events_per_s=baseline,
        speedup_vs_baseline=speedup,
    )
    report(
        "E19_sim_idle_wave",
        [
            f"workload: idle_wave 64 ranks x 100 iterations, "
            f"{result.events} events",
            "",
            f"fast-path generation, best of 3: {best * 1e3:.1f} ms "
            f"({events_per_s / 1e6:.2f} M events/s)",
            f"speedup vs pre-PR: {speedup:.1f}x "
            f"(target >= {IDLE_WAVE_TARGET_SPEEDUP:.0f}x)",
        ],
    )
    assert speedup >= IDLE_WAVE_TARGET_SPEEDUP


def test_general_engine_throughput(report, bench_meta, monkeypatch):
    """The interpreted path (fast path disabled) must not regress."""
    monkeypatch.setenv("REPRO_SIM_NO_FASTPATH", "1")
    config = SyntheticConfig(ranks=16, iterations=1500, seed=3)
    generate_result(config)  # warm-up

    result, best, events_per_s = _throughput(lambda: generate_result(config))
    bench_meta(
        wall_s=best,
        timer="best-of-3",
        events=result.events,
        floor_events_per_s=GENERAL_FLOOR_EVENTS_PER_S,
    )
    report(
        "E19_sim_general_engine",
        [
            f"workload: synthetic 16 ranks x 1500 iterations, "
            f"{result.events} events (REPRO_SIM_NO_FASTPATH=1)",
            "",
            f"general-engine generation, best of 3: {best * 1e3:.1f} ms "
            f"({events_per_s / 1e3:.0f} k events/s)",
            f"floor: {GENERAL_FLOOR_EVENTS_PER_S / 1e3:.0f} k events/s "
            f"(pre-PR engine: "
            f"{PRE_PR_EVENTS_PER_S['w1'] / 1e3:.0f} k events/s)",
        ],
    )
    assert events_per_s >= GENERAL_FLOOR_EVENTS_PER_S, (
        f"general engine fell to {events_per_s:.0f} events/s "
        f"(floor {GENERAL_FLOOR_EVENTS_PER_S})"
    )


def test_direct_write_throughput(tmp_path, report, bench_meta):
    """Column buffers straight to .rpt v2 — no Trace, no EventLists."""
    config = SyntheticConfig(ranks=16, iterations=1500, seed=3)
    result = generate_result(config)
    path = tmp_path / "w1.rpt"

    total, best = _timed(lambda: result.write(path, codec="raw"))
    events_per_s = result.events / best
    bench_meta(
        wall_s=best,
        timer="best-of-3",
        events=result.events,
        trace_bytes=total,
        bytes_per_s=total / best,
    )
    report(
        "E19_sim_direct_write",
        [
            f"workload: {result.events} events, {total / 1e6:.1f} MB v2/raw",
            "",
            f"direct columnar write, best of 3: {best * 1e3:.1f} ms "
            f"({total / best / 1e6:.0f} MB/s, "
            f"{events_per_s / 1e6:.2f} M events/s)",
        ],
    )


def test_congestion_generation(report, bench_meta):
    """Topology + per-link queueing workload (general path, no gate —
    first measurement of the new congestion model)."""
    from repro.sim.workloads.congestion import CongestionConfig
    from repro.sim.workloads.congestion import generate_result as congestion

    config = CongestionConfig(ranks=64, iterations=30)
    congestion(config)  # warm-up

    result, best, events_per_s = _throughput(lambda: congestion(config))
    bench_meta(wall_s=best, timer="best-of-3", events=result.events)
    report(
        "E19_sim_congestion",
        [
            f"workload: congestion incast 64 ranks x 30 iterations "
            f"(fat-tree, per-link queueing), {result.events} events",
            "",
            f"generation, best of 3: {best * 1e3:.1f} ms "
            f"({events_per_s / 1e3:.0f} k events/s)",
        ],
    )
