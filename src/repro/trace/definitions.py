"""Definition records shared by all event streams of a trace.

Modelled after the definition section of OTF2 traces written by Score-P:
*regions* (functions, loop bodies, MPI operations), *metrics* (hardware
or software counters) and *locations* (processing elements).  Analysis
passes refer to these by dense integer ids, which index directly into
NumPy lookup tables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "Paradigm",
    "RegionRole",
    "Region",
    "RegionRegistry",
    "MetricMode",
    "Metric",
    "MetricRegistry",
    "Location",
]


class Paradigm(enum.IntEnum):
    """Programming model a region belongs to."""

    USER = 0
    MPI = 1
    OPENMP = 2
    IO = 3
    MEASUREMENT = 4


class RegionRole(enum.IntEnum):
    """Semantic role of a region, used for synchronization classification.

    The SOS-time computation (paper Section V) subtracts the duration of
    synchronization and communication operations from segment durations.
    Roles make that classification explicit instead of relying purely on
    name prefixes.
    """

    COMPUTE = 0
    SYNCHRONIZATION = 1  # e.g. MPI_Barrier, MPI_Wait, omp barrier
    COMMUNICATION = 2  # e.g. MPI_Send, MPI_Alltoall
    FILE_IO = 3
    INITIALIZATION = 4
    LOOP = 5
    ARTIFICIAL = 6  # measurement overhead, trace gaps


#: MPI operation names with purely synchronizing semantics.
_MPI_SYNC_NAMES = frozenset(
    {
        "MPI_Barrier",
        "MPI_Wait",
        "MPI_Waitall",
        "MPI_Waitany",
        "MPI_Waitsome",
        "MPI_Test",
        "MPI_Testall",
        "MPI_Win_fence",
    }
)


def default_role(name: str, paradigm: Paradigm) -> RegionRole:
    """Infer a region role from its name and paradigm.

    Mirrors the paper's examples: ``MPI_Wait``/``MPI_Reduce``/``omp
    barrier`` count as synchronization or communication; everything in
    the USER paradigm defaults to compute.
    """
    if paradigm == Paradigm.MPI:
        if name in _MPI_SYNC_NAMES:
            return RegionRole.SYNCHRONIZATION
        return RegionRole.COMMUNICATION
    if paradigm == Paradigm.OPENMP:
        if "barrier" in name.lower() or "critical" in name.lower():
            return RegionRole.SYNCHRONIZATION
        return RegionRole.COMPUTE
    if paradigm == Paradigm.IO:
        return RegionRole.FILE_IO
    return RegionRole.COMPUTE


@dataclass(frozen=True, slots=True)
class Region:
    """A named code region (function, loop body or runtime operation)."""

    id: int
    name: str
    paradigm: Paradigm = Paradigm.USER
    role: RegionRole = RegionRole.COMPUTE
    source_file: str = ""
    line: int = 0


@dataclass(frozen=True, slots=True)
class Metric:
    """A counter definition (PAPI-style hardware or software metric)."""

    id: int
    name: str
    unit: str = "#"
    mode: "MetricMode" = None  # type: ignore[assignment]
    description: str = ""

    def __post_init__(self) -> None:
        if self.mode is None:
            object.__setattr__(self, "mode", MetricMode.ABSOLUTE)


class MetricMode(enum.IntEnum):
    """How consecutive metric samples relate to each other."""

    ABSOLUTE = 0  # each sample is an independent value
    ACCUMULATED = 1  # monotonically increasing counter (e.g. PAPI_TOT_CYC)
    RATE = 2  # value is already a per-second rate


@dataclass(frozen=True, slots=True)
class Location:
    """A processing element producing one event stream (an MPI rank)."""

    id: int
    name: str
    group: str = "MPI"


class RegionRegistry:
    """Dense id ↔ :class:`Region` mapping with name lookup.

    Region ids are assigned densely in registration order so analysis
    code can use them as array indices (e.g. per-region accumulators).
    """

    def __init__(self) -> None:
        self._regions: list[Region] = []
        self._by_name: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __getitem__(self, region_id: int) -> Region:
        return self._regions[region_id]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def register(
        self,
        name: str,
        paradigm: Paradigm = Paradigm.USER,
        role: RegionRole | None = None,
        source_file: str = "",
        line: int = 0,
    ) -> int:
        """Register a region (idempotent by name) and return its id.

        Re-registering an existing name returns the existing id; the
        original attributes win, mirroring Score-P's first-writer
        semantics for definition records.
        """
        existing = self._by_name.get(name)
        if existing is not None:
            return existing
        if role is None:
            role = default_role(name, paradigm)
        region = Region(
            id=len(self._regions),
            name=name,
            paradigm=paradigm,
            role=role,
            source_file=source_file,
            line=line,
        )
        self._regions.append(region)
        self._by_name[name] = region.id
        return region.id

    def add(self, region: Region) -> None:
        """Insert a fully-specified region; the id must be the next id."""
        if region.id != len(self._regions):
            raise ValueError(
                f"region id {region.id} out of order; expected {len(self._regions)}"
            )
        if region.name in self._by_name:
            raise ValueError(f"duplicate region name {region.name!r}")
        self._regions.append(region)
        self._by_name[region.name] = region.id

    def id_of(self, name: str) -> int:
        """Return the id of the region with the given name (KeyError if absent)."""
        return self._by_name[name]

    def get(self, name: str) -> Region | None:
        idx = self._by_name.get(name)
        return self._regions[idx] if idx is not None else None

    def names(self) -> list[str]:
        return [r.name for r in self._regions]


class MetricRegistry:
    """Dense id ↔ :class:`Metric` mapping with name lookup."""

    def __init__(self) -> None:
        self._metrics: list[Metric] = []
        self._by_name: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics)

    def __getitem__(self, metric_id: int) -> Metric:
        return self._metrics[metric_id]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def register(
        self,
        name: str,
        unit: str = "#",
        mode: MetricMode = MetricMode.ABSOLUTE,
        description: str = "",
    ) -> int:
        """Register a metric (idempotent by name) and return its id."""
        existing = self._by_name.get(name)
        if existing is not None:
            return existing
        metric = Metric(
            id=len(self._metrics),
            name=name,
            unit=unit,
            mode=mode,
            description=description,
        )
        self._metrics.append(metric)
        self._by_name[name] = metric.id
        return metric.id

    def add(self, metric: Metric) -> None:
        """Insert a fully-specified metric; the id must be the next id."""
        if metric.id != len(self._metrics):
            raise ValueError(
                f"metric id {metric.id} out of order; expected {len(self._metrics)}"
            )
        if metric.name in self._by_name:
            raise ValueError(f"duplicate metric name {metric.name!r}")
        self._metrics.append(metric)
        self._by_name[metric.name] = metric.id

    def id_of(self, name: str) -> int:
        return self._by_name[name]

    def get(self, name: str) -> Metric | None:
        idx = self._by_name.get(name)
        return self._metrics[idx] if idx is not None else None

    def names(self) -> list[str]:
        return [m.name for m in self._metrics]
