"""Top-level trace container.

A :class:`Trace` bundles the shared definition records (regions,
metrics, locations) with one :class:`~repro.trace.events.EventList` per
location.  It corresponds to one measured application run, i.e. one
OTF2 archive in the Score-P world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

from .definitions import Location, MetricRegistry, Paradigm, RegionRegistry
from .events import EventList

__all__ = ["Trace", "ProcessTrace"]


@dataclass(slots=True)
class ProcessTrace:
    """Event stream of a single processing element."""

    location: Location
    events: EventList

    @property
    def rank(self) -> int:
        return self.location.id

    def __len__(self) -> int:
        return len(self.events)


class Trace:
    """A complete program trace of a parallel application run.

    Parameters
    ----------
    regions, metrics:
        Shared definition registries.
    name:
        Human-readable name of the run (shown in visualizations).
    attributes:
        Free-form run metadata (command line, machine, ...).
    """

    def __init__(
        self,
        regions: RegionRegistry | None = None,
        metrics: MetricRegistry | None = None,
        name: str = "trace",
        attributes: Mapping[str, str] | None = None,
    ) -> None:
        self.regions = regions if regions is not None else RegionRegistry()
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.name = name
        self.attributes: dict[str, str] = dict(attributes or {})
        self._processes: dict[int, ProcessTrace] = {}

    # -- population ----------------------------------------------------

    def add_process(self, location: Location, events: EventList) -> None:
        """Attach the event stream for one location."""
        if location.id in self._processes:
            raise ValueError(f"duplicate location id {location.id}")
        self._processes[location.id] = ProcessTrace(location, events)

    # -- access ----------------------------------------------------------

    @property
    def num_processes(self) -> int:
        return len(self._processes)

    @property
    def ranks(self) -> list[int]:
        """Sorted list of location ids present in the trace."""
        return sorted(self._processes)

    def process(self, rank: int) -> ProcessTrace:
        return self._processes[rank]

    def events_of(self, rank: int) -> EventList:
        return self._processes[rank].events

    def processes(self) -> Iterator[ProcessTrace]:
        """Iterate process traces in rank order."""
        for rank in self.ranks:
            yield self._processes[rank]

    def __iter__(self) -> Iterator[ProcessTrace]:
        return self.processes()

    def __len__(self) -> int:
        return len(self._processes)

    @property
    def num_events(self) -> int:
        """Total number of events across all processes."""
        return sum(len(p.events) for p in self._processes.values())

    # -- time extent -----------------------------------------------------

    @property
    def t_min(self) -> float:
        """Earliest event timestamp in the trace (0.0 if empty)."""
        times = [p.events.time[0] for p in self._processes.values() if len(p.events)]
        return float(min(times)) if times else 0.0

    @property
    def t_max(self) -> float:
        """Latest event timestamp in the trace (0.0 if empty)."""
        times = [p.events.time[-1] for p in self._processes.values() if len(p.events)]
        return float(max(times)) if times else 0.0

    @property
    def duration(self) -> float:
        return self.t_max - self.t_min

    # -- convenience queries ----------------------------------------------

    def region_ids_matching(self, predicate) -> np.ndarray:
        """Return the ids of all regions for which ``predicate(region)``."""
        return np.asarray(
            [r.id for r in self.regions if predicate(r)], dtype=np.int32
        )

    def mpi_region_ids(self) -> np.ndarray:
        """Ids of all regions in the MPI paradigm."""
        return self.region_ids_matching(lambda r: r.paradigm == Paradigm.MPI)

    def summary(self) -> dict[str, object]:
        """Small human-oriented summary of the trace contents."""
        return {
            "name": self.name,
            "processes": self.num_processes,
            "events": self.num_events,
            "regions": len(self.regions),
            "metrics": len(self.metrics),
            "t_min": self.t_min,
            "t_max": self.t_max,
            "duration": self.duration,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(name={self.name!r}, processes={self.num_processes}, "
            f"events={self.num_events})"
        )
