"""Compact binary trace format (``.rpt``), versions 1 and 2.

Version 1 layout::

    magic       b"RPTR"
    version     u16 little-endian (= 1)
    header_len  u32 little-endian
    header      UTF-8 JSON (definitions + per-location column manifest)
    blobs       concatenated zlib-compressed column arrays

Version 2 keeps the same frame but adds a per-column ``codec`` field
(``"raw"`` or ``"zlib"``) to the manifest and aligns the payload::

    magic       b"RPTR"
    version     u16 little-endian (= 2)
    header_len  u32 little-endian
    header      UTF-8 JSON (adds "align": 64 and per-column "codec")
    padding     zero bytes up to the next 64-byte file offset
    blobs       raw blobs at 64-byte-aligned offsets; zlib blobs packed

``raw`` blobs are the little-endian array bytes verbatim, so a reader
can serve them as zero-copy :func:`numpy.frombuffer` views straight out
of an ``mmap`` — no read, no decompress, no copy.  The 64-byte
alignment (one cache line, and a multiple of every column itemsize)
guarantees those views are aligned for any vectorised kernel.  The
payload start is *not* stored: both sides derive it as
``align64(10 + header_len)``, keeping the header free of self-sizing
circularity.  Offsets in the manifest are relative to the payload
start on both versions.

All columns of one location stay adjacent on disk in canonical column
order, so projecting a column subset still reads a contiguous-ish
region and sharded readers can map one rank without touching others.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import zlib

import numpy as np

from .definitions import (
    Location,
    Metric,
    MetricMode,
    MetricRegistry,
    Paradigm,
    Region,
    RegionRegistry,
    RegionRole,
)
from .events import EventList
from .trace import Trace

__all__ = [
    "write_binary",
    "write_binary_arrays",
    "read_binary",
    "BIN_VERSION",
    "BIN_ALIGN",
    "CODECS",
]

MAGIC = b"RPTR"
#: Newest format version the writer emits (and the writer default).
BIN_VERSION = 2
#: Format versions the readers accept.
SUPPORTED_VERSIONS = (1, 2)
#: Alignment (bytes) of the payload start and of raw blobs in v2 files.
BIN_ALIGN = 64
#: Per-column codecs understood by the v2 reader.
CODECS = ("raw", "zlib")
#: ``codec="auto"`` keeps zlib only when it shrinks a column below this
#: fraction of its raw size; otherwise the column is stored raw so
#: readers get the zero-copy mmap path.
_AUTO_ZLIB_RATIO = 0.75
_COLUMNS = ("time", "kind", "ref", "partner", "size", "tag", "value")


def _align_up(offset: int, align: int = BIN_ALIGN) -> int:
    return (offset + align - 1) // align * align


def mmap_disabled() -> bool:
    """True when the ``REPRO_NO_MMAP`` environment switch is active."""
    return os.environ.get("REPRO_NO_MMAP", "").strip() not in ("", "0")


class BinaryFormatError(ValueError):
    """Raised when a binary trace file is malformed."""


def parse_dtype(spec, where: str, error: type[ValueError]):
    """Resolve a manifest dtype string, containing numpy's failures.

    ``np.dtype`` on attacker-controlled strings can raise surprising
    exception types (the comma-string parser even raises SyntaxError);
    readers must surface all of them as their own format error.
    """
    try:
        return np.dtype(spec)
    except Exception as err:
        raise error(f"{where}: invalid dtype {spec!r}: {err}") from err


def _column_codec(col: str, codec) -> str:
    """Resolve the requested codec policy for one column."""
    if codec is None:
        codec = "auto"
    if isinstance(codec, dict):
        codec = codec.get(col, "auto")
    if codec not in ("auto", "raw", "zlib"):
        raise ValueError(f"unknown codec {codec!r} for column {col!r}")
    return codec


def write_binary(
    trace: Trace,
    path: str | os.PathLike,
    compresslevel: int = 6,
    *,
    version: int = BIN_VERSION,
    codec=None,
) -> None:
    """Serialise ``trace`` to ``path`` in the binary ``.rpt`` format.

    Parameters
    ----------
    version:
        1 for the legacy all-zlib format, 2 (default) for the
        codec-per-column, 64-byte-aligned format.
    codec:
        v2 only — ``"raw"``, ``"zlib"``, ``"auto"`` (the default:
        zlib is kept only when it beats raw by a clear margin), or a
        ``{column: codec}`` dict for per-column control.
    """
    write_binary_arrays(
        path,
        name=trace.name,
        attributes=trace.attributes,
        regions=trace.regions,
        metrics=trace.metrics,
        locations=(
            (p.location, len(p.events), {c: getattr(p.events, c) for c in _COLUMNS})
            for p in trace.processes()
        ),
        compresslevel=compresslevel,
        version=version,
        codec=codec,
    )


def write_binary_arrays(
    path: str | os.PathLike,
    *,
    name: str,
    attributes: dict,
    regions,
    metrics,
    locations,
    compresslevel: int = 6,
    version: int = BIN_VERSION,
    codec=None,
) -> int:
    """Serialise raw column arrays to ``path``; returns total file bytes.

    ``locations`` yields ``(Location, n, {column: ndarray})`` triples in
    the order they should appear on disk.  This is the array-level core
    of :func:`write_binary` — sinks that already hold column buffers
    (e.g. the simulator's ``ColumnarTraceSink``) call it directly and
    skip ``Trace``/``EventList`` construction entirely; the bytes
    produced are identical either way.
    """
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(f"unsupported binary version {version}")
    if version == 1 and codec not in (None, "zlib", "auto"):
        raise ValueError("per-column codecs require version 2")

    blobs: list[bytes] = []
    pads: list[int] = []
    offset = 0
    location_manifest = []
    for location, n, cols in locations:
        columns = {}
        for col in _COLUMNS:
            arr = cols[col]
            raw = arr.tobytes()
            spec = {"dtype": arr.dtype.str}
            if version == 1:
                blob, chosen = zlib.compress(raw, compresslevel), "zlib"
            else:
                want = _column_codec(col, codec)
                if want == "raw":
                    blob, chosen = raw, "raw"
                else:
                    z = zlib.compress(raw, compresslevel)
                    if want == "zlib" or len(z) <= len(raw) * _AUTO_ZLIB_RATIO:
                        blob, chosen = z, "zlib"
                    else:
                        blob, chosen = raw, "raw"
                spec["codec"] = chosen
            pad = 0
            if version == 2 and chosen == "raw":
                pad = _align_up(offset) - offset
            spec["offset"] = offset + pad
            spec["length"] = len(blob)
            columns[col] = spec
            pads.append(pad)
            blobs.append(blob)
            offset += pad + len(blob)
        location_manifest.append(
            {
                "id": location.id,
                "name": location.name,
                "group": location.group,
                "n": int(n),
                "columns": columns,
            }
        )

    header = {
        "name": name,
        "attributes": attributes,
        "regions": [
            {
                "id": r.id,
                "name": r.name,
                "paradigm": int(r.paradigm),
                "role": int(r.role),
                "source_file": r.source_file,
                "line": r.line,
            }
            for r in regions
        ],
        "metrics": [
            {
                "id": m.id,
                "name": m.name,
                "unit": m.unit,
                "mode": int(m.mode),
                "description": m.description,
            }
            for m in metrics
        ],
        "locations": location_manifest,
    }
    if version == 2:
        header["align"] = BIN_ALIGN
    header_bytes = json.dumps(header).encode("utf-8")

    with open(path, "wb") as fp:
        fp.write(MAGIC)
        fp.write(struct.pack("<HI", version, len(header_bytes)))
        fp.write(header_bytes)
        if version == 2:
            fp.write(b"\0" * (payload_start(len(header_bytes), 2) - 10 - len(header_bytes)))
        for pad, blob in zip(pads, blobs):
            if pad:
                fp.write(b"\0" * pad)
            fp.write(blob)
        return fp.tell()


def payload_start(header_len: int, version: int) -> int:
    """Absolute file offset of the blob payload.

    Derived, never stored: v1 payload begins right after the header;
    v2 pads the 10-byte frame + header up to the next 64-byte boundary
    so that raw-blob offsets stay aligned in absolute file terms too.
    """
    base = 10 + header_len
    return base if version == 1 else _align_up(base)


def read_frame(fp) -> tuple[int, int, dict]:
    """Read and validate the fixed frame; return (version, header_len, header)."""
    magic = fp.read(4)
    if magic != MAGIC:
        raise BinaryFormatError(f"bad magic {magic!r}; not an .rpt trace")
    head = fp.read(6)
    if len(head) != 6:
        raise BinaryFormatError("truncated .rpt header")
    version, header_len = struct.unpack("<HI", head)
    if version not in SUPPORTED_VERSIONS:
        raise BinaryFormatError(f"unsupported binary version {version}")
    header_bytes = fp.read(header_len)
    if len(header_bytes) != header_len:
        raise BinaryFormatError("truncated .rpt header")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise BinaryFormatError(f"corrupt .rpt header: {err}") from err
    return version, header_len, header


def decode_column(buf, base: int, spec: dict, n: int, where: str) -> np.ndarray:
    """Materialise one column from ``buf`` (bytes or mmap).

    ``raw`` columns come back as zero-copy :func:`numpy.frombuffer`
    views into ``buf``; ``zlib`` columns are decompressed.  ``base`` is
    the absolute payload start; offsets in ``spec`` are payload-relative.
    """
    codec = spec.get("codec", "zlib")
    if codec not in CODECS:
        raise BinaryFormatError(f"{where}: unknown codec {codec!r}")
    dtype = parse_dtype(spec["dtype"], where, BinaryFormatError)
    start = base + spec["offset"]
    length = spec["length"]
    if codec == "raw":
        if length != n * dtype.itemsize:
            raise BinaryFormatError(
                f"{where}: raw blob is {length} bytes, "
                f"expected {n * dtype.itemsize}"
            )
        try:
            return np.frombuffer(buf, dtype=dtype, count=n, offset=start)
        except ValueError as err:
            raise BinaryFormatError(f"{where}: {err}") from err
    raw = zlib.decompress(bytes(memoryview(buf)[start:start + length]))
    arr = np.frombuffer(raw, dtype=dtype)
    if len(arr) != n:
        raise BinaryFormatError(
            f"{where}: expected {n} entries, found {len(arr)}"
        )
    return arr


def _read_buffer(fp, version: int):
    """Whole-file buffer for column decoding: an mmap when available
    (v2 raw columns then become zero-copy views), plain bytes otherwise
    (``REPRO_NO_MMAP=1``, empty files, exotic filesystems)."""
    if version == 2 and not mmap_disabled():
        try:
            return mmap.mmap(fp.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            pass
    fp.seek(0)
    return fp.read()


def read_binary(path: str | os.PathLike) -> Trace:
    """Read a trace from ``path`` in the binary ``.rpt`` format (v1 or v2)."""
    with open(path, "rb") as fp:
        version, header_len, header = read_frame(fp)
        buf = _read_buffer(fp, version)
    base = payload_start(header_len, version)

    regions = RegionRegistry()
    for rec in header["regions"]:
        regions.add(
            Region(
                id=rec["id"],
                name=rec["name"],
                paradigm=Paradigm(rec["paradigm"]),
                role=RegionRole(rec["role"]),
                source_file=rec.get("source_file", ""),
                line=rec.get("line", 0),
            )
        )
    metrics = MetricRegistry()
    for rec in header["metrics"]:
        metrics.add(
            Metric(
                id=rec["id"],
                name=rec["name"],
                unit=rec.get("unit", "#"),
                mode=MetricMode(rec.get("mode", 0)),
                description=rec.get("description", ""),
            )
        )

    trace = Trace(
        regions=regions,
        metrics=metrics,
        name=header.get("name", "trace"),
        attributes=header.get("attributes", {}),
    )
    for loc_rec in header["locations"]:
        n = loc_rec["n"]
        arrays = []
        for col in _COLUMNS:
            arrays.append(
                decode_column(
                    buf,
                    base,
                    loc_rec["columns"][col],
                    n,
                    f"location {loc_rec['id']} column {col}",
                )
            )
        location = Location(
            id=loc_rec["id"], name=loc_rec["name"], group=loc_rec.get("group", "MPI")
        )
        trace.add_process(location, EventList(*arrays))
    return trace
