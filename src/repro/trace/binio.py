"""Compact binary trace format (``.rpt``).

Layout::

    magic       b"RPTR"
    version     u16 little-endian
    header_len  u32 little-endian
    header      UTF-8 JSON (definitions + per-location column manifest)
    blobs       concatenated zlib-compressed column arrays

The JSON header stores, for every location and column, the offset and
compressed length of its blob plus the dtype, so columns can be read
back with a single :func:`numpy.frombuffer` each.  Events never pass
through Python objects on either path, keeping I/O at NumPy speed.
"""

from __future__ import annotations

import json
import os
import struct
import zlib

import numpy as np

from .definitions import (
    Location,
    Metric,
    MetricMode,
    MetricRegistry,
    Paradigm,
    Region,
    RegionRegistry,
    RegionRole,
)
from .events import EventList
from .trace import Trace

__all__ = ["write_binary", "read_binary"]

MAGIC = b"RPTR"
BIN_VERSION = 1
_COLUMNS = ("time", "kind", "ref", "partner", "size", "tag", "value")


class BinaryFormatError(ValueError):
    """Raised when a binary trace file is malformed."""


def parse_dtype(spec, where: str, error: type[ValueError]):
    """Resolve a manifest dtype string, containing numpy's failures.

    ``np.dtype`` on attacker-controlled strings can raise surprising
    exception types (the comma-string parser even raises SyntaxError);
    readers must surface all of them as their own format error.
    """
    try:
        return np.dtype(spec)
    except Exception as err:
        raise error(f"{where}: invalid dtype {spec!r}: {err}") from err


def write_binary(trace: Trace, path: str | os.PathLike, compresslevel: int = 6) -> None:
    """Serialise ``trace`` to ``path`` in the binary ``.rpt`` format."""
    blobs: list[bytes] = []
    offset = 0
    location_manifest = []
    for proc in trace.processes():
        ev = proc.events
        columns = {}
        for col in _COLUMNS:
            arr = getattr(ev, col)
            blob = zlib.compress(arr.tobytes(), compresslevel)
            columns[col] = {
                "offset": offset,
                "length": len(blob),
                "dtype": arr.dtype.str,
            }
            blobs.append(blob)
            offset += len(blob)
        location_manifest.append(
            {
                "id": proc.location.id,
                "name": proc.location.name,
                "group": proc.location.group,
                "n": len(ev),
                "columns": columns,
            }
        )

    header = {
        "name": trace.name,
        "attributes": trace.attributes,
        "regions": [
            {
                "id": r.id,
                "name": r.name,
                "paradigm": int(r.paradigm),
                "role": int(r.role),
                "source_file": r.source_file,
                "line": r.line,
            }
            for r in trace.regions
        ],
        "metrics": [
            {
                "id": m.id,
                "name": m.name,
                "unit": m.unit,
                "mode": int(m.mode),
                "description": m.description,
            }
            for m in trace.metrics
        ],
        "locations": location_manifest,
    }
    header_bytes = json.dumps(header).encode("utf-8")

    with open(path, "wb") as fp:
        fp.write(MAGIC)
        fp.write(struct.pack("<HI", BIN_VERSION, len(header_bytes)))
        fp.write(header_bytes)
        for blob in blobs:
            fp.write(blob)


def read_binary(path: str | os.PathLike) -> Trace:
    """Read a trace from ``path`` in the binary ``.rpt`` format."""
    with open(path, "rb") as fp:
        magic = fp.read(4)
        if magic != MAGIC:
            raise BinaryFormatError(f"bad magic {magic!r}; not an .rpt trace")
        version, header_len = struct.unpack("<HI", fp.read(6))
        if version != BIN_VERSION:
            raise BinaryFormatError(f"unsupported binary version {version}")
        header = json.loads(fp.read(header_len).decode("utf-8"))
        payload = fp.read()

    regions = RegionRegistry()
    for rec in header["regions"]:
        regions.add(
            Region(
                id=rec["id"],
                name=rec["name"],
                paradigm=Paradigm(rec["paradigm"]),
                role=RegionRole(rec["role"]),
                source_file=rec.get("source_file", ""),
                line=rec.get("line", 0),
            )
        )
    metrics = MetricRegistry()
    for rec in header["metrics"]:
        metrics.add(
            Metric(
                id=rec["id"],
                name=rec["name"],
                unit=rec.get("unit", "#"),
                mode=MetricMode(rec.get("mode", 0)),
                description=rec.get("description", ""),
            )
        )

    trace = Trace(
        regions=regions,
        metrics=metrics,
        name=header.get("name", "trace"),
        attributes=header.get("attributes", {}),
    )
    for loc_rec in header["locations"]:
        n = loc_rec["n"]
        arrays = []
        for col in _COLUMNS:
            spec = loc_rec["columns"][col]
            start = spec["offset"]
            stop = start + spec["length"]
            raw = zlib.decompress(payload[start:stop])
            arr = np.frombuffer(
                raw,
                dtype=parse_dtype(
                    spec["dtype"],
                    f"location {loc_rec['id']} column {col}",
                    BinaryFormatError,
                ),
            )
            if len(arr) != n:
                raise BinaryFormatError(
                    f"location {loc_rec['id']} column {col}: "
                    f"expected {n} entries, found {len(arr)}"
                )
            arrays.append(arr)
        location = Location(
            id=loc_rec["id"], name=loc_rec["name"], group=loc_rec.get("group", "MPI")
        )
        trace.add_process(location, EventList(*arrays))
    return trace
