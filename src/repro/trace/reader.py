"""Trace deserialisation (text format), format dispatch and lazy
rank-addressable access.

Two read paths are provided:

* the eager path (:func:`read_trace`, :func:`read_jsonl`,
  :func:`repro.trace.binio.read_binary`) materialises the complete
  trace in one go;
* the chunked path (:class:`TraceIndex`, :func:`read_trace_ranks`)
  parses only the definition records up front and loads event columns
  per rank on demand.  This is what the sharded analysis engine
  (:mod:`repro.core.shard`) uses so each worker process touches only
  the bytes of its own rank group.

Both paths construct bit-identical :class:`~repro.trace.events.EventList`
columns for the ranks they load (the chunked path decompresses or
parses exactly the same bytes), so analyses over lazily loaded ranks
match the eager pipeline exactly.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import re
import zlib
from typing import IO, Iterable, Sequence

import numpy as np

from .. import obs
from .binio import (
    CODECS,
    mmap_disabled,
    parse_dtype,
    payload_start,
    read_frame,
)
from .definitions import (
    Location,
    Metric,
    MetricMode,
    MetricRegistry,
    Paradigm,
    Region,
    RegionRegistry,
    RegionRole,
)
from .events import _DTYPES as _CANONICAL_DTYPES
from .events import EventList
from .fingerprint import _DIGEST_SIZE, fingerprint_events
from .trace import Trace
from .writer import FORMAT_VERSION

__all__ = ["read_jsonl", "load_jsonl", "read_trace", "read_trace_ranks", "TraceIndex"]

#: Telemetry: bytes served zero-copy from the mmap vs. inflated through
#: zlib, and events materialised by the chunked loader.
_C_MMAPPED = obs.counter("io.bytes_mmapped")
_C_DECOMPRESSED = obs.counter("io.bytes_decompressed")
_C_EVENTS_LOADED = obs.counter("io.events_loaded")


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or has the wrong version."""


def _check_header(header) -> None:
    if not isinstance(header, dict) or header.get("record") != "header":
        raise TraceFormatError("first record must be the header")
    if header.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace format version {header.get('version')!r}"
        )


def _add_definition_record(
    record: dict,
    regions: RegionRegistry,
    metrics: MetricRegistry,
    locations: dict[int, Location],
) -> bool:
    """Apply one region/metric/location record; False if not one."""
    kind = record.get("record")
    if kind == "region":
        regions.add(
            Region(
                id=record["id"],
                name=record["name"],
                paradigm=Paradigm(record["paradigm"]),
                role=RegionRole(record["role"]),
                source_file=record.get("source_file", ""),
                line=record.get("line", 0),
            )
        )
    elif kind == "metric":
        metrics.add(
            Metric(
                id=record["id"],
                name=record["name"],
                unit=record.get("unit", "#"),
                mode=MetricMode(record.get("mode", 0)),
                description=record.get("description", ""),
            )
        )
    elif kind == "location":
        loc = Location(
            id=record["id"],
            name=record["name"],
            group=record.get("group", "MPI"),
        )
        locations[loc.id] = loc
    else:
        return False
    return True


def _events_from_record(record: dict) -> EventList:
    events = EventList(
        np.asarray(record["time"], dtype=np.float64),
        np.asarray(record["kind"], dtype=np.uint8),
        np.asarray(record["ref"], dtype=np.int32),
        np.asarray(record["partner"], dtype=np.int32),
        np.asarray(record["size"], dtype=np.int64),
        np.asarray(record["tag"], dtype=np.int32),
        np.asarray(record["value"], dtype=np.float64),
    )
    if len(events) != record.get("n", len(events)):
        raise TraceFormatError(
            f"location {record.get('location')}: event count mismatch"
        )
    return events


def load_jsonl(fp: IO[str]) -> Trace:
    """Read a trace from an open text file in JSONL format."""
    header_line = fp.readline()
    if not header_line:
        raise TraceFormatError("empty trace file")
    header = json.loads(header_line)
    _check_header(header)

    regions = RegionRegistry()
    metrics = MetricRegistry()
    locations: dict[int, Location] = {}
    event_records: list[dict] = []

    for line in fp:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if not isinstance(record, dict):
            raise TraceFormatError(f"non-object record: {line[:40]!r}")
        if _add_definition_record(record, regions, metrics, locations):
            continue
        if record.get("record") == "events":
            event_records.append(record)
        else:
            raise TraceFormatError(f"unknown record type {record.get('record')!r}")

    trace = Trace(
        regions=regions,
        metrics=metrics,
        name=header.get("name", "trace"),
        attributes=header.get("attributes", {}),
    )
    for record in event_records:
        loc_id = record["location"]
        location = locations.get(loc_id)
        if location is None:
            raise TraceFormatError(f"events for undefined location {loc_id}")
        trace.add_process(location, _events_from_record(record))
    # Locations defined but without an events record get empty streams.
    for loc_id, location in locations.items():
        if loc_id not in trace.ranks:
            trace.add_process(location, EventList.empty())
    return trace


def read_jsonl(path: str | os.PathLike) -> Trace:
    """Read a trace from ``path`` in JSONL format."""
    with open(path, "r", encoding="utf-8") as fp:
        return load_jsonl(fp)


def read_trace(path: str | os.PathLike) -> Trace:
    """Read a trace, dispatching on file extension (.jsonl or .rpt)."""
    path_str = str(path)
    with obs.span("io.read"):
        if path_str.endswith(".jsonl"):
            return read_jsonl(path)
        if path_str.endswith(".rpt"):
            from .binio import read_binary

            return read_binary(path)
    raise TraceFormatError(
        f"cannot infer trace format from extension: {path_str!r}"
    )


# ---------------------------------------------------------------------------
# Chunked / column-lazy access
# ---------------------------------------------------------------------------

#: Fast path for extracting the location id and event count from an
#: events line without parsing its (potentially huge) column arrays.
#: Matches the key order :mod:`repro.trace.writer` emits; any other
#: layout falls back to a full ``json.loads``.
_EVENTS_PREFIX_RE = re.compile(
    r'^\s*\{"record":\s*"events",\s*"location":\s*(-?\d+),\s*"n":\s*(\d+)'
)

_BIN_COLUMNS = ("time", "kind", "ref", "partner", "size", "tag", "value")


class _RankChunk:
    """Byte extent of one rank's events in the underlying file."""

    __slots__ = ("rank", "n_events", "offset", "length", "columns")

    def __init__(self, rank, n_events, offset, length, columns=None):
        self.rank = rank
        self.n_events = n_events
        self.offset = offset  # absolute file offset of the chunk
        self.length = length
        self.columns = columns  # binary only: per-column manifest


class TraceIndex:
    """Lazy, rank-addressable view of a trace file.

    Parsing the index reads (and strictly validates) only the
    definition records and the per-rank chunk table; event columns are
    read by :meth:`load` for exactly the requested ranks.  Malformed
    chunk tables — chunks that run past the end of the file, overlap
    each other, or duplicate a rank — raise :class:`TraceFormatError`
    at index-construction time rather than corrupting a later read.

    Examples
    --------
    ::

        index = TraceIndex("run.rpt")
        index.ranks            # all location ids, sorted
        part = index.load([0, 1, 2])   # Trace with only these ranks
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = str(path)
        self.regions = RegionRegistry()
        self.metrics = MetricRegistry()
        self.locations: dict[int, Location] = {}
        self.name = "trace"
        self.attributes: dict[str, str] = {}
        self._chunks: dict[int, _RankChunk] = {}
        self.version: int | None = None
        self._buf: "mmap.mmap | None | bool" = None
        if self.path.endswith(".rpt"):
            self.format = "rpt"
            self._index_binary()
        elif self.path.endswith(".jsonl"):
            self.format = "jsonl"
            self._index_jsonl()
        else:
            raise TraceFormatError(
                f"cannot infer trace format from extension: {self.path!r}"
            )

    # -- indexing ------------------------------------------------------

    def _index_binary(self) -> None:
        from .binio import BinaryFormatError

        file_size = os.path.getsize(self.path)
        with open(self.path, "rb") as fp:
            try:
                version, header_len, header = read_frame(fp)
            except BinaryFormatError as err:
                raise TraceFormatError(str(err)) from err
        self.version = version
        base = payload_start(header_len, version)
        payload_size = max(0, file_size - base)

        self.name = header.get("name", "trace")
        self.attributes = header.get("attributes", {})
        for rec in header.get("regions", ()):
            _add_definition_record({**rec, "record": "region"},
                                   self.regions, self.metrics, self.locations)
        for rec in header.get("metrics", ()):
            _add_definition_record({**rec, "record": "metric"},
                                   self.regions, self.metrics, self.locations)

        intervals: list[tuple[int, int, int, str]] = []
        for loc_rec in header.get("locations", ()):
            loc = Location(
                id=loc_rec["id"],
                name=loc_rec["name"],
                group=loc_rec.get("group", "MPI"),
            )
            if loc.id in self.locations or loc.id in self._chunks:
                raise TraceFormatError(
                    f"duplicate chunk for location {loc.id}"
                )
            self.locations[loc.id] = loc
            columns = loc_rec["columns"]
            lo, hi = None, None
            for col in _BIN_COLUMNS:
                spec = columns.get(col)
                if spec is None:
                    raise TraceFormatError(
                        f"location {loc.id}: missing column {col!r}"
                    )
                dtype = parse_dtype(
                    spec.get("dtype"),
                    f"location {loc.id} column {col}",
                    TraceFormatError,
                )
                codec = spec.get("codec", "zlib")
                if codec not in CODECS:
                    raise TraceFormatError(
                        f"location {loc.id} column {col}: "
                        f"unknown codec {codec!r}"
                    )
                off, length = spec["offset"], spec["length"]
                if (
                    not isinstance(off, int)
                    or not isinstance(length, int)
                    or off < 0
                    or length < 0
                ):
                    raise TraceFormatError(
                        f"location {loc.id} column {col}: invalid chunk "
                        f"extent (offset={off!r}, length={length!r})"
                    )
                if off + length > payload_size:
                    raise TraceFormatError(
                        f"location {loc.id} column {col}: chunk "
                        f"[{off}, {off + length}) runs past the end of the "
                        f"payload ({payload_size} bytes); file is truncated"
                    )
                if codec == "raw":
                    n = loc_rec["n"]
                    if not isinstance(n, int) or length != n * dtype.itemsize:
                        raise TraceFormatError(
                            f"location {loc.id} column {col}: raw blob is "
                            f"{length} bytes, inconsistent with n={n!r}"
                        )
                if length:
                    intervals.append((off, off + length, loc.id, col))
                lo = off if lo is None else min(lo, off)
                hi = off + length if hi is None else max(hi, off + length)
            self._chunks[loc.id] = _RankChunk(
                rank=loc.id,
                n_events=loc_rec["n"],
                offset=base + (lo or 0),
                length=(hi or 0) - (lo or 0),
                columns={
                    col: (
                        base + columns[col]["offset"],
                        columns[col]["length"],
                        columns[col]["dtype"],
                        columns[col].get("codec", "zlib"),
                    )
                    for col in _BIN_COLUMNS
                },
            )
        intervals.sort()
        for prev, cur in zip(intervals, intervals[1:]):
            if cur[0] < prev[1]:
                raise TraceFormatError(
                    f"overlapping chunks: location {prev[2]} column "
                    f"{prev[3]} [{prev[0]}, {prev[1]}) overlaps location "
                    f"{cur[2]} column {cur[3]} [{cur[0]}, {cur[1]})"
                )

    def _index_jsonl(self) -> None:
        with open(self.path, "rb") as fp:
            header_line = fp.readline()
            if not header_line:
                raise TraceFormatError("empty trace file")
            try:
                header = json.loads(header_line)
            except (UnicodeDecodeError, json.JSONDecodeError) as err:
                raise TraceFormatError(f"corrupt header line: {err}") from err
            _check_header(header)
            self.name = header.get("name", "trace")
            self.attributes = header.get("attributes", {})

            while True:
                offset = fp.tell()
                raw = fp.readline()
                if not raw:
                    break
                line = raw.strip()
                if not line:
                    continue
                match = _EVENTS_PREFIX_RE.match(line.decode("utf-8", "replace"))
                if match:
                    loc_id, n = int(match.group(1)), int(match.group(2))
                else:
                    try:
                        record = json.loads(line)
                    except (UnicodeDecodeError, json.JSONDecodeError) as err:
                        raise TraceFormatError(
                            f"corrupt record at byte {offset}: {err}"
                        ) from err
                    if not isinstance(record, dict):
                        raise TraceFormatError(
                            f"non-object record: {line[:40]!r}"
                        )
                    if _add_definition_record(
                        record, self.regions, self.metrics, self.locations
                    ):
                        continue
                    if record.get("record") != "events":
                        raise TraceFormatError(
                            f"unknown record type {record.get('record')!r}"
                        )
                    loc_id = record["location"]
                    n = record.get("n", len(record.get("time", ())))
                if loc_id in self._chunks:
                    raise TraceFormatError(
                        f"overlapping chunks: duplicate events record for "
                        f"location {loc_id}"
                    )
                self._chunks[loc_id] = _RankChunk(
                    rank=loc_id, n_events=n, offset=offset, length=len(raw)
                )
        for loc_id in self._chunks:
            if loc_id not in self.locations:
                raise TraceFormatError(
                    f"events for undefined location {loc_id}"
                )

    # -- queries -------------------------------------------------------

    @property
    def ranks(self) -> list[int]:
        """Sorted list of location ids defined in the file."""
        return sorted(self.locations)

    @property
    def num_events(self) -> int:
        return sum(c.n_events for c in self._chunks.values())

    def num_events_of(self, rank: int) -> int:
        chunk = self._chunks.get(rank)
        return chunk.n_events if chunk is not None else 0

    def event_counts(self) -> dict[int, int]:
        """``rank -> event count`` for every defined location."""
        return {rank: self.num_events_of(rank) for rank in self.ranks}

    def _new_trace(self) -> Trace:
        return Trace(
            regions=self.regions,
            metrics=self.metrics,
            name=self.name,
            attributes=self.attributes,
        )

    def definitions_trace(self) -> Trace:
        """Trace with all locations but empty event streams.

        Enough for region/metric lookups, classifier masks and the
        ``num_processes`` used by the dominant-function criterion.
        """
        trace = self._new_trace()
        for rank in self.ranks:
            trace.add_process(self.locations[rank], EventList.empty())
        return trace

    # -- lifetime ------------------------------------------------------

    def close(self) -> None:
        """Release the shared mmap backing zero-copy column views.

        The map normally lives until the last view into it is
        garbage-collected, which on Windows locks the trace file
        against deletion or in-place replacement for the whole time.
        ``close()`` drops the map eagerly; it raises :class:`BufferError`
        if zero-copy views served by :meth:`load` are still alive (the
        index itself stays usable — a later load simply re-maps).
        """
        buf, self._buf = self._buf, None
        if buf:
            try:
                buf.close()
            except BufferError:
                self._buf = buf
                raise

    def __enter__(self) -> "TraceIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- loading -------------------------------------------------------

    def _buffer(self) -> "mmap.mmap | None":
        """Shared read-only mmap of the file (binary format only).

        Created lazily on the first load; ``None`` when mmap is
        unavailable or disabled via ``REPRO_NO_MMAP=1``.  Zero-copy
        column views keep the map alive through their ``.base``
        reference; use :meth:`close` (or the context-manager form) to
        drop it eagerly once no views are outstanding, otherwise the
        OS reclaims it when the last view is garbage-collected.
        """
        if self._buf is None:
            self._buf = False
            if self.format == "rpt" and not mmap_disabled():
                try:
                    with open(self.path, "rb") as fp:
                        self._buf = mmap.mmap(
                            fp.fileno(), 0, access=mmap.ACCESS_READ
                        )
                except (ValueError, OSError):
                    self._buf = False
        return self._buf or None

    def _read_column_blob(self, fp, offset: int, length: int, where: str):
        """Raw on-disk bytes of one column blob (mmap view or read)."""
        buf = self._buffer()
        if buf is not None:
            blob = memoryview(buf)[offset:offset + length]
        else:
            fp.seek(offset)
            blob = fp.read(length)
        if len(blob) != length:
            raise TraceFormatError(f"{where}: chunk is truncated")
        return blob

    def _load_events_binary(
        self, fp, chunk: _RankChunk, columns: Sequence[str] | None = None
    ) -> EventList:
        buf = self._buffer()
        arrays: dict[str, np.ndarray] = {}
        for col in (_BIN_COLUMNS if columns is None else columns):
            offset, length, dtype_str, codec = chunk.columns[col]
            where = f"location {chunk.rank} column {col}"
            dtype = parse_dtype(dtype_str, where, TraceFormatError)
            if codec == "raw":
                # Blob length == n * itemsize was validated at index
                # time, so a view over the mmap is safe and zero-copy.
                if buf is not None:
                    try:
                        arr = np.frombuffer(
                            buf, dtype=dtype, count=chunk.n_events,
                            offset=offset,
                        )
                    except ValueError as err:
                        raise TraceFormatError(f"{where}: {err}") from err
                    _C_MMAPPED.add(length)
                else:
                    arr = np.frombuffer(
                        self._read_column_blob(fp, offset, length, where),
                        dtype=dtype,
                    )
            else:
                blob = self._read_column_blob(fp, offset, length, where)
                try:
                    data = zlib.decompress(blob)
                except zlib.error as err:
                    raise TraceFormatError(f"{where}: {err}") from err
                arr = np.frombuffer(data, dtype=dtype)
                _C_DECOMPRESSED.add(len(data))
            if len(arr) != chunk.n_events:
                raise TraceFormatError(
                    f"{where}: expected "
                    f"{chunk.n_events} entries, found {len(arr)}"
                )
            arrays[col] = arr
        if columns is None:
            return EventList(*(arrays[col] for col in _BIN_COLUMNS))
        return EventList.projected(arrays)

    def _load_events_jsonl(
        self, fp, chunk: _RankChunk, columns: Sequence[str] | None = None
    ) -> EventList:
        fp.seek(chunk.offset)
        raw = fp.read(chunk.length)
        try:
            record = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise TraceFormatError(
                f"location {chunk.rank}: corrupt events record: {err}"
            ) from err
        if record.get("location") != chunk.rank:
            raise TraceFormatError(
                f"location {chunk.rank}: chunk table out of sync"
            )
        if columns is None:
            return _events_from_record(record)
        try:
            arrays = {
                col: np.asarray(record[col], dtype=_CANONICAL_DTYPES[col])
                for col in columns
            }
        except KeyError as err:
            raise TraceFormatError(
                f"location {chunk.rank}: events record is missing "
                f"column {err.args[0]!r}"
            ) from err
        events = EventList.projected(arrays)
        if len(events) != record.get("n", len(events)):
            raise TraceFormatError(
                f"location {chunk.rank}: event count mismatch"
            )
        return events

    def _project_columns(
        self, columns: Sequence[str] | None
    ) -> tuple[str, ...] | None:
        if columns is None:
            return None
        unknown = sorted(set(columns) - set(_BIN_COLUMNS))
        if unknown:
            raise ValueError(
                f"unknown event columns: {', '.join(unknown)}"
            )
        keep = set(columns) | {"time"}
        return tuple(col for col in _BIN_COLUMNS if col in keep)

    def supports_slices(
        self, rank: int, columns: Sequence[str] | None = None
    ) -> bool:
        """True when ``load_events`` can read sub-ranges of ``rank``
        as exact byte ranges (binary format, ``raw`` column codec)."""
        chunk = self._chunks.get(rank)
        if chunk is None or self.format != "rpt":
            return False
        project = self._project_columns(columns) or _BIN_COLUMNS
        return all(chunk.columns[col][3] == "raw" for col in project)

    def load_events(
        self,
        rank: int,
        columns: Sequence[str] | None = None,
        start: int = 0,
        stop: int | None = None,
    ) -> EventList:
        """Events ``[start, stop)`` of one rank.

        For ``raw`` binary columns the slice is served from its exact
        byte range (mmap view or a bounded read), so memory is bounded
        by the slice, not the rank.  Other layouts
        (zlib columns, ``.jsonl`` records) cannot be partially
        decoded; asking for a strict sub-range of one raises
        :class:`ValueError` — check :meth:`supports_slices` first, or
        load the whole rank and slice the returned views.
        """
        chunk = self._chunks.get(rank)
        n = chunk.n_events if chunk is not None else 0
        stop = n if stop is None else min(stop, n)
        start = max(int(start), 0)
        if start == 0 and stop >= n:
            return self.load([rank], columns=columns).events_of(rank)
        if not self.supports_slices(rank, columns):
            raise ValueError(
                f"rank {rank} of {self.path!r} does not support sliced "
                "reads (zlib/jsonl storage); load the whole rank instead"
            )
        project = self._project_columns(columns) or _BIN_COLUMNS
        count = max(stop - start, 0)
        buf = self._buffer()
        arrays: dict[str, np.ndarray] = {}
        with obs.span("io.load"), open(self.path, "rb") as fp:
            for col in project:
                offset, _length, dtype_str, _codec = chunk.columns[col]
                where = f"location {rank} column {col}"
                dtype = parse_dtype(dtype_str, where, TraceFormatError)
                byte_off = offset + start * dtype.itemsize
                if buf is not None:
                    try:
                        arr = np.frombuffer(
                            buf, dtype=dtype, count=count, offset=byte_off
                        )
                    except ValueError as err:
                        raise TraceFormatError(f"{where}: {err}") from err
                    _C_MMAPPED.add(count * dtype.itemsize)
                else:
                    blob = self._read_column_blob(
                        fp, byte_off, count * dtype.itemsize, where
                    )
                    arr = np.frombuffer(blob, dtype=dtype)
                arrays[col] = arr
        _C_EVENTS_LOADED.add(count)
        if len(project) == len(_BIN_COLUMNS):
            return EventList(*(arrays[col] for col in _BIN_COLUMNS))
        return EventList.projected(arrays)

    def cursor(
        self,
        ranks: Sequence[int] | None = None,
        columns: Sequence[str] | None = None,
        chunk_events: int | None = None,
    ):
        """Pull-based :class:`~repro.trace.cursor.IndexCursor` over
        this file: ranks ascending, at most ``chunk_events`` events per
        batch (``None`` = one whole-rank batch per rank)."""
        from .cursor import IndexCursor

        return IndexCursor(
            self, ranks=ranks, columns=columns, chunk_events=chunk_events
        )

    def load(
        self,
        ranks: Sequence[int] | None = None,
        columns: Sequence[str] | None = None,
    ) -> Trace:
        """Materialise a trace containing only ``ranks``.

        ``None`` loads every rank (equivalent to the eager readers, and
        bit-identical to them).  Requested ranks must be defined in the
        file; locations without an events record yield empty streams.

        ``columns`` projects the load onto a subset of event columns
        (``time`` is always included).  Unprojected columns become
        placeholders that raise
        :class:`~repro.trace.events.ColumnNotLoadedError` on use, so a
        pass that touches an undeclared column fails loudly.  For
        zlib-coded columns the projection skips their decompression
        entirely; for v2 raw columns the full load is already a
        zero-copy view, but projecting still skips validation work.
        """
        project = self._project_columns(columns)
        wanted: Iterable[int] = self.ranks if ranks is None else ranks
        wanted = list(wanted)
        for rank in wanted:
            if rank not in self.locations:
                raise TraceFormatError(
                    f"rank {rank} is not defined in {self.path!r}"
                )
        if len(set(wanted)) != len(wanted):
            raise ValueError(f"duplicate ranks requested: {wanted!r}")
        trace = self._new_trace()
        with obs.span("io.load"), open(self.path, "rb") as fp:
            for rank in sorted(wanted):
                chunk = self._chunks.get(rank)
                if chunk is None:
                    events = EventList.empty()
                elif self.format == "rpt":
                    events = self._load_events_binary(fp, chunk, project)
                else:
                    events = self._load_events_jsonl(fp, chunk, project)
                _C_EVENTS_LOADED.add(len(events))
                trace.add_process(self.locations[rank], events)
        return trace

    # -- content digests ----------------------------------------------

    def rank_digest(self, rank: int) -> str:
        """Per-rank event digest, equal to
        :func:`~repro.trace.fingerprint.fingerprint_events` over the
        rank's loaded :class:`EventList`.

        For binary files whose manifest dtypes are canonical (always
        true for files we write), the digest is computed straight from
        the column bytes — for v2 raw columns that means hashing mmap
        slices with no array materialisation at all.  Anything else
        falls back to loading the rank.
        """
        chunk = self._chunks.get(rank)
        if chunk is None:
            return fingerprint_events(EventList.empty())
        if self.format != "rpt" or any(
            chunk.columns[col][2] != np.dtype(_CANONICAL_DTYPES[col]).str
            for col in _BIN_COLUMNS
        ):
            return fingerprint_events(self.load([rank]).events_of(rank))
        h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
        with open(self.path, "rb") as fp:
            for col in _BIN_COLUMNS:
                offset, length, _dtype_str, codec = chunk.columns[col]
                where = f"location {chunk.rank} column {col}"
                blob = self._read_column_blob(fp, offset, length, where)
                h.update(col.encode("ascii"))
                if codec == "raw":
                    h.update(blob)
                else:
                    try:
                        h.update(zlib.decompress(blob))
                    except zlib.error as err:
                        raise TraceFormatError(f"{where}: {err}") from err
        return h.hexdigest()


def read_trace_ranks(
    path: str | os.PathLike, ranks: Sequence[int] | None = None
) -> Trace:
    """Read only ``ranks`` of the trace at ``path`` (chunked path)."""
    return TraceIndex(path).load(ranks)
