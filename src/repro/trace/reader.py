"""Trace deserialisation (text format) and format dispatch."""

from __future__ import annotations

import json
import os
from typing import IO

import numpy as np

from .definitions import (
    Location,
    Metric,
    MetricMode,
    MetricRegistry,
    Paradigm,
    Region,
    RegionRegistry,
    RegionRole,
)
from .events import EventList
from .trace import Trace
from .writer import FORMAT_VERSION

__all__ = ["read_jsonl", "load_jsonl", "read_trace"]


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or has the wrong version."""


def load_jsonl(fp: IO[str]) -> Trace:
    """Read a trace from an open text file in JSONL format."""
    header_line = fp.readline()
    if not header_line:
        raise TraceFormatError("empty trace file")
    header = json.loads(header_line)
    if not isinstance(header, dict) or header.get("record") != "header":
        raise TraceFormatError("first record must be the header")
    if header.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace format version {header.get('version')!r}"
        )

    regions = RegionRegistry()
    metrics = MetricRegistry()
    locations: dict[int, Location] = {}
    event_records: list[dict] = []

    for line in fp:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if not isinstance(record, dict):
            raise TraceFormatError(f"non-object record: {line[:40]!r}")
        kind = record.get("record")
        if kind == "region":
            regions.add(
                Region(
                    id=record["id"],
                    name=record["name"],
                    paradigm=Paradigm(record["paradigm"]),
                    role=RegionRole(record["role"]),
                    source_file=record.get("source_file", ""),
                    line=record.get("line", 0),
                )
            )
        elif kind == "metric":
            metrics.add(
                Metric(
                    id=record["id"],
                    name=record["name"],
                    unit=record.get("unit", "#"),
                    mode=MetricMode(record.get("mode", 0)),
                    description=record.get("description", ""),
                )
            )
        elif kind == "location":
            loc = Location(
                id=record["id"],
                name=record["name"],
                group=record.get("group", "MPI"),
            )
            locations[loc.id] = loc
        elif kind == "events":
            event_records.append(record)
        else:
            raise TraceFormatError(f"unknown record type {kind!r}")

    trace = Trace(
        regions=regions,
        metrics=metrics,
        name=header.get("name", "trace"),
        attributes=header.get("attributes", {}),
    )
    for record in event_records:
        loc_id = record["location"]
        location = locations.get(loc_id)
        if location is None:
            raise TraceFormatError(f"events for undefined location {loc_id}")
        events = EventList(
            np.asarray(record["time"], dtype=np.float64),
            np.asarray(record["kind"], dtype=np.uint8),
            np.asarray(record["ref"], dtype=np.int32),
            np.asarray(record["partner"], dtype=np.int32),
            np.asarray(record["size"], dtype=np.int64),
            np.asarray(record["tag"], dtype=np.int32),
            np.asarray(record["value"], dtype=np.float64),
        )
        if len(events) != record.get("n", len(events)):
            raise TraceFormatError(
                f"location {loc_id}: event count mismatch"
            )
        trace.add_process(location, events)
    # Locations defined but without an events record get empty streams.
    for loc_id, location in locations.items():
        if loc_id not in trace.ranks:
            trace.add_process(location, EventList.empty())
    return trace


def read_jsonl(path: str | os.PathLike) -> Trace:
    """Read a trace from ``path`` in JSONL format."""
    with open(path, "r", encoding="utf-8") as fp:
        return load_jsonl(fp)


def read_trace(path: str | os.PathLike) -> Trace:
    """Read a trace, dispatching on file extension (.jsonl or .rpt)."""
    path_str = str(path)
    if path_str.endswith(".jsonl"):
        return read_jsonl(path)
    if path_str.endswith(".rpt"):
        from .binio import read_binary

        return read_binary(path)
    raise TraceFormatError(
        f"cannot infer trace format from extension: {path_str!r}"
    )
