"""Well-formedness validation of traces (legacy shim).

Measurement systems occasionally produce broken traces (dropped
buffers, unbalanced enter/leave, dangling references).  The analysis
pipeline calls :func:`validate_trace` up front so problems surface as
clear diagnostics instead of IndexErrors deep inside stack replay.

.. deprecated::
    The checks themselves now live in the rule registry of
    :mod:`repro.lint`; :func:`validate_trace` is a compatibility shim
    that runs the error-severity structural subset of the lint rules
    (the ones declaring a ``legacy_code``) and translates the
    diagnostics back to :class:`ValidationIssue` objects under their
    historical codes.  New code should call
    :func:`repro.lint.lint_trace` directly — it adds MPI-semantic and
    paper-precondition rules, severity filtering and SARIF output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .trace import Trace

__all__ = ["ValidationIssue", "ValidationReport", "validate_trace"]


@dataclass(frozen=True, slots=True)
class ValidationIssue:
    """One detected problem in a trace.

    ``position`` is the index of the offending event inside the rank's
    stream (-1 when the issue has no single anchor event) and ``time``
    that event's timestamp — both carried over from the underlying
    lint diagnostic so operators can seek straight to the problem.
    """

    rank: int  # -1 for trace-global issues
    code: str
    message: str
    position: int = -1
    time: float | None = None

    def __str__(self) -> str:
        where = f"rank {self.rank}" if self.rank >= 0 else "trace"
        loc = ""
        if self.position >= 0:
            loc = f" @ event {self.position}"
        if self.time is not None:
            loc += f" (t={self.time:.6g})"
        return f"[{self.code}] {where}{loc}: {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "rank": self.rank,
            "position": self.position,
            "time": self.time,
            "message": self.message,
        }


@dataclass(slots=True)
class ValidationReport:
    """Collection of validation issues; empty means the trace is valid."""

    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def __bool__(self) -> bool:
        return self.ok

    def __len__(self) -> int:
        return len(self.issues)

    def raise_if_invalid(self) -> None:
        """Raise ``ValueError`` listing all issues if any were found."""
        if self.issues:
            lines = "\n".join(str(issue) for issue in self.issues)
            raise ValueError(f"invalid trace:\n{lines}")

    def to_dict(self) -> dict[str, Any]:
        return {"ok": self.ok, "issues": [i.to_dict() for i in self.issues]}


def validate_trace(
    trace: Trace,
    allow_empty_streams: bool = False,
    known_ranks: frozenset[int] | set[int] | None = None,
) -> ValidationReport:
    """Check structural invariants of ``trace``.

    Checks per stream: sorted timestamps, balanced and properly nested
    enter/leave pairs, and that all region/metric/partner references
    resolve against the definitions.  Implemented as the structural
    subset of the :mod:`repro.lint` rule registry (see the module
    deprecation note); issue codes keep their historical names.

    Parameters
    ----------
    allow_empty_streams:
        Suppress the ``empty-stream`` diagnostic (useful for filtered
        traces where some ranks legitimately end up empty).
    known_ranks:
        Rank set message partners are resolved against; defaults to the
        ranks present in ``trace``.  The sharded engine validates each
        sub-trace against the *global* rank set, so cross-shard
        messages do not show up as ``bad-partner`` false positives.
    """
    from ..lint import all_rules, lint_trace, validate_config

    legacy_of = {r.code: r.legacy_code for r in all_rules()}
    report = lint_trace(
        trace,
        config=validate_config(allow_empty_streams=allow_empty_streams),
        known_ranks=known_ranks,
    )
    issues = [
        ValidationIssue(
            rank=d.rank,
            code=legacy_of.get(d.code) or d.code,
            message=d.message,
            position=d.position,
            time=d.time,
        )
        for d in report.diagnostics
    ]
    return ValidationReport(issues=issues)
