"""Well-formedness validation of traces.

Measurement systems occasionally produce broken traces (dropped
buffers, unbalanced enter/leave, dangling references).  The analysis
pipeline calls :func:`validate_trace` up front so problems surface as
clear diagnostics instead of IndexErrors deep inside stack replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .events import EventKind
from .trace import Trace

__all__ = ["ValidationIssue", "ValidationReport", "validate_trace"]


@dataclass(frozen=True, slots=True)
class ValidationIssue:
    """One detected problem in a trace."""

    rank: int  # -1 for trace-global issues
    code: str
    message: str

    def __str__(self) -> str:
        where = f"rank {self.rank}" if self.rank >= 0 else "trace"
        return f"[{self.code}] {where}: {self.message}"


@dataclass(slots=True)
class ValidationReport:
    """Collection of validation issues; empty means the trace is valid."""

    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def __bool__(self) -> bool:
        return self.ok

    def __len__(self) -> int:
        return len(self.issues)

    def raise_if_invalid(self) -> None:
        """Raise ``ValueError`` listing all issues if any were found."""
        if self.issues:
            lines = "\n".join(str(issue) for issue in self.issues)
            raise ValueError(f"invalid trace:\n{lines}")


def _check_stream(
    trace: Trace,
    rank: int,
    report: ValidationReport,
    known_ranks: frozenset[int] | set[int] | None = None,
) -> None:
    ev = trace.events_of(rank)
    n = len(ev)
    if n == 0:
        report.issues.append(
            ValidationIssue(rank, "empty-stream", "location has no events")
        )
        return

    if np.any(np.diff(ev.time) < 0):
        report.issues.append(
            ValidationIssue(rank, "time-order", "timestamps not sorted")
        )
        return  # replay below would be meaningless

    num_regions = len(trace.regions)
    num_metrics = len(trace.metrics)
    enter_leave = (ev.kind == EventKind.ENTER) | (ev.kind == EventKind.LEAVE)
    bad_region = enter_leave & ((ev.ref < 0) | (ev.ref >= num_regions))
    if np.any(bad_region):
        first = int(np.argmax(bad_region))
        report.issues.append(
            ValidationIssue(
                rank,
                "bad-region-ref",
                f"event {first} references undefined region {int(ev.ref[first])}",
            )
        )
    metric_mask = ev.kind == EventKind.METRIC
    bad_metric = metric_mask & ((ev.ref < 0) | (ev.ref >= num_metrics))
    if np.any(bad_metric):
        first = int(np.argmax(bad_metric))
        report.issues.append(
            ValidationIssue(
                rank,
                "bad-metric-ref",
                f"event {first} references undefined metric {int(ev.ref[first])}",
            )
        )

    p2p = (ev.kind == EventKind.SEND) | (ev.kind == EventKind.RECV)
    known = set(trace.ranks) if known_ranks is None else set(known_ranks)
    if np.any(p2p):
        partners = ev.partner[p2p]
        unknown = [p for p in np.unique(partners) if int(p) not in known]
        if unknown:
            report.issues.append(
                ValidationIssue(
                    rank,
                    "bad-partner",
                    f"messages reference unknown locations {sorted(map(int, unknown))}",
                )
            )

    # Stack checks, vectorised: depth balance first, then region
    # matching via the same depth-pairing trick the replay uses
    # (events at one frame depth alternate enter/leave; adjacent pairs
    # must reference the same region).  This avoids a Python-level
    # loop over every event — validation used to dominate the analysis
    # time of million-event traces.
    el_idx = np.flatnonzero(enter_leave)
    if len(el_idx) == 0:
        return
    kind_pm = np.where(ev.kind[el_idx] == EventKind.ENTER, 1, -1).astype(
        np.int64
    )
    depth_after = np.cumsum(kind_pm)
    underflow = np.flatnonzero(depth_after < 0)
    if len(underflow):
        report.issues.append(
            ValidationIssue(
                rank,
                "unmatched-leave",
                f"leave at event {int(el_idx[underflow[0]])} with empty stack",
            )
        )
        return
    if depth_after[-1] != 0:
        report.issues.append(
            ValidationIssue(
                rank,
                "unclosed-regions",
                f"{int(depth_after[-1])} regions still open at end of stream",
            )
        )
        return
    frame_depth = np.where(kind_pm > 0, depth_after, depth_after + 1)
    order = np.argsort(frame_depth, kind="stable")
    enter_pos = order[0::2]
    leave_pos = order[1::2]
    refs = ev.ref[el_idx]
    mismatched = refs[enter_pos] != refs[leave_pos]
    if np.any(mismatched):
        first = int(np.argmax(mismatched))
        report.issues.append(
            ValidationIssue(
                rank,
                "mismatched-leave",
                f"event {int(el_idx[leave_pos[first]])} leaves region "
                f"{int(refs[leave_pos[first]])} but region "
                f"{int(refs[enter_pos[first]])} is open",
            )
        )


def validate_trace(
    trace: Trace,
    allow_empty_streams: bool = False,
    known_ranks: frozenset[int] | set[int] | None = None,
) -> ValidationReport:
    """Check structural invariants of ``trace``.

    Checks per stream: sorted timestamps, balanced and properly nested
    enter/leave pairs, and that all region/metric/partner references
    resolve against the definitions.

    Parameters
    ----------
    allow_empty_streams:
        Suppress the ``empty-stream`` diagnostic (useful for filtered
        traces where some ranks legitimately end up empty).
    known_ranks:
        Rank set message partners are resolved against; defaults to the
        ranks present in ``trace``.  The sharded engine validates each
        sub-trace against the *global* rank set, so cross-shard
        messages do not show up as ``bad-partner`` false positives.
    """
    report = ValidationReport()
    if trace.num_processes == 0:
        report.issues.append(
            ValidationIssue(-1, "no-processes", "trace has no locations")
        )
        return report
    for rank in trace.ranks:
        _check_stream(trace, rank, report, known_ranks)
    if allow_empty_streams:
        report.issues = [i for i in report.issues if i.code != "empty-stream"]
    return report
