"""Event model for program traces.

A *program trace* is a time-sorted record of timestamped application
behaviour (paper, Section I).  Each processing element (an MPI rank, a
thread, ...) produces one event stream.  We store each stream as a
structure-of-arrays (:class:`EventList`) so that the analysis passes --
stack replay, segment accumulation, heat binning -- can run vectorised
over NumPy arrays instead of iterating Python objects.

Event kinds
-----------

``ENTER``/``LEAVE``
    Entering or leaving a code region (function, loop body, MPI call).
    ``ref`` holds the region id from the trace's
    :class:`~repro.trace.definitions.RegionRegistry`.
``SEND``/``RECV``
    Point-to-point message events.  ``partner`` is the peer location,
    ``size`` the message payload in bytes and ``tag`` the message tag.
``METRIC``
    A sample of a hardware/software counter.  ``ref`` holds the metric id
    and ``value`` the sampled value.

The numeric layout (one NumPy array per field) is part of the public API:
analysis code is encouraged to operate on ``events.time``,
``events.kind`` etc. directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "EventKind",
    "Event",
    "EventList",
    "EventListBuilder",
    "ColumnNotLoadedError",
    "NO_REF",
    "NO_PARTNER",
]

#: Sentinel for "field not meaningful for this event kind".
NO_REF: int = -1
NO_PARTNER: int = -1


class EventKind(enum.IntEnum):
    """Discriminator for trace events (stored as ``uint8``)."""

    ENTER = 0
    LEAVE = 1
    SEND = 2
    RECV = 3
    METRIC = 4


@dataclass(frozen=True, slots=True)
class Event:
    """A single trace event (row view of :class:`EventList`).

    This object exists for convenience (iteration, debugging, tests);
    performance-sensitive code should use the column arrays instead.
    """

    time: float
    kind: EventKind
    ref: int = NO_REF
    partner: int = NO_PARTNER
    size: int = 0
    tag: int = 0
    value: float = 0.0

    def is_enter(self) -> bool:
        return self.kind == EventKind.ENTER

    def is_leave(self) -> bool:
        return self.kind == EventKind.LEAVE


class ColumnNotLoadedError(RuntimeError):
    """A pass touched an event column excluded from its projection.

    Raised by the placeholder objects that :meth:`EventList.projected`
    installs for columns the caller chose not to materialise.  Any
    meaningful use of the column (indexing, iteration, ufuncs, array
    conversion) fails loudly instead of silently computing on garbage,
    which is what lets the projection tests prove that each analysis
    pass really only reads the columns it declares.
    """


class _MissingColumn:
    """Placeholder stored in an :class:`EventList` slot for a column
    that was not loaded.  Every access path a NumPy consumer can take
    funnels into :meth:`_fail`."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def _fail(self):
        raise ColumnNotLoadedError(
            f"column {self._name!r} was not loaded by this projection; "
            f"add it to the columns= argument of TraceIndex.load()"
        )

    def __getattr__(self, attr):
        if attr.startswith("__") and attr.endswith("__"):
            # Generic protocols (copy.deepcopy, pickle, hasattr probes)
            # look up optional dunders; answering those with
            # ColumnNotLoadedError breaks them with a misleading
            # message.  Only data access on the column should fail.
            raise AttributeError(attr)
        self._fail()

    def __len__(self):
        self._fail()

    def __getitem__(self, index):
        self._fail()

    def __iter__(self):
        self._fail()

    def __bool__(self):
        self._fail()

    def __array__(self, dtype=None, copy=None):
        self._fail()

    def __array_ufunc__(self, *args, **kwargs):
        self._fail()

    def __eq__(self, other):
        self._fail()

    def __ne__(self, other):
        self._fail()

    # Defining __eq__ would otherwise implicitly set __hash__ = None,
    # making placeholders unhashable (identity hashing is fine here).
    __hash__ = object.__hash__

    def __lt__(self, other):
        self._fail()

    def __le__(self, other):
        self._fail()

    def __gt__(self, other):
        self._fail()

    def __ge__(self, other):
        self._fail()

    def __repr__(self) -> str:
        return f"<column {self._name!r} not loaded>"


_FIELDS = ("time", "kind", "ref", "partner", "size", "tag", "value")
_DTYPES = {
    "time": np.float64,
    "kind": np.uint8,
    "ref": np.int32,
    "partner": np.int32,
    "size": np.int64,
    "tag": np.int32,
    "value": np.float64,
}


class EventList:
    """Immutable structure-of-arrays container for one event stream.

    All column arrays have equal length and are read-only.  Events are
    expected (and validated on construction) to be sorted by time with
    deterministic intra-timestamp ordering preserved from insertion.
    """

    __slots__ = ("time", "kind", "ref", "partner", "size", "tag", "value")

    def __init__(
        self,
        time: np.ndarray,
        kind: np.ndarray,
        ref: np.ndarray,
        partner: np.ndarray,
        size: np.ndarray,
        tag: np.ndarray,
        value: np.ndarray,
    ) -> None:
        arrays = (time, kind, ref, partner, size, tag, value)
        n = len(time)
        for name, arr in zip(_FIELDS, arrays):
            if len(arr) != n:
                raise ValueError(
                    f"column {name!r} has length {len(arr)}, expected {n}"
                )
        if n > 1 and np.any(np.diff(time) < 0):
            raise ValueError("event timestamps must be non-decreasing")
        self.time = np.ascontiguousarray(time, dtype=np.float64)
        self.kind = np.ascontiguousarray(kind, dtype=np.uint8)
        self.ref = np.ascontiguousarray(ref, dtype=np.int32)
        self.partner = np.ascontiguousarray(partner, dtype=np.int32)
        self.size = np.ascontiguousarray(size, dtype=np.int64)
        self.tag = np.ascontiguousarray(tag, dtype=np.int32)
        self.value = np.ascontiguousarray(value, dtype=np.float64)
        for name in _FIELDS:
            getattr(self, name).setflags(write=False)

    # -- construction -------------------------------------------------

    @classmethod
    def empty(cls) -> "EventList":
        """Return an event list with zero events."""
        return cls(*(np.empty(0, dtype=_DTYPES[f]) for f in _FIELDS))

    @classmethod
    def from_events(cls, events: Sequence[Event]) -> "EventList":
        """Build from a sequence of :class:`Event` rows (test helper)."""
        builder = EventListBuilder()
        for ev in events:
            builder.append(
                ev.time, ev.kind, ev.ref, ev.partner, ev.size, ev.tag, ev.value
            )
        return builder.freeze()

    @classmethod
    def projected(cls, columns: dict[str, np.ndarray]) -> "EventList":
        """Build a partially-loaded event list.

        ``columns`` maps field names to arrays; ``time`` is mandatory
        (it defines the stream length and carries the ordering
        guarantee).  Supplied columns get the same validation,
        canonicalisation and read-only freeze as ``__init__``; missing
        columns are replaced by placeholders that raise
        :class:`ColumnNotLoadedError` on any use.
        """
        unknown = sorted(set(columns) - set(_FIELDS))
        if unknown:
            raise ValueError(f"unknown event columns: {', '.join(unknown)}")
        if "time" not in columns:
            raise ValueError("projected event lists always require 'time'")
        self = object.__new__(cls)
        time = np.ascontiguousarray(columns["time"], dtype=np.float64)
        n = len(time)
        if n > 1 and np.any(np.diff(time) < 0):
            raise ValueError("event timestamps must be non-decreasing")
        for name in _FIELDS:
            if name in columns:
                arr = np.ascontiguousarray(columns[name], dtype=_DTYPES[name])
                if len(arr) != n:
                    raise ValueError(
                        f"column {name!r} has length {len(arr)}, expected {n}"
                    )
                arr.setflags(write=False)
                object.__setattr__(self, name, arr)
            else:
                object.__setattr__(self, name, _MissingColumn(name))
        return self

    @property
    def loaded_columns(self) -> tuple[str, ...]:
        """Names of the columns that are actually materialised."""
        return tuple(
            f for f in _FIELDS
            if not isinstance(getattr(self, f), _MissingColumn)
        )

    # -- container protocol -------------------------------------------

    def __len__(self) -> int:
        return len(self.time)

    def __iter__(self) -> Iterator[Event]:
        for i in range(len(self)):
            yield self[i]

    def __getitem__(self, index):
        if isinstance(index, slice):
            loaded = self.loaded_columns
            if len(loaded) != len(_FIELDS):
                return EventList.projected(
                    {f: getattr(self, f)[index] for f in loaded}
                )
            return EventList(
                *(getattr(self, f)[index] for f in _FIELDS)
            )
        i = int(index)
        return Event(
            time=float(self.time[i]),
            kind=EventKind(int(self.kind[i])),
            ref=int(self.ref[i]),
            partner=int(self.partner[i]),
            size=int(self.size[i]),
            tag=int(self.tag[i]),
            value=float(self.value[i]),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventList):
            return NotImplemented
        return all(
            np.array_equal(getattr(self, f), getattr(other, f))
            for f in _FIELDS
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventList(n={len(self)})"

    # -- derived views -------------------------------------------------

    def select(self, mask: np.ndarray) -> "EventList":
        """Return a new list with only the rows where ``mask`` is true."""
        return EventList(*(getattr(self, f)[mask] for f in _FIELDS))

    def of_kind(self, kind: EventKind) -> "EventList":
        """Return only the events of the given kind."""
        return self.select(self.kind == np.uint8(kind))

    def time_window(self, start: float, stop: float) -> "EventList":
        """Return events with ``start <= time < stop`` (binary search)."""
        lo = int(np.searchsorted(self.time, start, side="left"))
        hi = int(np.searchsorted(self.time, stop, side="left"))
        return self[lo:hi]

    @property
    def duration(self) -> float:
        """Time span covered by the stream (0.0 when empty)."""
        if len(self) == 0:
            return 0.0
        return float(self.time[-1] - self.time[0])


class EventListBuilder:
    """Append-only accumulator that freezes into an :class:`EventList`.

    Uses plain Python lists during accumulation (amortised O(1) append)
    and converts to contiguous NumPy arrays exactly once in
    :meth:`freeze`, following the "allocate once, vectorise after"
    guidance for hot HPC paths.
    """

    __slots__ = ("_time", "_kind", "_ref", "_partner", "_size", "_tag", "_value")

    def __init__(self) -> None:
        self._time: list[float] = []
        self._kind: list[int] = []
        self._ref: list[int] = []
        self._partner: list[int] = []
        self._size: list[int] = []
        self._tag: list[int] = []
        self._value: list[float] = []

    def __len__(self) -> int:
        return len(self._time)

    @property
    def last_time(self) -> float | None:
        """Timestamp of the most recently appended event, if any."""
        return self._time[-1] if self._time else None

    def append(
        self,
        time: float,
        kind: EventKind,
        ref: int = NO_REF,
        partner: int = NO_PARTNER,
        size: int = 0,
        tag: int = 0,
        value: float = 0.0,
    ) -> None:
        """Append one event; timestamps must be non-decreasing."""
        if self._time and time < self._time[-1]:
            raise ValueError(
                f"non-monotonic timestamp {time} after {self._time[-1]}"
            )
        self._time.append(float(time))
        self._kind.append(int(kind))
        self._ref.append(int(ref))
        self._partner.append(int(partner))
        self._size.append(int(size))
        self._tag.append(int(tag))
        self._value.append(float(value))

    def enter(self, time: float, region: int) -> None:
        self.append(time, EventKind.ENTER, ref=region)

    def leave(self, time: float, region: int) -> None:
        self.append(time, EventKind.LEAVE, ref=region)

    def send(self, time: float, partner: int, size: int = 0, tag: int = 0) -> None:
        self.append(time, EventKind.SEND, partner=partner, size=size, tag=tag)

    def recv(self, time: float, partner: int, size: int = 0, tag: int = 0) -> None:
        self.append(time, EventKind.RECV, partner=partner, size=size, tag=tag)

    def metric(self, time: float, metric: int, value: float) -> None:
        self.append(time, EventKind.METRIC, ref=metric, value=value)

    def freeze(self) -> EventList:
        """Convert the accumulated events into an immutable list."""
        return EventList(
            np.asarray(self._time, dtype=np.float64),
            np.asarray(self._kind, dtype=np.uint8),
            np.asarray(self._ref, dtype=np.int32),
            np.asarray(self._partner, dtype=np.int32),
            np.asarray(self._size, dtype=np.int64),
            np.asarray(self._tag, dtype=np.int32),
            np.asarray(self._value, dtype=np.float64),
        )
