"""Trace serialisation (text format).

Two on-disk formats are provided by the package:

* ``.jsonl`` — a line-oriented JSON text format (this module), readable
  by humans and by any JSON tooling; definition records first, then one
  record per location carrying the event columns.
* ``.rpt`` — a compact binary format (:mod:`repro.trace.binio`) using
  zlib-compressed column arrays, preferred for large traces.

Both formats round-trip exactly through :mod:`repro.trace.reader`.
"""

from __future__ import annotations

import json
import os
from typing import IO

from .trace import Trace

__all__ = ["write_jsonl", "dump_jsonl"]

FORMAT_VERSION = 1


def _header_record(trace: Trace) -> dict:
    return {
        "record": "header",
        "version": FORMAT_VERSION,
        "name": trace.name,
        "attributes": trace.attributes,
    }


def _definition_records(trace: Trace):
    for region in trace.regions:
        yield {
            "record": "region",
            "id": region.id,
            "name": region.name,
            "paradigm": int(region.paradigm),
            "role": int(region.role),
            "source_file": region.source_file,
            "line": region.line,
        }
    for metric in trace.metrics:
        yield {
            "record": "metric",
            "id": metric.id,
            "name": metric.name,
            "unit": metric.unit,
            "mode": int(metric.mode),
            "description": metric.description,
        }
    for proc in trace.processes():
        yield {
            "record": "location",
            "id": proc.location.id,
            "name": proc.location.name,
            "group": proc.location.group,
        }


def _event_records(trace: Trace):
    for proc in trace.processes():
        ev = proc.events
        yield {
            "record": "events",
            "location": proc.location.id,
            "n": len(ev),
            "time": ev.time.tolist(),
            "kind": ev.kind.tolist(),
            "ref": ev.ref.tolist(),
            "partner": ev.partner.tolist(),
            "size": ev.size.tolist(),
            "tag": ev.tag.tolist(),
            "value": ev.value.tolist(),
        }


def dump_jsonl(trace: Trace, fp: IO[str]) -> None:
    """Write ``trace`` to an open text file in JSONL format."""
    fp.write(json.dumps(_header_record(trace)) + "\n")
    for record in _definition_records(trace):
        fp.write(json.dumps(record) + "\n")
    for record in _event_records(trace):
        fp.write(json.dumps(record) + "\n")


def write_jsonl(trace: Trace, path: str | os.PathLike) -> None:
    """Write ``trace`` to ``path`` in JSONL format."""
    with open(path, "w", encoding="utf-8") as fp:
        dump_jsonl(trace, fp)
