"""Merging traces from separate measurement runs.

Trace archives are sometimes written per process group (e.g. one file
per node) or collected in several measurement runs of the same binary.
:func:`merge_traces` unifies their definition registries by *name* and
re-maps event references accordingly, producing one coherent trace.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .definitions import MetricRegistry, RegionRegistry
from .events import EventKind, EventList
from .trace import Trace

__all__ = ["merge_traces"]


def _remap_events(
    events: EventList,
    region_map: np.ndarray,
    metric_map: np.ndarray,
) -> EventList:
    """Rewrite region/metric references through the given id maps."""
    ref = events.ref.copy()
    enter_leave = (events.kind == EventKind.ENTER) | (events.kind == EventKind.LEAVE)
    metric = events.kind == EventKind.METRIC
    if region_map.size:
        ref[enter_leave] = region_map[events.ref[enter_leave]]
    if metric_map.size:
        ref[metric] = metric_map[events.ref[metric]]
    return EventList(
        events.time,
        events.kind,
        ref,
        events.partner,
        events.size,
        events.tag,
        events.value,
    )


def merge_traces(traces: Sequence[Trace], name: str = "merged") -> Trace:
    """Merge traces with pairwise disjoint location ids.

    Definitions are unified by name: regions (or metrics) with the same
    name in different inputs become one definition; attributes of the
    first occurrence win.

    Raises
    ------
    ValueError
        If two inputs define the same location id.
    """
    if not traces:
        raise ValueError("nothing to merge")

    regions = RegionRegistry()
    metrics = MetricRegistry()
    merged = Trace(regions=regions, metrics=metrics, name=name)
    for trace in traces:
        merged.attributes.update(trace.attributes)

    seen_ranks: set[int] = set()
    for trace in traces:
        region_map = np.asarray(
            [
                regions.register(
                    r.name,
                    paradigm=r.paradigm,
                    role=r.role,
                    source_file=r.source_file,
                    line=r.line,
                )
                for r in trace.regions
            ],
            dtype=np.int32,
        )
        metric_map = np.asarray(
            [
                metrics.register(
                    m.name, unit=m.unit, mode=m.mode, description=m.description
                )
                for m in trace.metrics
            ],
            dtype=np.int32,
        )
        for proc in trace.processes():
            if proc.location.id in seen_ranks:
                raise ValueError(
                    f"location id {proc.location.id} appears in multiple traces"
                )
            seen_ranks.add(proc.location.id)
            merged.add_process(
                proc.location, _remap_events(proc.events, region_map, metric_map)
            )
    return merged
