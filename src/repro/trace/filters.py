"""Trace transformations: time-window clipping and region filtering.

These mirror the zoom / filter operations of interactive trace viewers
(paper Section II): an analyst who spots a hotspot narrows the view to
a window, or hides measurement-only regions.  Both operations return
new traces and preserve enter/leave balance.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .definitions import Region
from .events import EventKind, EventList, EventListBuilder
from .trace import Trace

__all__ = ["clip_trace", "filter_regions", "select_ranks"]


def _clip_stream(events: EventList, t0: float, t1: float) -> EventList:
    """Clip one stream to [t0, t1], synthesising boundary enter/leave.

    Regions already open at ``t0`` receive synthetic ENTER events at
    ``t0`` (outermost first); regions still open at ``t1`` receive
    synthetic LEAVE events at ``t1`` (innermost first).  This is how
    timeline viewers render a zoomed window without losing the
    enclosing call context.
    """
    out = EventListBuilder()
    kinds = events.kind
    times = events.time
    refs = events.ref

    # Call stack state at t0 (regions entered before the window that
    # have not been left before the window).
    lo = int(np.searchsorted(times, t0, side="left"))
    stack: list[int] = []
    for i in range(lo):
        k = kinds[i]
        if k == EventKind.ENTER:
            stack.append(int(refs[i]))
        elif k == EventKind.LEAVE:
            if stack:
                stack.pop()
    for region in stack:  # outermost first
        out.enter(t0, region)

    hi = int(np.searchsorted(times, t1, side="right"))
    for i in range(lo, hi):
        k = kinds[i]
        t = float(times[i])
        if k == EventKind.ENTER:
            stack.append(int(refs[i]))
            out.enter(t, int(refs[i]))
        elif k == EventKind.LEAVE:
            if stack:
                stack.pop()
            out.leave(t, int(refs[i]))
        elif k == EventKind.SEND:
            out.send(t, int(events.partner[i]), int(events.size[i]), int(events.tag[i]))
        elif k == EventKind.RECV:
            out.recv(t, int(events.partner[i]), int(events.size[i]), int(events.tag[i]))
        else:  # METRIC
            out.metric(t, int(refs[i]), float(events.value[i]))

    for region in reversed(stack):  # innermost first
        out.leave(t1, region)
    return out.freeze()


def clip_trace(trace: Trace, t0: float, t1: float, name: str | None = None) -> Trace:
    """Return a copy of ``trace`` restricted to the window ``[t0, t1]``."""
    if t1 < t0:
        raise ValueError(f"empty window: t1={t1} < t0={t0}")
    clipped = Trace(
        regions=trace.regions,
        metrics=trace.metrics,
        name=name or f"{trace.name}[{t0:g},{t1:g}]",
        attributes=dict(trace.attributes),
    )
    for proc in trace.processes():
        clipped.add_process(proc.location, _clip_stream(proc.events, t0, t1))
    return clipped


def filter_regions(
    trace: Trace,
    keep: Callable[[Region], bool],
    name: str | None = None,
) -> Trace:
    """Drop enter/leave events of regions for which ``keep`` is false.

    Children of removed regions are retained (they re-nest under the
    removed region's parent), matching the semantics of region filters
    in Score-P.  Metric and message events are always kept.
    """
    keep_mask = np.asarray([bool(keep(r)) for r in trace.regions], dtype=bool)
    filtered = Trace(
        regions=trace.regions,
        metrics=trace.metrics,
        name=name or f"{trace.name}|filtered",
        attributes=dict(trace.attributes),
    )
    for proc in trace.processes():
        ev = proc.events
        enter_leave = (ev.kind == EventKind.ENTER) | (ev.kind == EventKind.LEAVE)
        drop = np.zeros(len(ev), dtype=bool)
        if len(ev):
            drop[enter_leave] = ~keep_mask[ev.ref[enter_leave]]
        filtered.add_process(proc.location, ev.select(~drop))
    return filtered


def select_ranks(trace: Trace, ranks, name: str | None = None) -> Trace:
    """Return a trace containing only the given locations."""
    wanted = set(int(r) for r in ranks)
    missing = wanted - set(trace.ranks)
    if missing:
        raise KeyError(f"ranks not in trace: {sorted(missing)}")
    sub = Trace(
        regions=trace.regions,
        metrics=trace.metrics,
        name=name or f"{trace.name}|ranks",
        attributes=dict(trace.attributes),
    )
    for proc in trace.processes():
        if proc.location.id in wanted:
            sub.add_process(proc.location, proc.events)
    return sub
