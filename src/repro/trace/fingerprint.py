"""Stable, content-addressed trace fingerprints.

The lazy analysis session (:mod:`repro.core.session`) memoizes every
derived artifact — invocation tables, profiles, SOS-times — under a key
that must identify the *content* of a trace, not the Python object or
the file it came from.  This module computes that key: a BLAKE2 digest
over the definition records plus one digest per rank over the raw
event columns.

Two properties matter:

* **Stability across codecs.**  Both trace formats (JSONL and binary
  ``.rpt``) round-trip every definition field and every event column
  with canonical dtypes (enforced by :class:`~repro.trace.events.EventList`),
  so a trace written to disk and read back fingerprints identically.
* **Content addressing.**  The run ``name`` and free-form ``attributes``
  are deliberately excluded: they do not influence any analysis result,
  so renaming a run must not invalidate its cached artifacts.  Per-rank
  digests additionally let two traces that share identical event
  streams (e.g. a merged trace) share per-rank replay artifacts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from .events import EventList
from .trace import Trace

__all__ = [
    "TraceFingerprint",
    "combine_fingerprint",
    "fingerprint_definitions",
    "fingerprint_events",
    "fingerprint_trace",
]

#: Event columns included in per-rank digests, in canonical order.
_EVENT_COLUMNS = ("time", "kind", "ref", "partner", "size", "tag", "value")

_DIGEST_SIZE = 16  # 128-bit BLAKE2b: collision-safe for cache keys


def _hasher() -> "hashlib._Hash":
    return hashlib.blake2b(digest_size=_DIGEST_SIZE)


def fingerprint_events(events: EventList) -> str:
    """Digest of one event stream's column arrays (hex string)."""
    h = _hasher()
    for name in _EVENT_COLUMNS:
        arr = getattr(events, name)
        h.update(name.encode("ascii"))
        h.update(arr.tobytes())
    return h.hexdigest()


def fingerprint_definitions(trace: Trace) -> str:
    """Digest of the definition records (regions, metrics, locations)."""
    records = {
        "regions": [
            (r.id, r.name, int(r.paradigm), int(r.role), r.source_file, r.line)
            for r in trace.regions
        ],
        "metrics": [
            (m.id, m.name, m.unit, int(m.mode), m.description)
            for m in trace.metrics
        ],
        "locations": [
            (p.location.id, p.location.name, p.location.group)
            for p in trace.processes()
        ],
    }
    h = _hasher()
    h.update(json.dumps(records, sort_keys=True).encode("utf-8"))
    return h.hexdigest()


@dataclass(frozen=True, slots=True)
class TraceFingerprint:
    """Content digest of one trace.

    Attributes
    ----------
    definitions:
        Digest of the definition records.
    per_rank:
        ``(rank, digest)`` pairs in rank order — the unit of sharing
        for per-rank artifacts such as replayed invocation tables.
    hexdigest:
        Combined digest of the above; the cache key prefix for
        whole-trace artifacts.
    """

    definitions: str
    per_rank: tuple[tuple[int, str], ...]
    hexdigest: str

    def short(self, n: int = 12) -> str:
        """Abbreviated combined digest for display."""
        return self.hexdigest[:n]

    def rank_digest(self, rank: int) -> str:
        """Digest of one rank's event stream (KeyError if absent)."""
        for r, digest in self.per_rank:
            if r == rank:
                return digest
        raise KeyError(f"rank {rank} not in fingerprint")


def combine_fingerprint(
    definitions: str, per_rank: "tuple[tuple[int, str], ...]"
) -> TraceFingerprint:
    """Assemble a :class:`TraceFingerprint` from already-computed digests.

    The sharded engine (:mod:`repro.core.shard`) computes per-rank
    event digests inside worker processes; combining them here — the
    same code :func:`fingerprint_trace` uses — guarantees the sharded
    session addresses the identical cache entries.
    """
    h = _hasher()
    h.update(definitions.encode("ascii"))
    for rank, digest in per_rank:
        h.update(str(rank).encode("ascii"))
        h.update(digest.encode("ascii"))
    return TraceFingerprint(
        definitions=definitions, per_rank=per_rank, hexdigest=h.hexdigest()
    )


def fingerprint_trace(trace: Trace) -> TraceFingerprint:
    """Compute the full content fingerprint of ``trace``."""
    per_rank = tuple(
        (rank, fingerprint_events(trace.events_of(rank))) for rank in trace.ranks
    )
    return combine_fingerprint(fingerprint_definitions(trace), per_rank)
