"""Trace data model and I/O (OTF2-like substrate).

Public surface:

* :class:`Trace`, :class:`ProcessTrace` — immutable trace containers.
* :class:`EventList`, :class:`EventKind`, :class:`Event` — event streams.
* :class:`TraceBuilder` — programmatic construction.
* Definitions: :class:`Region`, :class:`Metric`, :class:`Location`,
  :class:`Paradigm`, :class:`RegionRole`, :class:`MetricMode`.
* I/O: :func:`read_trace`, :func:`read_jsonl`, :func:`write_jsonl`,
  :func:`read_binary`, :func:`write_binary`.
* Transformations: :func:`clip_trace`, :func:`filter_regions`,
  :func:`select_ranks`, :func:`merge_traces`.
* Validation: :func:`validate_trace`.
"""

from .binio import read_binary, write_binary
from .builder import ProcessBuilder, TraceBuilder
from .cursor import (
    EventBatch,
    EventCursor,
    FeedCursor,
    IndexCursor,
    JsonlStreamCursor,
    TailCursor,
)
from .definitions import (
    Location,
    Metric,
    MetricMode,
    MetricRegistry,
    Paradigm,
    Region,
    RegionRegistry,
    RegionRole,
    default_role,
)
from .events import Event, EventKind, EventList, EventListBuilder, NO_PARTNER, NO_REF
from .filters import clip_trace, filter_regions, select_ranks
from .fingerprint import (
    TraceFingerprint,
    fingerprint_definitions,
    fingerprint_events,
    fingerprint_trace,
)
from .merge import merge_traces
from .reader import TraceIndex, read_jsonl, read_trace, read_trace_ranks
from .trace import ProcessTrace, Trace
from .validate import ValidationIssue, ValidationReport, validate_trace
from .writer import write_jsonl

__all__ = [
    "Event",
    "EventBatch",
    "EventCursor",
    "EventKind",
    "EventList",
    "EventListBuilder",
    "FeedCursor",
    "IndexCursor",
    "JsonlStreamCursor",
    "Location",
    "Metric",
    "MetricMode",
    "MetricRegistry",
    "NO_PARTNER",
    "NO_REF",
    "Paradigm",
    "ProcessBuilder",
    "ProcessTrace",
    "Region",
    "RegionRegistry",
    "RegionRole",
    "TailCursor",
    "Trace",
    "TraceBuilder",
    "TraceFingerprint",
    "TraceIndex",
    "ValidationIssue",
    "ValidationReport",
    "clip_trace",
    "default_role",
    "filter_regions",
    "fingerprint_definitions",
    "fingerprint_events",
    "fingerprint_trace",
    "merge_traces",
    "read_binary",
    "read_jsonl",
    "read_trace",
    "read_trace_ranks",
    "select_ranks",
    "validate_trace",
    "write_binary",
    "write_jsonl",
]
