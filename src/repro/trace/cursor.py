"""Chunked, pull-based event cursors.

The incremental analysis engine (:mod:`repro.core.incremental`)
consumes *cursors*: iterators that yield time-ordered, column-projected
event batches per rank, tagged with an end-of-stream marker.  A cursor
decouples the analysis kernel from where the events come from — the
paper's batch workflow and the in-situ workflow it calls feasible but
unimplemented (Section III) become two drivers of one engine:

* :class:`IndexCursor` — a complete ``.rpt``/``.jsonl`` file through
  the mmap-backed :class:`~repro.trace.reader.TraceIndex`.  For v2
  ``raw`` columns each batch is read (or mmap-viewed) as an exact byte
  range, so peak memory is bounded by the chunk size, not the trace.
* :class:`TailCursor` — a ``.jsonl`` file still being written by a
  live run, polled for complete lines; repeated ``events`` records per
  location are consumed as successive chunks.
* :class:`JsonlStreamCursor` — the same line protocol over any
  file-like object (a pipe, ``socket.makefile()``), read blocking.
* :class:`FeedCursor` — an in-process push queue for producers living
  in the same interpreter.

All cursors share the same contract: batches of one rank arrive in
time order, the batch marked ``final`` is the last one for that rank,
and ``definitions`` exposes a :class:`~repro.trace.trace.Trace`
skeleton (regions, metrics, locations, no events) so consumers can
build classifiers and registries before the first event arrives.
"""

from __future__ import annotations

import json
import os
import time as _time
from collections import deque
from dataclasses import dataclass
from typing import IO, Iterator, Sequence

import numpy as np

from .. import obs
from .events import _DTYPES as _CANONICAL_DTYPES
from .events import EventList
from .trace import Trace

__all__ = [
    "EventBatch",
    "EventCursor",
    "FeedCursor",
    "IndexCursor",
    "JsonlStreamCursor",
    "TailCursor",
]

#: Telemetry: events and (approximate) bytes served by each cursor kind.
_C_INDEX_EVENTS = obs.counter("cursor.index.events")
_C_INDEX_BYTES = obs.counter("cursor.index.bytes")
_C_TAIL_EVENTS = obs.counter("cursor.tail.events")
_C_TAIL_BYTES = obs.counter("cursor.tail.bytes")
_C_FEED_EVENTS = obs.counter("cursor.feed.events")


@dataclass(frozen=True, slots=True)
class EventBatch:
    """One time-ordered chunk of one rank's event stream.

    ``final`` marks the last batch of the rank; a rank with no events
    is represented by a single empty final batch, so every rank the
    cursor covers is announced exactly once as finished.
    """

    rank: int
    events: EventList
    final: bool


class EventCursor:
    """Iterator of :class:`EventBatch` (base class / protocol).

    Subclasses implement :meth:`_batches` as a generator and provide
    :attr:`definitions`.  Within one rank, batches arrive in time
    order; ranks may interleave (live feeds) or not (file replay) —
    consumers must not assume either.
    """

    def __iter__(self) -> Iterator[EventBatch]:
        return self._iter()

    def _iter(self) -> Iterator[EventBatch]:
        yield from self._batches()

    def _batches(self) -> Iterator[EventBatch]:  # pragma: no cover
        raise NotImplementedError

    @property
    def definitions(self) -> Trace:  # pragma: no cover - interface
        """Trace skeleton: definitions and locations, empty streams."""
        raise NotImplementedError

    @property
    def ranks(self) -> list[int]:
        """Sorted ids of the ranks this cursor will announce."""
        return self.definitions.ranks


def _chunk_bounds(n: int, chunk_events: int | None):
    """Start offsets of chunk slices over ``n`` events (at least one)."""
    if n == 0:
        return [0]
    if chunk_events is None or chunk_events >= n:
        return [0]
    step = max(int(chunk_events), 1)
    return list(range(0, n, step))


class IndexCursor(EventCursor):
    """Batches of a complete trace file via :class:`TraceIndex`.

    Ranks are yielded in ascending order, each as one or more
    consecutive batches of at most ``chunk_events`` events.  For
    binary files whose requested columns use the ``raw`` codec (the
    v2 layout) each batch is materialised from its exact byte range —
    an mmap view when available, a bounded ``seek``/``read``
    otherwise — so peak memory follows the chunk size.  zlib columns
    and ``.jsonl`` records cannot be partially decoded; those load one
    rank at a time and hand out views into it.
    """

    def __init__(
        self,
        index,
        ranks: Sequence[int] | None = None,
        columns: Sequence[str] | None = None,
        chunk_events: int | None = None,
    ) -> None:
        if chunk_events is not None and chunk_events <= 0:
            raise ValueError("chunk_events must be positive")
        self._index = index
        self._ranks = sorted(index.ranks if ranks is None else ranks)
        if len(set(self._ranks)) != len(self._ranks):
            raise ValueError(f"duplicate ranks requested: {self._ranks!r}")
        self._columns = tuple(columns) if columns is not None else None
        self.chunk_events = chunk_events
        self._definitions: Trace | None = None

    @property
    def definitions(self) -> Trace:
        if self._definitions is None:
            self._definitions = self._index.definitions_trace()
        return self._definitions

    @property
    def ranks(self) -> list[int]:
        return list(self._ranks)

    def _batches(self) -> Iterator[EventBatch]:
        index = self._index
        for rank in self._ranks:
            n = index.num_events_of(rank)
            if n == 0:
                yield EventBatch(rank, EventList.empty(), True)
                continue
            starts = _chunk_bounds(n, self.chunk_events)
            if index.supports_slices(rank, self._columns) and len(starts) > 1:
                for i, start in enumerate(starts):
                    stop = min(n, start + int(self.chunk_events))
                    events = index.load_events(
                        rank, columns=self._columns, start=start, stop=stop
                    )
                    self._count(events)
                    yield EventBatch(rank, events, i == len(starts) - 1)
                continue
            whole = index.load(
                [rank], columns=self._columns
            ).events_of(rank)
            if len(starts) == 1:
                self._count(whole)
                yield EventBatch(rank, whole, True)
                continue
            for i, start in enumerate(starts):
                events = whole[start : start + int(self.chunk_events)]
                self._count(events)
                yield EventBatch(rank, events, i == len(starts) - 1)

    @staticmethod
    def _count(events: EventList) -> None:
        _C_INDEX_EVENTS.add(len(events))
        _C_INDEX_BYTES.add(
            sum(getattr(events, c).nbytes for c in events.loaded_columns)
        )


# ---------------------------------------------------------------------------
# Live .jsonl protocol (tail / pipe / socket)
# ---------------------------------------------------------------------------
#
# The live protocol is the writer's .jsonl layout relaxed in two ways:
# a location may carry *multiple* ``events`` records (each one chunk,
# time-contiguous with its predecessor), and an optional
# ``{"record": "end"}`` sentinel marks a clean end of the run.  A file
# written by :func:`repro.trace.writer.write_jsonl` is therefore a
# valid (single-chunk-per-rank) live stream.


class _JsonlProtocol:
    """Shared incremental parser for the live ``.jsonl`` protocol."""

    def __init__(self, columns: Sequence[str] | None = None) -> None:
        from .definitions import MetricRegistry, RegionRegistry

        self._regions = RegionRegistry()
        self._metrics = MetricRegistry()
        self._locations: dict[int, object] = {}
        self._name = "trace"
        self._attributes: dict[str, str] = {}
        self._header_seen = False
        self._definitions: Trace | None = None
        self._project = None
        if columns is not None:
            self._project = tuple(sorted(set(columns) | {"time"}))
        self.ended = False
        #: ranks that have produced at least one events record
        self.seen_ranks: set[int] = set()

    @property
    def definitions(self) -> Trace | None:
        """Frozen definitions, available once the first events record
        (or the end sentinel) has been parsed."""
        return self._definitions

    def _freeze(self) -> Trace:
        if self._definitions is None:
            trace = Trace(
                regions=self._regions,
                metrics=self._metrics,
                name=self._name,
                attributes=self._attributes,
            )
            for loc_id in sorted(self._locations):
                trace.add_process(self._locations[loc_id], EventList.empty())
            self._definitions = trace
        return self._definitions

    def _events_of(self, record: dict) -> EventList:
        from .reader import TraceFormatError, _events_from_record

        if self._project is None:
            return _events_from_record(record)
        try:
            arrays = {
                col: np.asarray(record[col], dtype=_CANONICAL_DTYPES[col])
                for col in self._project
            }
        except KeyError as err:
            raise TraceFormatError(
                f"location {record.get('location')}: events record is "
                f"missing column {err.args[0]!r}"
            ) from err
        return EventList.projected(arrays)

    def parse_line(self, line: str) -> EventBatch | None:
        """Parse one complete line; an events record yields a batch."""
        from .reader import (
            TraceFormatError,
            _add_definition_record,
            _check_header,
        )

        line = line.strip()
        if not line:
            return None
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            raise TraceFormatError(f"corrupt record: {err}") from err
        if not isinstance(record, dict):
            raise TraceFormatError(f"non-object record: {line[:40]!r}")
        if not self._header_seen:
            _check_header(record)
            self._header_seen = True
            self._name = record.get("name", "trace")
            self._attributes = record.get("attributes", {})
            return None
        kind = record.get("record")
        if kind == "end":
            self.ended = True
            self._freeze()
            return None
        if self._definitions is None and _add_definition_record(
            record, self._regions, self._metrics, self._locations
        ):
            return None
        if kind != "events":
            raise TraceFormatError(f"unknown record type {kind!r}")
        self._freeze()
        rank = record["location"]
        if rank not in self._locations:
            raise TraceFormatError(f"events for undefined location {rank}")
        self.seen_ranks.add(rank)
        events = self._events_of(record)
        _C_TAIL_EVENTS.add(len(events))
        _C_TAIL_BYTES.add(len(line))
        return EventBatch(rank, events, False)

    def final_batches(self) -> Iterator[EventBatch]:
        """Empty final batches closing every defined rank."""
        defs = self._freeze()
        for rank in defs.ranks:
            yield EventBatch(rank, EventList.empty(), True)


class JsonlStreamCursor(EventCursor):
    """Live-protocol cursor over any file-like object.

    Reads lines with blocking ``readline`` — the natural adapter for a
    pipe or ``socket.makefile("r")``.  The stream ends at the
    ``{"record": "end"}`` sentinel or at EOF.
    """

    def __init__(
        self, fp: IO[str], columns: Sequence[str] | None = None
    ) -> None:
        self._fp = fp
        self._protocol = _JsonlProtocol(columns)

    @property
    def definitions(self) -> Trace:
        defs = self._protocol.definitions
        if defs is None:
            raise RuntimeError(
                "definitions not available yet — iterate the cursor (or "
                "use TailCursor.wait_definitions) before asking for them"
            )
        return defs

    def _batches(self) -> Iterator[EventBatch]:
        proto = self._protocol
        for line in self._fp:
            batch = proto.parse_line(line)
            if batch is not None:
                yield batch
            if proto.ended:
                break
        yield from proto.final_batches()


class TailCursor(EventCursor):
    """Live-protocol cursor tailing a growing ``.jsonl`` file.

    Polls ``path`` every ``poll_interval`` seconds for newly completed
    (newline-terminated) lines; partial lines are buffered until their
    terminator arrives, so a writer flushing mid-record never corrupts
    a batch.  The stream ends when the writer appends the
    ``{"record": "end"}`` sentinel, or — if ``idle_timeout`` is set —
    when no new bytes appear for that many seconds.

    ``backlog_events`` exposes how many events have been parsed but
    not yet yielded to the consumer; :class:`repro.core.streaming.
    StreamingAnalyzer.consume` publishes it as the ``stream.lag_events``
    gauge.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        columns: Sequence[str] | None = None,
        poll_interval: float = 0.05,
        idle_timeout: float | None = None,
    ) -> None:
        self.path = str(path)
        if not self.path.endswith(".jsonl"):
            from .reader import TraceFormatError

            raise TraceFormatError(
                f"only .jsonl traces can be tailed: {self.path!r}"
            )
        self.poll_interval = float(poll_interval)
        self.idle_timeout = idle_timeout
        self._protocol = _JsonlProtocol(columns)
        self._pending: deque[EventBatch] = deque()
        self._offset = 0
        self._partial = b""
        self._exhausted = False

    @property
    def definitions(self) -> Trace:
        defs = self._protocol.definitions
        if defs is None:
            defs = self.wait_definitions()
        return defs

    @property
    def backlog_events(self) -> int:
        """Events parsed from the file but not yet yielded."""
        return sum(len(b.events) for b in self._pending)

    def wait_definitions(self, timeout: float | None = None) -> Trace:
        """Block (polling) until the definition records are complete.

        Definitions freeze at the first ``events`` record or at the end
        sentinel.  Batches parsed while waiting are queued, not lost.
        """
        deadline = None if timeout is None else _time.monotonic() + timeout
        idle_deadline = self._idle_deadline()
        while self._protocol.definitions is None:
            if self._poll():
                idle_deadline = self._idle_deadline()
            elif self._protocol.ended or (
                idle_deadline is not None
                and _time.monotonic() >= idle_deadline
            ):
                return self._protocol._freeze()
            if self._protocol.definitions is not None:
                break
            if deadline is not None and _time.monotonic() >= deadline:
                raise TimeoutError(
                    f"no definition records in {self.path!r} "
                    f"after {timeout} seconds"
                )
            _time.sleep(self.poll_interval)
        return self._protocol.definitions

    def _idle_deadline(self) -> float | None:
        if self.idle_timeout is None:
            return None
        return _time.monotonic() + self.idle_timeout

    def _poll(self) -> bool:
        """Read newly completed lines; True if any data was consumed."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return False
        if size <= self._offset:
            return False
        with open(self.path, "rb") as fp:
            fp.seek(self._offset)
            data = fp.read(size - self._offset)
        self._offset += len(data)
        data = self._partial + data
        lines = data.split(b"\n")
        self._partial = lines.pop()  # bytes after the last terminator
        consumed = False
        for raw in lines:
            consumed = True
            batch = self._protocol.parse_line(raw.decode("utf-8"))
            if batch is not None:
                self._pending.append(batch)
            if self._protocol.ended:
                break
        return consumed

    def _batches(self) -> Iterator[EventBatch]:
        if self._exhausted:
            return
        idle_deadline = self._idle_deadline()
        while True:
            if self._poll():
                idle_deadline = self._idle_deadline()
            while self._pending:
                yield self._pending.popleft()
            if self._protocol.ended:
                break
            if (
                idle_deadline is not None
                and _time.monotonic() >= idle_deadline
            ):
                break
            _time.sleep(self.poll_interval)
        self._exhausted = True
        yield from self._protocol.final_batches()


class FeedCursor(EventCursor):
    """In-process push-based cursor.

    A producer in the same interpreter pushes batches with
    :meth:`push`, marks ranks done with :meth:`finish_rank` and calls
    :meth:`close` when the run is over; the consumer iterates.  The
    queue is unbounded and non-blocking: iterating past the last
    pushed batch before ``close()`` raises :class:`RuntimeError`
    rather than deadlocking (drive producer and consumer alternately,
    or from separate threads with an external queue if you need
    back-pressure).
    """

    def __init__(self, definitions: Trace) -> None:
        self._definitions = definitions
        self._queue: deque[EventBatch] = deque()
        self._finished: set[int] = set()
        self._closed = False

    @property
    def definitions(self) -> Trace:
        return self._definitions

    @property
    def backlog_events(self) -> int:
        return sum(len(b.events) for b in self._queue)

    def push(self, rank: int, events: EventList, final: bool = False) -> None:
        if self._closed:
            raise RuntimeError("cursor is closed")
        if rank in self._finished:
            raise ValueError(f"rank {rank} is already finished")
        if rank not in self._definitions.ranks:
            raise ValueError(f"rank {rank} is not defined for this cursor")
        if final:
            self._finished.add(rank)
        _C_FEED_EVENTS.add(len(events))
        self._queue.append(EventBatch(rank, events, final))

    def finish_rank(self, rank: int) -> None:
        """Mark ``rank`` complete (an empty final batch)."""
        self.push(rank, EventList.empty(), final=True)

    def close(self) -> None:
        """End the feed; unfinished ranks get empty final batches."""
        if self._closed:
            return
        for rank in self._definitions.ranks:
            if rank not in self._finished:
                self.finish_rank(rank)
        self._closed = True

    def _batches(self) -> Iterator[EventBatch]:
        while True:
            while self._queue:
                yield self._queue.popleft()
            if self._closed:
                return
            raise RuntimeError(
                "feed exhausted before close() — push more batches or "
                "close the cursor"
            )
