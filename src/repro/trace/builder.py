"""Programmatic construction of well-formed traces.

:class:`TraceBuilder` is the writing counterpart of :class:`Trace`: it
owns the definition registries and one stack-checked per-process event
builder (:class:`ProcessBuilder`) per location.  It is used by the
measurement layer, the simulator's trace recorder, the toy traces from
the paper's figures and by tests.
"""

from __future__ import annotations

from typing import Mapping

from .definitions import (
    Location,
    MetricMode,
    MetricRegistry,
    Paradigm,
    RegionRegistry,
    RegionRole,
)
from .events import EventListBuilder
from .trace import Trace

__all__ = ["TraceBuilder", "ProcessBuilder"]


class ProcessBuilder:
    """Stack-checked event writer for a single location.

    Guarantees that the produced stream is well-formed: timestamps are
    non-decreasing and every ``leave`` matches the region on top of the
    call stack.
    """

    def __init__(self, builder: "TraceBuilder", location: Location) -> None:
        self._trace_builder = builder
        self.location = location
        self._events = EventListBuilder()
        self._stack: list[int] = []

    # -- stack state ----------------------------------------------------

    @property
    def depth(self) -> int:
        """Current call-stack depth."""
        return len(self._stack)

    @property
    def current_region(self) -> int | None:
        """Region id on top of the stack, or ``None`` at top level."""
        return self._stack[-1] if self._stack else None

    @property
    def now(self) -> float | None:
        """Timestamp of the last recorded event."""
        return self._events.last_time

    # -- event writing ----------------------------------------------------

    def enter(self, time: float, region: int | str) -> int:
        """Record entering a region (by id or by name) and return its id."""
        region_id = self._resolve(region)
        self._events.enter(time, region_id)
        self._stack.append(region_id)
        return region_id

    def leave(self, time: float, region: int | str | None = None) -> int:
        """Record leaving the current region.

        If ``region`` is given it must match the top of the stack; this
        catches interleaved enter/leave bugs in workload generators.
        """
        if not self._stack:
            raise ValueError(
                f"leave at t={time} on {self.location.name}: stack is empty"
            )
        top = self._stack[-1]
        if region is not None:
            region_id = self._resolve(region)
            if region_id != top:
                raise ValueError(
                    f"leave({self._region_name(region_id)!r}) at t={time} does not "
                    f"match open region {self._region_name(top)!r}"
                )
        self._stack.pop()
        self._events.leave(time, top)
        return top

    def call(self, t_enter: float, t_leave: float, region: int | str) -> None:
        """Record a complete leaf invocation (enter + leave)."""
        if t_leave < t_enter:
            raise ValueError(f"negative duration: [{t_enter}, {t_leave}]")
        self.enter(t_enter, region)
        self.leave(t_leave)

    def send(self, time: float, partner: int, size: int = 0, tag: int = 0) -> None:
        self._events.send(time, partner, size, tag)

    def recv(self, time: float, partner: int, size: int = 0, tag: int = 0) -> None:
        self._events.recv(time, partner, size, tag)

    def metric(self, time: float, metric: int | str, value: float) -> None:
        """Record a metric sample (metric by id or by name)."""
        if isinstance(metric, str):
            metric = self._trace_builder.metrics.id_of(metric)
        self._events.metric(time, metric, value)

    # -- helpers ----------------------------------------------------------

    def _resolve(self, region: int | str) -> int:
        if isinstance(region, str):
            return self._trace_builder.regions.id_of(region)
        return int(region)

    def _region_name(self, region_id: int) -> str:
        return self._trace_builder.regions[region_id].name

    def finish(self) -> None:
        """Assert the call stack unwound completely."""
        if self._stack:
            open_names = [self._region_name(r) for r in self._stack]
            raise ValueError(
                f"{self.location.name}: unclosed regions at end of trace: "
                f"{open_names}"
            )


class TraceBuilder:
    """Build a complete :class:`Trace` with shared definitions.

    Example
    -------
    >>> tb = TraceBuilder(name="toy")
    >>> tb.region("main"); tb.region("MPI_Barrier", paradigm=Paradigm.MPI)
    0
    1
    >>> p0 = tb.process(0)
    >>> p0.enter(0.0, "main"); p0.leave(1.0)
    0
    0
    >>> trace = tb.freeze()
    """

    def __init__(
        self,
        name: str = "trace",
        attributes: Mapping[str, str] | None = None,
    ) -> None:
        self.name = name
        self.attributes = dict(attributes or {})
        self.regions = RegionRegistry()
        self.metrics = MetricRegistry()
        self._processes: dict[int, ProcessBuilder] = {}

    # -- definitions ------------------------------------------------------

    def region(
        self,
        name: str,
        paradigm: Paradigm = Paradigm.USER,
        role: RegionRole | None = None,
        source_file: str = "",
        line: int = 0,
    ) -> int:
        """Register a region definition and return its id."""
        return self.regions.register(
            name, paradigm=paradigm, role=role, source_file=source_file, line=line
        )

    def metric(
        self,
        name: str,
        unit: str = "#",
        mode: MetricMode = MetricMode.ABSOLUTE,
        description: str = "",
    ) -> int:
        """Register a metric definition and return its id."""
        return self.metrics.register(
            name, unit=unit, mode=mode, description=description
        )

    # -- processes ----------------------------------------------------------

    def process(self, rank: int, name: str | None = None, group: str = "MPI") -> ProcessBuilder:
        """Return the (lazily created) builder for one location."""
        pb = self._processes.get(rank)
        if pb is None:
            location = Location(id=rank, name=name or f"Process {rank}", group=group)
            pb = ProcessBuilder(self, location)
            self._processes[rank] = pb
        return pb

    @property
    def num_processes(self) -> int:
        return len(self._processes)

    # -- finalisation ----------------------------------------------------------

    def freeze(self, check_stacks: bool = True) -> Trace:
        """Produce the immutable :class:`Trace`.

        Parameters
        ----------
        check_stacks:
            When true (default), raise if any process has unclosed
            regions; disable only for deliberately truncated traces.
        """
        trace = Trace(
            regions=self.regions,
            metrics=self.metrics,
            name=self.name,
            attributes=self.attributes,
        )
        for rank in sorted(self._processes):
            pb = self._processes[rank]
            if check_stacks:
                pb.finish()
            trace.add_process(pb.location, pb._events.freeze())
        return trace
