"""Self-contained HTML analysis reports.

Bundles the text findings, the interactive SVG heat map (tooltips per
segment) and the raster views (timeline, activity shares, counters)
into a single HTML file with no external assets — the shareable
artifact of an analysis session, standing in for a Vampir screenshot
plus notes.

All views are fed from the analysis' single set of invocation tables
(``analysis.profile.tables``); when the analysis came from an
:class:`~repro.core.session.AnalysisSession` those tables, the SOS
result and the heat grid are session-memoized, so rendering a report
after an ``analyze`` run recomputes nothing and the report carries the
trace's content fingerprint for provenance.
"""

from __future__ import annotations

import base64
import html
import os
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from .core.pipeline import VariationAnalysis

__all__ = ["render_html_report"]

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em auto;
       max-width: 1180px; color: #1c1c1c; background: #fcfcfa; }
h1 { font-size: 1.5em; border-bottom: 2px solid #444; padding-bottom: .3em; }
h2 { font-size: 1.15em; margin-top: 1.8em; }
table { border-collapse: collapse; margin: .8em 0; font-size: .92em; }
th, td { border: 1px solid #cfcfc8; padding: .35em .7em; text-align: left; }
th { background: #efefe8; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.finding { background: #fff3f0; border-left: 4px solid #c43; padding: .5em .8em;
           margin: .4em 0; }
.ok { background: #f0f7f0; border-left: 4px solid #5a5; padding: .5em .8em; }
.meta { color: #666; font-size: .88em; }
img, svg { max-width: 100%; height: auto; border: 1px solid #ddd; }
code { background: #f0f0ea; padding: 0 .25em; }
"""


def _png_tag(canvas, alt: str) -> str:
    from .viz.png import encode_png

    data = base64.b64encode(encode_png(canvas.pixels)).decode("ascii")
    return (
        f'<img alt="{html.escape(alt)}" '
        f'src="data:image/png;base64,{data}"/>'
    )


def _candidates_table(analysis: "VariationAnalysis") -> str:
    rows = []
    for i, cand in enumerate(analysis.selection.candidates[:10]):
        marker = " ← selected" if i == analysis.selection.level else ""
        rows.append(
            f"<tr><td>{i}</td><td><code>{html.escape(cand.name)}</code>"
            f"{marker}</td>"
            f'<td class="num">{cand.inclusive_sum:.6g}</td>'
            f'<td class="num">{cand.count}</td></tr>'
        )
    return (
        "<table><tr><th>level</th><th>function</th>"
        "<th>aggregated inclusive [s]</th><th>invocations</th></tr>"
        + "".join(rows)
        + "</table>"
    )


def _findings_section(analysis: "VariationAnalysis") -> str:
    imb = analysis.imbalance
    parts = []
    if not imb.has_findings:
        parts.append(
            '<div class="ok">No significant runtime imbalance detected.</div>'
        )
    for h in imb.hot_ranks[:10]:
        parts.append(
            f'<div class="finding"><b>Hot rank {h.rank}</b>: total SOS '
            f"{h.total_sos:.6g}s (robust z = {h.zscore:.1f})</div>"
        )
    for h in imb.hot_segments[:10]:
        parts.append(
            f'<div class="finding"><b>Hot segment</b>: rank {h.rank}, '
            f"invocation {h.segment_index} "
            f"[{h.t_start:.4g}s – {h.t_stop:.4g}s], SOS {h.sos:.6g}s "
            f"(score {h.score:.1f})</div>"
        )
    return "\n".join(parts)


def _per_rank_table(analysis: "VariationAnalysis", k: int = 10) -> str:
    totals = analysis.sos.per_rank_total()
    ranks = analysis.sos.ranks
    order = np.argsort(-totals)[:k]
    rows = "".join(
        f'<tr><td class="num">{ranks[i]}</td>'
        f'<td class="num">{totals[i]:.6g}</td></tr>'
        for i in order
    )
    return (
        "<table><tr><th>rank</th><th>total SOS [s]</th></tr>"
        + rows
        + "</table>"
    )


def render_html_report(
    analysis: "VariationAnalysis",
    path: str | os.PathLike | None = None,
    bins: int = 512,
    title: str | None = None,
    include_counters: bool = True,
) -> str:
    """Render one analysis to a self-contained HTML document.

    Returns the HTML string; additionally writes ``path`` when given.
    """
    from .core.activity import activity_shares
    from .trace.definitions import Paradigm
    from .viz.areachart import render_area_png
    from .viz.counterchart import render_counter_png
    from .viz.heatmap import render_sos_svg
    from .viz.timeline import render_timeline_png

    trace = analysis.trace
    if title is None:
        title = f"Performance-variation report — {trace.name}"

    mpi_share = analysis.profile.paradigm_share(Paradigm.MPI)
    session = getattr(analysis, "session", None)
    sections: list[str] = []
    sections.append(f"<h1>{html.escape(title)}</h1>")
    meta = (
        f"{trace.num_processes} processes · {trace.num_events} events · "
        f"duration {trace.duration:.6g}s · MPI share "
        f"{100 * mpi_share:.1f}% · dominant function "
        f"<code>{html.escape(analysis.dominant_name)}</code>"
    )
    if session is not None:
        meta += f" · trace fingerprint <code>{session.fingerprint.short()}</code>"
    sections.append(f'<p class="meta">{meta}</p>')

    sections.append("<h2>Findings</h2>")
    sections.append(_findings_section(analysis))
    sections.append(
        f"<p>Trend of SOS-times: {html.escape(analysis.trend.describe())}"
        f"<br/>Trend of plain durations: "
        f"{html.escape(analysis.duration_trend.describe())}</p>"
    )

    sections.append("<h2>SOS heat map (blue = fast, red = slow)</h2>")
    svg = render_sos_svg(analysis, width=1100.0)
    sections.append(svg.tostring().split("?>", 1)[1])  # strip XML decl

    sections.append("<h2>Master timeline</h2>")
    timeline = render_timeline_png(
        trace, tables=analysis.profile.tables, width=1100
    )
    sections.append(_png_tag(timeline, "master timeline"))

    sections.append("<h2>Activity shares over time</h2>")
    shares = activity_shares(trace, analysis.profile.tables, bins=min(bins, 256))
    area = render_area_png(shares, width=1100)
    sections.append(_png_tag(area, "activity shares"))

    if include_counters and len(trace.metrics):
        sections.append("<h2>Hardware counters</h2>")
        for metric in trace.metrics:
            chart = render_counter_png(trace, metric.id, bins=bins, width=1100)
            sections.append(_png_tag(chart, metric.name))

    sections.append("<h2>Dominant-function candidates</h2>")
    sections.append(_candidates_table(analysis))

    sections.append("<h2>Slowest ranks (total SOS)</h2>")
    sections.append(_per_rank_table(analysis))

    doc = (
        "<!DOCTYPE html><html><head><meta charset='utf-8'/>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{_STYLE}</style></head><body>"
        + "\n".join(sections)
        + "</body></html>"
    )
    if path is not None:
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(doc)
    return doc
