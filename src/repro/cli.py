"""Command-line interface: simulate, analyze, render, inspect traces.

Trace-consuming subcommands are *session-aware*: with ``--cache-dir``
they persist replay/profile/SOS artifacts keyed by the trace's content
fingerprint, so a second ``analyze`` (or a follow-up ``render`` /
``explain`` / ``compare``) of the same trace recomputes nothing.

Examples
--------
::

    repro-trace simulate cosmo_specs -o /tmp/cs.rpt
    repro-trace analyze /tmp/cs.rpt --cache-dir /tmp/cache --ascii
    repro-trace analyze /tmp/cs.rpt --cache-dir /tmp/cache --html cs.html
    repro-trace analyze /tmp/cs.rpt --function specs_microphysics
    repro-trace profile /tmp/cs.rpt -k 20
    repro-trace cache info --cache-dir /tmp/cache
    repro-trace baselines /tmp/cs.rpt
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main", "build_parser"]

_WORKLOADS = (
    "cosmo_specs",
    "cosmo_specs_fd4",
    "wrf",
    "synthetic",
    "hybrid_openmp",
    "idle_wave",
    "late_sender",
    "serialization",
    "congestion",
)

#: Phenomenon workloads whose generators take ``ranks=`` (not ``processes=``)
#: and no seed — the simulation is deterministic by construction.
_PHENOMENON_WORKLOADS = (
    "idle_wave",
    "late_sender",
    "serialization",
    "congestion",
)

#: Exit code for unusable input paths / malformed traces (sysexits-ish).
EXIT_BAD_INPUT = 2


class CLIError(Exception):
    """User-facing error; printed to stderr, exits with EXIT_BAD_INPUT."""


def _version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # pragma: no cover - metadata missing in dev trees
        from . import __version__

        return __version__


def _load_trace(path: str, columns=None):
    """Read a trace, mapping unusable paths to a consistent CLIError.

    ``columns`` projects the load (chunked reader) to the named event
    columns — commands that only touch a few columns pass their
    declared set and skip decompressing the rest.
    """
    from .trace import read_trace
    from .trace.reader import TraceFormatError, TraceIndex

    try:
        if columns is not None:
            return TraceIndex(path).load(None, columns=columns)
        return read_trace(path)
    except FileNotFoundError:
        raise CLIError(f"trace file not found: {path}")
    except IsADirectoryError:
        raise CLIError(f"trace path is a directory: {path}")
    except (TraceFormatError, ValueError) as err:
        raise CLIError(f"cannot read trace {path}: {err}")
    except OSError as err:
        raise CLIError(f"cannot read trace {path}: {err}")


def _shard_kwargs(args) -> dict:
    """Validate and collect --shards/--max-memory-mb."""
    shards = getattr(args, "shards", None)
    max_memory_mb = getattr(args, "max_memory_mb", None)
    if shards is not None and shards < 1:
        raise CLIError(f"--shards must be >= 1, got {shards}")
    if max_memory_mb is not None and max_memory_mb <= 0:
        raise CLIError(f"--max-memory-mb must be > 0, got {max_memory_mb}")
    return {"shards": shards, "max_memory_mb": max_memory_mb}


def _session(trace, args, config=None, source_path=None):
    """Build an AnalysisSession honouring --cache-dir/--parallel/--shards."""
    from .core.session import AnalysisSession

    parallel = getattr(args, "parallel", None)
    if parallel is not None and parallel < 1:
        raise CLIError(f"--parallel must be >= 1, got {parallel}")
    return AnalysisSession(
        trace,
        config=config,
        cache_dir=getattr(args, "cache_dir", None),
        parallel=parallel,
        source_path=source_path,
        **_shard_kwargs(args),
    )


def _session_for_path(path: str, args, config=None):
    """Session over the trace at ``path``.

    Without sharding flags the trace is read eagerly (as before).  With
    ``--shards``/``--max-memory-mb`` only the file's chunk index is
    parsed here; worker processes load their own rank groups, so the
    parent never holds the full event data.
    """
    kwargs = _shard_kwargs(args)
    if kwargs["shards"] is None and kwargs["max_memory_mb"] is None:
        return _session(_load_trace(path), args, config)
    from .trace.reader import TraceFormatError

    try:
        return _session(None, args, config, source_path=path)
    except FileNotFoundError:
        raise CLIError(f"trace file not found: {path}")
    except IsADirectoryError:
        raise CLIError(f"trace path is a directory: {path}")
    except (TraceFormatError, ValueError) as err:
        raise CLIError(f"cannot read trace {path}: {err}")
    except OSError as err:
        raise CLIError(f"cannot read trace {path}: {err}")


def _add_cache_arg(parser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for persistent analysis artifacts (.npz), keyed "
        "by trace content; reused across commands and processes",
    )


def _add_verbosity_args(parser, root: bool = False) -> None:
    """-v/-q/--log-level, accepted before *or* after the subcommand.

    The root parser owns the defaults; the per-subcommand copies use
    ``SUPPRESS`` so they only override what the root already parsed.
    """
    count_default = 0 if root else argparse.SUPPRESS
    parser.add_argument(
        "-v", "--verbose", action="count", default=count_default,
        help="more logging (-v = INFO progress such as shard "
        "heartbeats, -vv = DEBUG)",
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=count_default,
        help="less logging (-q = errors only, -qq = critical only)",
    )
    parser.add_argument(
        "--log-level", default=None if root else argparse.SUPPRESS,
        metavar="LEVEL",
        help="explicit log level name (overrides -v/-q and the "
        "REPRO_LOG_LEVEL environment variable); REPRO_LOG=json "
        "switches the stream to JSON lines",
    )


def _add_obs_args(parser) -> None:
    parser.add_argument(
        "--self-trace", dest="self_trace", default=None, metavar="PATH",
        help="record the analyzer's own spans and counters during this "
        "command and write them as a trace (.rpt v2 or .jsonl) — "
        "feed it back into `analyze`/`lint`/`stats`",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print the telemetry summary table (per-phase wall time, "
        "cache hit ratio, throughput) after the command",
    )
    parser.add_argument(
        "--metrics-file", dest="metrics_file", default=None, metavar="PATH",
        help="write the telemetry counters/gauges as a Prometheus-style "
        "textfile exposition (atomically; `monitor --follow` rewrites "
        "it periodically while streaming)",
    )
    parser.add_argument(
        "--profile", dest="profile", default=None, metavar="PATH",
        help="sample the analyzer's own Python stacks while the command "
        "runs and write the profile (.json = speedscope, anything "
        "else = collapsed stacks); samples also fold into "
        "--self-trace as a call-path rank",
    )
    parser.add_argument(
        "--profile-interval", dest="profile_interval", type=float,
        default=5.0, metavar="MS",
        help="sampling interval for --profile in milliseconds "
        "(default 5.0)",
    )


def _add_shard_args(parser) -> None:
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition the ranks into N groups and analyze them in "
        "worker processes (results are bitwise identical to the "
        "single-process pipeline; worker count follows "
        "REPRO_SHARD_WORKERS or the CPU count)",
    )
    parser.add_argument(
        "--max-memory-mb", type=float, default=None, metavar="MB",
        help="bound the estimated per-worker working set; raises the "
        "shard count until each rank group fits",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Detection and visualization of performance variations in "
            "parallel application traces (Weber et al., ICPP 2016)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    _add_verbosity_args(parser, root=True)
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="generate a workload trace")
    sim.add_argument("workload", choices=_WORKLOADS)
    sim.add_argument("-o", "--output", required=True,
                     help="output path (.rpt binary or .jsonl text)")
    sim.add_argument("--processes", "--ranks", dest="processes",
                     type=int, default=None,
                     help="rank count override (--ranks is an alias)")
    sim.add_argument("--iterations", type=int, default=None)
    sim.add_argument("--seed", type=int, default=None)
    sim.add_argument(
        "--sink", choices=("columnar", "objects"), default=None,
        help="trace emission path: columnar (vectorized, default) or "
             "objects (legacy per-event builder)")
    sim.add_argument(
        "--out-version", type=int, choices=(1, 2), default=None,
        help=".rpt format version to write (default: newest)")
    sim.add_argument(
        "--codec", action="append", default=None, metavar="[COLUMN=]CODEC",
        help="v2 column codec: auto, raw or zlib; prefix with a column "
             "name (e.g. time=raw) for per-column control (repeatable)")

    ana = sub.add_parser("analyze", help="run the variation analysis")
    ana.add_argument("trace")
    ana.add_argument("--level", type=int, default=0,
                     help="dominant-function refinement level (0 = coarsest)")
    ana.add_argument("--function", default=None,
                     help="pin the segmentation to this candidate function")
    ana.add_argument("--json", dest="json_out", default=None,
                     help="write the analysis summary as JSON to this path")
    ana.add_argument("--views", default=None,
                     help="write PNG/SVG views into this directory")
    ana.add_argument("--html", dest="html_out", default=None,
                     help="write a self-contained HTML report to this path")
    ana.add_argument("--ascii", action="store_true",
                     help="print the SOS heat map as ANSI art")
    ana.add_argument("--bins", type=int, default=512)
    ana.add_argument("--parallel", type=int, default=None, metavar="N",
                     help="replay ranks with N worker threads")
    ana.add_argument("--preflight", action="store_true",
                     help="run the full tracelint rule set before analysing; "
                     "error findings abort with exit code 2")
    _add_cache_arg(ana)
    _add_shard_args(ana)
    _add_obs_args(ana)

    prof = sub.add_parser("profile", help="print the flat profile")
    prof.add_argument("trace")
    prof.add_argument("-k", type=int, default=15)
    prof.add_argument("--tree", action="store_true",
                      help="print the call tree instead of the flat profile")
    _add_cache_arg(prof)

    ren = sub.add_parser("render", help="render trace views without analysis")
    ren.add_argument("trace")
    ren.add_argument("-o", "--output", required=True, help="output directory")
    ren.add_argument("--messages", action="store_true",
                     help="draw message lines on the timeline")
    _add_cache_arg(ren)

    info = sub.add_parser("info", help="print trace summary")
    info.add_argument("trace")

    val = sub.add_parser("validate", help="check trace well-formedness")
    val.add_argument("trace")

    lint = sub.add_parser(
        "lint",
        help="static analysis over the event stream (tracelint)",
        description=(
            "Scan a trace with the tracelint rule registry without "
            "replaying it: structural well-formedness (TL0xx), MPI "
            "message semantics (TL1xx) and the paper's analysis "
            "preconditions (TL2xx).  Exit code: 0 clean, 1 warnings, "
            "2 errors."
        ),
    )
    lint.add_argument("trace")
    lint.add_argument("--select", action="append", default=None,
                      metavar="PATTERN",
                      help="only run rules matching this fnmatch pattern "
                      "(e.g. TL001 or 'TL1*'); repeatable")
    lint.add_argument("--ignore", action="append", default=None,
                      metavar="PATTERN",
                      help="skip rules matching this pattern; repeatable")
    lint.add_argument("--severity", default=None,
                      choices=("info", "warning", "error"),
                      help="report only findings at or above this severity")
    lint.add_argument("--format", dest="fmt", default="text",
                      choices=("text", "json", "sarif"),
                      help="output format (default: text)")
    lint.add_argument("--config", dest="lint_config", default=None,
                      metavar="FILE",
                      help="JSON file with LintConfig fields (select, "
                      "ignore, severity_overrides, thresholds, ...)")
    lint.add_argument("-o", "--output", default=None,
                      help="write the report to this file instead of stdout")
    lint.add_argument("--rules", action="store_true",
                      help="list the registered rules and exit")
    _add_shard_args(lint)
    _add_obs_args(lint)

    base = sub.add_parser("baselines", help="run the baseline analyses")
    base.add_argument("trace")
    _add_cache_arg(base)
    _add_shard_args(base)
    _add_obs_args(base)

    cache = sub.add_parser("cache", help="inspect or clear an artifact cache")
    cache.add_argument("action", choices=("info", "clear"))
    cache.add_argument("--cache-dir", required=True,
                       help="artifact cache directory")

    conv = sub.add_parser(
        "convert",
        help="convert between trace formats / .rpt versions",
    )
    conv.add_argument("trace")
    conv.add_argument("-o", "--output", required=True)
    conv.add_argument(
        "--bin-version", type=int, choices=(1, 2), default=None,
        help=".rpt format version to write (default: newest)")
    conv.add_argument(
        "--codec", action="append", default=None, metavar="[COLUMN=]CODEC",
        help="v2 column codec: auto, raw or zlib; prefix with a column "
             "name (e.g. time=raw) for per-column control (repeatable)")
    conv.add_argument(
        "--no-verify", action="store_true",
        help="skip the round-trip fingerprint check")

    expl = sub.add_parser("explain", help="break one segment down by region")
    expl.add_argument("trace")
    expl.add_argument("--rank", type=int, default=None,
                      help="rank of the segment (default: hottest finding)")
    expl.add_argument("--segment", type=int, default=None,
                      help="segment index (default: hottest finding)")
    expl.add_argument("--function", default=None,
                      help="pin the segmentation to this candidate function")
    _add_cache_arg(expl)

    mon = sub.add_parser(
        "monitor",
        help="replay a trace through the streaming (in-situ) analyzer",
    )
    mon.add_argument("trace")
    mon.add_argument("--function", default=None,
                     help="dominant function (default: warm-up selection)")
    mon.add_argument("--chunk", type=int, default=256,
                     help="events per fed chunk (alias of --chunk-events)")
    mon.add_argument("--chunk-events", type=int, default=None,
                     help="events per fed chunk (overrides --chunk)")
    mon.add_argument("--threshold", type=float, default=4.0,
                     help="alert z-score threshold")
    mon.add_argument("--follow", action="store_true",
                     help="tail a growing .jsonl trace (live in-situ mode); "
                          "stops at the end-of-trace sentinel or after "
                          "--idle-timeout seconds without new data")
    mon.add_argument("--idle-timeout", type=float, default=None, metavar="S",
                     help="with --follow: give up after S idle seconds")
    mon.add_argument("--window", type=int, default=None, metavar="N",
                     help="retain at most N completed segments per rank "
                          "(bounded-memory mode; alerts and running totals "
                          "are unaffected)")
    _add_obs_args(mon)

    comp = sub.add_parser("compare", help="compare two runs segment by segment")
    comp.add_argument("trace_a", help="reference run")
    comp.add_argument("trace_b", help="candidate run")
    comp.add_argument("--function", default=None,
                      help="pin both segmentations to this function")
    comp.add_argument("--min-relative-delta", type=float, default=0.25)
    _add_cache_arg(comp)
    _add_shard_args(comp)
    _add_obs_args(comp)

    st = sub.add_parser(
        "stats",
        help="summarize a trace's phases and telemetry counters",
        description=(
            "Print the per-phase wall-time table plus any counter/gauge "
            "attributes of a trace.  Designed for self-traces written "
            "with --self-trace, but works on any trace (regions are "
            "the phases)."
        ),
    )
    st.add_argument("trace")

    fuzz = sub.add_parser(
        "fuzz",
        help="fuzz the analysis engines with random scenarios",
        description=(
            "Generate seeded random simulation scenarios and run each "
            "through the differential oracle: fused, legacy and "
            "incremental engines, shard counts, chunk sizes and both "
            ".rpt container versions must agree bitwise.  Failures are "
            "minimized and written as self-contained repro scripts."
        ),
    )
    fuzz.add_argument("--seed", type=int, default=0,
                      help="base seed; run N uses seed+N (default 0)")
    fuzz.add_argument("--runs", type=int, default=10,
                      help="number of scenarios to run (default 10)")
    fuzz.add_argument("--minimize", dest="minimize", action="store_true",
                      default=True,
                      help="shrink failing scenarios (default)")
    fuzz.add_argument("--no-minimize", dest="minimize",
                      action="store_false",
                      help="keep failing scenarios at their sampled size")
    fuzz.add_argument("--corpus-dir", default=None,
                      help="directory for repro artifacts on failure")
    fuzz.add_argument(
        "--adversarial", action="store_true",
        help="plant cross-rank defects (deadlock cycles, wildcard "
             "races, dropped collectives, orphan sends, wait chains) "
             "and assert the TL3xx checker flags each one while "
             "staying silent on the healthy baseline")

    deps = sub.add_parser(
        "deps",
        help="export the cross-rank message-match graph",
        description=(
            "Build the global message-match graph (matched sends/"
            "receives and collective epochs) that backs the TL3xx "
            "happens-before rules and export it as Graphviz DOT or "
            "JSON.  Matching is static — the trace is never replayed."
        ),
    )
    deps.add_argument("trace")
    deps.add_argument("--format", dest="fmt", choices=("dot", "json"),
                      default="dot",
                      help="output format (default dot)")
    deps.add_argument("-o", "--output", default=None,
                      help="write the graph to this file instead of stdout")
    _add_shard_args(deps)
    _add_obs_args(deps)

    perf = sub.add_parser(
        "perf",
        help="benchmark history store and regression radar",
        description=(
            "Maintain a JSONL history of BENCH_*.json benchmark records "
            "(content-addressed by bench, test, git sha and machine "
            "fingerprint) and run the paper's variation detection over "
            "it: windowed median/MAD outlier tests on the newest point "
            "and Theil-Sen + Mann-Kendall drift over the series.  "
            "`check` exits 1 when any benchmark regressed."
        ),
    )
    perf.add_argument("action", choices=("record", "check", "report"))
    perf.add_argument("inputs", nargs="*",
                      help="BENCH_*.json files to ingest (record only)")
    perf.add_argument("--history", required=True, metavar="FILE",
                      help="JSONL history file (created on first record)")
    perf.add_argument("--sha", default=None,
                      help="override the git sha recorded with each row "
                      "(default: the BENCH file's git_sha)")
    perf.add_argument("--machine", default=None,
                      help="override the machine fingerprint "
                      "(default: hashed platform facts)")
    perf.add_argument("--timestamp", type=float, default=None,
                      help="override the recorded_at wall-clock stamp")
    perf.add_argument("--window", type=int, default=20,
                      help="trailing window for the outlier test "
                      "(default 20)")
    perf.add_argument("--threshold", type=float, default=4.0,
                      help="robust z-score threshold (default 4.0)")
    perf.add_argument("--min-points", type=int, default=5,
                      help="measurements needed before the outlier test "
                      "runs (drift needs twice this; default 5)")
    perf.add_argument("--min-relative", type=float, default=0.10,
                      help="minimum relative slowdown to alarm on "
                      "(default 0.10 = 10%%)")
    perf.add_argument("--json", dest="json_out", default=None,
                      metavar="PATH",
                      help="also write the findings as JSON to this path")

    for sp in sub.choices.values():
        _add_verbosity_args(sp)
    return parser


def _write_trace(trace, path: str, version=None, codec=None) -> None:
    from .trace import write_binary, write_jsonl

    if path.endswith(".rpt"):
        kwargs = {}
        if version is not None:
            kwargs["version"] = version
        if codec is not None:
            kwargs["codec"] = codec
        write_binary(trace, path, **kwargs)
    elif path.endswith(".jsonl"):
        if version is not None or codec is not None:
            raise CLIError(
                "--bin-version/--codec only apply to .rpt output"
            )
        write_jsonl(trace, path)
    else:
        raise SystemExit(f"unknown output format (want .rpt or .jsonl): {path}")


def _parse_codec_args(specs):
    """Turn repeated ``[COLUMN=]CODEC`` flags into a write_binary codec.

    A bare codec applies to every column; ``column=codec`` entries
    override per column (unnamed columns stay on ``auto``).
    """
    if not specs:
        return None
    from .trace.binio import _COLUMNS

    default = None
    per_column: dict[str, str] = {}
    for spec in specs:
        column, sep, codec = spec.partition("=")
        if not sep:
            column, codec = None, spec
        if codec not in ("auto", "raw", "zlib"):
            raise CLIError(
                f"unknown codec {codec!r} (want auto, raw or zlib)"
            )
        if column is None:
            if default is not None:
                raise CLIError("only one default --codec may be given")
            default = codec
        elif column not in _COLUMNS:
            raise CLIError(f"unknown event column {column!r} in --codec")
        else:
            per_column[column] = codec
    if not per_column:
        return default
    if default is not None:
        return {col: per_column.get(col, default) for col in _COLUMNS}
    return per_column


def _cmd_simulate(args) -> int:
    import contextlib

    from .sim import workloads
    from .sim.engine import use_sink

    module = getattr(workloads, args.workload)
    kwargs = {}
    if args.processes is not None:
        kwargs["processes"] = args.processes
    if args.iterations is not None:
        kwargs["iterations"] = args.iterations
    if args.seed is not None:
        kwargs["seed"] = args.seed
    sink_ctx = (
        use_sink(args.sink) if args.sink else contextlib.nullcontext()
    )
    with sink_ctx:
        if args.workload == "hybrid_openmp":
            from .sim.workloads import hybrid_openmp

            cfg_kwargs = {}
            if args.processes is not None:
                cfg_kwargs["ranks"] = args.processes
            if args.iterations is not None:
                cfg_kwargs["iterations"] = args.iterations
            if args.seed is not None:
                cfg_kwargs["seed"] = args.seed
            trace = hybrid_openmp.generate(**cfg_kwargs)
        elif args.workload in _PHENOMENON_WORKLOADS:
            if args.seed is not None:
                raise CLIError(
                    f"--seed does not apply to {args.workload} "
                    "(the phenomenon is deterministic)"
                )
            cfg_kwargs = {}
            if args.processes is not None:
                cfg_kwargs["ranks"] = args.processes
            if args.iterations is not None:
                cfg_kwargs["iterations"] = args.iterations
            trace = module.generate(**cfg_kwargs)
        elif args.workload == "synthetic":
            from .sim.workloads.synthetic import SyntheticConfig

            cfg_kwargs = {}
            if args.processes is not None:
                cfg_kwargs["ranks"] = args.processes
            if args.iterations is not None:
                cfg_kwargs["iterations"] = args.iterations
            if args.seed is not None:
                cfg_kwargs["seed"] = args.seed
            trace = module.generate(SyntheticConfig(**cfg_kwargs))
        else:
            trace = module.generate(**kwargs)
    codec = _parse_codec_args(args.codec)
    _write_trace(trace, args.output, version=args.out_version, codec=codec)
    print(
        f"wrote {args.output}: {trace.num_processes} processes, "
        f"{trace.num_events} events, {trace.duration:.4g}s"
    )
    return 0


def _cmd_analyze(args) -> int:
    from .core import AnalysisConfig

    session = _session_for_path(
        args.trace, args, config=AnalysisConfig(level=args.level)
    )
    if args.preflight:
        report = session.preflight()
        if report.diagnostics:
            print(report.to_text())
            if report.exit_code() >= 2:
                print("preflight failed; aborting analysis", file=sys.stderr)
                return EXIT_BAD_INPUT
            print()
    trace = session.trace
    analysis = session.analysis(function=args.function or None)
    print(analysis.report())
    if args.ascii:
        from .viz import heat_to_ansi

        matrix, _edges = analysis.heat_matrix(bins=min(args.bins, 120))
        print()
        print(f"SOS heat map (process x time, {analysis.dominant_name!r}):")
        print(heat_to_ansi(matrix, row_labels=trace.ranks))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fp:
            json.dump(analysis.to_dict(), fp, indent=2)
        print(f"\nwrote {args.json_out}")
    if args.views:
        from .viz import render_analysis

        written = render_analysis(analysis, args.views, bins=args.bins)
        print("\nviews:")
        for name, path in written.items():
            print(f"  {name}: {path}")
    if args.html_out:
        from .htmlreport import render_html_report

        render_html_report(analysis, args.html_out, bins=args.bins)
        print(f"\nwrote {args.html_out}")
    if args.cache_dir:
        info = session.cache_info()
        print(f"\ncache: {info.format()}")
    return 0


def _cmd_profile(args) -> int:
    trace = _load_trace(args.trace)
    profile = _session(trace, args).profile()
    if args.tree:
        print(profile.call_tree.format())
    else:
        print(profile.format_flat(args.k))
        print()
        for share in profile.paradigm_shares():
            print(f"  {share.paradigm.name:<12} {100 * share.share:5.1f}%")
    return 0


def _cmd_render(args) -> int:
    from .viz import render_timeline_png

    trace = _load_trace(args.trace)
    import os

    os.makedirs(args.output, exist_ok=True)
    path = os.path.join(args.output, "timeline.png")
    # Feed the (possibly cached) replay into the renderer so rendering
    # after an `analyze --cache-dir` run replays nothing.
    tables = _session(trace, args).replay()
    render_timeline_png(trace, path, tables=tables, show_messages=args.messages)
    print(f"wrote {path}")
    return 0


def _cmd_info(args) -> int:
    trace = _load_trace(args.trace)
    for key, value in trace.summary().items():
        print(f"{key:>12}: {value}")
    if trace.attributes:
        print("  attributes:")
        for key, value in sorted(trace.attributes.items()):
            print(f"    {key} = {value}")
    return 0


def _cmd_validate(args) -> int:
    from .trace import validate_trace

    report = validate_trace(_load_trace(args.trace))
    if report.ok:
        print("trace is well-formed")
        return 0
    for issue in report.issues:
        print(issue)
    return 1


def _lint_cli_config(args):
    """Assemble a LintConfig from --config file and command-line flags."""
    from .lint import LintConfig

    if args.lint_config is not None:
        try:
            with open(args.lint_config, "r", encoding="utf-8") as fp:
                data = json.load(fp)
            config = LintConfig.from_mapping(data)
        except FileNotFoundError:
            raise CLIError(f"lint config not found: {args.lint_config}")
        except (json.JSONDecodeError, TypeError, ValueError) as err:
            raise CLIError(f"bad lint config {args.lint_config}: {err}")
    else:
        config = LintConfig()
    overrides = {}
    if args.select:
        overrides["select"] = tuple(args.select)
    if args.ignore:
        overrides["ignore"] = tuple(args.ignore)
    return config.with_overrides(**overrides) if overrides else config


def _cmd_lint(args) -> int:
    from .lint import Severity, all_rules, lint_path

    if args.rules:
        for rule in all_rules():
            print(
                f"{rule.code}  {rule.default_severity.name.lower():<7} "
                f"{rule.category:<12} {rule.scope:<5} {rule.short_help}"
            )
        return 0
    config = _lint_cli_config(args)
    from .trace.reader import TraceFormatError

    try:
        report = lint_path(args.trace, config=config, **_shard_kwargs(args))
    except FileNotFoundError:
        raise CLIError(f"trace file not found: {args.trace}")
    except IsADirectoryError:
        raise CLIError(f"trace path is a directory: {args.trace}")
    except (TraceFormatError, ValueError) as err:
        raise CLIError(f"cannot read trace {args.trace}: {err}")
    except OSError as err:
        raise CLIError(f"cannot read trace {args.trace}: {err}")
    if args.severity:
        report = report.filtered(min_severity=Severity.parse(args.severity))
    if args.fmt == "sarif":
        rendered = report.to_sarif()
    elif args.fmt == "json":
        rendered = report.to_json()
    else:
        rendered = report.to_text()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fp:
            fp.write(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return report.exit_code()


def _cmd_baselines(args) -> int:
    from .baselines import (
        analyze_profile_only,
        cluster_phases,
        search_patterns,
        select_representatives,
    )

    session = _session_for_path(args.trace, args)
    trace = session.trace

    print("== profile-only (TAU-style) ==")
    po = analyze_profile_only(session=session)
    print(f"  MPI share: {100 * po.mpi_share:.1f}%")
    for finding in po.findings[:6]:
        print(f"  [{finding.kind}] {finding.name}: {finding.detail}")

    print("== pattern search (Scalasca-style) ==")
    ps = search_patterns(session=session)
    for inst in ps.top(5):
        print(
            f"  [{inst.pattern}] {inst.region}: severity {inst.severity:.4g}s"
            f" waiting={inst.waiting_ranks[:3]} delaying={inst.delaying_ranks}"
        )

    print("== representatives (Mohror-style) ==")
    rep = select_representatives(session=session)
    print(
        f"  {len(rep.representatives)} representatives for "
        f"{trace.num_processes} processes (reduction {100 * rep.reduction:.0f}%)"
    )

    print("== phase clustering (Gonzalez-style) ==")
    cl = cluster_phases(session=session)
    print(f"  {len(cl.bursts)} bursts, cluster sizes {cl.cluster_sizes().tolist()}")
    return 0


def _cmd_convert(args) -> int:
    import os

    trace = _load_trace(args.trace)
    codec = _parse_codec_args(args.codec)
    _write_trace(trace, args.output, version=args.bin_version, codec=codec)
    in_size = os.path.getsize(args.trace)
    out_size = os.path.getsize(args.output)
    delta = out_size - in_size
    pct = (100.0 * delta / in_size) if in_size else 0.0
    print(
        f"wrote {args.output}: {out_size} bytes "
        f"({in_size} in, {delta:+d} bytes, {pct:+.1f}%)"
    )
    if not args.no_verify:
        from .trace.fingerprint import fingerprint_trace

        original = fingerprint_trace(trace)
        converted = fingerprint_trace(_load_trace(args.output))
        if converted.hexdigest != original.hexdigest:
            raise CLIError(
                f"round-trip fingerprint mismatch: wrote "
                f"{converted.short()} from {original.short()}"
            )
        print(f"round-trip fingerprint OK ({original.short()})")
    return 0


def _cmd_explain(args) -> int:
    from .core import explain_segment

    trace = _load_trace(args.trace)
    analysis = _session(trace, args).analysis(function=args.function or None)
    rank, segment = args.rank, args.segment
    if rank is None or segment is None:
        hot = analysis.imbalance.hottest_segment()
        if hot is None:
            hot_rank = analysis.imbalance.hottest_rank()
            if hot_rank is None:
                print("no findings to explain; pass --rank and --segment")
                return 1
            # Use the rank's own slowest segment.
            import numpy as np

            rank = hot_rank.rank if rank is None else rank
            sos = analysis.sos[rank].sos
            segment = int(np.argmax(sos)) if segment is None else segment
        else:
            rank = hot.rank if rank is None else rank
            segment = hot.segment_index if segment is None else segment
    explanation = explain_segment(analysis, rank, segment)
    print(explanation.format())
    return 0


def _cmd_monitor(args) -> int:
    from . import obs
    from .core.streaming import STREAM_COLUMNS, StreamingAnalyzer
    from .trace.reader import TraceFormatError

    chunk_events = args.chunk_events if args.chunk_events is not None else args.chunk
    if chunk_events < 1:
        raise CLIError(f"--chunk-events must be >= 1, got {chunk_events}")
    if args.window is not None and args.window < 1:
        raise CLIError(f"--window must be >= 1, got {args.window}")

    try:
        if args.follow:
            from .trace.cursor import TailCursor

            cursor = TailCursor(
                args.trace,
                columns=STREAM_COLUMNS,
                idle_timeout=args.idle_timeout,
            )
            definitions = cursor.wait_definitions()
        else:
            from .trace.reader import TraceIndex

            # The index parses only the chunk manifest; event data is
            # pulled chunk by chunk while feeding, so the monitor never
            # materializes the full trace.
            index = TraceIndex(args.trace)
            definitions = index.definitions_trace()
            cursor = index.cursor(
                columns=STREAM_COLUMNS, chunk_events=chunk_events
            )
    except FileNotFoundError:
        raise CLIError(f"trace file not found: {args.trace}")
    except IsADirectoryError:
        raise CLIError(f"trace path is a directory: {args.trace}")
    except (TraceFormatError, ValueError) as err:
        raise CLIError(f"cannot read trace {args.trace}: {err}")
    except OSError as err:
        raise CLIError(f"cannot read trace {args.trace}: {err}")

    analyzer = StreamingAnalyzer(
        definitions.regions,
        definitions.num_processes,
        dominant=args.function,
        alert_threshold=args.threshold,
        history_limit=args.window,
    )
    lag = obs.gauge("stream.lag_events")
    # Live exposition: while following a growing trace, rewrite the
    # metrics file about once a second so a scraper sees the stream's
    # counters and ring series move in near-real time.
    metrics_path = getattr(args, "metrics_file", None)
    metrics_col = obs.collector() if metrics_path else None
    last_metrics = 0.0
    if metrics_col is not None:
        import time as _time

        from .obs.metrics import write_metrics_file

        last_metrics = _time.monotonic()
    total = 0
    for batch in cursor:
        if len(batch.events):
            for alert in analyzer.feed(batch.rank, batch.events):
                print(f"ALERT {alert}")
            total += len(batch.events)
        lag.set(float(getattr(cursor, "backlog_events", 0)))
        if metrics_col is not None:
            now = _time.monotonic()
            if now - last_metrics >= 1.0:
                write_metrics_file(metrics_col, metrics_path)
                last_metrics = now
    print(
        f"streamed {total} events; dominant "
        f"{analyzer.dominant_name!r}; {len(analyzer.alerts)} alerts"
    )
    hot = analyzer.snapshot_hot_ranks()
    if hot:
        print(f"running totals flag ranks: {hot}")
    return 0


def _cmd_compare(args) -> int:
    from .core.compare import compare_traces

    session_a = _session_for_path(args.trace_a, args)
    session_b = _session_for_path(args.trace_b, args)
    comparison = compare_traces(
        None,
        None,
        dominant=args.function,
        min_relative_delta=args.min_relative_delta,
        session_a=session_a,
        session_b=session_b,
    )
    print(comparison.format())
    return 0


def _cmd_cache(args) -> int:
    import os

    from .core.session import ArtifactCache

    if not os.path.isdir(args.cache_dir):
        print(f"{args.cache_dir}: no cache (directory does not exist)")
        return 0
    cache = ArtifactCache(args.cache_dir)
    if args.action == "info":
        print(cache.info().format())
    else:
        removed = cache.clear()
        print(f"removed {removed} artifacts from {args.cache_dir}")
    return 0


def _cmd_stats(args) -> int:
    from .obs.export import SELF_TRACE_ATTR, summarize

    trace = _load_trace(args.trace)
    if trace.attributes.get(SELF_TRACE_ATTR) != "1":
        print(
            f"note: {args.trace} is not a self-trace; summarizing its "
            "regions as phases\n"
        )
    summary = summarize(trace)
    if not summary.phases and not summary.counters and not summary.gauges:
        print(
            f"{args.trace}: no telemetry recorded (no spans, counters "
            "or gauges) — run the producing command with --self-trace "
            "while work happens"
        )
        return 0
    if not summary.phases and summary.counters:
        print(
            f"{args.trace}: counters only (no spans recorded)\n"
        )
    print(summary.format())
    return 0


def _cmd_perf(args) -> int:
    from .perf import (
        PerfHistory,
        check_history,
        format_findings,
        format_report,
        record_bench_files,
    )

    try:
        history = PerfHistory.load(args.history)
    except ValueError as err:
        raise CLIError(str(err))
    except OSError as err:
        raise CLIError(f"cannot read history {args.history}: {err}")

    if args.action == "record":
        if not args.inputs:
            raise CLIError("perf record needs at least one BENCH_*.json")
        try:
            n = record_bench_files(
                history,
                args.inputs,
                sha=args.sha,
                machine=args.machine,
                timestamp=args.timestamp,
            )
        except FileNotFoundError as err:
            raise CLIError(f"benchmark record not found: {err.filename}")
        except (json.JSONDecodeError, ValueError) as err:
            raise CLIError(f"cannot parse benchmark record: {err}")
        history.save(args.history)
        print(
            f"recorded {n} measurement(s) into {args.history} "
            f"({len(history.rows)} total)"
        )
        return 0

    if args.action == "report":
        print(format_report(history))
        return 0

    findings = check_history(
        history,
        window=args.window,
        threshold=args.threshold,
        min_points=args.min_points,
        min_relative=args.min_relative,
    )
    print(format_findings(findings))
    if args.json_out:
        doc = [
            {
                "bench": f.bench,
                "test": f.test,
                "machine": f.machine,
                "kind": f.kind,
                "message": f.message,
                "latest_s": f.latest_s,
                "baseline_s": f.baseline_s,
            }
            for f in findings
        ]
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    return 1 if findings else 0


def _configure_cli_logging(args) -> None:
    """Route -v/-q/--log-level (or env fallbacks) through repro.obs."""
    from . import obs

    level = getattr(args, "log_level", None)
    if level is None:
        verbose = getattr(args, "verbose", 0)
        quiet = getattr(args, "quiet", 0)
        if verbose or quiet:
            level = obs.verbosity_level(verbose, quiet)
    try:
        obs.configure_logging(level=level)
    except ValueError as err:
        raise CLIError(str(err))


def _emit_telemetry(args, col, profiler=None) -> None:
    """Handle --self-trace / --stats / --profile / --metrics-file."""
    from . import obs

    if profiler is not None:
        prof_path = getattr(args, "profile", None)
        if prof_path:
            try:
                profiler.write(prof_path)
            except OSError as err:
                raise CLIError(f"cannot write profile {prof_path}: {err}")
            print(
                f"wrote profile {prof_path}: {len(profiler.samples)} "
                f"samples at {1000 * profiler.interval:g} ms",
                file=sys.stderr,
            )
        if col is not None:
            # Fold the call paths in *before* the self-trace export so
            # the profile appears as one extra rank of the same trace.
            col.attach_profile(profiler)
    path = getattr(args, "self_trace", None)
    if path:
        from .obs.export import write_self_trace

        try:
            trace = write_self_trace(col, path)
        except OSError as err:
            raise CLIError(f"cannot write self-trace {path}: {err}")
        print(
            f"wrote self-trace {path}: {trace.num_processes} locations, "
            f"{trace.num_events} events",
            file=sys.stderr,
        )
    metrics_path = getattr(args, "metrics_file", None)
    if metrics_path and col is not None:
        from .obs.metrics import write_metrics_file

        try:
            write_metrics_file(col, metrics_path)
        except OSError as err:
            raise CLIError(f"cannot write metrics {metrics_path}: {err}")
    if getattr(args, "stats", False):
        summary = obs.summarize(col)
        print()
        if not summary.phases and not summary.counters and not summary.gauges:
            print(
                "no telemetry recorded (no spans, counters or gauges "
                "fired during this command)"
            )
            return
        print(summary.format())


def _cmd_fuzz(args) -> int:
    from .sim.fuzz import adversarial_run, fuzz_run

    if args.runs < 1:
        raise CLIError("--runs must be at least 1")
    if args.adversarial:
        reports = adversarial_run(seed=args.seed, runs=args.runs)
        failed = [r for r in reports if not r.ok]
        print(
            f"fuzz --adversarial: {len(reports) - len(failed)}/"
            f"{len(reports)} scenarios OK "
            f"(seeds {args.seed}..{args.seed + args.runs - 1})"
        )
        return 1 if failed else 0
    reports = fuzz_run(
        seed=args.seed,
        runs=args.runs,
        minimize_failures=args.minimize,
        corpus_dir=args.corpus_dir,
    )
    failed = [r for r in reports if not r.ok]
    print(
        f"fuzz: {len(reports) - len(failed)}/{len(reports)} scenarios OK "
        f"(seeds {args.seed}..{args.seed + args.runs - 1})"
    )
    return 1 if failed else 0


def _cmd_deps(args) -> int:
    from .lint import graph_to_dot, graph_to_json_dict, hb_graph_path
    from .trace.reader import TraceFormatError

    try:
        graph = hb_graph_path(args.trace, **_shard_kwargs(args))
    except FileNotFoundError:
        raise CLIError(f"trace file not found: {args.trace}")
    except IsADirectoryError:
        raise CLIError(f"trace path is a directory: {args.trace}")
    except (TraceFormatError, ValueError) as err:
        raise CLIError(f"cannot read trace {args.trace}: {err}")
    except OSError as err:
        raise CLIError(f"cannot read trace {args.trace}: {err}")
    if args.fmt == "json":
        rendered = json.dumps(graph_to_json_dict(graph), indent=2)
    else:
        rendered = graph_to_dot(graph)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fp:
            fp.write(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "analyze": _cmd_analyze,
    "profile": _cmd_profile,
    "render": _cmd_render,
    "info": _cmd_info,
    "validate": _cmd_validate,
    "lint": _cmd_lint,
    "baselines": _cmd_baselines,
    "cache": _cmd_cache,
    "convert": _cmd_convert,
    "compare": _cmd_compare,
    "explain": _cmd_explain,
    "monitor": _cmd_monitor,
    "stats": _cmd_stats,
    "fuzz": _cmd_fuzz,
    "deps": _cmd_deps,
    "perf": _cmd_perf,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        _configure_cli_logging(args)
        col = None
        profiler = None
        wants_obs = (
            getattr(args, "self_trace", None)
            or getattr(args, "stats", False)
            or getattr(args, "metrics_file", None)
            or getattr(args, "profile", None)
        )
        if wants_obs:
            from . import obs

            col = obs.enable()
            if getattr(args, "profile", None):
                from .obs.profiler import Profiler

                interval = getattr(args, "profile_interval", 5.0)
                if interval <= 0:
                    raise CLIError(
                        f"--profile-interval must be > 0 ms, got {interval}"
                    )
                profiler = Profiler(
                    interval=interval / 1000.0, clock=col.clock
                )
                profiler.start()
        try:
            code = _COMMANDS[args.command](args)
        finally:
            if profiler is not None:
                profiler.stop()
            if col is not None:
                from . import obs

                col = obs.disable()
        if col is not None:
            _emit_telemetry(args, col, profiler)
        return code
    except CLIError as err:
        print(f"error: {err}", file=sys.stderr)
        return EXIT_BAD_INPUT


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
