"""End-to-end performance-variation analysis pipeline.

Ties together the three steps of the paper's methodology (Section III):

1. identification of time-dominant functions (:mod:`repro.core.dominant`),
2. computation of performance variations between invocations
   (:mod:`repro.core.segments`, :mod:`repro.core.sos`),
3. preparation of the intuitive visualization
   (:func:`repro.core.variation.binned_matrix`, rendered by
   :mod:`repro.viz`),

plus the automatic detection layer (:mod:`repro.core.imbalance`,
:mod:`repro.core.variation`) that makes the guidance testable.

Since the session refactor, :func:`analyze_trace` is a thin facade over
:class:`repro.core.session.AnalysisSession`: every product is a
memoized stage, so :meth:`VariationAnalysis.refined` and
:meth:`VariationAnalysis.at_function` are pure cache hits on the replay
and profile stages, and a ``cache_dir`` makes the reuse persistent
across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..profiles.profile import TraceProfile
from ..trace.definitions import Paradigm
from ..trace.trace import Trace
from .classify import SyncClassifier, default_classifier
from .dominant import DominantSelection
from .imbalance import ImbalanceReport, detect_imbalances
from .segments import Segmentation, segment_trace
from .sos import SOSResult, compute_sos
from .variation import TrendResult, binned_matrix, detect_trend

__all__ = ["AnalysisConfig", "VariationAnalysis", "analyze_trace"]


@dataclass(frozen=True)
class AnalysisConfig:
    """Tunable knobs of the analysis pipeline.

    Attributes
    ----------
    min_invocation_factor:
        The dominant function must be invoked at least
        ``min_invocation_factor * p`` times (paper: 2).
    candidate_paradigms:
        Paradigms eligible as dominant functions (default: USER code).
    classifier:
        Synchronization classifier for the SOS subtraction.
    rank_threshold, segment_threshold:
        Robust z-score cutoffs for the hotspot detectors.
    validate:
        Run structural trace validation before analysing.
    level:
        Initial refinement level (0 = the paper's selection).
    """

    min_invocation_factor: float = 2.0
    candidate_paradigms: tuple[Paradigm, ...] = (Paradigm.USER,)
    classifier: SyncClassifier = field(default_factory=default_classifier)
    rank_threshold: float = 3.0
    segment_threshold: float = 3.0
    min_relative_excess: float = 0.1
    max_findings: int = 50
    validate: bool = True
    level: int = 0


class VariationAnalysis:
    """Complete analysis result for one trace.

    Exposes every intermediate product (profile, dominant selection,
    segmentation, SOS result, detections) plus :meth:`refined` for the
    paper's drill-down workflow and :meth:`heat_matrix` for rendering.

    When constructed by an :class:`~repro.core.session.AnalysisSession`
    (the default via :func:`analyze_trace`), ``session`` links back to
    the shared stage cache, so refinement and re-rendering reuse every
    already-computed product.
    """

    def __init__(
        self,
        trace: Trace,
        config: AnalysisConfig,
        profile: TraceProfile,
        selection: DominantSelection,
        segmentation: Segmentation,
        sos: SOSResult,
        imbalance: ImbalanceReport,
        trend: TrendResult,
        duration_trend: TrendResult,
        session=None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.profile = profile
        self.selection = selection
        self.segmentation = segmentation
        self.sos = sos
        self.imbalance = imbalance
        self.trend = trend
        self.duration_trend = duration_trend
        self.session = session

    # -- convenience accessors -------------------------------------------

    @property
    def dominant_name(self) -> str:
        return self.selection.name

    @property
    def dominant_region(self) -> int:
        return self.selection.region

    @property
    def num_events(self) -> int:
        """Event total; in sharded path mode ``self.trace`` may be a
        definitions skeleton, so ask the session for the real count."""
        if self.session is not None:
            return self.session.num_events
        return self.trace.num_events

    @property
    def duration(self) -> float:
        """Trace time extent, session-aware like :attr:`num_events`."""
        if self.session is not None:
            return self.session.duration
        return self.trace.duration

    def hot_ranks(self) -> list[int]:
        """Ranks flagged by the rank-level detector, hottest first."""
        return [h.rank for h in self.imbalance.hot_ranks]

    def hottest_rank(self) -> int | None:
        h = self.imbalance.hottest_rank()
        return h.rank if h else None

    def hot_segments(self) -> list[tuple[int, int]]:
        """(rank, segment_index) pairs flagged by the segment detector."""
        return [(h.rank, h.segment_index) for h in self.imbalance.hot_segments]

    def heat_matrix(
        self, bins: int = 512, normalize: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Time-binned SOS matrix for heat-map rendering."""
        if self.session is not None:
            return self.session.heat_matrix(
                self.selection.region,
                bins=bins,
                normalize=normalize,
                classifier=self.config.classifier,
            )
        return binned_matrix(self.sos, bins=bins, normalize=normalize)

    # -- refinement -------------------------------------------------------

    def _with_selection(self, selection: DominantSelection) -> "VariationAnalysis":
        if self.session is not None:
            return self.session.analysis_for(selection)
        return _run(self.trace, self.config, self.profile, selection)

    def refined(self, steps: int = 1) -> "VariationAnalysis":
        """Re-run steps 2+3 with a finer dominant function.

        Mirrors Section VII-B: "by choosing a function with a smaller
        inclusive time we achieve a more fine-grained segmentation".
        The expensive replay is reused (a pure session cache hit).
        """
        return self._with_selection(self.selection.refined(steps))

    def at_function(self, name: str) -> "VariationAnalysis":
        """Re-segment using the named candidate function."""
        return self._with_selection(self.selection.at_function(name))

    # -- reporting ----------------------------------------------------------

    def report(self) -> str:
        """Human-readable analysis report (see :mod:`repro.core.report`)."""
        from .report import format_report

        return format_report(self)

    def to_dict(self) -> dict:
        """JSON-serialisable summary (see :mod:`repro.core.report`)."""
        from .report import report_dict

        return report_dict(self)


def _run(
    trace: Trace,
    config: AnalysisConfig,
    profile: TraceProfile,
    selection: DominantSelection,
) -> VariationAnalysis:
    segmentation = segment_trace(profile.tables, selection.region)
    sos = compute_sos(trace, segmentation, profile.tables, config.classifier)
    imbalance = detect_imbalances(
        sos,
        rank_threshold=config.rank_threshold,
        segment_threshold=config.segment_threshold,
        min_relative_excess=config.min_relative_excess,
        max_findings=config.max_findings,
    )
    trend = detect_trend(sos)
    duration_trend = detect_trend(sos, use_plain_duration=True)
    return VariationAnalysis(
        trace=trace,
        config=config,
        profile=profile,
        selection=selection,
        segmentation=segmentation,
        sos=sos,
        imbalance=imbalance,
        trend=trend,
        duration_trend=duration_trend,
    )


def analyze_trace(
    trace: Trace | None,
    config: AnalysisConfig | None = None,
    *,
    session=None,
    cache_dir=None,
    parallel: bool | int | None = None,
    shards: int | None = None,
    max_memory_mb: float | None = None,
    source_path=None,
    lint=None,
) -> VariationAnalysis:
    """Run the full performance-variation analysis on ``trace``.

    A facade over :class:`repro.core.session.AnalysisSession`: a fresh
    session is created (and linked to the result for ``refined()`` /
    ``at_function()`` reuse) unless an existing one is passed.

    Parameters
    ----------
    session:
        Reuse an existing session (its trace/config win; passing a
        different ``trace`` or ``config`` alongside is an error).
    cache_dir:
        Persist stage artifacts under this directory so later sessions
        over the same trace skip replay and profiling entirely.
    parallel:
        Per-rank replay parallelism (see
        :func:`repro.profiles.replay.replay_trace`).
    shards, max_memory_mb:
        Run the memory-bounded multi-process engine
        (:mod:`repro.core.shard`): partition the ranks into ``shards``
        groups (raised further until each group's estimated working
        set fits ``max_memory_mb``) and replay/segment/accumulate them
        in worker processes.  Results are bitwise identical to the
        single-process pipeline.
    source_path:
        Trace file to shard from; with it, ``trace`` may be ``None``
        and the parent process never materialises event streams.
    lint:
        ``True`` or a :class:`repro.lint.LintConfig` to run the full
        tracelint rule set as the pre-flight gate (instead of only the
        legacy structural checks); error-severity findings raise
        :class:`repro.lint.LintError` before any replay happens.

    Raises
    ------
    ValueError
        If the trace fails structural validation (with ``lint``, a
        :class:`repro.lint.LintError` subclass of it), or if no
        dominant-function candidate exists.
    """
    from .session import AnalysisSession

    if session is not None:
        if session.trace is not trace and trace is not None:
            raise ValueError("session was created for a different trace")
        if config is not None and config != session.config:
            raise ValueError("session already carries a different config")
        return session.analysis()
    session = AnalysisSession(
        trace,
        config=config,
        cache_dir=cache_dir,
        parallel=parallel,
        shards=shards,
        max_memory_mb=max_memory_mb,
        source_path=source_path,
        lint=lint,
    )
    return session.analysis()
