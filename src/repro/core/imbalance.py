"""Detection of runtime imbalances from SOS-times.

The paper presents SOS-times visually and lets the analyst "follow the
red".  To make the reproduction testable end to end, this module also
implements the detection the visualization performs in the analyst's
eye: robust outlier statistics over the SOS matrix yielding

* **hot ranks** — processes whose computation is consistently slower
  (COSMO-SPECS case, Figure 4b),
* **hot segments** — single invocations far above both their rank's and
  their iteration's typical SOS (COSMO-SPECS+FD4 case, Figure 5c),

each with a severity score (robust z-score based on median/MAD).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from .sos import SOSResult

__all__ = [
    "Hotspot",
    "RankHotspot",
    "ImbalanceReport",
    "robust_zscores",
    "detect_imbalances",
    "imbalance_percentage",
]

_MAD_SCALE = 1.4826  # MAD → σ for normal data


def robust_zscores(values: np.ndarray, rel_floor: float = 0.01) -> np.ndarray:
    """Median/MAD-based z-scores, NaN-safe.

    The scale is ``max(1.4826 * MAD, rel_floor * |median|)``.  The
    relative floor handles the common degenerate case of performance
    data where most values are (nearly) identical and a few true
    outliers exist: the MAD collapses to zero there, and a standard-
    deviation fallback would be polluted by the very outliers we want
    to detect.  With the floor, deviations are measured against "1% of
    typical" instead — any materially larger deviation scores high,
    and the caller's materiality threshold keeps noise out.

    Falls back to standard z-scores only when both MAD and median are
    zero, and to zeros when the data has no spread at all.
    """
    values = np.asarray(values, dtype=np.float64)
    out = np.full(values.shape, np.nan)
    finite = np.isfinite(values)
    if not np.any(finite):
        return out
    v = values[finite]
    med = np.median(v)
    mad = np.median(np.abs(v - med)) * _MAD_SCALE
    scale = max(mad, rel_floor * abs(med))
    if scale <= 0:
        std = np.std(v)
        if std <= 0:
            out[finite] = 0.0
            return out
        out[finite] = (v - med) / std
        return out
    out[finite] = (v - med) / scale
    return out


def _robust_zscores_rows(matrix: np.ndarray, rel_floor: float = 0.01) -> np.ndarray:
    """Row-wise :func:`robust_zscores`, vectorised.

    Bitwise-identical to ``np.apply_along_axis(robust_zscores, 1, m)``
    but without the per-row Python dispatch (the dominant cost of
    segment-level detection on long traces).  The identity holds
    because ``np.nanmedian`` over a row computes the median of exactly
    the same value multiset as ``np.median(row[finite])``, and the
    per-element ``(x - med) / scale`` then sees identical operands.
    Rows that hit a degenerate branch — infinities (which ``nanmedian``
    would treat as finite), zero scale, or no finite values — are
    delegated to the exact scalar implementation.
    """
    m = np.asarray(matrix, dtype=np.float64)
    out = np.full(m.shape, np.nan)
    if m.size == 0:
        return out
    finite = np.isfinite(m)
    any_finite = np.any(finite, axis=1)
    simple = any_finite & ~np.any(np.isinf(m), axis=1)
    if np.any(simple):
        sub = m[simple]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            med = np.nanmedian(sub, axis=1)
            mad = np.nanmedian(np.abs(sub - med[:, None]), axis=1) * _MAD_SCALE
        scale = np.maximum(mad, rel_floor * np.abs(med))
        good = scale > 0
        with np.errstate(invalid="ignore", divide="ignore"):
            z = (sub - med[:, None]) / scale[:, None]
        rows = np.flatnonzero(simple)
        keep = rows[good]
        out[keep] = np.where(finite[keep], z[good], np.nan)
        for i in rows[~good]:
            out[i] = robust_zscores(m[i], rel_floor)
    for i in np.flatnonzero(any_finite & ~simple):
        out[i] = robust_zscores(m[i], rel_floor)
    return out


@dataclass(frozen=True, slots=True)
class RankHotspot:
    """A process whose aggregate SOS-time is anomalously high."""

    rank: int
    total_sos: float
    zscore: float

    def __str__(self) -> str:
        return f"rank {self.rank}: total SOS {self.total_sos:.6g} (z={self.zscore:.2f})"


@dataclass(frozen=True, slots=True)
class Hotspot:
    """A single segment whose SOS-time is anomalously high.

    ``zscore_rank`` measures the segment against the other segments of
    the *same rank* (temporal anomaly), ``zscore_step`` against the
    same segment index across *all ranks* (spatial anomaly); ``score``
    is the smaller of the two — high only when the segment stands out
    in both directions, which is the Figure-5c signature.
    """

    rank: int
    segment_index: int
    t_start: float
    t_stop: float
    sos: float
    zscore_rank: float
    zscore_step: float

    @property
    def score(self) -> float:
        return min(self.zscore_rank, self.zscore_step)

    def __str__(self) -> str:
        return (
            f"rank {self.rank} segment {self.segment_index} "
            f"[{self.t_start:.6g}, {self.t_stop:.6g}]: SOS {self.sos:.6g} "
            f"(z_rank={self.zscore_rank:.2f}, z_step={self.zscore_step:.2f})"
        )


@dataclass(slots=True)
class ImbalanceReport:
    """All detections for one SOS analysis."""

    hot_ranks: list[RankHotspot] = field(default_factory=list)
    hot_segments: list[Hotspot] = field(default_factory=list)
    #: Percent imbalance of per-rank total SOS: (max-mean)/max * 100.
    imbalance_pct: float = 0.0

    @property
    def has_findings(self) -> bool:
        return bool(self.hot_ranks or self.hot_segments)

    def hottest_rank(self) -> RankHotspot | None:
        return self.hot_ranks[0] if self.hot_ranks else None

    def hottest_segment(self) -> Hotspot | None:
        return self.hot_segments[0] if self.hot_segments else None


def imbalance_percentage(per_rank_total: np.ndarray) -> float:
    """Classical load-imbalance percentage ``(max - mean) / max * 100``."""
    per_rank_total = np.asarray(per_rank_total, dtype=np.float64)
    finite = per_rank_total[np.isfinite(per_rank_total)]
    if len(finite) == 0:
        return 0.0
    mx = float(np.max(finite))
    if mx <= 0:
        return 0.0
    return (mx - float(np.mean(finite))) / mx * 100.0


def detect_imbalances(
    sos: SOSResult,
    rank_threshold: float = 3.0,
    segment_threshold: float = 3.0,
    min_relative_excess: float = 0.1,
    max_findings: int = 50,
) -> ImbalanceReport:
    """Run rank-level and segment-level outlier detection.

    Parameters
    ----------
    rank_threshold, segment_threshold:
        Robust z-score cutoffs; 3.0 flags values more than three
        (MAD-scaled) deviations above the median.
    min_relative_excess:
        A rank additionally needs a total SOS at least this fraction
        above the median to be flagged.  Pure z-scores over-trigger on
        very quiet data where the MAD reflects only measurement jitter;
        the paper's wording ("notably higher runtime") implies a
        materiality bar, not just statistical separation.
    max_findings:
        Keep only the most severe findings of each kind.
    """
    report = ImbalanceReport()
    ranks = np.asarray(sos.ranks, dtype=np.int64)
    if len(ranks) == 0:
        return report

    totals = sos.per_rank_total()
    report.imbalance_pct = imbalance_percentage(totals)
    z_totals = robust_zscores(totals)
    median_total = float(np.median(totals[np.isfinite(totals)]))
    materiality = median_total * (1.0 + min_relative_excess)
    hot = np.flatnonzero((z_totals > rank_threshold) & (totals > materiality))
    rank_hotspots = [
        RankHotspot(
            rank=int(ranks[i]), total_sos=float(totals[i]), zscore=float(z_totals[i])
        )
        for i in hot
    ]
    rank_hotspots.sort(key=lambda h: -h.zscore)
    report.hot_ranks = rank_hotspots[:max_findings]

    matrix = sos.matrix()  # (ranks, segments)
    if matrix.size:
        # Temporal anomaly: each segment vs. the segments of its rank.
        z_rank = _robust_zscores_rows(matrix)
        # Spatial anomaly: each segment vs. the same step on other ranks.
        z_step = _robust_zscores_rows(matrix.T).T
        score = np.fmin(z_rank, z_step)
        hot_cells = np.argwhere(score > segment_threshold)
        hotspots = []
        for i, j in hot_cells:
            rank = int(ranks[i])
            seg = sos.segmentation[rank]
            hotspots.append(
                Hotspot(
                    rank=rank,
                    segment_index=int(j),
                    t_start=float(seg.t_start[j]),
                    t_stop=float(seg.t_stop[j]),
                    sos=float(matrix[i, j]),
                    zscore_rank=float(z_rank[i, j]),
                    zscore_step=float(z_step[i, j]),
                )
            )
        hotspots.sort(key=lambda h: -h.score)
        report.hot_segments = hotspots[:max_findings]
    return report
