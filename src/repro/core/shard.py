"""Sharded, process-parallel, memory-bounded analysis engine.

Million-event traces stress the single-process pipeline in two ways:
the event columns plus replayed invocation tables of *every* rank must
fit in memory at once, and replay/SOS run on one core.  This module
partitions a trace into contiguous rank groups ("shards") and runs the
expensive per-rank stages — event loading, stack replay, profile
statistics, segmentation, SOS accumulation — in worker processes that
each materialise **only their own ranks** (via the chunked reader,
:class:`repro.trace.reader.TraceIndex`).  Partial results are merged
into full-trace products that are *bitwise identical* to the
single-process pipeline.

Why sharded == unsharded, exactly:

* Replay, segmentation and SOS are per-rank-independent; workers run
  the very same kernels (:func:`repro.core.fused.fused_bootstrap`,
  :func:`repro.core.segments.segment_rank`,
  :func:`repro.core.sos.segment_sync_time`) on bit-identical event
  columns — the chunked reader decompresses/parses the same bytes as
  the eager one, projected down to the columns those kernels read.
* Profile statistics are *defined* as a rank-ascending merge of
  per-rank partials (:func:`repro.profiles.stats.merge_statistics_arrays`),
  so the grouping of ranks into shards cannot influence a single bit
  of the merged floats.
* Everything downstream — dominant selection, imbalance detections,
  trends, heat binning — runs in the parent on those merged products
  through the unchanged single-process code.

Workers exchange invocation tables with the parent through a *spill*
:class:`~repro.core.session.ArtifactCache` keyed by the per-rank event
digests of :mod:`repro.trace.fingerprint` — the same ``inv-{digest}``
keys the lazy session uses, so when the session has a persistent
``cache_dir`` the shard spill *is* the session cache and warm runs
replay nothing.

The worker count defaults to ``min(num_shards, cpu_count)`` and can be
pinned with the ``REPRO_SHARD_WORKERS`` environment variable (``1``
runs the shard tasks in-process, which is also how results stay
reproducible on machines without usable multiprocessing).
"""

from __future__ import annotations

import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..profiles.replay import REPLAY_COLUMNS, InvocationTable
from ..trace.fingerprint import fingerprint_events
from ..trace.filters import select_ranks
from ..trace.trace import Trace
from .classify import SyncClassifier
from .segments import RankSegments, Segmentation, segment_rank
from .sos import RankSOS, SOSResult, segment_sync_time

__all__ = [
    "BYTES_PER_EVENT",
    "ShardBootstrap",
    "ShardEngine",
    "ShardPlan",
    "assemble_sos",
    "plan_shards",
    "shard_workers",
]

_LOG = obs.get_logger("core.shard")
#: Pending shard tasks of the in-flight pool run (telemetry only).
_G_QUEUE = obs.gauge("shard.queue_depth")

#: Estimated peak working set per event inside one worker: the seven
#: canonical event columns (~33 B/event) plus the replayed invocation
#: table (ten float64 columns over ~n/2 invocations, ~40 B/event) plus
#: decompression/parse slack.  Deliberately generous — ``--max-memory-mb``
#: is a bound, not a target.
BYTES_PER_EVENT = 160


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """Contiguous partition of a trace's ranks into shard groups."""

    groups: tuple[tuple[int, ...], ...]
    #: events per shard, aligned with ``groups``
    events: tuple[int, ...]

    @property
    def num_shards(self) -> int:
        return len(self.groups)

    @property
    def ranks(self) -> tuple[int, ...]:
        return tuple(r for group in self.groups for r in group)

    def max_shard_bytes(self) -> int:
        """Estimated peak working set of the largest shard."""
        return max(self.events, default=0) * BYTES_PER_EVENT

    def describe(self) -> str:
        parts = [
            f"{len(g)} ranks/{n} events" for g, n in zip(self.groups, self.events)
        ]
        return f"{self.num_shards} shards: " + ", ".join(parts)


def plan_shards(
    event_counts: dict[int, int],
    shards: int | None = None,
    max_memory_mb: float | None = None,
) -> ShardPlan:
    """Partition ranks into contiguous groups balanced by event count.

    Parameters
    ----------
    event_counts:
        ``rank -> number of events`` for every rank of the trace.
    shards:
        Requested shard count (default 1).
    max_memory_mb:
        Per-worker memory bound; raises the shard count until the
        estimated working set (``BYTES_PER_EVENT`` per event) of the
        largest shard fits, and additionally splits any group whose
        estimate still exceeds the budget (the bound then holds down
        to single-rank granularity — one rank bigger than the budget
        cannot be split further).  Both knobs may be combined — the
        larger resulting shard count wins.

    The partition is deterministic: ranks stay in ascending order and
    group boundaries fall where the cumulative event count crosses
    ``total * i / n``.
    """
    ranks = sorted(event_counts)
    if not ranks:
        raise ValueError("cannot shard a trace with no ranks")
    n = 1 if shards is None else int(shards)
    if n < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    total = sum(event_counts.values())
    if max_memory_mb is not None:
        if max_memory_mb <= 0:
            raise ValueError(f"memory bound must be > 0 MB, got {max_memory_mb}")
        budget = int(max_memory_mb * 1e6)
        needed = -(-total * BYTES_PER_EVENT // budget) if total else 1
        n = max(n, int(needed))
    n = min(n, len(ranks))

    groups: list[list[int]] = [[] for _ in range(n)]
    cum = 0
    g = 0
    for idx, rank in enumerate(ranks):
        while (
            g < n - 1
            and groups[g]
            and cum >= total * (g + 1) / n
            and len(ranks) - idx >= n - 1 - g
        ):
            g += 1
        groups[g].append(rank)
        cum += event_counts[rank]
    # Ranks may run out before groups do when counts are very skewed;
    # drop the empty tail groups rather than shipping no-op workers.
    filled = [tuple(group) for group in groups if group]
    if max_memory_mb is not None:
        # The balanced split targets equal shares, not the budget: a
        # boundary can overshoot and leave one group above the bound.
        # Greedily re-cut any such group at the budget.
        budget_events = max(int(max_memory_mb * 1e6) // BYTES_PER_EVENT, 1)
        recut: list[tuple[int, ...]] = []
        for group in filled:
            current: list[int] = []
            load = 0
            for rank in group:
                c = event_counts[rank]
                if current and load + c > budget_events:
                    recut.append(tuple(current))
                    current, load = [], 0
                current.append(rank)
                load += c
            recut.append(tuple(current))
        filled = recut
    return ShardPlan(
        groups=tuple(filled),
        events=tuple(sum(event_counts[r] for r in g) for g in filled),
    )


def shard_workers(num_shards: int) -> int:
    """Worker-process count: ``REPRO_SHARD_WORKERS`` or cpu count."""
    env = os.environ.get("REPRO_SHARD_WORKERS", "").strip()
    if env:
        try:
            n = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_SHARD_WORKERS must be an integer, got {env!r}"
            ) from None
        if n < 1:
            raise ValueError(f"REPRO_SHARD_WORKERS must be >= 1, got {n}")
    else:
        try:
            n = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            n = os.cpu_count() or 1
    return max(1, min(n, num_shards))


# ---------------------------------------------------------------------------
# Worker functions (top-level: must be picklable by reference)
# ---------------------------------------------------------------------------


def _worker_obs_setup(payload: dict) -> bool:
    """Enable telemetry inside a worker process when the parent asks.

    Returns whether this call *owns* the collector (it enabled one) —
    in-process execution (``workers <= 1``) records straight into the
    parent's already-active collector and owns nothing.  Forked pool
    workers inherit the parent's enabled state and collector; the pid
    check spots that stale copy and replaces it with a fresh worker
    collector whose snapshot ships back with the result.

    The payload's ``obs`` value is the parent's trace context
    (:func:`repro.obs.current_context`): the worker collector inherits
    the parent's trace id, epoch and launching span, so its journals
    land on the parent's time axis in the same causal trace.  A bare
    ``True`` (pre-context payloads) still enables a detached collector.
    """
    ctx = payload.get("obs")
    if not ctx:
        return False
    col = obs.collector()
    if obs.enabled() and col is not None and col.pid == os.getpid():
        return False
    kwargs = {}
    if isinstance(ctx, dict):
        kwargs = {
            "trace_id": ctx.get("trace_id"),
            "epoch": ctx.get("epoch"),
            "parent_span": ctx.get("parent_span"),
        }
    obs.enable(
        obs.Collector(origin=f"shard-{payload.get('shard', 0)}", **kwargs)
    )
    return True


def _phase1_shard(payload: dict) -> dict:
    """Load, validate, replay and profile the ranks of one shard.

    Runs the fused kernel (:func:`repro.core.fused.fused_bootstrap`):
    one pass per rank covers validation, replay and the statistics
    partial.  When the shard reads from a file, per-rank digests come
    from :meth:`~repro.trace.reader.TraceIndex.rank_digest` (byte-based
    for canonical binary files — no event materialisation) and the load
    projects to the columns the fused pass actually reads.

    Returns per-rank event digests and statistics partials; the (much
    larger) invocation tables are spilled to the shard cache under
    their ``inv-{digest}`` keys instead of being pickled back.  When
    the payload carries ``obs``, the worker runs its own telemetry
    collector and ships its snapshot back under the ``"obs"`` key —
    the parent merges snapshots in shard order, exactly like the
    statistics partials.
    """
    owns_obs = _worker_obs_setup(payload)
    try:
        with obs.span("shard.phase1"):
            res = _phase1_shard_impl(payload)
    finally:
        col = obs.disable() if owns_obs else None
    if col is not None:
        res["obs"] = col.snapshot()
    return res


def _phase1_shard_impl(payload: dict) -> dict:
    from ..lint.engine import lint_columns, validate_config
    from .fused import fused_bootstrap
    from .session import ArtifactCache, _table_to_arrays

    spill = ArtifactCache(payload["spill_dir"])
    n_regions = payload["n_regions"]
    ranks = sorted(payload["ranks"])
    if payload.get("trace") is not None:
        trace = payload["trace"]
        digests = {
            r: fingerprint_events(trace.events_of(r)) for r in ranks
        }
    else:
        from ..trace.reader import TraceIndex

        index = TraceIndex(payload["path"])
        digests = {r: index.rank_digest(r) for r in ranks}
        trace = None

    # Spill hits skip replay entirely; the fused pass still validates
    # those ranks (diagnostics are not cached), it just builds no table.
    partials: dict[int, dict[str, np.ndarray]] = {}
    need: list[int] = []
    for rank in ranks:
        cached = spill.load(f"rankstats-{digests[rank]}")
        if (
            cached is not None
            and len(cached.get("count", ())) == n_regions
            and spill.contains(f"inv-{digests[rank]}")
        ):
            partials[rank] = cached
        else:
            need.append(rank)

    if trace is not None:
        boot = fused_bootstrap(
            trace,
            validate=payload["validate"],
            known_ranks=frozenset(payload["known_ranks"]),
            table_ranks=need,
        )
        spilled: set[int] = set()
    else:
        # Path mode streams the shard through the incremental kernel:
        # chunked, column-projected reads (one batch resident at a
        # time for v2 raw columns) and per-rank table spill the moment
        # a table exists — peak memory tracks the chunk budget, not
        # the rank group.
        from .incremental import IncrementalKernel

        if payload["validate"]:
            columns = lint_columns(validate_config())
        else:
            columns = REPLAY_COLUMNS
        spilled = set()

        def _sink(rank: int, table) -> None:
            spill.store(f"inv-{digests[rank]}", _table_to_arrays(table))
            spilled.add(rank)

        kernel = IncrementalKernel(
            index.regions,
            index.metrics,
            len(ranks),
            ranks,
            validate=payload["validate"],
            known_ranks=frozenset(payload["known_ranks"]),
            table_ranks=need,
            trace_name=index.name,
            table_sink=_sink,
        )
        for batch in index.cursor(
            ranks=ranks, columns=columns,
            chunk_events=payload.get("chunk_events"),
        ):
            kernel.feed(batch.rank, batch.events)
            if batch.final:
                kernel.finish_rank(batch.rank)
        boot = kernel.finalize()

    issues = [
        (i.rank, i.code, i.message, i.position, i.time)
        for i in boot.report.issues
    ]
    if issues:
        # Replay of a structurally broken stream is undefined; let
        # the parent raise the aggregated validation error instead.
        return {"digests": {}, "partials": {}, "extents": {},
                "issues": issues, "replayed": 0, "reused": 0}
    extents: dict[int, tuple[int, float, float]] = {}
    if trace is not None:
        for rank in ranks:
            events = trace.events_of(rank)
            if len(events):
                extents[rank] = (
                    len(events), float(events.time[0]), float(events.time[-1])
                )
    else:
        extents = dict(kernel.extents)
    for rank in need:
        if rank not in spilled:
            spill.store(
                f"inv-{digests[rank]}", _table_to_arrays(boot.tables[rank])
            )
        partial = boot.partials[rank]
        spill.store(f"rankstats-{digests[rank]}", partial)
        partials[rank] = partial
    return {"digests": digests, "partials": partials, "extents": extents,
            "issues": issues, "replayed": len(need),
            "reused": len(ranks) - len(need)}


def _phase2_shard(payload: dict) -> dict:
    """Segment + SOS-accumulate one shard's ranks for one region.

    Reads invocation tables back from the spill (small, rank-local
    reads) and returns only the per-segment arrays — a few KB per rank
    even for million-event traces.  Telemetry travels like phase 1:
    worker snapshot under ``"obs"``, merged in shard order.
    """
    owns_obs = _worker_obs_setup(payload)
    try:
        with obs.span("shard.phase2"):
            res = _phase2_shard_impl(payload)
    finally:
        col = obs.disable() if owns_obs else None
    if col is not None:
        res["obs"] = col.snapshot()
    return res


def _phase2_shard_impl(payload: dict) -> dict:
    from .session import ArtifactCache, _table_from_arrays

    spill = ArtifactCache(payload["spill_dir"])
    region = payload["region"]
    sync_regions = payload["sync_regions"]
    out: dict[int, dict[str, np.ndarray]] = {}
    for rank in sorted(payload["ranks"]):
        arrays = spill.load(f"inv-{payload['digests'][rank]}")
        if arrays is None:
            raise RuntimeError(
                f"shard spill lost the invocation table of rank {rank}"
            )
        table = _table_from_arrays(arrays)
        seg = segment_rank(table, rank, region)
        out[rank] = {
            "t_start": seg.t_start,
            "t_stop": seg.t_stop,
            "invocation_row": seg.invocation_row,
            "sync_time": segment_sync_time(seg, table, sync_regions),
        }
    return out


def _heartbeat(phase: str, payload: dict, done: int, total: int,
               dt: float) -> None:
    """One INFO progress line per completed rank group.

    Silent at the default WARNING level; ``-v`` surfaces the shard
    engine's progress without touching stdout.
    """
    ranks = payload.get("ranks", ())
    _LOG.info(
        "%s: shard %d/%d done (ranks %s..%s, %.3fs)",
        phase, done, total,
        min(ranks, default="?"), max(ranks, default="?"), dt,
    )


def _run_shard_tasks(fn, payloads: list[dict], workers: int) -> list:
    """Run shard tasks, in-process when one worker suffices.

    Results keep payload order regardless of completion order, so the
    parent-side merges stay deterministic.  Each completion emits an
    INFO heartbeat and updates the ``shard.queue_depth`` gauge.
    """
    phase = getattr(fn, "__name__", "shard").strip("_")
    total = len(payloads)
    if workers <= 1 or total <= 1:
        results = []
        for i, p in enumerate(payloads):
            t0 = time.perf_counter()
            results.append(fn(p))
            _heartbeat(phase, p, i + 1, total, time.perf_counter() - t0)
        return results
    results = [None] * total
    with ProcessPoolExecutor(max_workers=min(workers, total)) as pool:
        t0 = time.perf_counter()
        futures = {pool.submit(fn, p): i for i, p in enumerate(payloads)}
        pending = len(futures)
        _G_QUEUE.set(pending)
        done = 0
        for fut in as_completed(futures):
            i = futures[fut]
            results[i] = fut.result()
            done += 1
            pending -= 1
            _G_QUEUE.set(pending)
            _heartbeat(
                phase, payloads[i], done, total, time.perf_counter() - t0
            )
    return results


# ---------------------------------------------------------------------------
# Parent-side merge layer
# ---------------------------------------------------------------------------


def _merge_worker_obs(res: dict) -> None:
    """Fold a worker's telemetry snapshot into the active collector.

    Called on results in shard order, so worker journals appear as
    ranks in ascending shard order in the exported self-trace — the
    same determinism rule as the statistics-partial merge.
    """
    snap = res.pop("obs", None)
    if snap is not None:
        col = obs.collector()
        if col is not None:
            col.merge(snap)


def assemble_sos(
    region: int,
    per_rank: dict[int, dict[str, np.ndarray]],
    classifier: SyncClassifier,
) -> SOSResult:
    """Union per-rank segment/SOS arrays into a full :class:`SOSResult`.

    The merge is a rank-keyed dictionary union — no arithmetic — so it
    is trivially associative, commutative and order-independent (the
    property tests in ``tests/test_shard.py`` pin this down).
    """
    segs: dict[int, RankSegments] = {}
    soss: dict[int, RankSOS] = {}
    for rank in sorted(per_rank):
        d = per_rank[rank]
        seg = RankSegments(
            rank=rank,
            t_start=d["t_start"],
            t_stop=d["t_stop"],
            invocation_row=d["invocation_row"],
        )
        duration = seg.duration
        segs[rank] = seg
        soss[rank] = RankSOS(
            rank=rank,
            duration=duration,
            sync_time=d["sync_time"],
            sos=duration - d["sync_time"],
        )
    return SOSResult(Segmentation(region, segs), soss, classifier)


@dataclass(slots=True)
class ShardBootstrap:
    """Merged phase-1 output: digests, stats partials, diagnostics."""

    digests: dict[int, str]
    partials: dict[int, dict[str, np.ndarray]]
    #: rank -> (n_events, first timestamp, last timestamp); lets the
    #: parent report trace totals without materialising any events
    extents: dict[int, tuple[int, float, float]]
    #: ValidationIssue field tuples: (rank, code, message, position, time)
    issues: list[tuple[int, str, str, int, float | None]]
    replayed: int
    reused: int

    @property
    def num_events(self) -> int:
        return sum(n for n, _, _ in self.extents.values())

    @property
    def t_min(self) -> float:
        lows = [lo for _, lo, _ in self.extents.values()]
        return float(min(lows)) if lows else 0.0

    @property
    def t_max(self) -> float:
        highs = [hi for _, _, hi in self.extents.values()]
        return float(max(highs)) if highs else 0.0


class ShardEngine:
    """Coordinates the worker pool for one sharded analysis.

    Parameters
    ----------
    plan:
        Rank partition from :func:`plan_shards`.
    source_path:
        Trace file; workers read their ranks through the chunked
        reader.  Exactly one of ``source_path``/``trace`` is required.
    trace:
        In-memory trace; workers receive pickled per-shard sub-traces
        (this bounds cores, not memory — the parent already holds the
        full trace).
    n_regions:
        Region count of the trace's definitions (statistics width).
    spill_dir:
        Directory for the table spill.  ``None`` creates a private
        temporary directory that lives as long as the engine.
    workers:
        Worker-process count; default from :func:`shard_workers`.
    validate:
        Run structural validation inside phase-1 workers.
    chunk_events:
        Batch size (events) of the phase-1 workers' cursor reads
        (path mode).  ``None`` reads one whole-rank batch per rank;
        a bound makes the per-worker memory budget a hard guarantee
        instead of a planning estimate.
    """

    def __init__(
        self,
        plan: ShardPlan,
        *,
        source_path: str | os.PathLike | None = None,
        trace: Trace | None = None,
        n_regions: int,
        spill_dir: str | os.PathLike | None = None,
        workers: int | None = None,
        validate: bool = True,
        chunk_events: int | None = None,
    ) -> None:
        if (source_path is None) == (trace is None):
            raise ValueError("pass exactly one of source_path or trace")
        if chunk_events is not None and chunk_events <= 0:
            raise ValueError(f"chunk_events must be > 0, got {chunk_events}")
        self.plan = plan
        self.source_path = os.fspath(source_path) if source_path else None
        self.trace = trace
        self.n_regions = n_regions
        self.validate = validate
        self.chunk_events = chunk_events
        self.workers = (
            shard_workers(plan.num_shards) if workers is None else workers
        )
        self._tmp: tempfile.TemporaryDirectory | None = None
        if spill_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-shard-")
            spill_dir = self._tmp.name
        self.spill_dir = os.fspath(spill_dir)
        self._bootstrap: ShardBootstrap | None = None

    # -- phase 1 -------------------------------------------------------

    def _phase1_payloads(self) -> list[dict]:
        known = self.plan.ranks
        payloads = []
        for shard, group in enumerate(self.plan.groups):
            payload = {
                "ranks": tuple(group),
                "known_ranks": known,
                "n_regions": self.n_regions,
                "spill_dir": self.spill_dir,
                "validate": self.validate,
                "shard": shard,
                "obs": obs.current_context(),
            }
            if self.source_path is not None:
                payload["path"] = self.source_path
                payload["chunk_events"] = self.chunk_events
            else:
                payload["trace"] = select_ranks(self.trace, group)
            payloads.append(payload)
        return payloads

    def bootstrap(self) -> ShardBootstrap:
        """Replay + profile every shard (runs once, then memoized)."""
        if self._bootstrap is None:
            results = _run_shard_tasks(
                _phase1_shard, self._phase1_payloads(), self.workers
            )
            boot = ShardBootstrap({}, {}, {}, [], 0, 0)
            for res in results:
                _merge_worker_obs(res)
                boot.digests.update(res["digests"])
                boot.partials.update(res["partials"])
                boot.extents.update(res["extents"])
                boot.issues.extend(res["issues"])
                boot.replayed += res["replayed"]
                boot.reused += res["reused"]
            self._bootstrap = boot
        return self._bootstrap

    # -- phase 2 -------------------------------------------------------

    def sos_arrays(
        self, region: int, sync_regions: np.ndarray
    ) -> dict[int, dict[str, np.ndarray]]:
        """Per-rank segment/sync arrays for ``region`` across all shards."""
        boot = self.bootstrap()
        payloads = [
            {
                "ranks": tuple(group),
                "digests": {r: boot.digests[r] for r in group},
                "region": int(region),
                "sync_regions": np.asarray(sync_regions),
                "spill_dir": self.spill_dir,
                "shard": shard,
                "obs": obs.current_context(),
            }
            for shard, group in enumerate(self.plan.groups)
        ]
        merged: dict[int, dict[str, np.ndarray]] = {}
        for res in _run_shard_tasks(_phase2_shard, payloads, self.workers):
            _merge_worker_obs(res)
            merged.update(res)
        return merged

    # -- spill access ---------------------------------------------------

    def load_table(self, rank: int) -> InvocationTable:
        """One rank's replayed invocation table, read from the spill."""
        from .session import ArtifactCache, _table_from_arrays

        boot = self.bootstrap()
        if rank not in boot.digests:
            raise KeyError(f"rank {rank} is not part of this shard plan")
        arrays = ArtifactCache(self.spill_dir).load(f"inv-{boot.digests[rank]}")
        if arrays is None:
            raise RuntimeError(
                f"shard spill lost the invocation table of rank {rank}"
            )
        return _table_from_arrays(arrays)
