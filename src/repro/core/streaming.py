"""Streaming (in-situ) performance-variation analysis.

The paper notes that "in-situ analysis while the target application is
still running is feasible as well, but the performance analysis suite
that we use for our prototype does not support such a workflow"
(Section III).  This module implements that workflow: events are fed
incrementally per process, segments complete online, SOS-times are
computed on the fly, and anomalous invocations raise alerts while the
run is still in flight.

Protocol
--------

1. Create a :class:`StreamingAnalyzer` (optionally pinning the dominant
   function up front — e.g. from a previous run's analysis).
2. ``feed(rank, events)`` with time-ordered event chunks per rank —
   or :meth:`StreamingAnalyzer.consume` an
   :class:`~repro.trace.cursor.EventCursor` (a file being tailed, a
   pipe, an in-process feed) and let the analyzer pull.
   During the warm-up phase the analyzer only collects running
   per-function statistics; once ``warmup_invocations`` complete
   invocations have been seen (or :meth:`select_now` is called), it
   picks the dominant function with the paper's criterion and starts
   segmenting *from that point on*.
3. Completed segments are appended to per-rank series; each completed
   segment is tested against the rank's recent history (median/MAD
   over a sliding window) and materially slow ones become
   :class:`StreamAlert` records immediately.

Bounded memory: with ``history_limit`` set, only that many completed
segments are retained per rank (evictions are counted in the
``stream.window_evictions`` telemetry counter); running totals — and
therefore :meth:`StreamingAnalyzer.snapshot_hot_ranks` — are unaffected
by eviction because they accumulate at segment completion.

Batch equivalence: fed a complete trace after pinning the dominant
function, the streamed SOS values equal
:func:`repro.core.sos.compute_sos` exactly (tested), and results are
bitwise independent of how the stream is chunked.  After warm-up the
chunk processor is vectorised (stack validation via the lint engine's
depth trick, segment/sync boundaries via nesting trajectories), so
throughput on large chunks is bounded by NumPy scans, not per-event
Python dispatch.

Malformed streams raise :class:`StreamOrderError` (out-of-order chunk;
tracelint rule ``TL004``) or :class:`StreamStructureError` (unmatched
or mismatched leave; ``TL001``/``TL003``) — the same diagnostics the
offline validator emits for the same defects.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .. import obs
from ..trace.definitions import RegionRegistry
from ..trace.events import EventKind, EventList
from .classify import SyncClassifier, default_classifier
from .imbalance import _MAD_SCALE

__all__ = [
    "STREAM_COLUMNS",
    "STREAM_METRIC_COLUMNS",
    "StreamAlert",
    "StreamOrderError",
    "StreamStructureError",
    "StreamedSegment",
    "StreamingAnalyzer",
]

#: Event columns the streaming state machine reads; feeders (the
#: ``repro monitor`` command in particular) may project their loads
#: down to these.  The projection tests keep the set truthful.
STREAM_COLUMNS = ("time", "kind", "ref")

#: Columns required when time-resolved metric series are enabled
#: (``metric_window``): METRIC samples additionally carry ``value``.
STREAM_METRIC_COLUMNS = ("time", "kind", "ref", "value")

#: Segments dropped from per-rank histories under ``history_limit``.
_C_EVICTIONS = obs.counter("stream.window_evictions")
#: Events parsed by the driving cursor but not yet fed (backlog).
_G_LAG = obs.gauge("stream.lag_events")

_ENTER = np.uint8(EventKind.ENTER)
_LEAVE = np.uint8(EventKind.LEAVE)
_METRIC = np.uint8(EventKind.METRIC)


def _small_median(ordered: list) -> float:
    """Median of a pre-sorted sequence (matches ``np.median`` bitwise)."""
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class StreamOrderError(ValueError):
    """A fed chunk starts before the rank's last seen timestamp.

    The stream equivalent of tracelint's ``TL004`` (``time-order``):
    every analysis assumption — replay, segmentation, windows — needs
    time-sorted streams per rank.
    """

    code = "TL004"
    legacy_code = "time-order"

    def __init__(self, rank: int, t: float, last: float) -> None:
        super().__init__(
            f"rank {rank}: chunk not time-ordered ({t} after {last})"
        )
        self.rank = rank


class StreamStructureError(ValueError):
    """A leave event does not close the currently open region.

    The stream equivalent of tracelint's ``TL001``
    (``unmatched-leave``, empty stack) and ``TL003``
    (``mismatched-leave``, wrong region); :attr:`code` carries which.
    """

    def __init__(self, rank: int, region: int, code: str) -> None:
        super().__init__(
            f"rank {rank}: leave of region {region} does not "
            "match the open region"
        )
        self.rank = rank
        self.code = code
        self.legacy_code = (
            "unmatched-leave" if code == "TL001" else "mismatched-leave"
        )


@dataclass(frozen=True, slots=True)
class StreamedSegment:
    """One completed dominant-function invocation seen in the stream."""

    rank: int
    index: int
    t_start: float
    t_stop: float
    sync_time: float

    @property
    def duration(self) -> float:
        return self.t_stop - self.t_start

    @property
    def sos(self) -> float:
        return self.duration - self.sync_time


@dataclass(frozen=True, slots=True)
class StreamAlert:
    """A segment flagged as anomalous at completion time."""

    segment: StreamedSegment
    zscore: float
    window: int  # history size the z-score was computed against

    def __str__(self) -> str:
        s = self.segment
        return (
            f"rank {s.rank} segment {s.index} "
            f"[{s.t_start:.6g}, {s.t_stop:.6g}]: SOS {s.sos:.6g} "
            f"(z={self.zscore:.1f} over {self.window} recent segments)"
        )


class _RankStream:
    """Per-process incremental state machine."""

    __slots__ = (
        "rank",
        "stack",
        "sync_nesting",
        "sync_start",
        "segment_start",
        "segment_sync",
        "dominant_nesting",
        "seg_start",
        "seg_stop",
        "seg_sync",
        "next_index",
        "total_sos",
        "total_count",
        "recent_sos",
        "last_time",
    )

    def __init__(self, rank: int, window: int) -> None:
        self.rank = rank
        self.stack: list[tuple[int, float]] = []
        self.sync_nesting = 0
        self.sync_start = 0.0
        self.segment_start: float | None = None
        self.segment_sync = 0.0
        self.dominant_nesting = 0
        # Completed segments, stored columnar (one float triple per
        # segment, :class:`StreamedSegment` objects are materialised
        # on access) — constructing a frozen dataclass per segment
        # would dominate steady-state streaming cost.
        self.seg_start: deque[float] = deque()
        self.seg_stop: deque[float] = deque()
        self.seg_sync: deque[float] = deque()
        self.next_index = 0
        self.total_sos = 0.0
        self.total_count = 0
        self.recent_sos: deque[float] = deque(maxlen=window)
        self.last_time = -np.inf


class StreamingAnalyzer:
    """Online segment/SOS computation over incrementally fed events.

    Parameters
    ----------
    regions:
        The region registry events refer to (shared with the producer).
    num_processes:
        Total number of processes (for the ``2p`` criterion).
    dominant:
        Region id or name to segment by; ``None`` enables automatic
        warm-up selection.
    warmup_invocations:
        Complete invocations to observe before auto-selecting.
    classifier:
        Synchronization classifier (default: MPI/OpenMP policy).
    window:
        Sliding-window length for the online outlier test.
    alert_threshold:
        Robust z-score a completed segment must exceed to alert.
    min_relative_excess:
        Materiality bar relative to the window median.
    history_limit:
        Maximum completed segments retained *per rank* (``None`` keeps
        everything).  Eviction is FIFO and counted in the
        ``stream.window_evictions`` counter; alerts and running totals
        are unaffected.
    metric_window:
        Bin width (seconds) for time-resolved METRIC series
        (:meth:`metric_series`).  ``None`` (default) ignores METRIC
        events; when set, fed chunks must include the ``value`` column
        (:data:`STREAM_METRIC_COLUMNS`).
    """

    def __init__(
        self,
        regions: RegionRegistry,
        num_processes: int,
        dominant: int | str | None = None,
        warmup_invocations: int = 500,
        classifier: SyncClassifier | None = None,
        window: int = 32,
        alert_threshold: float = 4.0,
        min_relative_excess: float = 0.1,
        history_limit: int | None = None,
        metric_window: float | None = None,
    ) -> None:
        if num_processes <= 0:
            raise ValueError("num_processes must be positive")
        if history_limit is not None and history_limit <= 0:
            raise ValueError("history_limit must be positive")
        if metric_window is not None and metric_window <= 0:
            raise ValueError("metric_window must be positive")
        self.regions = regions
        self.num_processes = num_processes
        self.classifier = classifier if classifier is not None else default_classifier()
        self.window = window
        self.alert_threshold = alert_threshold
        self.min_relative_excess = min_relative_excess
        self.warmup_invocations = warmup_invocations
        self.history_limit = history_limit
        self.metric_window = metric_window

        self._sync_mask = self.classifier.mask_registry(regions)
        # (mask_registry accepts a bare RegionRegistry, see classify.py)
        self._streams: dict[int, _RankStream] = {}
        self.alerts: list[StreamAlert] = []
        self.window_evictions = 0
        #: ``(rank, metric id) -> {bin index: [value sum, sample count]}``
        self._metric_bins: dict[tuple[int, int], dict[int, list]] = {}

        # Warm-up statistics for automatic dominant selection.
        self._warmup_counts = np.zeros(len(regions), dtype=np.int64)
        self._warmup_inclusive = np.zeros(len(regions), dtype=np.float64)
        self._warmup_seen = 0

        self.dominant: int | None = None
        if dominant is not None:
            self.dominant = (
                regions.id_of(dominant) if isinstance(dominant, str) else int(dominant)
            )

    # -- public API -----------------------------------------------------

    @property
    def selected(self) -> bool:
        return self.dominant is not None

    @property
    def dominant_name(self) -> str | None:
        return self.regions[self.dominant].name if self.selected else None

    def feed(self, rank: int, events: EventList) -> list[StreamAlert]:
        """Process one time-ordered chunk of events for ``rank``.

        Returns the alerts raised by this chunk (also appended to
        :attr:`alerts`).  Chunk boundaries are observable only in
        latency: results are bitwise identical whether a stream
        arrives one event at a time or as a single chunk.
        """
        stream = self._stream(rank)
        n = len(events)
        if n == 0:
            return []
        times = events.time
        if float(times[0]) < stream.last_time:
            raise StreamOrderError(rank, float(times[0]), stream.last_time)
        kinds = events.kind
        refs = events.ref
        if self.selected:
            new_alerts = self._feed_chunk(stream, times, kinds, refs)
            stream.last_time = float(times[-1])
        else:
            # Warm-up keeps the per-event reference loop: selection is
            # event-exact, and may flip mid-chunk.
            new_alerts = self._feed_warmup(stream, times, kinds, refs)
        if self.metric_window is not None:
            self._feed_metrics(rank, times, kinds, refs, events)
        self.alerts.extend(new_alerts)
        return new_alerts

    def consume(self, cursor) -> int:
        """Pull an :class:`~repro.trace.cursor.EventCursor` dry.

        Feeds every batch the cursor yields (for a live cursor this
        blocks between polls inside the cursor) and publishes the
        cursor's parsed-but-unfed backlog as the ``stream.lag_events``
        gauge.  Returns the number of events fed.
        """
        fed = 0
        for batch in cursor:
            if len(batch.events):
                self.feed(batch.rank, batch.events)
                fed += len(batch.events)
            _G_LAG.set(float(getattr(cursor, "backlog_events", 0)))
        return fed

    def select_now(self) -> int:
        """Force dominant-function selection from warm-up statistics."""
        if self.selected:
            return self.dominant  # type: ignore[return-value]
        threshold = 2 * self.num_processes
        eligible = np.flatnonzero(self._warmup_counts >= threshold)
        eligible = [
            r
            for r in eligible
            if not self._sync_mask[r]
        ]
        if not eligible:
            raise ValueError(
                "no dominant-function candidate in the warm-up window "
                f"(need >= {threshold} invocations of a non-sync region)"
            )
        best = max(eligible, key=lambda r: self._warmup_inclusive[r])
        self.dominant = int(best)
        return self.dominant

    def candidates(self, k: int = 5) -> list[tuple[int, int, float]]:
        """Rolling dominant-function candidates from warm-up statistics.

        Returns up to ``k`` tuples ``(region id, invocations, inclusive
        seconds)``, ordered by inclusive time over the regions
        :meth:`select_now` would choose from — non-sync with at least
        ``2 * num_processes`` observed invocations (the paper's
        eligibility bar, which also rules out once-per-run wrappers
        like ``main``).  Usable at any time, also after selection.
        """
        eligible = np.flatnonzero(
            self._warmup_counts >= 2 * self.num_processes
        )
        ranked = sorted(
            (int(r) for r in eligible if not self._sync_mask[r]),
            key=lambda r: -self._warmup_inclusive[r],
        )
        return [
            (r, int(self._warmup_counts[r]), float(self._warmup_inclusive[r]))
            for r in ranked[: max(int(k), 0)]
        ]

    def segments(self, rank: int) -> list[StreamedSegment]:
        """Completed segments of one rank (retained history)."""
        stream = self._streams.get(rank)
        if stream is None:
            return []
        base = stream.next_index - len(stream.seg_start)
        return [
            StreamedSegment(
                rank=rank, index=base + i, t_start=a, t_stop=b, sync_time=c
            )
            for i, (a, b, c) in enumerate(
                zip(stream.seg_start, stream.seg_stop, stream.seg_sync)
            )
        ]

    def sos_series(self, rank: int) -> np.ndarray:
        """SOS values of one rank's completed (retained) segments."""
        stream = self._streams.get(rank)
        if stream is None or not stream.seg_start:
            return np.asarray([])
        start = np.asarray(stream.seg_start)
        stop = np.asarray(stream.seg_stop)
        sync = np.asarray(stream.seg_sync)
        return (stop - start) - sync

    def per_rank_total(self) -> dict[int, float]:
        """Running total SOS per rank (independent of eviction)."""
        return {
            rank: float(stream.total_sos)
            for rank, stream in sorted(self._streams.items())
        }

    def metric_series(self, rank: int, metric: int) -> tuple[np.ndarray, np.ndarray]:
        """Time-resolved mean of one METRIC stream for one rank.

        Returns ``(bin start times, mean values)`` over the
        ``metric_window``-second bins that received samples, in time
        order.  Empty arrays when the pair produced no samples (or
        ``metric_window`` is off).
        """
        bins = self._metric_bins.get((rank, int(metric)))
        if not bins:
            return np.empty(0), np.empty(0)
        order = sorted(bins)
        width = float(self.metric_window)  # type: ignore[arg-type]
        starts = np.asarray([b * width for b in order])
        means = np.asarray([bins[b][0] / bins[b][1] for b in order])
        return starts, means

    def snapshot_hot_ranks(self, threshold: float = 3.0) -> list[int]:
        """Rank-level anomaly check over the running totals."""
        totals = self.per_rank_total()
        if len(totals) < 3:
            return []
        ranks = np.asarray(sorted(totals))
        values = np.asarray([totals[r] for r in ranks])
        med = float(np.median(values))
        mad = float(np.median(np.abs(values - med))) * _MAD_SCALE
        scale = max(mad, 0.01 * abs(med))
        if scale <= 0:
            return []
        z = (values - med) / scale
        hot = (z > threshold) & (values > med * (1 + self.min_relative_excess))
        order = np.argsort(-z)
        return [int(ranks[i]) for i in order if hot[i]]

    # -- internals -----------------------------------------------------

    def _stream(self, rank: int) -> _RankStream:
        stream = self._streams.get(rank)
        if stream is None:
            stream = _RankStream(rank, self.window)
            self._streams[rank] = stream
        return stream

    # .. warm-up path (per-event reference loop) .......................

    def _feed_warmup(self, stream, times, kinds, refs) -> list[StreamAlert]:
        new_alerts: list[StreamAlert] = []
        for i in range(len(times)):
            t = float(times[i])
            stream.last_time = t
            kind = kinds[i]
            if kind == EventKind.ENTER:
                self._enter(stream, t, int(refs[i]))
            elif kind == EventKind.LEAVE:
                alert = self._leave(stream, t, int(refs[i]))
                if alert is not None:
                    new_alerts.append(alert)
        return new_alerts

    def _enter(self, stream: _RankStream, t: float, region: int) -> None:
        stream.stack.append((region, t))
        if self._sync_mask[region]:
            if stream.sync_nesting == 0:
                stream.sync_start = t
            stream.sync_nesting += 1
        if self.selected and region == self.dominant:
            stream.dominant_nesting += 1
            if stream.dominant_nesting == 1:
                stream.segment_start = t
                stream.segment_sync = 0.0

    def _leave(self, stream: _RankStream, t: float, region: int) -> StreamAlert | None:
        if not stream.stack or stream.stack[-1][0] != region:
            raise StreamStructureError(
                stream.rank, region,
                "TL001" if not stream.stack else "TL003",
            )
        _region, t_enter = stream.stack.pop()
        if self._sync_mask[region]:
            stream.sync_nesting -= 1
            if stream.sync_nesting == 0 and stream.segment_start is not None:
                stream.segment_sync += t - max(
                    stream.sync_start, stream.segment_start
                )

        # Warm-up statistics (inclusive approximated by frame duration,
        # which counts recursion multiply; exact for non-recursive
        # frames, which dominate in practice).
        if not self.selected:
            self._warmup_counts[region] += 1
            self._warmup_inclusive[region] += t - t_enter
            self._warmup_seen += 1
            if self._warmup_seen >= self.warmup_invocations:
                try:
                    self.select_now()
                except ValueError:
                    self.warmup_invocations *= 2  # keep collecting

        if self.selected and region == self.dominant:
            stream.dominant_nesting -= 1
            if stream.dominant_nesting == 0 and stream.segment_start is not None:
                t_start = stream.segment_start
                sync_time = stream.segment_sync
                stream.segment_start = None
                return self._complete_segment(stream, t_start, t, sync_time)
        return None

    # .. steady-state path (vectorised chunk processor) ................

    def _feed_chunk(self, stream, times, kinds, refs) -> list[StreamAlert]:
        """Vectorised equivalent of the per-event loop after selection.

        Stack validation uses the lint engine's depth trick with a
        carry stack across chunk boundaries; segment and sync
        boundaries come from nesting trajectories (running sums over
        the dominant/sync event subsets), and the handful of boundary
        crossings per chunk are applied by a scalar loop that performs
        the *same float operations in the same order* as the
        per-event machine — results are bitwise chunk-size invariant.
        """
        el_mask = (kinds == _ENTER) | (kinds == _LEAVE)
        el_idx = np.flatnonzero(el_mask)
        if not el_idx.size:
            return []
        el_refs = refs[el_idx]
        pm = np.where(kinds[el_idx] == _ENTER, 1, -1)
        d0 = len(stream.stack)
        depth_after = d0 + np.cumsum(pm)
        self._check_structure(stream, pm, el_refs, depth_after)

        # Boundary crossings of the sync and dominant nesting levels.
        parts: list[tuple[np.ndarray, int]] = []
        sync_sel = self._sync_mask[el_refs]
        if sync_sel.any():
            sidx = np.flatnonzero(sync_sel)
            straj = stream.sync_nesting + np.cumsum(pm[sidx])
            parts.append((sidx[(pm[sidx] > 0) & (straj == 1)], 0))
            parts.append((sidx[(pm[sidx] < 0) & (straj == 0)], 1))
            stream.sync_nesting += int(pm[sidx].sum())
        dom_sel = el_refs == self.dominant
        if dom_sel.any():
            didx = np.flatnonzero(dom_sel)
            dtraj = stream.dominant_nesting + np.cumsum(pm[didx])
            parts.append((didx[(pm[didx] > 0) & (dtraj == 1)], 2))
            parts.append((didx[(pm[didx] < 0) & (dtraj == 0)], 3))
            stream.dominant_nesting += int(pm[didx].sum())

        new_alerts: list[StreamAlert] = []
        parts = [(p, op) for p, op in parts if p.size]
        if parts:
            pos = np.concatenate([p for p, _ in parts])
            ops = np.concatenate(
                [np.full(p.size, op, dtype=np.int8) for p, op in parts]
            )
            # Same-event ordering matches the per-event machine: the
            # sync bookkeeping runs before the dominant bookkeeping.
            order = np.lexsort((ops, pos))
            crossing_times = times[el_idx[pos[order]]].tolist()
            crossing_ops = ops[order].tolist()
            # Locals for the scalar loop; completed segments are
            # collected and post-processed in one batch.
            sync_start = stream.sync_start
            seg_start = stream.segment_start
            seg_sync = stream.segment_sync
            c_start: list[float] = []
            c_stop: list[float] = []
            c_sync: list[float] = []
            for t, op in zip(crossing_times, crossing_ops):
                if op == 0:  # sync episode begins
                    sync_start = t
                elif op == 1:  # sync episode ends
                    if seg_start is not None:
                        seg_sync += t - max(sync_start, seg_start)
                elif op == 2:  # dominant segment opens
                    seg_start = t
                    seg_sync = 0.0
                elif seg_start is not None:  # segment closes
                    c_start.append(seg_start)
                    c_stop.append(t)
                    c_sync.append(seg_sync)
                    seg_start = None
            stream.sync_start = sync_start
            stream.segment_start = seg_start
            stream.segment_sync = seg_sync
            if c_start:
                new_alerts = self._complete_batch(
                    stream, c_start, c_stop, c_sync
                )

        # Carry stack: frames still open after this chunk.
        survivors = min(d0, int(depth_after.min()))
        suffix_min = np.minimum.accumulate(depth_after[::-1])[::-1]
        open_enters = np.flatnonzero((pm > 0) & (suffix_min == depth_after))
        stream.stack = stream.stack[:survivors] + [
            (int(el_refs[i]), float(times[el_idx[i]])) for i in open_enters
        ]
        return new_alerts

    def _check_structure(self, stream, pm, el_refs, depth_after) -> None:
        """Raise on the first leave that does not close the open region.

        Equivalent to the per-event stack machine: for any prefix that
        the per-event loop would accept, the depth-trick pairing *is*
        the stack pairing, so the earliest failing candidate below is
        exactly the event the scalar loop would have raised on.
        """
        under = np.flatnonzero(depth_after < 0)
        limit = int(under[0]) if under.size else pm.size
        candidates: list[tuple[int, str]] = []
        if under.size:
            candidates.append((int(under[0]), "TL001"))
        if limit:
            da = depth_after[:limit]
            pmv = pm[:limit]
            frame_depth = np.where(pmv > 0, da, da + 1)
            order = np.argsort(frame_depth, kind="stable")
            fd_sorted = frame_depth[order]
            starts = np.flatnonzero(
                np.r_[True, fd_sorted[1:] != fd_sorted[:-1]]
            )
            ends = np.r_[starts[1:], fd_sorted.size]
            for s, e in zip(starts, ends):
                level_idx = order[s:e]  # ascending positions, one level
                j = 0
                if pmv[level_idx[0]] < 0:
                    # Leading leave closes a frame carried in from a
                    # previous chunk.
                    carried = stream.stack[int(fd_sorted[s]) - 1][0]
                    if int(el_refs[level_idx[0]]) != carried:
                        candidates.append((int(level_idx[0]), "TL003"))
                    j = 1
                rem = level_idx[j:]
                n_pairs = rem.size // 2
                if n_pairs:
                    enters = rem[: 2 * n_pairs : 2]
                    leaves = rem[1 : 2 * n_pairs : 2]
                    bad = np.flatnonzero(el_refs[enters] != el_refs[leaves])
                    if bad.size:
                        candidates.append((int(leaves[bad[0]]), "TL003"))
        if candidates:
            first, code = min(candidates)
            raise StreamStructureError(
                stream.rank, int(el_refs[first]), code
            )

    # .. segment completion ............................................

    def _complete_segment(
        self,
        stream: _RankStream,
        t_start: float,
        t_stop: float,
        sync_time: float,
    ) -> StreamAlert | None:
        """Record one completed segment (scalar path: warm-up loop)."""
        stream.seg_start.append(t_start)
        stream.seg_stop.append(t_stop)
        stream.seg_sync.append(sync_time)
        index = stream.next_index
        stream.next_index = index + 1
        sos = (t_stop - t_start) - sync_time
        stream.total_sos += sos
        stream.total_count += 1
        if (
            self.history_limit is not None
            and len(stream.seg_start) > self.history_limit
        ):
            stream.seg_start.popleft()
            stream.seg_stop.popleft()
            stream.seg_sync.popleft()
            self.window_evictions += 1
            _C_EVICTIONS.add()
        return self._test_segment(
            stream, sos, index, t_start, t_stop, sync_time
        )

    def _complete_batch(
        self,
        stream: _RankStream,
        starts: list[float],
        stops: list[float],
        syncs: list[float],
    ) -> list[StreamAlert]:
        """Record the segments one chunk completed, test them in bulk.

        Bitwise identical to running :meth:`_complete_segment` per
        segment: the running total accumulates left-to-right, eviction
        commutes with the history test (they touch disjoint state),
        and the vectorised median/MAD below reproduces the scalar
        window test float-for-float.
        """
        count = len(starts)
        base = stream.next_index
        stream.seg_start.extend(starts)
        stream.seg_stop.extend(stops)
        stream.seg_sync.extend(syncs)
        stream.next_index = base + count
        sos = [(b - a) - c for a, b, c in zip(starts, stops, syncs)]
        total = stream.total_sos
        for value in sos:
            total += value
        stream.total_sos = total
        stream.total_count += count
        if self.history_limit is not None:
            overflow = len(stream.seg_start) - self.history_limit
            if overflow > 0:
                for _ in range(overflow):
                    stream.seg_start.popleft()
                    stream.seg_stop.popleft()
                    stream.seg_sync.popleft()
                self.window_evictions += overflow
                _C_EVICTIONS.add(overflow)

        history = stream.recent_sos
        window = history.maxlen or 0
        alerts: list[StreamAlert] = []
        # Until the rolling window is full, windows grow per segment —
        # run those through the scalar test.  Once full, every
        # remaining segment sees exactly ``window`` predecessors and
        # the median/MAD tests vectorise row-wise.
        n_scalar = min(count, max(0, window - len(history)))
        for j in range(n_scalar):
            alert = self._test_segment(
                stream, sos[j], base + j, starts[j], stops[j], syncs[j]
            )
            if alert is not None:
                alerts.append(alert)
        if n_scalar == count:
            return alerts
        rest = sos[n_scalar:]
        if window >= 8:
            hist = np.empty(window + len(rest))
            hist[:window] = history
            hist[window:] = rest
            win = np.lib.stride_tricks.sliding_window_view(hist, window)[
                : len(rest)
            ]
            med = np.median(win, axis=1)
            mad = np.median(np.abs(win - med[:, None]), axis=1) * _MAD_SCALE
            scale = np.maximum(mad, 0.01 * np.abs(med))
            svals = hist[window:]
            with np.errstate(divide="ignore", invalid="ignore"):
                z = (svals - med) / scale
            flag = (
                (scale > 0)
                & (z > self.alert_threshold)
                & (svals > med * (1 + self.min_relative_excess))
            )
            for j in np.flatnonzero(flag):
                i = n_scalar + int(j)
                segment = StreamedSegment(
                    rank=stream.rank,
                    index=base + i,
                    t_start=starts[i],
                    t_stop=stops[i],
                    sync_time=syncs[i],
                )
                alerts.append(
                    StreamAlert(
                        segment=segment,
                        zscore=float(z[j]),
                        window=window,
                    )
                )
        history.extend(rest)
        return alerts

    def _test_segment(
        self,
        stream: _RankStream,
        sos: float,
        index: int,
        t_start: float,
        t_stop: float,
        sync_time: float,
    ) -> StreamAlert | None:
        history = stream.recent_sos
        alert = None
        if len(history) >= 8:
            # Median/MAD over the short window in pure Python: bitwise
            # identical to np.median (even-length means are (a+b)/2 in
            # both) and ~10x cheaper at window sizes.
            med = _small_median(sorted(history))
            mad = _small_median(sorted([abs(v - med) for v in history]))
            mad *= _MAD_SCALE
            scale = max(mad, 0.01 * abs(med))
            if scale > 0:
                z = (sos - med) / scale
                material = sos > med * (1 + self.min_relative_excess)
                if z > self.alert_threshold and material:
                    alert = StreamAlert(
                        segment=StreamedSegment(
                            rank=stream.rank,
                            index=index,
                            t_start=t_start,
                            t_stop=t_stop,
                            sync_time=sync_time,
                        ),
                        zscore=float(z),
                        window=len(history),
                    )
        history.append(sos)
        return alert

    # .. time-resolved metric series ...................................

    def _feed_metrics(self, rank, times, kinds, refs, events) -> None:
        sel = np.flatnonzero(kinds == _METRIC)
        if not sel.size:
            return
        values = events.value[sel]
        bins = (times[sel] // self.metric_window).astype(np.int64)
        metric_refs = refs[sel]
        for ref in np.unique(metric_refs):
            acc = self._metric_bins.setdefault((rank, int(ref)), {})
            mask = metric_refs == ref
            for b, v in zip(bins[mask], values[mask]):
                slot = acc.setdefault(int(b), [0.0, 0])
                slot[0] += float(v)
                slot[1] += 1
