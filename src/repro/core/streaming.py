"""Streaming (in-situ) performance-variation analysis.

The paper notes that "in-situ analysis while the target application is
still running is feasible as well, but the performance analysis suite
that we use for our prototype does not support such a workflow"
(Section III).  This module implements that workflow: events are fed
incrementally per process, segments complete online, SOS-times are
computed on the fly, and anomalous invocations raise alerts while the
run is still in flight.

Protocol
--------

1. Create a :class:`StreamingAnalyzer` (optionally pinning the dominant
   function up front — e.g. from a previous run's analysis).
2. ``feed(rank, events)`` with time-ordered event chunks per rank.
   During the warm-up phase the analyzer only collects running
   per-function statistics; once ``warmup_invocations`` complete
   invocations have been seen (or :meth:`select_now` is called), it
   picks the dominant function with the paper's criterion and starts
   segmenting *from that point on*.
3. Completed segments are appended to per-rank series; each completed
   segment is tested against the rank's recent history (median/MAD
   over a sliding window) and materially slow ones become
   :class:`StreamAlert` records immediately.

Batch equivalence: fed a complete trace after pinning the dominant
function, the streamed SOS values equal
:func:`repro.core.sos.compute_sos` exactly (tested).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..trace.definitions import RegionRegistry
from ..trace.events import EventKind, EventList
from .classify import SyncClassifier, default_classifier
from .imbalance import _MAD_SCALE

__all__ = [
    "STREAM_COLUMNS",
    "StreamAlert",
    "StreamedSegment",
    "StreamingAnalyzer",
]

#: Event columns the streaming state machine reads; feeders (the
#: ``repro monitor`` command in particular) may project their loads
#: down to these.  The projection tests keep the set truthful.
STREAM_COLUMNS = ("time", "kind", "ref")


@dataclass(frozen=True, slots=True)
class StreamedSegment:
    """One completed dominant-function invocation seen in the stream."""

    rank: int
    index: int
    t_start: float
    t_stop: float
    sync_time: float

    @property
    def duration(self) -> float:
        return self.t_stop - self.t_start

    @property
    def sos(self) -> float:
        return self.duration - self.sync_time


@dataclass(frozen=True, slots=True)
class StreamAlert:
    """A segment flagged as anomalous at completion time."""

    segment: StreamedSegment
    zscore: float
    window: int  # history size the z-score was computed against

    def __str__(self) -> str:
        s = self.segment
        return (
            f"rank {s.rank} segment {s.index} "
            f"[{s.t_start:.6g}, {s.t_stop:.6g}]: SOS {s.sos:.6g} "
            f"(z={self.zscore:.1f} over {self.window} recent segments)"
        )


class _RankStream:
    """Per-process incremental state machine."""

    __slots__ = (
        "rank",
        "stack",
        "sync_nesting",
        "sync_start",
        "segment_start",
        "segment_sync",
        "dominant_nesting",
        "segments",
        "recent_sos",
        "last_time",
    )

    def __init__(self, rank: int, window: int) -> None:
        self.rank = rank
        self.stack: list[tuple[int, float]] = []
        self.sync_nesting = 0
        self.sync_start = 0.0
        self.segment_start: float | None = None
        self.segment_sync = 0.0
        self.dominant_nesting = 0
        self.segments: list[StreamedSegment] = []
        self.recent_sos: deque[float] = deque(maxlen=window)
        self.last_time = -np.inf


class StreamingAnalyzer:
    """Online segment/SOS computation over incrementally fed events.

    Parameters
    ----------
    regions:
        The region registry events refer to (shared with the producer).
    num_processes:
        Total number of processes (for the ``2p`` criterion).
    dominant:
        Region id or name to segment by; ``None`` enables automatic
        warm-up selection.
    warmup_invocations:
        Complete invocations to observe before auto-selecting.
    classifier:
        Synchronization classifier (default: MPI/OpenMP policy).
    window:
        Sliding-window length for the online outlier test.
    alert_threshold:
        Robust z-score a completed segment must exceed to alert.
    min_relative_excess:
        Materiality bar relative to the window median.
    """

    def __init__(
        self,
        regions: RegionRegistry,
        num_processes: int,
        dominant: int | str | None = None,
        warmup_invocations: int = 500,
        classifier: SyncClassifier | None = None,
        window: int = 32,
        alert_threshold: float = 4.0,
        min_relative_excess: float = 0.1,
    ) -> None:
        if num_processes <= 0:
            raise ValueError("num_processes must be positive")
        self.regions = regions
        self.num_processes = num_processes
        self.classifier = classifier if classifier is not None else default_classifier()
        self.window = window
        self.alert_threshold = alert_threshold
        self.min_relative_excess = min_relative_excess
        self.warmup_invocations = warmup_invocations

        self._sync_mask = self.classifier.mask_registry(regions)
        # (mask_registry accepts a bare RegionRegistry, see classify.py)
        self._streams: dict[int, _RankStream] = {}
        self.alerts: list[StreamAlert] = []

        # Warm-up statistics for automatic dominant selection.
        self._warmup_counts = np.zeros(len(regions), dtype=np.int64)
        self._warmup_inclusive = np.zeros(len(regions), dtype=np.float64)
        self._warmup_seen = 0

        self.dominant: int | None = None
        if dominant is not None:
            self.dominant = (
                regions.id_of(dominant) if isinstance(dominant, str) else int(dominant)
            )

    # -- public API -----------------------------------------------------

    @property
    def selected(self) -> bool:
        return self.dominant is not None

    @property
    def dominant_name(self) -> str | None:
        return self.regions[self.dominant].name if self.selected else None

    def feed(self, rank: int, events: EventList) -> list[StreamAlert]:
        """Process one time-ordered chunk of events for ``rank``.

        Returns the alerts raised by this chunk (also appended to
        :attr:`alerts`).
        """
        stream = self._stream(rank)
        new_alerts: list[StreamAlert] = []
        n = len(events)
        times = events.time
        kinds = events.kind
        refs = events.ref
        for i in range(n):
            t = float(times[i])
            if t < stream.last_time:
                raise ValueError(
                    f"rank {rank}: chunk not time-ordered "
                    f"({t} after {stream.last_time})"
                )
            stream.last_time = t
            kind = kinds[i]
            if kind == EventKind.ENTER:
                self._enter(stream, t, int(refs[i]))
            elif kind == EventKind.LEAVE:
                alert = self._leave(stream, t, int(refs[i]))
                if alert is not None:
                    new_alerts.append(alert)
        self.alerts.extend(new_alerts)
        return new_alerts

    def select_now(self) -> int:
        """Force dominant-function selection from warm-up statistics."""
        if self.selected:
            return self.dominant  # type: ignore[return-value]
        threshold = 2 * self.num_processes
        eligible = np.flatnonzero(self._warmup_counts >= threshold)
        eligible = [
            r
            for r in eligible
            if not self._sync_mask[r]
        ]
        if not eligible:
            raise ValueError(
                "no dominant-function candidate in the warm-up window "
                f"(need >= {threshold} invocations of a non-sync region)"
            )
        best = max(eligible, key=lambda r: self._warmup_inclusive[r])
        self.dominant = int(best)
        return self.dominant

    def segments(self, rank: int) -> list[StreamedSegment]:
        """Completed segments of one rank (so far)."""
        stream = self._streams.get(rank)
        return list(stream.segments) if stream else []

    def sos_series(self, rank: int) -> np.ndarray:
        """SOS values of one rank's completed segments."""
        return np.asarray([s.sos for s in self.segments(rank)])

    def per_rank_total(self) -> dict[int, float]:
        """Running total SOS per rank."""
        return {
            rank: float(sum(s.sos for s in stream.segments))
            for rank, stream in sorted(self._streams.items())
        }

    def snapshot_hot_ranks(self, threshold: float = 3.0) -> list[int]:
        """Rank-level anomaly check over the running totals."""
        totals = self.per_rank_total()
        if len(totals) < 3:
            return []
        ranks = np.asarray(sorted(totals))
        values = np.asarray([totals[r] for r in ranks])
        med = float(np.median(values))
        mad = float(np.median(np.abs(values - med))) * _MAD_SCALE
        scale = max(mad, 0.01 * abs(med))
        if scale <= 0:
            return []
        z = (values - med) / scale
        hot = (z > threshold) & (values > med * (1 + self.min_relative_excess))
        order = np.argsort(-z)
        return [int(ranks[i]) for i in order if hot[i]]

    # -- internals -----------------------------------------------------

    def _stream(self, rank: int) -> _RankStream:
        stream = self._streams.get(rank)
        if stream is None:
            stream = _RankStream(rank, self.window)
            self._streams[rank] = stream
        return stream

    def _enter(self, stream: _RankStream, t: float, region: int) -> None:
        stream.stack.append((region, t))
        if self._sync_mask[region]:
            if stream.sync_nesting == 0:
                stream.sync_start = t
            stream.sync_nesting += 1
        if self.selected and region == self.dominant:
            stream.dominant_nesting += 1
            if stream.dominant_nesting == 1:
                stream.segment_start = t
                stream.segment_sync = 0.0

    def _leave(self, stream: _RankStream, t: float, region: int) -> StreamAlert | None:
        if not stream.stack or stream.stack[-1][0] != region:
            raise ValueError(
                f"rank {stream.rank}: leave of region {region} does not "
                "match the open region"
            )
        _region, t_enter = stream.stack.pop()
        if self._sync_mask[region]:
            stream.sync_nesting -= 1
            if stream.sync_nesting == 0 and stream.segment_start is not None:
                stream.segment_sync += t - max(
                    stream.sync_start, stream.segment_start
                )

        # Warm-up statistics (inclusive approximated by frame duration,
        # which counts recursion multiply; exact for non-recursive
        # frames, which dominate in practice).
        if not self.selected:
            self._warmup_counts[region] += 1
            self._warmup_inclusive[region] += t - t_enter
            self._warmup_seen += 1
            if self._warmup_seen >= self.warmup_invocations:
                try:
                    self.select_now()
                except ValueError:
                    self.warmup_invocations *= 2  # keep collecting

        if self.selected and region == self.dominant:
            stream.dominant_nesting -= 1
            if stream.dominant_nesting == 0 and stream.segment_start is not None:
                segment = StreamedSegment(
                    rank=stream.rank,
                    index=len(stream.segments),
                    t_start=stream.segment_start,
                    t_stop=t,
                    sync_time=stream.segment_sync,
                )
                stream.segment_start = None
                stream.segments.append(segment)
                return self._test_segment(stream, segment)
        return None

    def _test_segment(
        self, stream: _RankStream, segment: StreamedSegment
    ) -> StreamAlert | None:
        history = stream.recent_sos
        alert = None
        if len(history) >= 8:
            values = np.asarray(history)
            med = float(np.median(values))
            mad = float(np.median(np.abs(values - med))) * _MAD_SCALE
            scale = max(mad, 0.01 * abs(med))
            if scale > 0:
                z = (segment.sos - med) / scale
                material = segment.sos > med * (1 + self.min_relative_excess)
                if z > self.alert_threshold and material:
                    alert = StreamAlert(
                        segment=segment, zscore=float(z), window=len(history)
                    )
        history.append(segment.sos)
        return alert
