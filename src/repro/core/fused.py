"""Fused single-pass analysis kernel (batch entry point).

The legacy pipeline touches every event stream twice before any
analysis product exists: once in ``validate_trace`` (which builds the
lint engine's :class:`~repro.lint.engine.RankView`, including the
depth-trick enter/leave pairing) and once in
:func:`~repro.profiles.replay.match_invocations` (which re-derives the
exact same masks and pairing from scratch), and then a third partial
pass aggregates per-region statistics from the tables.

:func:`fused_bootstrap` does all three per rank in **one** pass.  The
per-rank work lives in :class:`~repro.core.incremental.IncrementalKernel`
— the cursor-driven engine behind streaming and the sharded workers —
and this function is simply the batch driver: one whole-rank chunk per
rank, finalised immediately.  Outputs are bitwise identical to the
staged pipeline by construction:

* diagnostics come from the same rules over the same views, finalised
  and translated exactly like :func:`repro.trace.validate.validate_trace`;
* tables share :func:`~repro.profiles.replay._build_table` with
  ``match_invocations``;
* statistics partials merge rank-ascending, which is the definition of
  :meth:`~repro.profiles.stats.FunctionStatistics.from_partials`.

``tests/test_differential.py`` and the golden suite lock the identity,
and — because this wrapper feeds the incremental kernel — they lock
the batch/streaming engine parity at the same time.
"""

from __future__ import annotations

from ..trace.trace import Trace
from .incremental import FusedBootstrap, IncrementalKernel

__all__ = ["FusedBootstrap", "fused_bootstrap"]


def fused_bootstrap(
    trace: Trace,
    *,
    validate: bool = True,
    allow_empty_streams: bool = False,
    known_ranks=None,
    table_ranks=None,
) -> FusedBootstrap:
    """Validate, replay and profile-aggregate ``trace`` in one pass.

    With ``validate=False`` the lint scan is skipped and tables come
    straight from :func:`~repro.profiles.replay.match_invocations`
    (still fused with the statistics aggregation).  ``table_ranks``
    restricts table/partial construction to a subset of ranks
    (validation still scans all of them) — the shard workers use this
    to skip replay for ranks whose products are already spilled.
    """
    kernel = IncrementalKernel(
        trace.regions,
        trace.metrics,
        trace.num_processes,
        trace.ranks,
        validate=validate,
        allow_empty_streams=allow_empty_streams,
        known_ranks=known_ranks,
        table_ranks=table_ranks,
        trace_name=trace.name,
    )
    for rank in trace.ranks:
        kernel.feed(rank, trace.events_of(rank))
        kernel.finish_rank(rank)
    return kernel.finalize()
