"""Fused single-pass analysis kernel.

The legacy pipeline touches every event stream twice before any
analysis product exists: once in ``validate_trace`` (which builds the
lint engine's :class:`~repro.lint.engine.RankView`, including the
depth-trick enter/leave pairing) and once in
:func:`~repro.profiles.replay.match_invocations` (which re-derives the
exact same masks and pairing from scratch), and then a third partial
pass aggregates per-region statistics from the tables.

:func:`fused_bootstrap` does all three per rank in **one** pass: the
view is built once, the validation rules read it, the invocation table
is assembled from the view's pairing
(:func:`~repro.profiles.replay.table_from_pairing` — no re-sorting,
no re-masking), and the per-rank statistics partial is accumulated
immediately while the table is cache-hot.  Outputs are bitwise
identical to the staged pipeline by construction:

* diagnostics come from the same rules over the same views, finalised
  and translated exactly like :func:`repro.trace.validate.validate_trace`;
* tables share :func:`~repro.profiles.replay._build_table` with
  ``match_invocations``;
* statistics partials merge rank-ascending, which is the definition of
  :meth:`~repro.profiles.stats.FunctionStatistics.from_partials`.

``tests/test_differential.py`` and the golden suite lock the identity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import obs
from ..profiles.replay import InvocationTable, match_invocations, table_from_pairing
from ..profiles.stats import rank_statistics_arrays
from ..trace.trace import Trace
from ..trace.validate import ValidationIssue, ValidationReport

__all__ = ["FusedBootstrap", "fused_bootstrap"]

#: Events pushed through the fused per-rank pass (telemetry).
_C_EVENTS = obs.counter("analysis.events")


@dataclass
class FusedBootstrap:
    """Products of one fused pass over a trace.

    ``tables`` is keyed by rank and only contains ranks whose streams
    were clean enough to replay (on an invalid trace the caller raises
    from ``report`` before touching the tables); ``partials`` holds the
    matching :func:`~repro.profiles.stats.rank_statistics_arrays`
    outputs, ready for rank-ascending merging.
    """

    tables: dict[int, InvocationTable]
    partials: dict[int, dict[str, np.ndarray]]
    report: ValidationReport


def fused_bootstrap(
    trace: Trace,
    *,
    validate: bool = True,
    allow_empty_streams: bool = False,
    known_ranks=None,
    table_ranks=None,
) -> FusedBootstrap:
    """Validate, replay and profile-aggregate ``trace`` in one pass.

    With ``validate=False`` the lint scan is skipped and tables come
    straight from :func:`match_invocations` (still fused with the
    statistics aggregation).  ``table_ranks`` restricts table/partial
    construction to a subset of ranks (validation still scans all of
    them) — the shard workers use this to skip replay for ranks whose
    products are already spilled.
    """
    n_regions = len(trace.regions)
    tables: dict[int, InvocationTable] = {}
    partials: dict[int, dict[str, np.ndarray]] = {}
    ranks = trace.ranks
    wanted = set(ranks) if table_ranks is None else set(table_ranks)

    if not validate:
        for rank in ranks:
            if rank not in wanted:
                continue
            with obs.span("fused.rank"):
                events = trace.events_of(rank)
                _C_EVENTS.add(len(events))
                table = match_invocations(events)
                tables[rank] = table
                partials[rank] = rank_statistics_arrays(table, n_regions)
        return FusedBootstrap(tables, partials, ValidationReport())

    from ..lint import all_rules
    from ..lint.engine import (
        LintShared,
        RankView,
        finalize_report,
        scan_view,
        validate_config,
    )

    config = validate_config(allow_empty_streams=allow_empty_streams)
    shared = LintShared.from_definitions(
        trace.regions,
        trace.metrics,
        trace.num_processes,
        ranks if known_ranks is None else known_ranks,
        config,
    )
    diags = []
    summaries = {}
    for rank in ranks:
        with obs.span("fused.rank"):
            events = trace.events_of(rank)
            _C_EVENTS.add(len(events))
            view = RankView(shared, rank, events)
            rank_diags, summary = scan_view(view)
            diags.extend(rank_diags)
            summaries[rank] = summary
            if (
                rank_diags
                or (len(view.el_idx) and not view.balanced)
                or rank not in wanted
            ):
                # Broken stream: the report below makes the caller raise,
                # so there is no table to build (and building one could
                # legitimately fail on the very defect just diagnosed).
                # A stream with no ENTER/LEAVE events at all (p2p/metric
                # only, or empty under allow_empty_streams) is *not*
                # broken — the view leaves ``balanced`` False because
                # there is nothing to pair, but replay is well-defined
                # and yields an empty table, exactly as
                # ``match_invocations`` does on the legacy path.
                continue
            table = table_from_pairing(
                events, view.el_idx, view.enter_pos, view.leave_pos,
                view.depth_after
            )
            tables[rank] = table
            partials[rank] = rank_statistics_arrays(table, n_regions)

    report = finalize_report(shared, diags, summaries, trace_name=trace.name)
    legacy_of = {r.code: r.legacy_code for r in all_rules()}
    issues = [
        ValidationIssue(
            rank=d.rank,
            code=legacy_of.get(d.code) or d.code,
            message=d.message,
            position=d.position,
            time=d.time,
        )
        for d in report.diagnostics
    ]
    return FusedBootstrap(tables, partials, ValidationReport(issues=issues))
