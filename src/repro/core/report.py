"""Text and dict rendering of analysis results.

The text report is what the CLI prints; the dict form backs the JSON
export and the benchmark harness' paper-versus-measured tables.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..trace.definitions import Paradigm

if TYPE_CHECKING:  # pragma: no cover
    from .pipeline import VariationAnalysis

__all__ = ["format_report", "report_dict"]


def _fmt_seconds(value: float) -> str:
    if not np.isfinite(value):
        return "n/a"
    if value >= 1.0:
        return f"{value:.3f} s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f} ms"
    return f"{value * 1e6:.3f} us"


def format_report(analysis: "VariationAnalysis", max_rows: int = 10) -> str:
    """Render a human-readable summary of one analysis."""
    trace = analysis.trace
    sel = analysis.selection
    sos = analysis.sos
    imb = analysis.imbalance

    lines: list[str] = []
    push = lines.append
    push(f"Performance-variation analysis of trace {trace.name!r}")
    push(
        f"  processes: {len(sos.ranks)}   events: {analysis.num_events}   "
        f"duration: {_fmt_seconds(analysis.duration)}"
    )
    mpi_share = analysis.profile.paradigm_share(Paradigm.MPI)
    push(f"  MPI time share: {100 * mpi_share:.1f}%")
    push("")
    push("Dominant function selection")
    push(
        f"  selected: {sel.name!r} at level {sel.level} "
        f"(threshold {sel.min_invocations} invocations)"
    )
    for i, cand in enumerate(sel.candidates[: max_rows]):
        marker = "->" if i == sel.level else "  "
        push(
            f"  {marker} [{i}] {cand.name:<28} incl={cand.inclusive_sum:>12.6g}"
            f"  invocations={cand.count}"
        )
    push("")
    push("Segments and SOS-times")
    totals = sos.per_rank_total()
    push(
        f"  segments: {analysis.segmentation.total_segments} total, "
        f"{float(np.mean(analysis.segmentation.counts())):.1f} per rank"
    )
    if totals.size:
        push(
            f"  per-rank total SOS: min={totals.min():.6g} "
            f"median={np.median(totals):.6g} max={totals.max():.6g}"
        )
    push(f"  load imbalance: {imb.imbalance_pct:.1f}% (max-mean)/max of total SOS")
    push(f"  trend (SOS): {analysis.trend.describe()}")
    push(f"  trend (plain duration): {analysis.duration_trend.describe()}")
    push("")
    push("Findings")
    if not imb.has_findings:
        push("  no significant runtime imbalance detected")
    if imb.hot_ranks:
        push("  hot ranks (aggregate SOS anomaly):")
        for h in imb.hot_ranks[:max_rows]:
            push(f"    {h}")
    if imb.hot_segments:
        push("  hot segments (single-invocation anomaly):")
        for h in imb.hot_segments[:max_rows]:
            push(f"    {h}")
    return "\n".join(lines)


def report_dict(analysis: "VariationAnalysis") -> dict:
    """JSON-serialisable analysis summary."""
    sel = analysis.selection
    imb = analysis.imbalance
    totals = analysis.sos.per_rank_total()
    return {
        "trace": analysis.trace.name,
        "processes": len(analysis.sos.ranks),
        "events": analysis.num_events,
        "duration": analysis.duration,
        "mpi_share": analysis.profile.paradigm_share(Paradigm.MPI),
        "dominant": {
            "name": sel.name,
            "region": sel.region,
            "level": sel.level,
            "candidates": [
                {
                    "name": c.name,
                    "inclusive_sum": c.inclusive_sum,
                    "count": c.count,
                }
                for c in sel.candidates
            ],
        },
        "segments": {
            "total": analysis.segmentation.total_segments,
            "per_rank_sos_total": totals.tolist(),
        },
        "imbalance_pct": imb.imbalance_pct,
        "trend": {
            "slope": analysis.trend.slope,
            "relative_slope": analysis.trend.relative_slope,
            "p_value": analysis.trend.p_value,
            "increasing": analysis.trend.increasing,
        },
        "hot_ranks": [
            {"rank": h.rank, "total_sos": h.total_sos, "zscore": h.zscore}
            for h in imb.hot_ranks
        ],
        "hot_segments": [
            {
                "rank": h.rank,
                "segment_index": h.segment_index,
                "t_start": h.t_start,
                "t_stop": h.t_stop,
                "sos": h.sos,
                "score": h.score,
            }
            for h in imb.hot_segments
        ],
    }
