"""Synchronization-oblivious segment time (SOS-time), paper Section V.

Plain segment durations hide *which* process causes an imbalance: the
fast processes absorb the difference as waiting time inside their
synchronization calls (Figure 3).  SOS-time therefore subtracts, from
every segment's inclusive duration, the time spent in synchronization
and communication operations inside that segment::

    SOS(segment) = inclusive(segment) - sum(inclusive(sync ops inside))

Only *top-level* synchronization frames are summed (a sync operation
nested inside another sync operation — e.g. ``MPI_Wait`` inside a
wrapper classified as sync — must not be counted twice).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..profiles.replay import InvocationTable
from ..trace.trace import Trace
from .classify import SyncClassifier, default_classifier
from .segments import RankSegments, Segmentation

__all__ = [
    "RankSOS",
    "SOSResult",
    "compute_sos",
    "rank_sos",
    "segment_sync_time",
    "top_level_sync_mask",
]


def _has_sync_ancestor(table: InvocationTable, frame_sync: np.ndarray) -> np.ndarray:
    """True for frames with a synchronization frame among their ancestors.

    Computed level by level: parents are at strictly smaller depth, so
    each level only reads already-finalised values (vectorised per
    depth, no Python-level recursion).
    """
    n = len(table)
    has = np.zeros(n, dtype=bool)
    if n == 0:
        return has
    parent = table.parent
    depth = table.depth
    for d in range(2, int(depth.max()) + 1):
        rows = np.flatnonzero(depth == d)
        if len(rows) == 0:
            continue
        p = parent[rows]
        has[rows] = frame_sync[p] | has[p]
    return has


def top_level_sync_mask(table: InvocationTable, sync_regions: np.ndarray) -> np.ndarray:
    """Mask of frames that are sync operations with no sync ancestor.

    Parameters
    ----------
    sync_regions:
        Boolean array over region ids from
        :meth:`repro.core.classify.SyncClassifier.mask`.
    """
    if len(table) == 0:
        return np.zeros(0, dtype=bool)
    frame_sync = sync_regions[table.region]
    return frame_sync & ~_has_sync_ancestor(table, frame_sync)


@dataclass(frozen=True, slots=True)
class RankSOS:
    """SOS values for the segments of one process."""

    rank: int
    duration: np.ndarray  # plain segment durations (inclusive time)
    sync_time: np.ndarray  # subtracted synchronization time per segment
    sos: np.ndarray  # duration - sync_time

    def __len__(self) -> int:
        return len(self.sos)


class SOSResult:
    """SOS-times of all segments of a trace.

    Provides both per-rank access and dense matrix views (ranks ×
    segment index) used by the imbalance detectors and the heat-map
    visualization.
    """

    def __init__(
        self,
        segmentation: Segmentation,
        per_rank: dict[int, RankSOS],
        classifier: SyncClassifier,
    ) -> None:
        self.segmentation = segmentation
        self.per_rank = per_rank
        self.classifier = classifier

    @property
    def ranks(self) -> list[int]:
        return sorted(self.per_rank)

    def __getitem__(self, rank: int) -> RankSOS:
        return self.per_rank[rank]

    def __iter__(self):
        for rank in self.ranks:
            yield self.per_rank[rank]

    def _matrix_of(self, field: str) -> np.ndarray:
        ranks = self.ranks
        if not ranks:
            return np.empty((0, 0), dtype=np.float64)
        width = max(len(self.per_rank[r]) for r in ranks)
        out = np.full((len(ranks), width), np.nan, dtype=np.float64)
        for i, rank in enumerate(ranks):
            values = getattr(self.per_rank[rank], field)
            out[i, : len(values)] = values
        return out

    def matrix(self) -> np.ndarray:
        """SOS values as ``(ranks, max_segments)``, NaN padded."""
        return self._matrix_of("sos")

    def duration_matrix(self) -> np.ndarray:
        """Plain segment durations in the same layout as :meth:`matrix`."""
        return self._matrix_of("duration")

    def sync_matrix(self) -> np.ndarray:
        """Subtracted synchronization time in the same layout."""
        return self._matrix_of("sync_time")

    # -- aggregation ----------------------------------------------------

    def per_rank_total(self) -> np.ndarray:
        """Total SOS-time per rank (rank order)."""
        return np.asarray(
            [float(np.sum(self.per_rank[r].sos)) for r in self.ranks]
        )

    def per_rank_max(self) -> np.ndarray:
        """Maximum single-segment SOS per rank (NaN when no segments)."""
        return np.asarray(
            [
                float(np.max(self.per_rank[r].sos)) if len(self.per_rank[r]) else np.nan
                for r in self.ranks
            ]
        )

    def flattened(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All segments as ``(rank, segment_index, sos)`` arrays."""
        ranks, indices, values = [], [], []
        for rank in self.ranks:
            sos = self.per_rank[rank].sos
            ranks.append(np.full(len(sos), rank, dtype=np.int64))
            indices.append(np.arange(len(sos), dtype=np.int64))
            values.append(sos)
        if not ranks:
            empty = np.empty(0)
            return empty.astype(np.int64), empty.astype(np.int64), empty
        return np.concatenate(ranks), np.concatenate(indices), np.concatenate(values)


def segment_sync_time(
    segments: RankSegments,
    table: InvocationTable,
    sync_regions: np.ndarray,
) -> np.ndarray:
    """Total top-level sync time inside each segment of one rank."""
    sync_time = np.zeros(len(segments), dtype=np.float64)
    if len(segments) == 0 or len(table) == 0:
        return sync_time
    top_sync = top_level_sync_mask(table, sync_regions)
    rows = np.flatnonzero(top_sync)
    if len(rows) == 0:
        return sync_time
    t_enter = table.t_enter[rows]
    t_leave = table.t_leave[rows]
    seg_idx = np.searchsorted(segments.t_start, t_enter, side="right") - 1
    valid = seg_idx >= 0
    inside = np.zeros_like(valid)
    inside[valid] = t_leave[valid] <= segments.t_stop[seg_idx[valid]]
    keep = valid & inside
    np.add.at(
        sync_time,
        seg_idx[keep],
        (t_leave - t_enter)[keep],
    )
    return sync_time


def compute_sos(
    trace: Trace,
    segmentation: Segmentation,
    tables: dict[int, InvocationTable],
    classifier: SyncClassifier | None = None,
) -> SOSResult:
    """Compute SOS-times for every segment of ``segmentation``.

    Parameters
    ----------
    trace:
        Needed for the region definitions the classifier consults.
    segmentation:
        Output of :func:`repro.core.segments.segment_trace`.
    tables:
        Invocation tables (reused from earlier pipeline stages).
    classifier:
        Synchronization classifier; defaults to the paper-faithful
        MPI/OpenMP policy.
    """
    if classifier is None:
        classifier = default_classifier()
    sync_regions = classifier.mask(trace)

    per_rank: dict[int, RankSOS] = {
        rank: rank_sos(segmentation[rank], tables[rank], sync_regions)
        for rank in segmentation.ranks
    }
    return SOSResult(segmentation, per_rank, classifier)


def rank_sos(
    segments: RankSegments,
    table: InvocationTable,
    sync_regions: np.ndarray,
) -> RankSOS:
    """SOS values of one rank's segments.

    The per-rank kernel of :func:`compute_sos`, exposed so the sharded
    engine (:mod:`repro.core.shard`) computes exactly the same numbers
    inside worker processes.
    """
    duration = segments.duration
    sync_time = segment_sync_time(segments, table, sync_regions)
    return RankSOS(
        rank=segments.rank,
        duration=duration,
        sync_time=sync_time,
        sos=duration - sync_time,
    )
