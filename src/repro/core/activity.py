"""Activity shares over time: what fraction of processes does what.

Quantifies the visual impression of the master timeline — "throughout
the execution, the fraction of MPI (red areas) increases" (Section
VII-A) — as a stacked time series: for each time bin, the fraction of
processes whose innermost active region belongs to each group
(paradigm or region).  Rendered by :mod:`repro.viz.areachart`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..profiles.replay import InvocationTable, replay_trace
from ..trace.definitions import Paradigm
from ..trace.trace import Trace

__all__ = ["ActivityShares", "activity_shares"]


@dataclass(frozen=True, slots=True)
class ActivityShares:
    """Stacked activity fractions over time.

    Attributes
    ----------
    labels:
        Group names, one per row of ``shares`` (last row is always
        ``"idle"``).
    shares:
        Array ``(groups, bins)``; columns sum to 1.
    edges:
        Bin edges, length ``bins + 1``.
    """

    labels: tuple[str, ...]
    shares: np.ndarray
    edges: np.ndarray

    @property
    def bins(self) -> int:
        return self.shares.shape[1]

    def of(self, label: str) -> np.ndarray:
        """Time series of one group's share."""
        return self.shares[self.labels.index(label)]

    def mean_share(self, label: str) -> float:
        return float(np.mean(self.of(label)))


def _innermost_region_grid(
    trace: Trace, tables: dict[int, InvocationTable], bins: int,
    t0: float, t1: float
) -> np.ndarray:
    """(ranks, bins) innermost region id per bin centre (-1 = idle)."""
    from ..viz.timeline import region_strip

    ranks = trace.ranks
    grid = np.full((len(ranks), bins), -1, dtype=np.int32)
    for i, rank in enumerate(ranks):
        grid[i] = region_strip(tables[rank], t0, t1, bins)
    return grid


def activity_shares(
    trace: Trace,
    tables: dict[int, InvocationTable] | None = None,
    bins: int = 256,
    by: str = "paradigm",
    top_regions: int = 6,
    t0: float | None = None,
    t1: float | None = None,
) -> ActivityShares:
    """Compute stacked activity shares.

    Parameters
    ----------
    by:
        ``"paradigm"`` groups regions by programming model (USER, MPI,
        ...); ``"region"`` keeps the ``top_regions`` most visible
        regions individually and folds the rest into ``"other"``.
    """
    if by not in ("paradigm", "region"):
        raise ValueError(f"unknown grouping {by!r}")
    if tables is None:
        tables = replay_trace(trace)
    lo = trace.t_min if t0 is None else t0
    hi = trace.t_max if t1 is None else t1
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)
    grid = _innermost_region_grid(trace, tables, bins, lo, hi)
    n_ranks = max(grid.shape[0], 1)

    n_regions = len(trace.regions)
    if by == "paradigm":
        group_of_region = np.asarray(
            [int(r.paradigm) for r in trace.regions], dtype=np.int64
        )
        labels = [p.name for p in Paradigm]
        n_groups = len(labels)
    else:
        visible = grid[grid >= 0]
        counts = (
            np.bincount(visible, minlength=n_regions)
            if len(visible)
            else np.zeros(n_regions, dtype=np.int64)
        )
        top = [int(r) for r in np.argsort(-counts)[:top_regions] if counts[r] > 0]
        group_of_region = np.full(n_regions, len(top), dtype=np.int64)
        for g, region in enumerate(top):
            group_of_region[region] = g
        labels = [trace.regions[r].name for r in top] + ["other"]
        n_groups = len(labels)

    # Map the grid to groups; idle cells get group n_groups.
    grouped = np.where(grid >= 0, group_of_region[np.maximum(grid, 0)], n_groups)
    shares = np.empty((n_groups + 1, grid.shape[1]), dtype=np.float64)
    for g in range(n_groups + 1):
        shares[g] = np.count_nonzero(grouped == g, axis=0) / n_ranks
    labels = labels + ["idle"]

    # Drop all-zero groups (keeps charts clean) but always keep idle last.
    keep = [g for g in range(n_groups) if shares[g].any()]
    keep.append(n_groups)
    return ActivityShares(
        labels=tuple(labels[g] for g in keep),
        shares=shares[keep],
        edges=edges,
    )
