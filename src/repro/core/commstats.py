"""Communication statistics: who talks to whom, how much, how fast.

Backs the communication-matrix view trace visualizers put next to the
timeline: per sender/receiver pair the message count, payload volume
and transfer-time statistics (from matched SEND/RECV event pairs).
Useful both for spotting lopsided communication patterns and for
sanity-checking simulated workloads' topologies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.events import EventKind
from ..trace.trace import Trace

__all__ = ["CommMatrix", "communication_matrix"]


@dataclass(frozen=True, slots=True)
class CommMatrix:
    """Pairwise communication statistics of one trace.

    All matrices are indexed ``[sender_row, receiver_col]`` in the
    order of :attr:`ranks`.
    """

    ranks: tuple[int, ...]
    counts: np.ndarray  # messages
    bytes: np.ndarray  # payload volume
    total_transfer_time: np.ndarray  # matched send->recv latency sums

    @property
    def num_messages(self) -> int:
        return int(self.counts.sum())

    @property
    def total_bytes(self) -> int:
        return int(self.bytes.sum())

    def row_of(self, rank: int) -> int:
        return self.ranks.index(rank)

    def sent_by(self, rank: int) -> tuple[int, int]:
        """(messages, bytes) sent by ``rank``."""
        row = self.row_of(rank)
        return int(self.counts[row].sum()), int(self.bytes[row].sum())

    def received_by(self, rank: int) -> tuple[int, int]:
        """(messages, bytes) received by ``rank``."""
        col = self.row_of(rank)
        return int(self.counts[:, col].sum()), int(self.bytes[:, col].sum())

    def mean_transfer_time(self) -> np.ndarray:
        """Mean matched transfer time per pair (NaN where no messages)."""
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                self.counts > 0, self.total_transfer_time / self.counts, np.nan
            )

    def top_pairs(self, k: int = 10, by: str = "bytes") -> list[tuple[int, int, float]]:
        """Heaviest (sender, receiver, value) pairs."""
        matrix = {"bytes": self.bytes, "count": self.counts,
                  "time": self.total_transfer_time}.get(by)
        if matrix is None:
            raise ValueError(f"unknown ordering {by!r}")
        flat = np.argsort(-matrix, axis=None)[:k]
        out = []
        n = len(self.ranks)
        for idx in flat:
            i, j = divmod(int(idx), n)
            value = float(matrix[i, j])
            if value <= 0:
                break
            out.append((self.ranks[i], self.ranks[j], value))
        return out

    def imbalance(self) -> float:
        """Max/mean of per-rank sent bytes (1.0 = uniform senders)."""
        sent = self.bytes.sum(axis=1).astype(np.float64)
        mean = float(sent.mean()) if len(sent) else 0.0
        if mean <= 0:
            return 1.0
        return float(sent.max()) / mean


def communication_matrix(trace: Trace, matched_times: bool = True) -> CommMatrix:
    """Aggregate SEND/RECV events into a :class:`CommMatrix`.

    ``matched_times=False`` skips the FIFO send/recv matching (cheaper
    for huge traces); transfer-time sums are then zero.
    """
    ranks = tuple(trace.ranks)
    index = {rank: i for i, rank in enumerate(ranks)}
    n = len(ranks)
    counts = np.zeros((n, n), dtype=np.int64)
    volume = np.zeros((n, n), dtype=np.int64)
    times = np.zeros((n, n), dtype=np.float64)

    for proc in trace.processes():
        ev = proc.events
        mask = ev.kind == EventKind.SEND
        if not np.any(mask):
            continue
        row = index[proc.rank]
        partners = ev.partner[mask]
        sizes = ev.size[mask]
        for col_rank, size in zip(partners, sizes):
            col = index.get(int(col_rank))
            if col is None:
                continue
            counts[row, col] += 1
            volume[row, col] += int(size)

    if matched_times:
        from ..viz.timeline import match_messages

        for src, t_send, dst, t_recv in match_messages(trace, limit=10**9):
            times[index[src], index[dst]] += max(t_recv - t_send, 0.0)

    return CommMatrix(
        ranks=ranks, counts=counts, bytes=volume, total_transfer_time=times
    )
