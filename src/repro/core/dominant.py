"""Identification of time-dominant functions (paper Section IV).

A *time-dominant function* partitions the run into comparable segments.
The paper's criterion: for ``p`` processing elements, the dominant
function ``f`` is invoked at least ``2p`` times, and no other function
satisfying this also has a higher aggregated inclusive time.  Top-level
functions like ``main`` (exactly ``p`` invocations) are thereby
excluded — they would yield no segmentation over time.

Beyond the single winner, we expose the full *ranked candidate list*.
Walking down this list selects functions with smaller aggregated
inclusive time and therefore finer segments, which is exactly the
refinement step the paper's second case study uses to isolate a single
slow invocation (Section VII-B, Figure 5c).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..profiles.replay import InvocationTable, replay_trace
from ..profiles.stats import FunctionStatistics, compute_statistics
from ..trace.definitions import Paradigm
from ..trace.trace import Trace

__all__ = [
    "DominantCandidate",
    "DominantSelection",
    "rank_candidates",
    "select_dominant",
]


@dataclass(frozen=True, slots=True)
class DominantCandidate:
    """One function considered by the dominant-function heuristic."""

    region: int
    name: str
    count: int
    inclusive_sum: float
    #: Mean segment length this candidate would produce.
    mean_segment: float

    def __str__(self) -> str:
        return (
            f"{self.name} (inclusive={self.inclusive_sum:.6g}, "
            f"invocations={self.count})"
        )


@dataclass(frozen=True, slots=True)
class DominantSelection:
    """Result of the dominant-function search.

    ``candidates`` is sorted by descending aggregated inclusive time;
    ``dominant`` is ``candidates[level]`` — level 0 is the paper's
    selection, higher levels are successive refinements.
    """

    candidates: tuple[DominantCandidate, ...]
    level: int
    min_invocations: int

    @property
    def dominant(self) -> DominantCandidate:
        return self.candidates[self.level]

    @property
    def region(self) -> int:
        return self.dominant.region

    @property
    def name(self) -> str:
        return self.dominant.name

    def refined(self, steps: int = 1) -> "DominantSelection":
        """Selection ``steps`` levels further down the candidate list."""
        new_level = self.level + steps
        if not 0 <= new_level < len(self.candidates):
            raise IndexError(
                f"refinement level {new_level} out of range "
                f"(have {len(self.candidates)} candidates)"
            )
        return DominantSelection(self.candidates, new_level, self.min_invocations)

    def at_function(self, name: str) -> "DominantSelection":
        """Selection pinned to the named candidate function."""
        for i, cand in enumerate(self.candidates):
            if cand.name == name:
                return DominantSelection(self.candidates, i, self.min_invocations)
        raise KeyError(f"{name!r} is not a dominant-function candidate")


def rank_candidates(
    trace: Trace,
    stats: FunctionStatistics | None = None,
    tables: dict[int, InvocationTable] | None = None,
    min_invocation_factor: float = 2.0,
    candidate_paradigms: tuple[Paradigm, ...] = (Paradigm.USER,),
) -> list[DominantCandidate]:
    """Return eligible dominant-function candidates, best first.

    Eligibility: invocation count ``>= min_invocation_factor * p`` (the
    paper uses factor 2) and a paradigm in ``candidate_paradigms``.
    Runtime operations (MPI, OpenMP) are excluded by default — segments
    must represent *application* iterations whose inclusive time
    contains the synchronization to be subtracted later, not the
    synchronization itself.
    """
    if stats is None:
        if tables is None:
            tables = replay_trace(trace)
        stats = compute_statistics(trace, tables)
    p = trace.num_processes
    threshold = int(np.ceil(min_invocation_factor * p))
    allowed = set(candidate_paradigms)

    candidates = []
    for region in trace.regions:
        count = int(stats.count[region.id])
        if count < threshold or count == 0:
            continue
        if region.paradigm not in allowed:
            continue
        inclusive = float(stats.inclusive_sum[region.id])
        candidates.append(
            DominantCandidate(
                region=region.id,
                name=region.name,
                count=count,
                inclusive_sum=inclusive,
                mean_segment=inclusive / count,
            )
        )
    candidates.sort(key=lambda c: (-c.inclusive_sum, c.region))
    return candidates


def select_dominant(
    trace: Trace,
    stats: FunctionStatistics | None = None,
    tables: dict[int, InvocationTable] | None = None,
    min_invocation_factor: float = 2.0,
    candidate_paradigms: tuple[Paradigm, ...] = (Paradigm.USER,),
    level: int = 0,
) -> DominantSelection:
    """Select the time-dominant function of ``trace``.

    Raises
    ------
    ValueError
        If no function meets the invocation-count criterion (e.g. a
        trace without any iterative behaviour).
    """
    candidates = rank_candidates(
        trace,
        stats=stats,
        tables=tables,
        min_invocation_factor=min_invocation_factor,
        candidate_paradigms=candidate_paradigms,
    )
    if not candidates:
        p = trace.num_processes
        raise ValueError(
            "no dominant-function candidate: no function is invoked at least "
            f"{int(np.ceil(min_invocation_factor * p))} times "
            f"({min_invocation_factor} x {p} processes)"
        )
    if not 0 <= level < len(candidates):
        raise IndexError(
            f"refinement level {level} out of range "
            f"(have {len(candidates)} candidates)"
        )
    return DominantSelection(
        candidates=tuple(candidates),
        level=level,
        min_invocations=int(np.ceil(min_invocation_factor * trace.num_processes)),
    )
