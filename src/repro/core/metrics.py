"""Counter (metric) analysis: series, per-segment deltas, heat binning.

The paper validates two root causes with hardware counters:
``PAPI_TOT_CYC`` exposes the OS interruption (Section VII-B: the slow
invocation has *few* cycles for its wall time) and
``FR_FPU_EXCEPTIONS_SSE_MICROTRAPS`` confirms the slow WRF rank
(Section VII-C: the counter heat map matches the SOS heat map).  This
module provides those views over METRIC events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..trace.definitions import MetricMode
from ..trace.events import EventKind
from ..trace.trace import Trace
from .segments import Segmentation

__all__ = [
    "MetricSeries",
    "metric_series",
    "segment_metric_delta",
    "per_rank_metric_total",
    "binned_metric_matrix",
    "metric_sos_correlation",
]


@dataclass(frozen=True, slots=True)
class MetricSeries:
    """Samples of one metric on one rank."""

    rank: int
    metric: int
    times: np.ndarray
    values: np.ndarray

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, t: float) -> float:
        """Last sampled value at or before ``t`` (0.0 before first sample)."""
        i = int(np.searchsorted(self.times, t, side="right")) - 1
        return float(self.values[i]) if i >= 0 else 0.0

    def delta(self, t0: float, t1: float) -> float:
        """Increment of an accumulated counter over ``[t0, t1]``."""
        return self.value_at(t1) - self.value_at(t0)


def _resolve_metric(trace: Trace, metric: int | str) -> int:
    if isinstance(metric, str):
        return trace.metrics.id_of(metric)
    return int(metric)


def metric_series(trace: Trace, metric: int | str) -> dict[int, MetricSeries]:
    """Extract the sample series of one metric for every rank."""
    metric_id = _resolve_metric(trace, metric)
    out: dict[int, MetricSeries] = {}
    for proc in trace.processes():
        ev = proc.events
        mask = (ev.kind == EventKind.METRIC) & (ev.ref == metric_id)
        out[proc.rank] = MetricSeries(
            rank=proc.rank,
            metric=metric_id,
            times=ev.time[mask],
            values=ev.value[mask],
        )
    return out


def per_rank_metric_total(trace: Trace, metric: int | str) -> np.ndarray:
    """Final value of an accumulated counter per rank (rank order)."""
    series = metric_series(trace, metric)
    return np.asarray(
        [
            float(series[r].values[-1]) if len(series[r]) else 0.0
            for r in sorted(series)
        ]
    )


def segment_metric_delta(
    trace: Trace, metric: int | str, segmentation: Segmentation
) -> np.ndarray:
    """Counter increment within each segment, ``(ranks, max_segments)``.

    For an accumulated counter this is the work done inside the
    segment; dividing by the segment duration yields the rate whose
    *drop* betrays an OS interruption.
    """
    series = metric_series(trace, metric)
    ranks = segmentation.ranks
    width = max((len(segmentation[r]) for r in ranks), default=0)
    out = np.full((len(ranks), width), np.nan, dtype=np.float64)
    for i, rank in enumerate(ranks):
        seg = segmentation[rank]
        ms = series.get(rank)
        if ms is None or len(ms) == 0 or len(seg) == 0:
            continue
        start_idx = np.searchsorted(ms.times, seg.t_start, side="right") - 1
        stop_idx = np.searchsorted(ms.times, seg.t_stop, side="right") - 1
        v = np.concatenate(([0.0], ms.values))
        out[i, : len(seg)] = v[stop_idx + 1] - v[start_idx + 1]
    return out


def binned_metric_matrix(
    trace: Trace,
    metric: int | str,
    bins: int = 512,
    t0: float | None = None,
    t1: float | None = None,
    as_rate: bool | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Rasterise a metric onto a ``(ranks, bins)`` time grid.

    For accumulated counters (``as_rate`` defaults to True) each cell
    holds the counter increment per second within the bin — the
    color-coded view of Figure 6c.  For absolute metrics each cell
    holds the last sample value at the bin centre.

    Returns ``(matrix, bin_edges)``.
    """
    metric_id = _resolve_metric(trace, metric)
    mode = trace.metrics[metric_id].mode
    if as_rate is None:
        as_rate = mode == MetricMode.ACCUMULATED
    lo = trace.t_min if t0 is None else t0
    hi = trace.t_max if t1 is None else t1
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)
    series = metric_series(trace, metric_id)
    ranks = sorted(series)
    out = np.full((len(ranks), bins), np.nan, dtype=np.float64)
    for i, rank in enumerate(ranks):
        ms = series[rank]
        if len(ms) == 0:
            continue
        if as_rate:
            v = np.concatenate(([0.0], ms.values))
            idx = np.searchsorted(ms.times, edges, side="right") - 1
            at_edges = v[idx + 1]
            out[i] = np.diff(at_edges) / np.diff(edges)
        else:
            centers = 0.5 * (edges[:-1] + edges[1:])
            idx = np.searchsorted(ms.times, centers, side="right") - 1
            valid = idx >= 0
            out[i, valid] = ms.values[idx[valid]]
    return out, edges


def metric_sos_correlation(
    per_rank_metric: np.ndarray, per_rank_sos: np.ndarray
) -> float:
    """Pearson correlation between per-rank counter and SOS totals.

    Quantifies the paper's "perfectly match" claim for Figure 6b/6c.
    Returns 0.0 when either vector is degenerate.
    """
    a = np.asarray(per_rank_metric, dtype=np.float64)
    b = np.asarray(per_rank_sos, dtype=np.float64)
    if len(a) != len(b) or len(a) < 2:
        raise ValueError("vectors must have equal length >= 2")
    if np.std(a) == 0 or np.std(b) == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])
