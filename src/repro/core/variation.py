"""Temporal variation analysis of segment times.

Covers the paper's time-axis observations: "throughout the execution,
the fraction of MPI increases" and "we observe gradually increased
durations towards the end of the run" (Section VII-A).  The trend
detector uses the robust Theil–Sen slope plus a Mann–Kendall test so a
single outlier iteration does not masquerade as a trend.

Also provides the time-binned SOS matrix that backs the heat-map
visualization: a dense ``(ranks, bins)`` array where each cell holds
the SOS value of the segment covering that time bin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

from .sos import SOSResult

__all__ = [
    "TrendResult",
    "detect_trend",
    "mann_kendall",
    "theil_sen_slope",
    "binned_matrix",
    "step_series",
]


@dataclass(frozen=True, slots=True)
class TrendResult:
    """Outcome of the temporal trend test on per-step mean values.

    Attributes
    ----------
    slope:
        Theil–Sen slope in value-units per segment index.
    relative_slope:
        Slope normalised by the median value (fraction per step).
    tau, p_value:
        Mann–Kendall's tau statistic and two-sided p-value.
    increasing / decreasing:
        Significant monotonic trend flags.
    """

    slope: float
    relative_slope: float
    tau: float
    p_value: float
    n_steps: int

    #: Minimum |relative slope| for a trend to count as material; this
    #: guards against floating-point tie-breaking producing "significant"
    #: slopes on the order of 1e-18 on perfectly flat data.
    MIN_RELATIVE_SLOPE = 1e-9

    @property
    def increasing(self) -> bool:
        return (
            self.p_value < 0.05
            and self.slope > 0
            and self.relative_slope > self.MIN_RELATIVE_SLOPE
        )

    @property
    def decreasing(self) -> bool:
        return (
            self.p_value < 0.05
            and self.slope < 0
            and self.relative_slope < -self.MIN_RELATIVE_SLOPE
        )

    def describe(self) -> str:
        if self.increasing:
            direction = "increasing"
        elif self.decreasing:
            direction = "decreasing"
        else:
            direction = "no significant trend"
        return (
            f"{direction} (Theil-Sen slope {self.slope:.4g}/step, "
            f"{100 * self.relative_slope:.2f}%/step, "
            f"MK tau={self.tau:.2f}, p={self.p_value:.3g}, n={self.n_steps})"
        )


#: Below this length, count inversions by direct pairwise comparison.
_INV_BRUTE = 64


def _inversions(v: np.ndarray) -> tuple[int, np.ndarray]:
    """Count pairs ``i < j`` with ``v[i] > v[j]``; also return sorted v.

    Classic divide-and-conquer: cross-half inversions fall out of one
    ``searchsorted`` against the sorted left half, so the whole count is
    O(n log² n) with no n×n temporaries.
    """
    n = len(v)
    if n < _INV_BRUTE:
        if n < 2:
            return 0, v.copy()
        d = int(np.count_nonzero(np.triu(v[:, None] > v[None, :], k=1)))
        return d, np.sort(v)
    mid = n // 2
    dl, left = _inversions(v[:mid])
    dr, right = _inversions(v[mid:])
    cross = int(np.sum(np.searchsorted(left, right, side="right"),
                       dtype=np.int64))
    d = dl + dr + (len(left) * len(right) - cross)
    merged = np.empty(n, dtype=v.dtype)
    take_left = np.searchsorted(
        right, left, side="left"
    ) + np.arange(len(left))
    merged[take_left] = left
    mask = np.ones(n, dtype=bool)
    mask[take_left] = False
    merged[mask] = right
    return d, merged


def _kendall_s(v: np.ndarray) -> int:
    """Kendall's S = Σ_{i<j} sign(v_j - v_i), computed exactly.

    With x strictly increasing, S equals the number of comparable pairs
    minus twice the number of (strict) inversions of ``v``.  S is an
    integer, and the legacy full-matrix float sum of ±1 terms is exact
    (|S| ≪ 2^53), so this reproduces it bitwise without the n×n sign
    matrix.
    """
    n = len(v)
    if not np.all(np.isfinite(v)):
        # The merge-count/np.unique machinery below would turn NaNs
        # into an arbitrary finite S where the legacy sign-matrix sum
        # propagated NaN; refuse rather than fabricate a trend.
        # (mann_kendall filters to finite values before calling us.)
        raise ValueError("_kendall_s requires finite values")
    inv, _ = _inversions(v)
    _, counts = np.unique(v, return_counts=True)
    ties = int(np.sum(counts * (counts - 1) // 2, dtype=np.int64))
    comparable = n * (n - 1) // 2 - ties
    return comparable - 2 * inv


def _theil_sen_slope(series: np.ndarray) -> float:
    """Theil–Sen slope of ``series`` against ``x = arange(n)``.

    Bitwise-identical to ``scipy.stats.theilslopes(series, arange(n))[0]``:
    the pairwise slope multiset ``(y_j - y_i) / (j - i)`` for i < j is
    exactly the set scipy builds from its ``deltax > 0`` mask, and the
    median selects the same order statistics either way.  The slopes
    are generated gap-by-gap (``(y[d:] - y[:-d]) / d``) straight into
    one flat buffer which the median then partitions in place, so peak
    memory is one float per pair — not the five-per-pair of index
    arrays plus gather temporaries plus a median copy.
    """
    n = len(series)
    slopes = np.empty(n * (n - 1) // 2, dtype=np.float64)
    pos = 0
    for d in range(1, n):
        m = n - d
        out = slopes[pos : pos + m]
        np.subtract(series[d:], series[:-d], out=out)
        out /= d
        pos += m
    return float(np.median(slopes, overwrite_input=True))


#: Public alias — the perf regression radar (:mod:`repro.perf`) runs
#: the same O(n)-memory estimator over benchmark history series.
theil_sen_slope = _theil_sen_slope


def mann_kendall(values: np.ndarray) -> tuple[float, float]:
    """Mann–Kendall monotonic-trend test.

    Returns ``(tau, p_value)``.  Implemented with the normal
    approximation including the tie correction; for fewer than 3 finite
    values returns ``(0.0, 1.0)``.
    """
    v = np.asarray(values, dtype=np.float64)
    v = v[np.isfinite(v)]
    n = len(v)
    if n < 3:
        return 0.0, 1.0
    s = float(_kendall_s(v))

    # Variance with tie correction.
    _, counts = np.unique(v, return_counts=True)
    tie_term = float(np.sum(counts * (counts - 1) * (2 * counts + 5)))
    var_s = (n * (n - 1) * (2 * n + 5) - tie_term) / 18.0
    denom = n * (n - 1) / 2.0
    tau = s / denom if denom else 0.0
    if var_s <= 0:
        return tau, 1.0
    if s > 0:
        z = (s - 1) / np.sqrt(var_s)
    elif s < 0:
        z = (s + 1) / np.sqrt(var_s)
    else:
        z = 0.0
    p = 2.0 * float(_scipy_stats.norm.sf(abs(z)))
    return tau, p


def detect_trend(sos: SOSResult, use_plain_duration: bool = False) -> TrendResult:
    """Test whether segment times drift over the run.

    Aggregates the SOS matrix (or plain durations when
    ``use_plain_duration``) to a per-step mean across ranks, then runs
    Theil–Sen + Mann–Kendall on that series.
    """
    matrix = sos.duration_matrix() if use_plain_duration else sos.matrix()
    if matrix.size == 0:
        return TrendResult(0.0, 0.0, 0.0, 1.0, 0)
    with np.errstate(invalid="ignore"):
        series = np.nanmean(matrix, axis=0)
    series = series[np.isfinite(series)]
    n = len(series)
    if n < 3:
        return TrendResult(0.0, 0.0, 0.0, 1.0, n)
    slope = _theil_sen_slope(series)
    tau, p = mann_kendall(series)
    med = float(np.median(series))
    rel = float(slope) / med if med else 0.0
    return TrendResult(
        slope=float(slope),
        relative_slope=rel,
        tau=float(tau),
        p_value=float(p),
        n_steps=n,
    )


def step_series(sos: SOSResult, reducer=np.nanmean) -> np.ndarray:
    """Per-step reduction of the SOS matrix across ranks."""
    matrix = sos.matrix()
    if matrix.size == 0:
        return np.empty(0)
    with np.errstate(invalid="ignore"):
        return reducer(matrix, axis=0)


def binned_matrix(
    sos: SOSResult,
    bins: int = 512,
    t0: float | None = None,
    t1: float | None = None,
    normalize: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Rasterise SOS-times onto a ``(ranks, bins)`` time grid.

    Each cell holds the SOS value of the segment covering the bin's
    centre (NaN where no segment covers it).  This is the step-function
    metric view the paper overlays on timeline charts; the heat-map
    renderer consumes it directly.

    Returns
    -------
    (matrix, bin_edges)
    """
    seg = sos.segmentation
    lo = seg.t_min if t0 is None else t0
    hi = seg.t_max if t1 is None else t1
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])

    ranks = sos.ranks
    out = np.full((len(ranks), bins), np.nan, dtype=np.float64)
    for i, rank in enumerate(ranks):
        rs = seg[rank]
        if len(rs) == 0:
            continue
        idx = np.searchsorted(rs.t_start, centers, side="right") - 1
        valid = idx >= 0
        covered = np.zeros_like(valid)
        covered[valid] = centers[valid] < rs.t_stop[idx[valid]]
        values = sos[rank].sos
        out[i, covered] = values[idx[covered]]
    if normalize:
        finite = np.isfinite(out)
        if np.any(finite):
            vmin = float(np.nanmin(out))
            vmax = float(np.nanmax(out))
            span = vmax - vmin
            if span > 0:
                out = (out - vmin) / span
            else:
                out = np.where(finite, 0.0, np.nan)
    return out, edges
