"""Classification of regions as synchronization/communication.

The SOS-time computation (paper Section V) subtracts the runtime of
synchronization operations — the paper names ``MPI_Wait``,
``MPI_Reduce`` and ``omp barrier`` as examples — from each segment's
inclusive duration.  This module decides *which* regions count as
synchronization.  The default policy treats every MPI and OpenMP
runtime operation as synchronization/communication (matching Figure 3,
where the whole ``MPI`` block is subtracted), and lets users widen or
narrow the set via name patterns or roles.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass

import numpy as np

from ..trace.definitions import Paradigm, Region, RegionRole
from ..trace.trace import Trace

__all__ = ["SyncClassifier", "default_classifier"]


@dataclass(frozen=True)
class SyncClassifier:
    """Decides which regions are subtracted from segment durations.

    A region counts as synchronization when **any** of the following
    holds:

    * its paradigm is in ``sync_paradigms`` (default: MPI),
    * its role is in ``sync_roles`` (default: SYNCHRONIZATION and
      COMMUNICATION),
    * its name matches one of the ``name_patterns`` (fnmatch-style),

    unless its name matches one of the ``exclude_patterns``.

    Instances are immutable and hashable so analyses can be cached per
    classifier.
    """

    sync_paradigms: tuple[Paradigm, ...] = (Paradigm.MPI,)
    sync_roles: tuple[RegionRole, ...] = (
        RegionRole.SYNCHRONIZATION,
        RegionRole.COMMUNICATION,
    )
    name_patterns: tuple[str, ...] = ("MPI_*", "omp barrier*", "!$omp barrier*")
    exclude_patterns: tuple[str, ...] = ()
    include_io: bool = False

    def is_sync(self, region: Region) -> bool:
        """True if ``region`` should be subtracted from segment time."""
        for pattern in self.exclude_patterns:
            if fnmatch.fnmatchcase(region.name, pattern):
                return False
        if region.paradigm in self.sync_paradigms:
            return True
        if region.role in self.sync_roles:
            return True
        if self.include_io and region.role == RegionRole.FILE_IO:
            return True
        return any(
            fnmatch.fnmatchcase(region.name, pattern)
            for pattern in self.name_patterns
        )

    def mask(self, trace: Trace) -> np.ndarray:
        """Boolean array over region ids: True where synchronization."""
        return self.mask_registry(trace.regions)

    def mask_registry(self, regions) -> np.ndarray:
        """Like :meth:`mask` but over a bare region registry."""
        return np.asarray([self.is_sync(r) for r in regions], dtype=bool)

    def with_patterns(self, *patterns: str) -> "SyncClassifier":
        """Copy of this classifier with extra name patterns."""
        return SyncClassifier(
            sync_paradigms=self.sync_paradigms,
            sync_roles=self.sync_roles,
            name_patterns=self.name_patterns + tuple(patterns),
            exclude_patterns=self.exclude_patterns,
            include_io=self.include_io,
        )


def default_classifier() -> SyncClassifier:
    """The paper-faithful default classifier (all MPI/OpenMP sync ops)."""
    return SyncClassifier()
