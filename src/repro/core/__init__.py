"""Core contribution: dominant functions, SOS-times, imbalance detection."""

from .activity import ActivityShares, activity_shares
from .classify import SyncClassifier, default_classifier
from .commstats import CommMatrix, communication_matrix
from .compare import (
    RunComparison,
    SegmentDelta,
    compare_analyses,
    compare_traces,
)
from .incremental import (
    FusedBootstrap,
    IncrementalKernel,
    incremental_bootstrap,
)
from .streaming import StreamAlert, StreamedSegment, StreamingAnalyzer
from .explain import RegionShare, SegmentExplanation, explain_segment
from .dominant import (
    DominantCandidate,
    DominantSelection,
    rank_candidates,
    select_dominant,
)
from .metrics import (
    MetricSeries,
    binned_metric_matrix,
    metric_series,
    metric_sos_correlation,
    per_rank_metric_total,
    segment_metric_delta,
)
from .imbalance import (
    Hotspot,
    ImbalanceReport,
    RankHotspot,
    detect_imbalances,
    imbalance_percentage,
    robust_zscores,
)
from .pipeline import AnalysisConfig, VariationAnalysis, analyze_trace
from .segments import RankSegments, Segmentation, segment_rank, segment_trace
from .session import AnalysisSession, ArtifactCache, CacheInfo, SessionStats
from .shard import ShardEngine, ShardPlan, plan_shards, shard_workers
from .sos import RankSOS, SOSResult, compute_sos, top_level_sync_mask
from .variation import (
    TrendResult,
    binned_matrix,
    detect_trend,
    mann_kendall,
    step_series,
)

__all__ = [
    "ActivityShares",
    "AnalysisConfig",
    "AnalysisSession",
    "ArtifactCache",
    "CacheInfo",
    "SessionStats",
    "CommMatrix",
    "DominantCandidate",
    "DominantSelection",
    "FusedBootstrap",
    "Hotspot",
    "IncrementalKernel",
    "MetricSeries",
    "ImbalanceReport",
    "RankHotspot",
    "RunComparison",
    "SegmentDelta",
    "StreamAlert",
    "StreamedSegment",
    "StreamingAnalyzer",
    "RankSOS",
    "RegionShare",
    "SegmentExplanation",
    "RankSegments",
    "SOSResult",
    "Segmentation",
    "ShardEngine",
    "ShardPlan",
    "SyncClassifier",
    "TrendResult",
    "VariationAnalysis",
    "activity_shares",
    "analyze_trace",
    "communication_matrix",
    "compare_analyses",
    "compare_traces",
    "binned_matrix",
    "binned_metric_matrix",
    "compute_sos",
    "default_classifier",
    "detect_imbalances",
    "detect_trend",
    "explain_segment",
    "imbalance_percentage",
    "incremental_bootstrap",
    "mann_kendall",
    "metric_series",
    "metric_sos_correlation",
    "per_rank_metric_total",
    "plan_shards",
    "rank_candidates",
    "robust_zscores",
    "segment_metric_delta",
    "segment_rank",
    "segment_trace",
    "select_dominant",
    "shard_workers",
    "step_series",
    "top_level_sync_mask",
]
