"""Incremental (cursor-driven) analysis kernel.

:func:`~repro.core.fused.fused_bootstrap` fuses validation, replay and
statistics aggregation into one pass per rank, but it consumes a fully
materialised :class:`~repro.trace.trace.Trace`.  This module is the
same kernel turned inside out: :class:`IncrementalKernel` *accepts*
event chunks per rank (from any :class:`~repro.trace.cursor.EventCursor`)
and finalises each rank when its stream ends, so the batch path becomes
"streaming over a finished file" and a live feed is just another
producer.

Identity guarantee
------------------

On a completed trace the kernel's products are **bitwise identical**
to ``fused_bootstrap``: when a rank finishes, its buffered chunks are
assembled into the exact column arrays the batch path would have
loaded and run through the very same code
(:class:`~repro.lint.engine.RankView` → ``scan_view`` →
:func:`~repro.profiles.replay.table_from_pairing` →
:func:`~repro.profiles.stats.rank_statistics_arrays`).  There is no
re-implementation to drift; ``tests/test_differential.py`` locks the
identity across chunk sizes, shard counts and file formats.

Memory
------

Peak memory is bounded by the largest single rank (plus one transient
copy while chunks are joined), **not** the trace: a rank's buffers are
dropped as soon as it is finalised.  ``table_sink`` lets callers spill
each rank's invocation table the moment it exists (the shard workers
do), which keeps resident state to the per-region statistics partials —
a few KiB per rank.  Chunk-granular replay would not improve on this
asymptotically: the invocation table itself is Θ(events).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from .. import obs
from ..profiles.replay import InvocationTable, match_invocations, table_from_pairing
from ..profiles.stats import rank_statistics_arrays
from ..trace.cursor import EventCursor
from ..trace.definitions import MetricRegistry, RegionRegistry
from ..trace.events import EventList
from ..trace.validate import ValidationIssue, ValidationReport

__all__ = ["FusedBootstrap", "IncrementalKernel", "incremental_bootstrap"]

#: Events pushed through the fused per-rank pass (telemetry).
_C_EVENTS = obs.counter("analysis.events")


@dataclass
class FusedBootstrap:
    """Products of one fused pass over a trace.

    ``tables`` is keyed by rank and only contains ranks whose streams
    were clean enough to replay (on an invalid trace the caller raises
    from ``report`` before touching the tables); ``partials`` holds the
    matching :func:`~repro.profiles.stats.rank_statistics_arrays`
    outputs, ready for rank-ascending merging.  Ranks handed to a
    ``table_sink`` do not appear in ``tables``.
    """

    tables: dict[int, InvocationTable]
    partials: dict[int, dict[str, np.ndarray]]
    report: ValidationReport


def _concat_chunks(chunks: list[EventList]) -> EventList:
    """Join buffered chunks into the rank's full event list.

    Single-chunk ranks pass through without copying.  The joined
    columns are value-identical to a whole-rank load, so everything
    computed from them is bitwise equal to the batch path.
    """
    if not chunks:
        return EventList.empty()
    if len(chunks) == 1:
        return chunks[0]
    from ..trace.events import _FIELDS

    loaded = chunks[0].loaded_columns
    arrays = {
        col: np.concatenate([getattr(c, col) for c in chunks])
        for col in loaded
    }
    if len(loaded) == len(_FIELDS):
        return EventList(*(arrays[col] for col in _FIELDS))
    return EventList.projected(arrays)


class IncrementalKernel:
    """Per-rank validate+replay+stats over incrementally fed chunks.

    Parameters mirror :func:`~repro.core.fused.fused_bootstrap`:
    ``ranks`` is the universe of ranks the pass covers (every one is
    finalised, fed or not), ``known_ranks`` overrides the rank set the
    lint rules consider defined (shard workers scan a subgroup of a
    larger trace), ``table_ranks`` restricts table/partial construction,
    and ``table_sink(rank, table)`` — when given — receives each
    invocation table instead of it being retained in the result.

    Protocol: any number of :meth:`feed` calls per rank (chunks in
    time order), then :meth:`finish_rank` once; :meth:`finalize`
    finishes whatever is still open and returns the
    :class:`FusedBootstrap`.
    """

    def __init__(
        self,
        regions: RegionRegistry,
        metrics: MetricRegistry,
        num_processes: int,
        ranks: Iterable[int],
        *,
        validate: bool = True,
        allow_empty_streams: bool = False,
        known_ranks=None,
        table_ranks=None,
        trace_name: str = "trace",
        table_sink: Callable[[int, InvocationTable], None] | None = None,
    ) -> None:
        self._n_regions = len(regions)
        self._ranks = list(ranks)
        self._validate = validate
        self._trace_name = trace_name
        self._table_sink = table_sink
        self._wanted = (
            set(self._ranks) if table_ranks is None else set(table_ranks)
        )
        self.tables: dict[int, InvocationTable] = {}
        self.partials: dict[int, dict[str, np.ndarray]] = {}
        #: ``rank -> (n_events, t_first, t_last)`` for finished,
        #: non-empty ranks (the shard workers' extent bookkeeping).
        self.extents: dict[int, tuple[int, float, float]] = {}
        self._buffers: dict[int, list[EventList]] = {}
        self._last_time: dict[int, float] = {}
        self._finished: set[int] = set()
        self._diags: list = []
        self._summaries: dict[int, object] = {}
        self._shared = None
        if validate:
            from ..lint.engine import LintShared, validate_config

            config = validate_config(allow_empty_streams=allow_empty_streams)
            self._shared = LintShared.from_definitions(
                regions,
                metrics,
                num_processes,
                self._ranks if known_ranks is None else known_ranks,
                config,
            )

    # -- feeding -------------------------------------------------------

    def feed(self, rank: int, events: EventList) -> None:
        """Buffer one time-ordered chunk of ``rank``'s stream."""
        if rank in self._finished:
            raise ValueError(f"rank {rank} is already finalized")
        n = len(events)
        if n == 0:
            return
        t0 = float(events.time[0])
        last = self._last_time.get(rank)
        if last is not None and t0 < last:
            from .streaming import StreamOrderError

            raise StreamOrderError(rank, t0, last)
        self._last_time[rank] = float(events.time[-1])
        self._buffers.setdefault(rank, []).append(events)

    def finish_rank(self, rank: int) -> None:
        """Finalise ``rank``: validate, replay, aggregate, drop buffers."""
        if rank in self._finished:
            return
        self._finished.add(rank)
        events = _concat_chunks(self._buffers.pop(rank, []))
        self._last_time.pop(rank, None)
        if len(events):
            self.extents[rank] = (
                len(events),
                float(events.time[0]),
                float(events.time[-1]),
            )
        if not self._validate:
            if rank not in self._wanted:
                return
            with obs.span("fused.rank"):
                _C_EVENTS.add(len(events))
                self._emit(rank, match_invocations(events))
            return
        from ..lint.engine import RankView, scan_view

        with obs.span("fused.rank"):
            _C_EVENTS.add(len(events))
            view = RankView(self._shared, rank, events)
            rank_diags, summary = scan_view(view)
            self._diags.extend(rank_diags)
            self._summaries[rank] = summary
            if (
                rank_diags
                or (len(view.el_idx) and not view.balanced)
                or rank not in self._wanted
            ):
                # Broken stream: the report makes the caller raise, so
                # there is no table to build (and building one could
                # legitimately fail on the very defect just diagnosed).
                # A stream with no ENTER/LEAVE events at all (p2p or
                # metric only, or empty under allow_empty_streams) is
                # *not* broken — replay of it is well-defined and
                # yields an empty table, as on the legacy path.
                return
            table = table_from_pairing(
                events, view.el_idx, view.enter_pos, view.leave_pos,
                view.depth_after
            )
            self._emit(rank, table)

    def _emit(self, rank: int, table: InvocationTable) -> None:
        self.partials[rank] = rank_statistics_arrays(table, self._n_regions)
        if self._table_sink is not None:
            self._table_sink(rank, table)
        else:
            self.tables[rank] = table

    # -- completion ----------------------------------------------------

    def finalize(self) -> FusedBootstrap:
        """Finish all remaining ranks and assemble the result."""
        for rank in self._ranks:
            if rank not in self._finished:
                self.finish_rank(rank)
        if not self._validate:
            return FusedBootstrap(
                self.tables, self.partials, ValidationReport()
            )
        from ..lint import all_rules
        from ..lint.engine import finalize_report

        report = finalize_report(
            self._shared, self._diags, self._summaries,
            trace_name=self._trace_name,
        )
        legacy_of = {r.code: r.legacy_code for r in all_rules()}
        issues = [
            ValidationIssue(
                rank=d.rank,
                code=legacy_of.get(d.code) or d.code,
                message=d.message,
                position=d.position,
                time=d.time,
            )
            for d in report.diagnostics
        ]
        return FusedBootstrap(
            self.tables, self.partials, ValidationReport(issues=issues)
        )


def incremental_bootstrap(
    cursor: EventCursor,
    *,
    validate: bool = True,
    allow_empty_streams: bool = False,
    known_ranks=None,
    table_ranks=None,
    table_sink: Callable[[int, InvocationTable], None] | None = None,
) -> FusedBootstrap:
    """Drive a cursor through an :class:`IncrementalKernel`.

    The cursor's :attr:`~repro.trace.cursor.EventCursor.definitions`
    supply regions, metrics and the rank universe; batches are fed as
    they arrive and each rank finalises on its ``final`` batch.  On a
    completed trace the result is bitwise identical to
    :func:`~repro.core.fused.fused_bootstrap` over the same events.

    Pure stream cursors (pipes) expose definitions only once the
    header has been parsed, so the kernel is created lazily at the
    first batch rather than up front.
    """

    def _kernel() -> IncrementalKernel:
        defs = cursor.definitions
        return IncrementalKernel(
            defs.regions,
            defs.metrics,
            defs.num_processes,
            cursor.ranks,
            validate=validate,
            allow_empty_streams=allow_empty_streams,
            known_ranks=known_ranks,
            table_ranks=table_ranks,
            trace_name=defs.name,
            table_sink=table_sink,
        )

    kernel = None
    for batch in cursor:
        if kernel is None:
            kernel = _kernel()
        kernel.feed(batch.rank, batch.events)
        if batch.final:
            kernel.finish_rank(batch.rank)
    if kernel is None:
        kernel = _kernel()
    return kernel.finalize()
