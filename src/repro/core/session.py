"""Lazy, memoizing analysis sessions (the stage-graph substrate).

The paper's workflow is iterative: the analyst refines the dominant
function (Section VII-B), re-renders views, drills into segments and
compares runs — and every one of those steps reuses the same expensive
intermediates.  :class:`AnalysisSession` makes that reuse explicit.
Each product of the pipeline is a *stage*:

.. code-block:: text

    trace ──▶ replay ──▶ profile ──▶ selection(level)
                 │                        │
                 └──▶ segmentation(region)┘
                           │
                           ▼
                  sos(region, classifier) ──▶ detections / trends / heat

Stages are memoized in memory (bounded LRU for the per-region
products, strong references for replay/profile which everything needs)
and, when a ``cache_dir`` is given, persisted as ``.npz`` artifacts
keyed by the trace's content fingerprint
(:mod:`repro.trace.fingerprint`).  A second session over the same
trace — even in a new process — loads replay tables, statistics and
SOS-times from disk and performs **zero** replay or profile
recomputation; replayed invocation tables are keyed per rank by the
rank's event digest, so traces sharing event streams share artifacts.

:func:`repro.core.pipeline.analyze_trace` is a thin facade over this
class; use a session directly when analysing the same trace more than
once or when serving repeated queries.
"""

from __future__ import annotations

import hashlib
import os
import re
import zipfile
from collections import OrderedDict
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from .. import obs
from ..profiles.profile import TraceProfile
from ..profiles.replay import InvocationTable, match_invocations, replay_trace
from ..profiles.stats import FunctionStatistics, compute_statistics
from ..trace.fingerprint import (
    TraceFingerprint,
    combine_fingerprint,
    fingerprint_definitions,
    fingerprint_trace,
)
from ..trace.trace import Trace
from ..trace.validate import ValidationIssue, ValidationReport, validate_trace
from .classify import SyncClassifier
from .dominant import DominantSelection, select_dominant
from .imbalance import ImbalanceReport, detect_imbalances
from .segments import RankSegments, Segmentation, segment_trace
from .sos import RankSOS, SOSResult, compute_sos
from .variation import TrendResult, binned_matrix, detect_trend

__all__ = ["AnalysisSession", "ArtifactCache", "CacheInfo", "SessionStats"]

_MISS = object()

# Artifact-cache telemetry (module-level handles: the disabled fast
# path is one attribute load plus one flag test per call site).
_C_CACHE_HIT = obs.counter("cache.hit")
_C_CACHE_MISS = obs.counter("cache.miss")
_C_CACHE_BYTES_READ = obs.counter("cache.bytes_read")
_C_CACHE_BYTES_WRITTEN = obs.counter("cache.bytes_written")

#: InvocationTable columns in serialisation order.
_TABLE_COLUMNS = (
    "region",
    "t_enter",
    "t_leave",
    "inclusive",
    "exclusive",
    "depth",
    "parent",
    "outermost",
    "enter_index",
    "leave_index",
)

#: Integral/bool columns to restore after the float64 round-trip.
_TABLE_DTYPES = {
    "region": np.int32,
    "depth": np.int32,
    "parent": np.int64,
    "outermost": np.bool_,
    "enter_index": np.int64,
    "leave_index": np.int64,
}


def _table_to_arrays(table: InvocationTable) -> dict[str, np.ndarray]:
    """Pack a table into one float64 matrix.

    ``.npz`` loading pays a fixed zip-member + header cost per array;
    one (columns × rows) matrix per rank keeps warm loads fast.  Every
    column (ids, indices, bools, times) is exactly representable in
    float64.
    """
    data = np.empty((len(_TABLE_COLUMNS), len(table)), dtype=np.float64)
    for i, name in enumerate(_TABLE_COLUMNS):
        data[i] = getattr(table, name)
    return {"table": data}


def _table_from_arrays(arrays: dict[str, np.ndarray]) -> InvocationTable:
    data = arrays["table"]
    cols = {}
    for i, name in enumerate(_TABLE_COLUMNS):
        dtype = _TABLE_DTYPES.get(name)
        cols[name] = data[i].astype(dtype) if dtype else data[i].copy()
    return InvocationTable(**cols)


class _LRU:
    """Tiny bounded mapping with least-recently-used eviction."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("LRU size must be >= 1")
        self.maxsize = maxsize
        self._data: OrderedDict[Any, Any] = OrderedDict()

    def get(self, key: Any) -> Any:
        if key not in self._data:
            return _MISS
        self._data.move_to_end(key)
        return self._data[key]

    def put(self, key: Any, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)


@dataclass
class SessionStats:
    """Counters of stage activity, for tests, benchmarks and ``cache info``.

    ``computed`` counts actual stage executions (for ``replay``, one per
    replayed rank); ``memory_hits``/``disk_hits`` count avoided ones.
    """

    computed: dict[str, int] = field(default_factory=dict)
    memory_hits: dict[str, int] = field(default_factory=dict)
    disk_hits: dict[str, int] = field(default_factory=dict)
    disk_writes: dict[str, int] = field(default_factory=dict)

    def _bump(self, bucket: dict[str, int], stage: str, n: int = 1) -> None:
        bucket[stage] = bucket.get(stage, 0) + n

    def total_computed(self, stage: str) -> int:
        return self.computed.get(stage, 0)

    def describe(self) -> str:
        stages = sorted(
            set(self.computed) | set(self.memory_hits) | set(self.disk_hits)
        )
        lines = [f"{'stage':<14}{'computed':>10}{'mem hits':>10}{'disk hits':>10}"]
        for stage in stages:
            lines.append(
                f"{stage:<14}{self.computed.get(stage, 0):>10}"
                f"{self.memory_hits.get(stage, 0):>10}"
                f"{self.disk_hits.get(stage, 0):>10}"
            )
        return "\n".join(lines)


@dataclass(frozen=True, slots=True)
class CacheInfo:
    """Summary of one on-disk artifact cache."""

    root: str
    entries: int
    total_bytes: int

    def format(self) -> str:
        mb = self.total_bytes / 1e6
        return f"{self.root}: {self.entries} artifacts, {mb:.2f} MB"


_KEY_RE = re.compile(r"^[A-Za-z0-9._-]+$")


class ArtifactCache:
    """Flat on-disk store of ``.npz`` artifacts, keyed by digest strings.

    Writes are atomic (temp file + rename) so concurrent sessions over
    the same cache directory never observe half-written artifacts;
    unreadable or corrupt files are treated as misses.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        if not _KEY_RE.match(key):
            raise ValueError(f"invalid artifact key {key!r}")
        return self.root / f"{key}.npz"

    def contains(self, key: str) -> bool:
        """Whether an artifact exists under ``key`` (no content check)."""
        return self._path(key).exists()

    def load(self, key: str) -> dict[str, np.ndarray] | None:
        """Arrays stored under ``key``, or None on miss/corruption."""
        path = self._path(key)
        if not path.exists():
            _C_CACHE_MISS.add()
            return None
        try:
            with np.load(path, allow_pickle=False) as npz:
                arrays = {name: npz[name] for name in npz.files}
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            _C_CACHE_MISS.add()
            return None
        _C_CACHE_HIT.add()
        if obs.enabled():
            try:
                _C_CACHE_BYTES_READ.add(path.stat().st_size)
            except OSError:  # pragma: no cover - raced unlink
                pass
        return arrays

    def store(self, key: str, arrays: dict[str, np.ndarray]) -> None:
        """Persist ``arrays`` under ``key`` (atomic overwrite)."""
        path = self._path(key)
        tmp = self.root / f"{key}.{os.getpid()}.tmp.npz"
        try:
            with open(tmp, "wb") as fp:
                np.savez(fp, **arrays)
            if obs.enabled():
                _C_CACHE_BYTES_WRITTEN.add(tmp.stat().st_size)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on failed replace
                tmp.unlink()

    def keys(self) -> list[str]:
        return sorted(p.stem for p in self.root.glob("*.npz"))

    def info(self) -> CacheInfo:
        paths = list(self.root.glob("*.npz"))
        return CacheInfo(
            root=str(self.root),
            entries=len(paths),
            total_bytes=sum(p.stat().st_size for p in paths),
        )

    def clear(self) -> int:
        """Delete all artifacts; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.npz"):
            path.unlink()
            removed += 1
        return removed


def _digest(text: str) -> str:
    return hashlib.blake2b(text.encode("utf-8"), digest_size=8).hexdigest()


class _LazyTables(Mapping):
    """``rank -> InvocationTable`` view backed by the shard spill.

    Handed to :class:`~repro.profiles.profile.TraceProfile` in sharded
    mode so drill-down paths (call tree, windowed MPI fraction) can
    still reach invocation tables — loaded per rank on demand through
    a small LRU instead of being held for the whole trace at once.
    """

    def __init__(self, session: "AnalysisSession", max_cached: int = 4) -> None:
        self._session = session
        self._ranks = sorted(session._shard_bootstrap().digests)
        self._cache = _LRU(max_cached)

    def __getitem__(self, rank: int) -> InvocationTable:
        table = self._cache.get(rank)
        if table is not _MISS:
            return table
        if rank not in self._session._shard_bootstrap().digests:
            raise KeyError(rank)
        table = self._session._shard_engine().load_table(rank)
        self._cache.put(rank, table)
        return table

    def __iter__(self):
        return iter(self._ranks)

    def __len__(self) -> int:
        return len(self._ranks)


class AnalysisSession:
    """Shared, lazily-evaluated analysis state for one trace.

    Parameters
    ----------
    trace:
        The trace under analysis.
    config:
        Pipeline knobs (:class:`~repro.core.pipeline.AnalysisConfig`);
        defaults match :func:`~repro.core.pipeline.analyze_trace`.
    cache_dir:
        Directory for persistent ``.npz`` artifacts.  ``None`` keeps
        everything in memory only.
    parallel:
        Replay parallelism, forwarded to
        :func:`repro.profiles.replay.replay_trace`.
    memory_entries:
        Bound of the in-memory LRU holding per-region products
        (segmentations, SOS results, detections, trends, heat grids).
    lint:
        ``True`` or a :class:`repro.lint.LintConfig` to make the
        pre-flight gate run the *full* tracelint rule set (structural +
        MPI-semantic + paper-precondition rules) instead of the legacy
        structural subset; error-severity findings raise
        :class:`repro.lint.LintError`.  See also :meth:`preflight`.

    Examples
    --------
    ::

        session = AnalysisSession(trace, cache_dir="~/.cache/repro")
        analysis = session.analysis()          # cold: replays + profiles
        finer = analysis.refined()             # warm: pure cache hits
        pinned = session.analysis(function="specs_microphysics")
    """

    def __init__(
        self,
        trace: Trace | None,
        config=None,
        cache_dir: str | os.PathLike | None = None,
        parallel: bool | int | None = None,
        memory_entries: int = 128,
        shards: int | None = None,
        max_memory_mb: float | None = None,
        source_path: str | os.PathLike | None = None,
        lint=None,
        chunk_events: int | None = None,
    ) -> None:
        from .pipeline import AnalysisConfig  # deferred: pipeline imports us

        self.config = config if config is not None else AnalysisConfig()
        if lint is True:
            from ..lint import LintConfig  # deferred: lint imports core

            lint = LintConfig()
        #: optional LintConfig; when set, the pre-flight gate runs the
        #: full tracelint rule set instead of the legacy validate subset
        self.lint_config = lint or None
        self.parallel = parallel
        self.shards = shards
        self.max_memory_mb = max_memory_mb
        if chunk_events is not None and chunk_events <= 0:
            raise ValueError(f"chunk_events must be > 0, got {chunk_events}")
        #: explicit cursor batch size for the shard workers; ``None``
        #: derives one from ``max_memory_mb`` (or reads whole ranks)
        self.chunk_events = chunk_events
        self.source_path = os.fspath(source_path) if source_path else None
        self.sharded = shards is not None or max_memory_mb is not None
        self._index = None  # TraceIndex over source_path (lazy)
        self._engine = None  # ShardEngine (lazy)
        if trace is None:
            if self.source_path is None:
                raise ValueError(
                    "AnalysisSession needs a trace or a source_path"
                )
            from ..trace.reader import TraceIndex

            self._index = TraceIndex(self.source_path)
            # In sharded mode the parent never materialises event
            # streams — workers do; definitions suffice up here.
            trace = (
                self._index.definitions_trace()
                if self.sharded
                else self._index.load()
            )
        self.trace = trace
        self.cache = (
            ArtifactCache(os.path.expanduser(str(cache_dir)))
            if cache_dir is not None
            else None
        )
        self.stats = SessionStats()
        self._memo = _LRU(memory_entries)
        self._fingerprint: TraceFingerprint | None = None
        self._tables: dict[int, InvocationTable] | None = None
        self._partials: dict[int, dict[str, np.ndarray]] | None = None
        self._profile: TraceProfile | None = None
        self._validated = False
        self._boot = None  # ShardBootstrap (lazy)

    # -- identity ------------------------------------------------------

    @property
    def fingerprint(self) -> TraceFingerprint:
        """Content fingerprint of the trace (computed once).

        In sharded mode the per-rank event digests come back from the
        phase-1 workers (the parent may hold only definitions) and are
        combined by the same code as :func:`fingerprint_trace`.
        """
        if self._fingerprint is None:
            if self.sharded:
                self._shard_bootstrap()  # assembles the fingerprint
            else:
                self._fingerprint = fingerprint_trace(self.trace)
        return self._fingerprint

    @property
    def num_events(self) -> int:
        """Total event count — exact even when ``self.trace`` is only a
        definitions skeleton (sharded path mode)."""
        if self.sharded and not self.trace.num_events:
            return self._shard_bootstrap().num_events
        return self.trace.num_events

    @property
    def duration(self) -> float:
        """Trace time extent, sharded-mode aware like :attr:`num_events`."""
        if self.sharded and not self.trace.num_events:
            boot = self._shard_bootstrap()
            return boot.t_max - boot.t_min
        return self.trace.duration

    # -- sharding ------------------------------------------------------

    def _shard_engine(self):
        """The (lazily created) worker-pool coordinator."""
        from .shard import ShardEngine, plan_shards

        if self._engine is None:
            if self.source_path is not None:
                if self._index is None:
                    from ..trace.reader import TraceIndex

                    self._index = TraceIndex(self.source_path)
                counts = self._index.event_counts()
            else:
                counts = {
                    rank: len(self.trace.events_of(rank))
                    for rank in self.trace.ranks
                }
            plan = plan_shards(
                counts, shards=self.shards, max_memory_mb=self.max_memory_mb
            )
            chunk_events = self.chunk_events
            if chunk_events is None and self.max_memory_mb is not None:
                # Make the planner's budget a hard per-worker bound:
                # cursor batches never exceed the budgeted event count,
                # so a rank larger than the budget streams through in
                # windows instead of being loaded as one slab.
                from .shard import BYTES_PER_EVENT

                chunk_events = max(
                    int(self.max_memory_mb * 1e6) // BYTES_PER_EVENT, 1
                )
            self._engine = ShardEngine(
                plan,
                source_path=self.source_path,
                trace=None if self.source_path is not None else self.trace,
                n_regions=len(self.trace.regions),
                spill_dir=self.cache.root if self.cache is not None else None,
                validate=self.config.validate,
                chunk_events=chunk_events,
            )
        return self._engine

    def _shard_bootstrap(self):
        """Run (once) the phase-1 fan-out: replay + per-rank statistics.

        Also performs validation (inside the workers, against the
        global rank set) and assembles the trace fingerprint from the
        worker-computed event digests.
        """
        if self._boot is not None:
            return self._boot
        with obs.span("shard.bootstrap"):
            boot = self._shard_engine().bootstrap()
        if self.config.validate and boot.issues:
            ValidationReport(
                issues=[ValidationIssue(*i) for i in boot.issues]
            ).raise_if_invalid()
        if self._fingerprint is None:
            self._fingerprint = combine_fingerprint(
                fingerprint_definitions(self.trace),
                tuple((r, boot.digests[r]) for r in sorted(boot.digests)),
            )
        self.stats._bump(self.stats.computed, "replay", boot.replayed)
        if boot.reused:
            self.stats._bump(self.stats.disk_hits, "replay", boot.reused)
        if boot.replayed:
            self.stats._bump(self.stats.disk_writes, "replay", boot.replayed)
        if self.config.validate:
            self.stats._bump(self.stats.computed, "validate")
            self._validated = True
            if self.cache is not None:
                self.cache.store(
                    f"valid-{self.fingerprint.hexdigest}",
                    {"ok": np.ones(1, dtype=np.int8)},
                )
        self._boot = boot
        return boot

    def _classifier_key(self, classifier: SyncClassifier) -> str:
        return _digest(repr(classifier))

    # -- generic stage runner ------------------------------------------

    def _stage(
        self,
        stage: str,
        key: tuple,
        compute: Callable[[], Any],
        disk_key: str | None = None,
        to_arrays: Callable[[Any], dict[str, np.ndarray]] | None = None,
        from_arrays: Callable[[dict[str, np.ndarray]], Any] | None = None,
    ) -> Any:
        memo_key = (stage, *key)
        value = self._memo.get(memo_key)
        if value is not _MISS:
            self.stats._bump(self.stats.memory_hits, stage)
            return value
        if disk_key is not None and self.cache is not None:
            arrays = self.cache.load(disk_key)
            if arrays is not None:
                value = from_arrays(arrays)
                self.stats._bump(self.stats.disk_hits, stage)
                self._memo.put(memo_key, value)
                return value
        with obs.span(f"stage.{stage}"):
            value = compute()
        self.stats._bump(self.stats.computed, stage)
        if disk_key is not None and self.cache is not None:
            self.cache.store(disk_key, to_arrays(value))
            self.stats._bump(self.stats.disk_writes, stage)
        self._memo.put(memo_key, value)
        return value

    # -- replay / profile ----------------------------------------------

    def replay(self) -> dict[int, InvocationTable]:
        """Invocation tables for every rank (stage ``replay``).

        Tables are cached per rank under the rank's event digest, so a
        warm cache performs no matching at all and traces that share
        event streams (merges, filtered copies) share artifacts.
        """
        if self._tables is not None:
            self.stats._bump(self.stats.memory_hits, "replay")
            return self._tables
        # Path-mode sessions historically skipped validation until
        # analysis(); gate replay (and thus profile) the same way so
        # broken traces surface as diagnostics, not replay errors.
        self._ensure_valid()
        if self._tables is not None:
            # The fused pass inside _ensure_valid already replayed.
            return self._tables
        if self.sharded:
            boot = self._shard_bootstrap()
            engine = self._shard_engine()
            self._tables = {
                rank: engine.load_table(rank) for rank in sorted(boot.digests)
            }
            return self._tables
        ranks = self.trace.ranks
        tables: dict[int, InvocationTable] = {}
        missing: list[int] = []
        if self.cache is not None:
            for rank, digest in self.fingerprint.per_rank:
                arrays = self.cache.load(f"inv-{digest}")
                if arrays is None or "table" not in arrays:
                    missing.append(rank)
                    continue
                tables[rank] = _table_from_arrays(arrays)
                self.stats._bump(self.stats.disk_hits, "replay")
        else:
            missing = list(ranks)
        if missing:
            with obs.span("session.replay"):
                if len(missing) == len(ranks):
                    computed = replay_trace(self.trace, parallel=self.parallel)
                else:
                    computed = {
                        rank: match_invocations(self.trace.events_of(rank))
                        for rank in missing
                    }
            self.stats._bump(self.stats.computed, "replay", len(missing))
            for rank in missing:
                tables[rank] = computed[rank]
                if self.cache is not None:
                    digest = self.fingerprint.rank_digest(rank)
                    self.cache.store(
                        f"inv-{digest}", _table_to_arrays(computed[rank])
                    )
                    self.stats._bump(self.stats.disk_writes, "replay")
        self._tables = {rank: tables[rank] for rank in ranks}
        return self._tables

    def profile(self) -> TraceProfile:
        """Aggregated profile (stage ``profile``); statistics are
        disk-cached so a warm profile never re-aggregates."""
        if self._profile is not None:
            self.stats._bump(self.stats.memory_hits, "profile")
            return self._profile
        self._ensure_valid()
        if self.sharded:
            boot = self._shard_bootstrap()
            tables: Mapping[int, InvocationTable] = _LazyTables(self)
            compute = lambda: FunctionStatistics.from_partials(  # noqa: E731
                self.trace, boot.partials
            )
        else:
            tables = self.replay()
            if self._partials is not None:
                partials = self._partials
                compute = lambda: FunctionStatistics.from_partials(  # noqa: E731
                    self.trace, partials
                )
            else:
                compute = lambda: compute_statistics(  # noqa: E731
                    self.trace, tables
                )
        stats = self._stage(
            "stats",
            (),
            compute=compute,
            # The fingerprint costs a full hash over the event bytes;
            # only pay for it when there is a disk cache to key.
            disk_key=(
                f"stats-{self.fingerprint.hexdigest}"
                if self.cache is not None
                else None
            ),
            to_arrays=lambda s: s.to_arrays(),
            from_arrays=lambda arrays: FunctionStatistics.from_arrays(
                self.trace, arrays
            ),
        )
        self._profile = TraceProfile(self.trace, tables, stats)
        return self._profile

    # -- selection ------------------------------------------------------

    def selection(self, level: int | None = None) -> DominantSelection:
        """Dominant-function selection at ``level`` (stage ``selection``)."""
        cfg = self.config
        lvl = cfg.level if level is None else level
        key = (cfg.min_invocation_factor, cfg.candidate_paradigms, lvl)
        return self._stage(
            "selection",
            key,
            compute=lambda: select_dominant(
                self.trace,
                stats=self.profile().stats,
                min_invocation_factor=cfg.min_invocation_factor,
                candidate_paradigms=cfg.candidate_paradigms,
                level=lvl,
            ),
        )

    # -- per-region products -------------------------------------------

    def segmentation(self, region: int) -> Segmentation:
        """Segments of the ``region`` invocations (stage ``segmentation``)."""
        if self.sharded:
            # Phase 2 computes segments and sync-times together; the
            # memoized SOS result carries the segmentation.
            compute = lambda: self.sos(region).segmentation  # noqa: E731
        else:
            compute = lambda: segment_trace(self.replay(), region)  # noqa: E731
        return self._stage("segmentation", (region,), compute=compute)

    def _sos_to_arrays(self, sos: SOSResult) -> dict[str, np.ndarray]:
        # One concatenated (4, total-segments) matrix plus per-rank
        # segment counts: three zip members regardless of rank count.
        blocks = []
        counts = []
        for rank in sos.ranks:
            seg = sos.segmentation[rank]
            per = sos[rank]
            blocks.append(
                np.stack(
                    [
                        seg.t_start,
                        seg.t_stop,
                        seg.invocation_row.astype(np.float64),
                        per.sync_time,
                    ]
                )
            )
            counts.append(len(seg.t_start))
        data = (
            np.concatenate(blocks, axis=1)
            if blocks
            else np.empty((4, 0), dtype=np.float64)
        )
        return {
            "ranks": np.asarray(sos.ranks, dtype=np.int64),
            "counts": np.asarray(counts, dtype=np.int64),
            "data": data,
        }

    def _sos_from_arrays(
        self, region: int, classifier: SyncClassifier, arrays: dict[str, np.ndarray]
    ) -> SOSResult:
        per_seg: dict[int, RankSegments] = {}
        per_rank: dict[int, RankSOS] = {}
        data = arrays["data"]
        offsets = np.concatenate(([0], np.cumsum(arrays["counts"])))
        for i, rank in enumerate(arrays["ranks"].tolist()):
            block = data[:, offsets[i] : offsets[i + 1]]
            seg = RankSegments(
                rank=rank,
                t_start=block[0].copy(),
                t_stop=block[1].copy(),
                invocation_row=block[2].astype(np.int64),
            )
            sync_time = block[3].copy()
            duration = seg.duration
            per_seg[rank] = seg
            per_rank[rank] = RankSOS(
                rank=rank,
                duration=duration,
                sync_time=sync_time,
                sos=duration - sync_time,
            )
        segmentation = Segmentation(region, per_seg)
        # Keep the segmentation stage coherent with the restored object.
        self._memo.put(("segmentation", region), segmentation)
        return SOSResult(segmentation, per_rank, classifier)

    def _shard_sos(self, region: int, cls: SyncClassifier) -> SOSResult:
        """Phase-2 fan-out: segment + SOS-accumulate in the workers."""
        from .shard import assemble_sos

        engine = self._shard_engine()
        self._shard_bootstrap()
        per_rank = engine.sos_arrays(region, cls.mask(self.trace))
        return assemble_sos(region, per_rank, cls)

    def sos(self, region: int, classifier: SyncClassifier | None = None) -> SOSResult:
        """SOS-times for segments of ``region`` (stage ``sos``)."""
        cls = self.config.classifier if classifier is None else classifier
        disk_key = (
            f"sos-{self.fingerprint.hexdigest}"
            f"-{region}-{self._classifier_key(cls)}"
            if self.cache is not None
            else None
        )
        if self.sharded:
            compute = lambda: self._shard_sos(region, cls)  # noqa: E731
        else:
            compute = lambda: compute_sos(  # noqa: E731
                self.trace, self.segmentation(region), self.replay(), cls
            )
        return self._stage(
            "sos",
            (region, cls),
            compute=compute,
            disk_key=disk_key,
            to_arrays=self._sos_to_arrays,
            from_arrays=lambda arrays: self._sos_from_arrays(region, cls, arrays),
        )

    def detections(
        self, region: int, classifier: SyncClassifier | None = None
    ) -> ImbalanceReport:
        """Hot-rank / hot-segment detections (stage ``detections``)."""
        cfg = self.config
        cls = cfg.classifier if classifier is None else classifier
        key = (
            region,
            cls,
            cfg.rank_threshold,
            cfg.segment_threshold,
            cfg.min_relative_excess,
            cfg.max_findings,
        )
        return self._stage(
            "detections",
            key,
            compute=lambda: detect_imbalances(
                self.sos(region, cls),
                rank_threshold=cfg.rank_threshold,
                segment_threshold=cfg.segment_threshold,
                min_relative_excess=cfg.min_relative_excess,
                max_findings=cfg.max_findings,
            ),
        )

    def trend(
        self,
        region: int,
        classifier: SyncClassifier | None = None,
        use_plain_duration: bool = False,
    ) -> TrendResult:
        """Temporal trend of SOS (or plain) durations (stage ``trend``)."""
        cls = self.config.classifier if classifier is None else classifier
        return self._stage(
            "trend",
            (region, cls, use_plain_duration),
            compute=lambda: detect_trend(
                self.sos(region, cls), use_plain_duration=use_plain_duration
            ),
        )

    def heat_matrix(
        self,
        region: int,
        bins: int = 512,
        normalize: bool = False,
        classifier: SyncClassifier | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Time-binned SOS matrix for heat-map rendering (stage ``heat``)."""
        cls = self.config.classifier if classifier is None else classifier
        return self._stage(
            "heat",
            (region, cls, bins, normalize),
            compute=lambda: binned_matrix(
                self.sos(region, cls), bins=bins, normalize=normalize
            ),
        )

    # -- assembled analyses --------------------------------------------

    def preflight(self, config=None):
        """Run the tracelint static-analysis pass over this session's trace.

        Returns a :class:`repro.lint.LintReport`.  In sharded path mode
        the per-rank scans fan out to the same worker pool the analysis
        uses (:func:`repro.lint.lint_path`), so the parent never
        materialises event streams.  Pass a
        :class:`repro.lint.LintConfig` to override the session's
        ``lint`` configuration for this call.
        """
        from ..lint import LintConfig, lint_path, lint_trace

        cfg = config or self.lint_config or LintConfig()
        if self.sharded and self.source_path is not None:
            return lint_path(
                self.source_path,
                config=cfg,
                shards=self.shards,
                max_memory_mb=self.max_memory_mb,
            )
        return lint_trace(self.trace, config=cfg, source=self.source_path)

    def _ensure_valid(self) -> None:
        if not self.config.validate or self._validated:
            return
        if self.lint_config is not None:
            with obs.span("session.preflight"):
                self.preflight().raise_for_errors()
            self.stats._bump(self.stats.computed, "validate")
            self._validated = True
            return
        if self.sharded and self.trace.num_processes > 0:
            # Workers validate their sub-traces against the global rank
            # set during bootstrap; issues raise there.
            self._shard_bootstrap()
            return
        if self.cache is None:
            # No artifacts to key: fuse validation, replay and the
            # statistics partials into one pass over the event streams
            # (the cache path needs the fingerprint anyway, so the
            # staged flow costs it nothing extra there).
            self._fused_run()
            return
        # Validity is a pure function of content, so a marker artifact
        # keyed by the fingerprint lets warm sessions skip the scan.
        marker = f"valid-{self.fingerprint.hexdigest}"
        if self.cache is not None and self.cache.load(marker) is not None:
            self.stats._bump(self.stats.disk_hits, "validate")
            self._validated = True
            return
        with obs.span("session.validate"):
            validate_trace(self.trace).raise_if_invalid()
        self.stats._bump(self.stats.computed, "validate")
        if self.cache is not None:
            self.cache.store(marker, {"ok": np.ones(1, dtype=np.int8)})
            self.stats._bump(self.stats.disk_writes, "validate")
        self._validated = True

    def _fused_run(self) -> None:
        """Single fused pass over the event streams (cache-less mode).

        Validation, stack replay and the per-rank statistics partials
        all come from one :func:`repro.core.fused.fused_bootstrap` call
        sharing one enter/leave pairing per rank; results are bitwise
        identical to the staged flow.
        """
        from .fused import fused_bootstrap

        with obs.span("fused.bootstrap"):
            boot = fused_bootstrap(self.trace)
        boot.report.raise_if_invalid()
        self.stats._bump(self.stats.computed, "validate")
        self._validated = True
        ranks = self.trace.ranks
        self._tables = {rank: boot.tables[rank] for rank in ranks}
        self._partials = boot.partials
        self.stats._bump(self.stats.computed, "replay", len(ranks))

    def analysis_for(self, selection: DominantSelection):
        """Assemble a :class:`VariationAnalysis` for an explicit selection.

        Every constituent is a stage lookup, so repeated calls (the
        ``refined()``/``at_function()`` loop) only compute what changed.
        """
        from .pipeline import VariationAnalysis

        region = selection.region
        sos = self.sos(region)
        return VariationAnalysis(
            trace=self.trace,
            config=self.config,
            profile=self.profile(),
            selection=selection,
            segmentation=sos.segmentation,
            sos=sos,
            imbalance=self.detections(region),
            trend=self.trend(region),
            duration_trend=self.trend(region, use_plain_duration=True),
            session=self,
        )

    def analysis(self, level: int | None = None, function: str | None = None):
        """Full analysis at ``level``, optionally pinned to ``function``.

        Equivalent to :func:`repro.core.pipeline.analyze_trace` followed
        by :meth:`~repro.core.pipeline.VariationAnalysis.at_function`,
        but every product is memoized in this session.
        """
        with obs.span("session.analysis"):
            self._ensure_valid()
            selection = self.selection(level=level)
            if function is not None:
                selection = selection.at_function(function)
            return self.analysis_for(selection)

    def cache_info(self) -> CacheInfo | None:
        """Disk-cache summary, or None when running memory-only."""
        return self.cache.info() if self.cache is not None else None
