"""Segmentation of a run by dominant-function invocations.

Each (outermost) invocation of the dominant function becomes one
*segment*; the segment's duration is the invocation's inclusive time
(paper, footnote 1).  Segments of one process are disjoint in time and
stored as a structure-of-arrays for vectorised SOS accumulation and
heat-map binning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..profiles.replay import InvocationTable

__all__ = ["RankSegments", "Segmentation", "segment_rank", "segment_trace"]


@dataclass(frozen=True, slots=True)
class RankSegments:
    """Segments of one process, ordered by start time."""

    rank: int
    t_start: np.ndarray  # enter timestamps of the dominant invocations
    t_stop: np.ndarray  # leave timestamps
    #: Row indices into the rank's InvocationTable (for drill-down).
    invocation_row: np.ndarray

    def __len__(self) -> int:
        return len(self.t_start)

    @property
    def duration(self) -> np.ndarray:
        """Segment durations (= inclusive time of the invocation)."""
        return self.t_stop - self.t_start

    def covering(self, t: float) -> int:
        """Index of the segment containing time ``t``, or -1."""
        i = int(np.searchsorted(self.t_start, t, side="right")) - 1
        if i >= 0 and t < self.t_stop[i]:
            return i
        return -1


class Segmentation:
    """Per-rank segment tables for one dominant function.

    Attributes
    ----------
    region:
        Region id of the segmenting (dominant) function.
    per_rank:
        ``rank -> RankSegments`` mapping.
    """

    def __init__(self, region: int, per_rank: dict[int, RankSegments]) -> None:
        self.region = region
        self.per_rank = per_rank

    @property
    def ranks(self) -> list[int]:
        return sorted(self.per_rank)

    def __getitem__(self, rank: int) -> RankSegments:
        return self.per_rank[rank]

    def __iter__(self):
        for rank in self.ranks:
            yield self.per_rank[rank]

    @property
    def total_segments(self) -> int:
        return sum(len(s) for s in self.per_rank.values())

    def counts(self) -> np.ndarray:
        """Number of segments per rank (rank order)."""
        return np.asarray([len(self.per_rank[r]) for r in self.ranks], dtype=np.int64)

    def durations_matrix(self) -> np.ndarray:
        """Segment durations as a dense ``(ranks, max_segments)`` matrix.

        Processes usually have equal segment counts (SPMD); ranks with
        fewer segments are padded with NaN.
        """
        counts = self.counts()
        if len(counts) == 0:
            return np.empty((0, 0), dtype=np.float64)
        width = int(counts.max())
        out = np.full((len(counts), width), np.nan, dtype=np.float64)
        for i, rank in enumerate(self.ranks):
            seg = self.per_rank[rank]
            out[i, : len(seg)] = seg.duration
        return out

    @property
    def t_min(self) -> float:
        starts = [s.t_start[0] for s in self.per_rank.values() if len(s)]
        return float(min(starts)) if starts else 0.0

    @property
    def t_max(self) -> float:
        stops = [s.t_stop[-1] for s in self.per_rank.values() if len(s)]
        return float(max(stops)) if stops else 0.0


def segment_rank(table: InvocationTable, rank: int, region: int) -> RankSegments:
    """Segments of one rank: the outermost ``region`` invocations.

    This per-rank kernel is the unit of work of the sharded engine
    (:mod:`repro.core.shard`); :func:`segment_trace` is its rank loop,
    so sharded and single-process segmentations are bit-identical by
    construction.
    """
    mask = (table.region == region) & table.outermost
    rows = np.flatnonzero(mask)
    t_start = table.t_enter[rows]
    if len(t_start) > 1 and np.any(np.diff(t_start) < 0):
        # Replay emits tables in enter order, making this argsort the
        # identity; only a table built in another order pays for it.
        order = np.argsort(t_start, kind="stable")
        rows = rows[order]
    return RankSegments(
        rank=rank,
        t_start=table.t_enter[rows],
        t_stop=table.t_leave[rows],
        invocation_row=rows.astype(np.int64),
    )


def segment_trace(
    tables: dict[int, InvocationTable], region: int
) -> Segmentation:
    """Build the segmentation for ``region`` from invocation tables.

    Only *outermost* invocations are used, so a recursive dominant
    function still yields disjoint segments.
    """
    per_rank = {
        rank: segment_rank(table, rank, region)
        for rank, table in tables.items()
    }
    return Segmentation(region, per_rank)
