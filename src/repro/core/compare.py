"""Comparison of two application runs (before/after a change).

The paper positions itself against alignment-based *trace comparison*
(Weber et al. [20]), which highlights differences between runs but not
between processes within one run.  This module provides the
complementary workflow on top of our segment model: align two runs of
the same application by (rank, segment index), compare their SOS-times
and report where a change made things slower or faster — the
regression-hunting loop an analyst enters right after fixing a
bottleneck the heat map exposed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .pipeline import AnalysisConfig, VariationAnalysis

__all__ = ["RunComparison", "SegmentDelta", "compare_analyses", "compare_traces"]


@dataclass(frozen=True, slots=True)
class SegmentDelta:
    """One aligned segment pair with a material SOS difference."""

    rank: int
    segment_index: int
    sos_a: float
    sos_b: float

    @property
    def delta(self) -> float:
        return self.sos_b - self.sos_a

    @property
    def ratio(self) -> float:
        return self.sos_b / self.sos_a if self.sos_a > 0 else np.inf

    def __str__(self) -> str:
        sign = "+" if self.delta >= 0 else ""
        return (
            f"rank {self.rank} segment {self.segment_index}: "
            f"{self.sos_a:.6g}s -> {self.sos_b:.6g}s "
            f"({sign}{100 * (self.ratio - 1):.1f}%)"
        )


@dataclass(slots=True)
class RunComparison:
    """Result of aligning two runs segment by segment.

    ``a`` is the reference run, ``b`` the candidate.  All per-rank
    arrays are ordered by the common rank list ``ranks``.
    """

    ranks: list[int]
    per_rank_total_a: np.ndarray
    per_rank_total_b: np.ndarray
    aligned_segments: int
    regressions: list[SegmentDelta] = field(default_factory=list)
    improvements: list[SegmentDelta] = field(default_factory=list)

    @property
    def total_a(self) -> float:
        return float(self.per_rank_total_a.sum())

    @property
    def total_b(self) -> float:
        return float(self.per_rank_total_b.sum())

    @property
    def speedup(self) -> float:
        """Total-SOS speedup of b over a (>1 means b is faster)."""
        return self.total_a / self.total_b if self.total_b > 0 else np.inf

    def rank_deltas(self) -> np.ndarray:
        return self.per_rank_total_b - self.per_rank_total_a

    def format(self, k: int = 8) -> str:
        lines = [
            f"aligned {self.aligned_segments} segments on "
            f"{len(self.ranks)} common ranks",
            f"total SOS: {self.total_a:.6g}s -> {self.total_b:.6g}s "
            f"(speedup {self.speedup:.3f}x)",
        ]
        if self.regressions:
            lines.append(f"top regressions ({len(self.regressions)} total):")
            lines.extend(f"  {d}" for d in self.regressions[:k])
        if self.improvements:
            lines.append(f"top improvements ({len(self.improvements)} total):")
            lines.extend(f"  {d}" for d in self.improvements[:k])
        if not self.regressions and not self.improvements:
            lines.append("no material per-segment differences")
        return "\n".join(lines)


def compare_analyses(
    a: VariationAnalysis,
    b: VariationAnalysis,
    min_relative_delta: float = 0.25,
    min_absolute_delta: float = 0.0,
    max_findings: int = 100,
) -> RunComparison:
    """Align two analyses by (rank, segment index) and diff SOS-times.

    Both analyses should segment by the same function name; a mismatch
    raises, because comparing segments of different granularity is
    meaningless.

    Parameters
    ----------
    min_relative_delta:
        A segment pair is reported when the SOS changes by at least
        this fraction (and ``min_absolute_delta`` seconds).
    """
    if a.dominant_name != b.dominant_name:
        raise ValueError(
            f"runs segmented by different functions: {a.dominant_name!r} "
            f"vs {b.dominant_name!r}; pin one with at_function()"
        )
    common = sorted(set(a.sos.ranks) & set(b.sos.ranks))
    if not common:
        raise ValueError("runs share no ranks")

    totals_a = []
    totals_b = []
    regressions: list[SegmentDelta] = []
    improvements: list[SegmentDelta] = []
    aligned = 0
    for rank in common:
        sos_a = a.sos[rank].sos
        sos_b = b.sos[rank].sos
        totals_a.append(float(sos_a.sum()))
        totals_b.append(float(sos_b.sum()))
        n = min(len(sos_a), len(sos_b))
        aligned += n
        if n == 0:
            continue
        va, vb = sos_a[:n], sos_b[:n]
        delta = vb - va
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = np.where(va > 0, np.abs(delta) / va, np.inf)
        material = (rel >= min_relative_delta) & (
            np.abs(delta) >= min_absolute_delta
        )
        for idx in np.flatnonzero(material):
            record = SegmentDelta(
                rank=rank,
                segment_index=int(idx),
                sos_a=float(va[idx]),
                sos_b=float(vb[idx]),
            )
            (regressions if record.delta > 0 else improvements).append(record)

    regressions.sort(key=lambda d: -d.delta)
    improvements.sort(key=lambda d: d.delta)
    return RunComparison(
        ranks=common,
        per_rank_total_a=np.asarray(totals_a),
        per_rank_total_b=np.asarray(totals_b),
        aligned_segments=aligned,
        regressions=regressions[:max_findings],
        improvements=improvements[:max_findings],
    )


def compare_traces(
    trace_a,
    trace_b,
    config: AnalysisConfig | None = None,
    dominant: str | None = None,
    cache_dir=None,
    parallel: bool | int | None = None,
    session_a=None,
    session_b=None,
    shards: int | None = None,
    max_memory_mb: float | None = None,
    **kwargs,
) -> RunComparison:
    """Analyze two traces and compare them.

    ``dominant`` pins both segmentations to the named function; by
    default each trace's own selection is used (and must agree).  Each
    trace gets its own :class:`~repro.core.session.AnalysisSession`;
    with a shared ``cache_dir`` the reference run's artifacts persist,
    so re-comparing against new candidates replays only the new trace.

    Pre-built sessions may be passed via ``session_a``/``session_b``
    (their trace wins; the CLI uses this to run sharded comparisons
    without materialising either trace in the parent process), and
    ``shards``/``max_memory_mb`` forward to the sharded engine when
    the sessions are constructed here.
    """
    from .session import AnalysisSession

    if session_a is None:
        session_a = AnalysisSession(
            trace_a, config=config, cache_dir=cache_dir, parallel=parallel,
            shards=shards, max_memory_mb=max_memory_mb,
        )
    if session_b is None:
        session_b = AnalysisSession(
            trace_b, config=config, cache_dir=cache_dir, parallel=parallel,
            shards=shards, max_memory_mb=max_memory_mb,
        )
    a = session_a.analysis(function=dominant)
    b = session_b.analysis(function=dominant)
    return compare_analyses(a, b, **kwargs)
