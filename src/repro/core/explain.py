"""Segment drill-down: what did a hot segment actually spend time on?

The paper ends each case study with "focused subsequent analysis can
... reveal the cause" — the analyst zooms into the flagged spot and
reads the breakdown.  :func:`explain_segment` automates that reading:
for one (rank, segment) it reports the exclusive-time breakdown by
region, the synchronization split, counter rates, and how each number
compares to the same segment index on the other ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..trace.definitions import MetricMode
from .metrics import metric_series
from .pipeline import VariationAnalysis

__all__ = ["RegionShare", "SegmentExplanation", "explain_segment"]


@dataclass(frozen=True, slots=True)
class RegionShare:
    """Exclusive time of one region inside one segment."""

    name: str
    exclusive: float
    share: float  # of the segment duration
    count: int
    #: Median exclusive time the same region takes in this segment
    #: index on the other ranks (NaN when absent elsewhere).
    typical_elsewhere: float

    @property
    def excess(self) -> float:
        """Seconds above typical (0 when at or below typical)."""
        if not np.isfinite(self.typical_elsewhere):
            return 0.0
        return max(self.exclusive - self.typical_elsewhere, 0.0)


@dataclass(slots=True)
class SegmentExplanation:
    """Complete breakdown of one segment."""

    rank: int
    segment_index: int
    t_start: float
    t_stop: float
    duration: float
    sync_time: float
    sos: float
    regions: list[RegionShare] = field(default_factory=list)
    counter_rates: dict[str, float] = field(default_factory=dict)
    #: Same-counter median rate across the other ranks' segments.
    typical_counter_rates: dict[str, float] = field(default_factory=dict)

    def dominant_excess(self) -> RegionShare | None:
        """The region contributing the most time above typical."""
        candidates = [r for r in self.regions if r.excess > 0]
        return max(candidates, key=lambda r: r.excess, default=None)

    def format(self, k: int = 8) -> str:
        lines = [
            f"segment {self.segment_index} on rank {self.rank} "
            f"[{self.t_start:.6g}s, {self.t_stop:.6g}s]",
            f"  duration {self.duration:.6g}s = SOS {self.sos:.6g}s "
            f"+ sync {self.sync_time:.6g}s",
            f"  {'region':<28}{'excl':>12}{'share':>8}{'typical':>12}",
        ]
        for r in self.regions[:k]:
            typical = (
                f"{r.typical_elsewhere:.4g}"
                if np.isfinite(r.typical_elsewhere)
                else "n/a"
            )
            lines.append(
                f"  {r.name:<28}{r.exclusive:>12.6g}{100 * r.share:>7.1f}%"
                f"{typical:>12}"
            )
        for name, rate in self.counter_rates.items():
            typical = self.typical_counter_rates.get(name, np.nan)
            note = (
                f" (typical {typical:.4g})" if np.isfinite(typical) else ""
            )
            lines.append(f"  counter {name}: {rate:.4g}/s{note}")
        culprit = self.dominant_excess()
        if culprit is not None:
            lines.append(
                f"  -> {culprit.name!r} runs {culprit.excess:.6g}s above "
                "typical; focus there"
            )
        return "\n".join(lines)


def _segment_region_breakdown(
    analysis: VariationAnalysis, rank: int, index: int
) -> dict[int, tuple[float, int]]:
    """region id → (exclusive seconds, count) inside the segment."""
    table = analysis.profile.tables[rank]
    seg = analysis.segmentation[rank]
    t0 = float(seg.t_start[index])
    t1 = float(seg.t_stop[index])
    inside = (table.t_enter >= t0) & (table.t_leave <= t1)
    out: dict[int, tuple[float, int]] = {}
    regions = table.region[inside]
    exclusive = table.exclusive[inside]
    for region in np.unique(regions):
        mask = regions == region
        out[int(region)] = (float(exclusive[mask].sum()), int(mask.sum()))
    return out


def explain_segment(
    analysis: VariationAnalysis,
    rank: int,
    segment_index: int,
    peer_sample: int = 16,
) -> SegmentExplanation:
    """Break one segment down by region and counters.

    ``peer_sample`` bounds how many other ranks are consulted for the
    "typical" baselines (median over that sample).
    """
    seg = analysis.segmentation[rank]
    if not 0 <= segment_index < len(seg):
        raise IndexError(
            f"rank {rank} has {len(seg)} segments; no index {segment_index}"
        )
    sos = analysis.sos[rank]
    t0 = float(seg.t_start[segment_index])
    t1 = float(seg.t_stop[segment_index])
    duration = t1 - t0

    breakdown = _segment_region_breakdown(analysis, rank, segment_index)

    # Typical values: same segment index on a sample of other ranks.
    peers = [r for r in analysis.sos.ranks if r != rank][:peer_sample]
    peer_breakdowns = [
        _segment_region_breakdown(analysis, peer, segment_index)
        for peer in peers
        if segment_index < len(analysis.segmentation[peer])
    ]

    regions = []
    trace = analysis.trace
    for region_id, (exclusive, count) in sorted(
        breakdown.items(), key=lambda kv: -kv[1][0]
    ):
        peer_values = [
            pb[region_id][0] for pb in peer_breakdowns if region_id in pb
        ]
        typical = float(np.median(peer_values)) if peer_values else np.nan
        regions.append(
            RegionShare(
                name=trace.regions[region_id].name,
                exclusive=exclusive,
                share=exclusive / duration if duration > 0 else 0.0,
                count=count,
                typical_elsewhere=typical,
            )
        )

    explanation = SegmentExplanation(
        rank=rank,
        segment_index=segment_index,
        t_start=t0,
        t_stop=t1,
        duration=duration,
        sync_time=float(sos.sync_time[segment_index]),
        sos=float(sos.sos[segment_index]),
        regions=regions,
    )

    # Counter rates inside the segment vs. peers.
    for metric in trace.metrics:
        if metric.mode != MetricMode.ACCUMULATED:
            continue
        series = metric_series(trace, metric.id)
        own = series.get(rank)
        if own is None or len(own) == 0 or duration <= 0:
            continue
        explanation.counter_rates[metric.name] = own.delta(t0, t1) / duration
        peer_rates = []
        for peer in peers:
            ps = series.get(peer)
            pseg = analysis.segmentation[peer]
            if ps is None or len(ps) == 0 or segment_index >= len(pseg):
                continue
            pt0 = float(pseg.t_start[segment_index])
            pt1 = float(pseg.t_stop[segment_index])
            if pt1 > pt0:
                peer_rates.append(ps.delta(pt0, pt1) / (pt1 - pt0))
        if peer_rates:
            explanation.typical_counter_rates[metric.name] = float(
                np.median(peer_rates)
            )
    return explanation
