"""Measurement layer: instrument Python code into analysable traces."""

from .clock import Clock, ManualClock, WallClock
from .measurement import Measurement
from .recorder import Recorder

__all__ = ["Clock", "ManualClock", "Measurement", "Recorder", "WallClock"]
