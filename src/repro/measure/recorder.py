"""Per-process event recorder: regions, counters, messages.

The write-side API application code interacts with — the Score-P
equivalent of the per-location measurement core.  Regions open via
context manager or decorator; counters accumulate and emit METRIC
events; explicit message records support communication bookkeeping.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Callable

from ..trace.builder import ProcessBuilder
from ..trace.definitions import MetricMode, Paradigm, RegionRole
from .clock import Clock

__all__ = ["Recorder"]


class Recorder:
    """Event recorder for one logical process.

    Obtained from :class:`repro.measure.measurement.Measurement`; not
    constructed directly.  All methods stamp events with the shared
    measurement clock.
    """

    def __init__(self, builder: ProcessBuilder, clock: Clock, measurement) -> None:
        self._builder = builder
        self._clock = clock
        self._measurement = measurement
        self._counters: dict[str, float] = {}

    @property
    def rank(self) -> int:
        return self._builder.location.id

    @property
    def depth(self) -> int:
        """Current region nesting depth."""
        return self._builder.depth

    # -- regions ----------------------------------------------------------

    def enter(self, name: str, paradigm: Paradigm = Paradigm.USER,
              role: RegionRole | None = None) -> None:
        """Enter a region explicitly (prefer :meth:`region`)."""
        region_id = self._measurement.region(name, paradigm=paradigm, role=role)
        self._builder.enter(self._clock.now(), region_id)

    def leave(self, name: str | None = None) -> None:
        """Leave the innermost region (name checked when given)."""
        region_id = (
            None if name is None else self._measurement.region(name)
        )
        self._builder.leave(self._clock.now(), region_id)

    @contextmanager
    def region(self, name: str, paradigm: Paradigm = Paradigm.USER,
               role: RegionRole | None = None):
        """Context manager recording one region invocation.

        The region is left even when the body raises, so measured
        applications that recover from exceptions still produce
        well-formed traces.
        """
        self.enter(name, paradigm=paradigm, role=role)
        try:
            yield self
        finally:
            self.leave(name)

    def instrument(
        self, func: Callable | None = None, *, name: str | None = None
    ) -> Callable:
        """Decorator instrumenting every call of ``func`` as a region.

        ::

            rec = measurement.process(0)

            @rec.instrument
            def solve(n):
                ...
        """

        def wrap(f: Callable) -> Callable:
            region_name = name or f.__name__

            @functools.wraps(f)
            def wrapper(*args, **kwargs):
                with self.region(region_name):
                    return f(*args, **kwargs)

            return wrapper

        if func is not None:
            return wrap(func)
        return wrap

    # -- counters ----------------------------------------------------------

    def add_counter(self, name: str, increment: float, unit: str = "#") -> float:
        """Accumulate a counter and emit a METRIC sample; returns the total."""
        metric_id = self._measurement.metric(
            name, unit=unit, mode=MetricMode.ACCUMULATED
        )
        value = self._counters.get(name, 0.0) + float(increment)
        self._counters[name] = value
        self._builder.metric(self._clock.now(), metric_id, value)
        return value

    def sample(self, name: str, value: float, unit: str = "#") -> None:
        """Record an absolute metric sample (gauge semantics)."""
        metric_id = self._measurement.metric(
            name, unit=unit, mode=MetricMode.ABSOLUTE
        )
        self._builder.metric(self._clock.now(), metric_id, float(value))

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    # -- messages ----------------------------------------------------------

    def message_send(self, dest: int, size: int = 0, tag: int = 0) -> None:
        """Record an outgoing message event."""
        self._builder.send(self._clock.now(), dest, size, tag)

    def message_recv(self, source: int, size: int = 0, tag: int = 0) -> None:
        """Record an incoming message event."""
        self._builder.recv(self._clock.now(), source, size, tag)
