"""Measurement session: Score-P-like runtime for Python applications.

A :class:`Measurement` owns the shared clock, the definition
registries and one :class:`~repro.measure.recorder.Recorder` per
logical process (an actual thread, a worker index, or any unit the
application calls a processing element).  ``finish()`` freezes the
collected events into a standard :class:`~repro.trace.trace.Trace`
that the full analysis/visualization stack consumes — instrumented
Python programs and simulated MPI runs are analysed identically.
"""

from __future__ import annotations

import threading
from typing import Mapping

from ..trace.builder import TraceBuilder
from ..trace.definitions import MetricMode, Paradigm, RegionRole
from ..trace.trace import Trace
from .clock import Clock, WallClock
from .recorder import Recorder

__all__ = ["Measurement"]


class Measurement:
    """An open measurement session.

    Parameters
    ----------
    name:
        Trace name.
    clock:
        Shared time source (default: monotonic wall clock).
    attributes:
        Run metadata stored in the trace.

    Thread safety: definition registration is locked; each
    :class:`Recorder` must be used by one thread at a time (the usual
    per-location constraint of measurement systems).
    """

    def __init__(
        self,
        name: str = "measurement",
        clock: Clock | None = None,
        attributes: Mapping[str, str] | None = None,
    ) -> None:
        self.clock = clock if clock is not None else WallClock()
        self._builder = TraceBuilder(name=name, attributes=dict(attributes or {}))
        self._recorders: dict[int, Recorder] = {}
        self._threads: dict[int, int] = {}
        self._lock = threading.Lock()
        self._finished = False

    # -- definitions (thread-safe) ------------------------------------------

    def region(
        self,
        name: str,
        paradigm: Paradigm = Paradigm.USER,
        role: RegionRole | None = None,
    ) -> int:
        with self._lock:
            return self._builder.region(name, paradigm=paradigm, role=role)

    def metric(
        self,
        name: str,
        unit: str = "#",
        mode: MetricMode = MetricMode.ACCUMULATED,
    ) -> int:
        with self._lock:
            return self._builder.metric(name, unit=unit, mode=mode)

    # -- processes ----------------------------------------------------------

    def process(
        self, rank: int, name: str | None = None, clock: Clock | None = None
    ) -> Recorder:
        """Recorder for the logical process ``rank`` (created lazily).

        ``clock`` overrides the measurement-wide clock for this
        location — useful for deterministic tests and for simulating
        concurrent processes from one driver thread (each location's
        timestamps only need to be monotonic *per location*).
        """
        self._check_open()
        with self._lock:
            recorder = self._recorders.get(rank)
            if recorder is None:
                builder = self._builder.process(rank, name=name)
                recorder = Recorder(builder, clock or self.clock, self)
                self._recorders[rank] = recorder
            return recorder

    def thread_process(self) -> Recorder:
        """Recorder bound to the calling thread (auto-assigned rank).

        Threads map to consecutive ranks in first-call order, so a
        thread-pool application gets one event stream per worker.
        """
        self._check_open()
        ident = threading.get_ident()
        with self._lock:
            rank = self._threads.get(ident)
            if rank is None:
                rank = len(self._threads)
                self._threads[ident] = rank
        return self.process(rank, name=f"Thread {rank}")

    @property
    def num_processes(self) -> int:
        return len(self._recorders)

    # -- finalisation ----------------------------------------------------------

    def _check_open(self) -> None:
        if self._finished:
            raise RuntimeError("measurement already finished")

    def finish(self, check_stacks: bool = True) -> Trace:
        """Close the session and return the collected trace."""
        self._check_open()
        self._finished = True
        return self._builder.freeze(check_stacks=check_stacks)

    def __enter__(self) -> "Measurement":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Keep the session open on error so the caller can inspect it;
        # finish() is explicit because it returns the trace.
        pass
