"""Clocks for the measurement layer.

Real measurements use a monotonic wall clock with a common epoch so all
logical processes share a time base; tests and deterministic examples
use a manually advanced clock.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "WallClock", "ManualClock", "RawMonotonicClock"]


class Clock:
    """Interface: :meth:`now` returns seconds since the clock's epoch."""

    def now(self) -> float:
        raise NotImplementedError


class WallClock(Clock):
    """Monotonic wall clock; epoch fixed at construction.

    All processes of one measurement share a single instance, giving a
    globally consistent time base (the simulator equivalent of a
    cluster-wide synchronised clock).
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()

    def now(self) -> float:
        return time.perf_counter() - self._epoch


class RawMonotonicClock(Clock):
    """Monotonic clock *without* a per-instance epoch.

    :class:`WallClock` fixes its epoch at construction, which makes
    timestamps from two processes incomparable (each process constructs
    its own instance).  The raw clock returns ``time.perf_counter()``
    directly — on the platforms we run on that is ``CLOCK_MONOTONIC``,
    which is machine-wide — so readings taken in shard worker processes
    can be merged with the parent's on one time axis.  The
    observability layer (:mod:`repro.obs`) normalises the common offset
    away at export time.
    """

    def now(self) -> float:
        return time.perf_counter()


class ManualClock(Clock):
    """Deterministic clock advanced explicitly by the test/caller."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` (must be non-negative)."""
        if dt < 0:
            raise ValueError("cannot move time backwards")
        self._now += dt
        return self._now

    def set(self, t: float) -> None:
        """Jump to absolute time ``t`` (must not move backwards)."""
        if t < self._now:
            raise ValueError("cannot move time backwards")
        self._now = float(t)
