"""Reconstructions of the paper's illustrative figures as traces.

The paper explains its method on three hand-drawn example traces; this
module rebuilds them with the exact timings the text states, so tests
and benchmarks can assert the published numbers:

* :func:`figure1_trace` — inclusive vs. exclusive time (Section IV,
  Figure 1): ``foo`` from t=0 to t=6 with a ``bar`` sub-call from t=2
  to t=4, giving inclusive 6 and exclusive 4.
* :func:`figure2_trace` — dominant-function selection (Figure 2):
  three processes running ``main``/``i``/``a``/``b``/``c`` for 18 time
  units; ``main`` has aggregated inclusive time 54 but only p=3
  invocations; ``a`` has aggregated inclusive time 36 with 9
  invocations and is the dominant function.
* :func:`figure3_trace` — SOS-time computation (Figure 3): three
  iterations of ``a`` containing ``calc`` + an ``MPI`` barrier.  The
  first iteration lasts 6 with calc times 5/3/1 on processes 0/1/2,
  so the SOS-times 5/3/1 expose the imbalance the plain durations
  (6/6/6) hide.  Where the figure's exact values are ambiguous in the
  source text, the reconstruction keeps the properties the paper
  states: first iteration duration 6, middle duration 3, and
  first-iteration SOS of 5 vs. 1 for processes 0 vs. 2.
"""

from __future__ import annotations

from .trace.builder import TraceBuilder
from .trace.definitions import Paradigm, RegionRole
from .trace.trace import Trace

__all__ = [
    "figure1_trace",
    "figure2_trace",
    "figure3_trace",
    "FIGURE3_CALC",
    "FIGURE3_DURATIONS",
]


def figure1_trace() -> Trace:
    """Figure 1: one process, ``foo`` [0, 6] calling ``bar`` [2, 4]."""
    tb = TraceBuilder(name="paper-figure-1")
    tb.region("foo")
    tb.region("bar")
    p = tb.process(0)
    p.enter(0.0, "foo")
    p.call(2.0, 4.0, "bar")
    p.leave(6.0, "foo")
    return tb.freeze()


def figure2_trace() -> Trace:
    """Figure 2: the dominant-function selection example.

    Three processes, each running for 18 time units::

        main [0, 18]
          i [0, 1]
          a [1, 5]    with sub-calls b [1.5, 2] and b [2.5, 3]
          a [7, 11]   with sub-calls c [7.5, 8] and c [8.5, 9]
          a [13, 17]

    Aggregated inclusive times: main 3x18 = 54, a 9x4 = 36, i 3,
    b 3, c 3.  ``main`` fails the 2p = 6 invocation criterion
    (3 invocations); ``a`` passes (9 invocations) and wins.
    """
    tb = TraceBuilder(name="paper-figure-2")
    for name in ("main", "i", "a", "b", "c"):
        tb.region(name)
    for rank in range(3):
        p = tb.process(rank)
        p.enter(0.0, "main")
        p.call(0.0, 1.0, "i")
        p.enter(1.0, "a")
        p.call(1.5, 2.0, "b")
        p.call(2.5, 3.0, "b")
        p.leave(5.0, "a")
        p.enter(7.0, "a")
        p.call(7.5, 8.0, "c")
        p.call(8.5, 9.0, "c")
        p.leave(11.0, "a")
        p.call(13.0, 17.0, "a")
        p.leave(18.0, "main")
    return tb.freeze()


#: calc durations per iteration and process used by :func:`figure3_trace`:
#: ``FIGURE3_CALC[iteration][process]``.
FIGURE3_CALC = (
    (5.0, 3.0, 1.0),
    (2.0, 2.0, 2.0),
    (4.0, 2.0, 1.0),
)

#: Resulting segment (iteration) durations, identical on every process.
FIGURE3_DURATIONS = (6.0, 3.0, 5.0)


def figure3_trace() -> Trace:
    """Figure 3: the SOS-time example with barrier-style MPI waits.

    Each iteration is one invocation of ``a`` containing ``calc``
    followed by a synchronizing ``MPI`` call; all processes leave the
    MPI call together when the slowest finishes (plus the barrier
    cost of 1 in iteration 2).  Plain segment durations are identical
    across processes (6 / 3 / 5) while the SOS-times reproduce the
    hidden imbalance (first iteration: 5 / 3 / 1).
    """
    tb = TraceBuilder(name="paper-figure-3")
    tb.region("main")
    tb.region("a")
    tb.region("calc")
    tb.region("MPI", paradigm=Paradigm.MPI, role=RegionRole.SYNCHRONIZATION)

    t_iter_start = (0.0, 6.0, 9.0)
    for rank in range(3):
        p = tb.process(rank)
        p.enter(0.0, "main")
        for it, t0 in enumerate(t_iter_start):
            duration = FIGURE3_DURATIONS[it]
            calc = FIGURE3_CALC[it][rank]
            p.enter(t0, "a")
            p.call(t0, t0 + calc, "calc")
            p.call(t0 + calc, t0 + duration, "MPI")
            p.leave(t0 + duration, "a")
        p.leave(14.0, "main")
    return tb.freeze()
