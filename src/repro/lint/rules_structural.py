"""Built-in structural rules (TL0xx): well-formedness of event streams.

These subsume the legacy :func:`repro.trace.validate.validate_trace`
checks — each rule that replaces a legacy check declares the old issue
code as ``legacy_code`` so the compatibility shim can translate
diagnostics back.  Rules whose ``legacy_code`` is ``None`` (duplicate
events, negative timestamps) are new, warning-severity checks that the
old validator never performed.

Every check function receives a :class:`~repro.lint.engine.RankView`
and yields :class:`~repro.lint.registry.Finding` objects.  The view
guards against broken inputs, so rules stay crash-free on exactly the
traces they are meant to reject.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..trace.events import EventKind
from .model import Severity
from .registry import Finding, register_rule

__all__: list[str] = []


@register_rule(
    "TL001",
    category="structural",
    scope="rank",
    severity=Severity.ERROR,
    legacy_code="unmatched-leave",
)
def unmatched_leave(view) -> Iterator[Finding]:
    """Leave event with no region open on the stack.

    A LEAVE that arrives while the region stack is empty means the
    measurement dropped the matching ENTER (typically a lost buffer at
    the start of the stream); stack replay over such a stream is
    undefined.
    """
    if view.underflow_index >= 0:
        i = view.underflow_index
        yield Finding(
            f"leave at event {i} with empty stack",
            position=i,
            time=view.time_at(i),
        )


@register_rule(
    "TL002",
    category="structural",
    scope="rank",
    severity=Severity.ERROR,
    legacy_code="unclosed-regions",
)
def unclosed_regions(view) -> Iterator[Finding]:
    """Regions still open at the end of the stream.

    Enter/leave events must balance over the whole stream; leftover
    open regions usually mean the trace was truncated mid-run.
    """
    if view.open_count:
        yield Finding(
            f"{view.open_count} regions still open at end of stream",
            position=view.first_unclosed,
            time=view.time_at(view.first_unclosed),
        )


@register_rule(
    "TL003",
    category="structural",
    scope="rank",
    severity=Severity.ERROR,
    legacy_code="mismatched-leave",
)
def mismatched_leave(view) -> Iterator[Finding]:
    """Leave references a different region than the one open.

    Properly nested streams alternate enter/leave per stack frame; a
    leave for region B while region A is open indicates interleaved or
    corrupted enter/leave pairs.
    """
    if not view.balanced or not len(view.inv_region):
        return
    mismatched = view.inv_region != view.inv_leave_region
    if np.any(mismatched):
        first = int(np.argmax(mismatched))
        i = int(view.inv_leave_index[first])
        yield Finding(
            f"event {i} leaves region {int(view.inv_leave_region[first])} "
            f"but region {int(view.inv_region[first])} is open",
            position=i,
            time=view.time_at(i),
        )


@register_rule(
    "TL004",
    category="structural",
    scope="rank",
    severity=Severity.ERROR,
    legacy_code="time-order",
)
def time_order(view) -> Iterator[Finding]:
    """Timestamps are not sorted in non-decreasing order.

    Every analysis pass (binary-search windows, segment accumulation,
    replay) assumes time-sorted streams; an unsorted stream makes all
    downstream positions meaningless.
    """
    if not view.sorted:
        i = view.first_unsorted
        yield Finding(
            "timestamps not sorted",
            position=i,
            time=view.time_at(i),
        )


@register_rule(
    "TL005",
    category="structural",
    scope="rank",
    severity=Severity.WARNING,
    columns=("size", "tag", "value"),
)
def duplicate_events(view) -> Iterator[Finding]:
    """Consecutive events are exact duplicates.

    Two adjacent events identical in every column (time, kind, ref,
    partner, size, tag, value) almost always come from a measurement
    buffer flushed twice; they double-count durations and message
    volumes.
    """
    ev = view.events
    if view.n < 2 or not view.sorted:
        return
    same = np.ones(view.n - 1, dtype=bool)
    for name in ("time", "kind", "ref", "partner", "size", "tag", "value"):
        col = getattr(ev, name)
        same &= col[1:] == col[:-1]
    if np.any(same):
        first = int(np.argmax(same)) + 1
        yield Finding(
            f"{int(np.sum(same))} events are exact duplicates of their "
            f"predecessor (first at event {first})",
            position=first,
            time=view.time_at(first),
        )


@register_rule(
    "TL006",
    category="structural",
    scope="rank",
    severity=Severity.WARNING,
)
def negative_time(view) -> Iterator[Finding]:
    """Events timestamped before the trace origin (t < 0).

    Trace time starts at zero; negative timestamps indicate clock
    correction gone wrong or an integer-underflow in the writer, and
    they land events outside the trace extent every view assumes.
    """
    neg = view.events.time < 0
    if np.any(neg):
        first = int(np.argmax(neg))
        yield Finding(
            f"{int(np.sum(neg))} events before t=0 (first at event {first})",
            position=first,
            time=view.time_at(first),
        )


@register_rule(
    "TL007",
    category="structural",
    scope="rank",
    severity=Severity.ERROR,
    legacy_code="bad-region-ref",
)
def bad_region_ref(view) -> Iterator[Finding]:
    """Enter/leave references a region id missing from the definitions.

    Orphan region references make profile accumulation impossible —
    there is no name, paradigm or role to attribute the time to.
    """
    if np.any(view.bad_region):
        first = int(np.argmax(view.bad_region))
        yield Finding(
            f"event {first} references undefined region "
            f"{int(view.events.ref[first])}",
            position=first,
            time=view.time_at(first),
        )


@register_rule(
    "TL008",
    category="structural",
    scope="rank",
    severity=Severity.ERROR,
    legacy_code="bad-metric-ref",
)
def bad_metric_ref(view) -> Iterator[Finding]:
    """Metric sample references an undefined metric id.

    Counter analysis indexes metric samples by definition id; a
    dangling id would silently drop or misattribute samples.
    """
    if np.any(view.bad_metric):
        first = int(np.argmax(view.bad_metric))
        yield Finding(
            f"event {first} references undefined metric "
            f"{int(view.events.ref[first])}",
            position=first,
            time=view.time_at(first),
        )


@register_rule(
    "TL009",
    category="structural",
    scope="rank",
    severity=Severity.ERROR,
    legacy_code="bad-partner",
)
def bad_partner(view) -> Iterator[Finding]:
    """Message event references an unknown partner location.

    Send/receive partners must resolve against the trace's rank set
    (the *global* set under sharding, so cross-shard messages are not
    misflagged).  A partner of -1 on a RECV is the wildcard-receive
    (``MPI_ANY_SOURCE``) convention and is legal — the TL302 race rule
    analyzes those — but -1 on a SEND has no meaning and stays an
    error.
    """
    ev = view.events
    if not np.any(view.p2p_mask):
        return
    recv_mask = ev.kind == np.uint8(EventKind.RECV)
    checked = view.p2p_mask & ~(recv_mask & (ev.partner == -1))
    if not np.any(checked):
        return
    partners = ev.partner[checked]
    known = view.shared.known_ranks
    unknown = sorted(
        int(p) for p in np.unique(partners) if int(p) not in known
    )
    if unknown:
        bad = checked & np.isin(ev.partner, unknown)
        first = int(np.argmax(bad))
        yield Finding(
            f"messages reference unknown locations {unknown}",
            position=first,
            time=view.time_at(first),
        )


@register_rule(
    "TL010",
    category="structural",
    scope="rank",
    severity=Severity.ERROR,
    legacy_code="empty-stream",
)
def empty_stream(view) -> Iterator[Finding]:
    """Location defined but carries no events.

    Usually a measurement failure on that rank; suppressed via
    ``allow_empty_streams`` for legitimately filtered traces.
    """
    if view.n == 0 and not view.shared.config.allow_empty_streams:
        yield Finding("location has no events")


@register_rule(
    "TL011",
    category="structural",
    scope="trace",
    severity=Severity.ERROR,
    legacy_code="no-processes",
)
def no_processes(tview) -> Iterator[Finding]:
    """Trace defines no locations at all.

    Without processes there is nothing to analyse; this is the
    emptiest possible trace pathology.
    """
    if tview.shared.num_processes == 0 and not tview.summaries:
        yield Finding("trace has no locations")
