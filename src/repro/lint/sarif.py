"""SARIF 2.1.0 rendering of a :class:`~repro.lint.model.LintReport`.

SARIF (Static Analysis Results Interchange Format) is the common
output format of static analyzers, consumed by code-scanning UIs and
CI annotation services.  The mapping here is deliberately minimal but
schema-valid: one run, one tool driver carrying the full rule catalog
(so viewers can show help text for every rule, fired or not), one
result per diagnostic.

Trace diagnostics do not live in source files, so locations point at
the trace artifact (``source`` when linting a path, the trace name
otherwise) and carry the event stream coordinates — rank, event
index, timestamp — in ``properties`` where file/line would normally
go.  ``logicalLocations`` names the rank so GitHub-style viewers still
group findings sensibly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .registry import all_rules

if TYPE_CHECKING:  # pragma: no cover
    from .model import LintReport

__all__ = ["sarif_dict", "SARIF_VERSION", "SARIF_SCHEMA"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Tool version reported in the SARIF driver; bump on rule changes.
TOOL_VERSION = "1.1.0"


def _rule_descriptor(rule) -> dict[str, Any]:
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.short_help},
        "fullDescription": {"text": rule.full_help},
        "defaultConfiguration": {"level": rule.default_severity.sarif_level},
        "properties": {
            "category": rule.category,
            "scope": rule.scope,
            **(
                {"legacyCode": rule.legacy_code}
                if rule.legacy_code is not None
                else {}
            ),
        },
    }


def sarif_dict(report: "LintReport") -> dict[str, Any]:
    """Render a report as a SARIF 2.1.0 log object (a plain dict)."""
    rules = all_rules()
    rule_index = {rule.code: i for i, rule in enumerate(rules)}
    artifact = report.source or report.trace_name or "trace"

    results: list[dict[str, Any]] = []
    for diag in report.diagnostics:
        properties: dict[str, Any] = {"rank": diag.rank}
        if diag.position >= 0:
            properties["event"] = diag.position
        if diag.time is not None:
            properties["time"] = diag.time
        location: dict[str, Any] = {
            "physicalLocation": {
                "artifactLocation": {"uri": artifact},
            },
            "logicalLocations": [
                {
                    "name": f"rank {diag.rank}" if diag.rank >= 0 else "trace",
                    "kind": "process",
                }
            ],
        }
        result: dict[str, Any] = {
            "ruleId": diag.code,
            "level": diag.severity.sarif_level,
            "message": {"text": diag.message},
            "locations": [location],
            "properties": properties,
        }
        if diag.code in rule_index:
            result["ruleIndex"] = rule_index[diag.code]
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "tracelint",
                        "version": TOOL_VERSION,
                        "informationUri": (
                            "https://example.invalid/repro/docs/lint.md"
                        ),
                        "rules": [_rule_descriptor(r) for r in rules],
                    }
                },
                "artifacts": [{"location": {"uri": artifact}}],
                "results": results,
                "properties": {
                    "trace": report.trace_name,
                    "ranks": report.num_ranks,
                    "events": report.num_events,
                    "rulesRun": list(report.rules_run),
                },
            }
        ],
    }
