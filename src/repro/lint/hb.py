"""Cross-rank happens-before analysis: the message-match graph.

The TL3xx rule family answers *cross-rank* causality questions —
deadlock cycles, wildcard-receive races, collective divergence, orphan
messages, wait-chain origins — statically, without replaying the
trace.  The machinery here is split to fit the sharded lint engine:

1. :func:`extract_match_records` runs *per rank* (inside shard
   workers, over lazily projected columns): it pulls every SEND/RECV
   with its tag, payload size and innermost enclosing region, plus the
   rank's collective-invocation sequence, into a few flat NumPy arrays
   (:class:`MatchRecords`, picklable, a few bytes per message).
2. :meth:`MatchGraph.from_records` runs once in the parent: it merges
   the per-rank records and matches point-to-point messages by
   ``(src, dst, tag)`` queue order — the k-th send on a channel pairs
   with the k-th receive, exactly MPI's non-overtaking rule — and
   aligns collectives by per-communicator epoch index.  The trace has
   a single global communicator (the event model carries no ``comm``
   column), so epoch k is simply each rank's k-th collective call.
3. :class:`VectorClockEngine` sweeps the graph with per-rank vector
   clocks when a rule needs true concurrency answers (today: wildcard
   races).  It is built lazily — healthy traces contain no wildcard
   receives and never pay for it.

Because step 1 is strictly per-rank, the records are identical no
matter how ranks are grouped into shards, and the global pass in step
2 sees the complete trace — cross-rank rules can never silently run on
a partial view (the engine refuses to finalize hb rules without
records).

The graph also powers ``repro deps``: :func:`graph_to_dot` /
:func:`graph_to_json_dict` export the aggregated communication
topology for external viewers (ROADMAP item 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

import numpy as np

from ..trace.events import EventKind

if TYPE_CHECKING:  # pragma: no cover
    from .engine import LintShared, RankView

__all__ = [
    "COLLECTIVE_NAMES",
    "HB_COLUMNS",
    "MatchRecords",
    "MatchGraph",
    "HBView",
    "VectorClockEngine",
    "collective_region_mask",
    "extract_match_records",
    "match_records_for_trace",
    "match_graph_for_trace",
    "graph_to_dot",
    "graph_to_json_dict",
]

#: MPI operations with collective semantics: every rank of the
#: communicator must participate, in the same order.  (Shared with the
#: TL102 per-count check in :mod:`repro.lint.rules_semantic`.)
COLLECTIVE_NAMES = frozenset(
    {
        "MPI_Barrier",
        "MPI_Allreduce",
        "MPI_Reduce",
        "MPI_Bcast",
        "MPI_Alltoall",
        "MPI_Alltoallv",
        "MPI_Allgather",
        "MPI_Allgatherv",
        "MPI_Gather",
        "MPI_Scatter",
        "MPI_Win_fence",
    }
)

#: Event columns match-record extraction reads beyond the engine's
#: view baseline (time/kind/ref/partner).
HB_COLUMNS = ("size", "tag")

_I32 = np.int32
_I64 = np.int64
_F64 = np.float64


def collective_region_mask(shared: "LintShared") -> np.ndarray:
    """Boolean per-region mask of MPI-paradigm collective operations."""
    from ..trace.definitions import Paradigm

    if shared.num_regions == 0:
        return np.zeros(0, dtype=bool)
    named = np.fromiter(
        (name in COLLECTIVE_NAMES for name in shared.region_names),
        dtype=bool,
        count=shared.num_regions,
    )
    return named & (shared.region_paradigm == np.int8(int(Paradigm.MPI)))


# ---------------------------------------------------------------------------
# Phase 1: per-rank extraction (runs inside shard workers)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MatchRecords:
    """One rank's message-relevant events, flattened (picklable).

    ``ok`` is False when the stream was unsorted or unbalanced —
    extraction is skipped there (the structural TL0xx rules already
    reject such streams) and the assembled graph is marked incomplete,
    which mutes every TL3xx rule rather than reporting phantom orphans.
    """

    rank: int
    n_events: int
    ok: bool
    t_first: float
    t_last: float
    #: SEND events, in stream order
    send_dst: np.ndarray  # int32
    send_tag: np.ndarray  # int32
    send_pos: np.ndarray  # int64 absolute event index
    send_time: np.ndarray  # float64
    send_size: np.ndarray  # int64
    send_region: np.ndarray  # int32 innermost enclosing region (-1 none)
    #: RECV events, in stream order (src == -1 is a wildcard receive)
    recv_src: np.ndarray  # int32
    recv_tag: np.ndarray  # int32
    recv_pos: np.ndarray  # int64
    recv_time: np.ndarray  # float64
    recv_region: np.ndarray  # int32
    recv_wait: np.ndarray  # float64 recv_time - enclosing enter time
    #: collective invocations, in stream order
    coll_ref: np.ndarray  # int32 region id
    coll_pos: np.ndarray  # int64 absolute index of the ENTER
    coll_enter: np.ndarray  # float64
    coll_leave: np.ndarray  # float64

    @classmethod
    def empty(cls, rank: int, n_events: int = 0, ok: bool = True,
              t_first: float = 0.0, t_last: float = 0.0) -> "MatchRecords":
        z32 = np.empty(0, dtype=_I32)
        z64 = np.empty(0, dtype=_I64)
        zf = np.empty(0, dtype=_F64)
        return cls(
            rank=rank, n_events=n_events, ok=ok,
            t_first=t_first, t_last=t_last,
            send_dst=z32, send_tag=z32, send_pos=z64, send_time=zf,
            send_size=z64, send_region=z32,
            recv_src=z32, recv_tag=z32, recv_pos=z64, recv_time=zf,
            recv_region=z32, recv_wait=zf,
            coll_ref=z32, coll_pos=z64, coll_enter=zf, coll_leave=zf,
        )


def _enclosing_frames(
    view: "RankView", pos: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Innermost open region (ref, enter time) for each event position.

    Vectorised over the view's depth profile: the frame open at depth
    ``d`` when event ``p`` executes is the *last* ENTER at frame depth
    ``d`` before ``p`` (any earlier same-depth frame must have closed
    for the depth to return to ``d``).  Loops only over the distinct
    depths present among the queries — nesting is shallow in practice.
    """
    ev = view.events
    n_q = len(pos)
    region = np.full(n_q, -1, dtype=_I32)
    t0 = float(ev.time[0]) if view.n else 0.0
    enter_time = np.full(n_q, t0, dtype=_F64)
    if not n_q or not view.balanced or not len(view.el_idx):
        return region, enter_time
    # j = number of enter/leave events strictly before each query.
    j = np.searchsorted(view.el_idx, pos, side="left")
    depth_at = np.where(j > 0, view.depth_after[np.maximum(j - 1, 0)], 0)
    enter_sel = np.flatnonzero(view.enter_mask[view.el_idx])
    enter_depth = view.depth_after[enter_sel]
    for d in np.unique(depth_at[depth_at > 0]).tolist():
        cand = enter_sel[enter_depth == d]
        q = np.flatnonzero(depth_at == d)
        k = np.searchsorted(cand, j[q], side="left") - 1
        valid = k >= 0
        qi = q[valid]
        abs_enter = view.el_idx[cand[k[valid]]]
        region[qi] = ev.ref[abs_enter]
        enter_time[qi] = ev.time[abs_enter]
    return region, enter_time


def extract_match_records(view: "RankView") -> MatchRecords:
    """Pull one rank's match records out of an existing lint view.

    Reads ``time``/``kind``/``ref``/``partner`` plus the extra
    :data:`HB_COLUMNS`; runs inside shard workers on projected reads.
    """
    ev = view.events
    rank = view.rank
    if view.n == 0:
        return MatchRecords.empty(rank, 0, ok=True)
    t_first = float(ev.time[0])
    t_last = float(ev.time[-1])
    # A stream without any enter/leave events is trivially balanced
    # (the view only computes ``balanced`` when el_idx is non-empty).
    if not view.sorted or (len(view.el_idx) and not view.balanced):
        return MatchRecords.empty(
            rank, view.n, ok=False, t_first=t_first, t_last=t_last
        )
    kind = ev.kind
    send_pos = np.flatnonzero(kind == np.uint8(EventKind.SEND))
    recv_pos = np.flatnonzero(kind == np.uint8(EventKind.RECV))
    p2p_pos = np.concatenate([send_pos, recv_pos])
    enc_region, enc_enter = _enclosing_frames(view, p2p_pos)
    ns = len(send_pos)

    # Collective invocations, in program (enter) order.
    nr = view.shared.num_regions
    coll_mask = collective_region_mask(view.shared)
    if len(view.inv_region) and nr:
        sel = view.inv_valid & coll_mask[np.clip(view.inv_region, 0, nr - 1)]
        idx = np.flatnonzero(sel)
        idx = idx[np.argsort(view.inv_enter_index[idx], kind="stable")]
        coll_pos = view.inv_enter_index[idx].astype(_I64)
        coll_ref = view.inv_region[idx].astype(_I32)
        coll_enter = ev.time[coll_pos].astype(_F64)
        coll_leave = ev.time[view.inv_leave_index[idx]].astype(_F64)
    else:
        coll_pos = np.empty(0, dtype=_I64)
        coll_ref = np.empty(0, dtype=_I32)
        coll_enter = np.empty(0, dtype=_F64)
        coll_leave = np.empty(0, dtype=_F64)

    return MatchRecords(
        rank=rank,
        n_events=view.n,
        ok=True,
        t_first=t_first,
        t_last=t_last,
        send_dst=ev.partner[send_pos].astype(_I32),
        send_tag=ev.tag[send_pos].astype(_I32),
        send_pos=send_pos.astype(_I64),
        send_time=ev.time[send_pos].astype(_F64),
        send_size=ev.size[send_pos].astype(_I64),
        send_region=enc_region[:ns],
        recv_src=ev.partner[recv_pos].astype(_I32),
        recv_tag=ev.tag[recv_pos].astype(_I32),
        recv_pos=recv_pos.astype(_I64),
        recv_time=ev.time[recv_pos].astype(_F64),
        recv_region=enc_region[ns:],
        recv_wait=np.maximum(
            ev.time[recv_pos].astype(_F64) - enc_enter[ns:], 0.0
        ),
        coll_ref=coll_ref,
        coll_pos=coll_pos,
        coll_enter=coll_enter,
        coll_leave=coll_leave,
    )


# ---------------------------------------------------------------------------
# Phase 2: global graph assembly (runs once in the parent)
# ---------------------------------------------------------------------------


def _group_ids(*cols: np.ndarray) -> np.ndarray:
    """Dense group id per row for the tuple key formed by ``cols``."""
    n = len(cols[0])
    if n == 0:
        return np.empty(0, dtype=_I64)
    stacked = np.stack([np.asarray(c, dtype=_I64) for c in cols])
    order = np.lexsort(stacked[::-1])
    srt = stacked[:, order]
    new = np.empty(n, dtype=_I64)
    new[0] = 0
    if n > 1:
        new[1:] = np.any(srt[:, 1:] != srt[:, :-1], axis=0)
    gid = np.empty(n, dtype=_I64)
    # new[0] == 0, so the running sum is already a 0-based dense id.
    gid[order] = np.cumsum(new)
    return gid


def _cumcount(gid: np.ndarray) -> np.ndarray:
    """Occurrence index of each row within its group, in row order."""
    n = len(gid)
    if n == 0:
        return np.empty(0, dtype=_I64)
    order = np.argsort(gid, kind="stable")
    srt = gid[order]
    boundaries = np.flatnonzero(np.diff(srt)) + 1
    starts = np.concatenate([[0], boundaries])
    lengths = np.diff(np.concatenate([starts, [n]]))
    within = np.arange(n, dtype=_I64) - np.repeat(starts, lengths)
    out = np.empty(n, dtype=_I64)
    out[order] = within
    return out


@dataclass
class MatchGraph:
    """Global message-match graph over all ranks' records.

    Flattened send/recv arrays (rank-major, stream order within each
    rank) plus the match relation: ``s_match[i]`` is the recv row the
    i-th send pairs with (-1 unmatched) and vice versa.  Collective
    sequences stay per rank in ``records``.
    """

    ranks: tuple[int, ...]
    num_processes: int
    complete: bool
    t_min: float
    t_max: float
    records: dict[int, MatchRecords]
    # sends (flattened)
    s_rank: np.ndarray
    s_dst: np.ndarray
    s_tag: np.ndarray
    s_pos: np.ndarray
    s_time: np.ndarray
    s_size: np.ndarray
    s_region: np.ndarray
    # recvs (flattened)
    r_rank: np.ndarray
    r_src: np.ndarray
    r_tag: np.ndarray
    r_pos: np.ndarray
    r_time: np.ndarray
    r_region: np.ndarray
    r_wait: np.ndarray
    r_wildcard: np.ndarray  # bool: posted with MPI_ANY_SOURCE
    # match relation
    s_match: np.ndarray
    r_match: np.ndarray

    @property
    def num_sends(self) -> int:
        return len(self.s_rank)

    @property
    def num_recvs(self) -> int:
        return len(self.r_rank)

    @property
    def num_matched(self) -> int:
        return int(np.sum(self.s_match >= 0))

    @property
    def duration(self) -> float:
        return max(self.t_max - self.t_min, 0.0)

    @classmethod
    def from_records(
        cls,
        records: Mapping[int, MatchRecords],
        num_processes: int | None = None,
    ) -> "MatchGraph":
        ranks = tuple(sorted(records))
        recs = [records[r] for r in ranks]
        complete = all(rec.ok for rec in recs)
        active = [rec for rec in recs if rec.n_events]
        t_min = min((rec.t_first for rec in active), default=0.0)
        t_max = max((rec.t_last for rec in active), default=0.0)

        def cat(field: str, dtype) -> np.ndarray:
            parts = [getattr(rec, field) for rec in recs]
            if not parts:
                return np.empty(0, dtype=dtype)
            return np.concatenate(parts).astype(dtype, copy=False)

        s_rank = np.concatenate(
            [np.full(len(rec.send_dst), rec.rank, dtype=_I32) for rec in recs]
        ) if recs else np.empty(0, dtype=_I32)
        r_rank = np.concatenate(
            [np.full(len(rec.recv_src), rec.rank, dtype=_I32) for rec in recs]
        ) if recs else np.empty(0, dtype=_I32)

        graph = cls(
            ranks=ranks,
            num_processes=(
                num_processes if num_processes is not None else len(ranks)
            ),
            complete=complete,
            t_min=float(t_min),
            t_max=float(t_max),
            records=dict(records),
            s_rank=s_rank,
            s_dst=cat("send_dst", _I32),
            s_tag=cat("send_tag", _I32),
            s_pos=cat("send_pos", _I64),
            s_time=cat("send_time", _F64),
            s_size=cat("send_size", _I64),
            s_region=cat("send_region", _I32),
            r_rank=r_rank,
            r_src=cat("recv_src", _I32),
            r_tag=cat("recv_tag", _I32),
            r_pos=cat("recv_pos", _I64),
            r_time=cat("recv_time", _F64),
            r_region=cat("recv_region", _I32),
            r_wait=cat("recv_wait", _F64),
            r_wildcard=np.empty(0, dtype=bool),
            s_match=np.empty(0, dtype=_I64),
            r_match=np.empty(0, dtype=_I64),
        )
        graph.r_wildcard = graph.r_src < 0
        graph._match()
        return graph

    def _match(self) -> None:
        """FIFO-match sends to recvs per (src, dst, tag) channel."""
        ns, nr = len(self.s_rank), len(self.r_rank)
        self.s_match = np.full(ns, -1, dtype=_I64)
        self.r_match = np.full(nr, -1, dtype=_I64)
        if ns == 0 or nr == 0:
            return
        spec = np.flatnonzero(~self.r_wildcard)
        # Joint channel factorization so send and recv rows of the same
        # (src, dst, tag) triple land in the same group.
        chan = _group_ids(
            np.concatenate([self.s_rank[:ns], self.r_src[spec]]),
            np.concatenate([self.s_dst[:ns], self.r_rank[spec]]),
            np.concatenate([self.s_tag[:ns], self.r_tag[spec]]),
        )
        chan_s, chan_r = chan[:ns], chan[ns:]
        # Rows are rank-major + stream-ordered, and every send (recv)
        # of one channel lives on a single rank, so row order IS queue
        # order: the occurrence index within each side is the FIFO
        # sequence number, and the k-th send pairs with the k-th recv.
        code_width = _I64(max(ns, nr) + 1)
        code_s = chan_s * code_width + _cumcount(chan_s)
        code_r = chan_r * code_width + _cumcount(chan_r)
        _, si, ri = np.intersect1d(
            code_s, code_r, assume_unique=True, return_indices=True
        )
        self.s_match[si] = spec[ri]
        self.r_match[spec[ri]] = si

        # Wildcard receives: drain the leftover sends to (dst, tag) in
        # deterministic (time, src, pos) arrival order against the
        # wildcard queue in stream order.  Wildcards are adversarial /
        # debugging territory, so the per-queue Python loop is fine.
        wild = np.flatnonzero(self.r_wildcard)
        if not len(wild):
            return
        queues = sorted(
            set(zip(self.r_rank[wild].tolist(), self.r_tag[wild].tolist()))
        )
        for dst, tag in queues:
            w = wild[(self.r_rank[wild] == dst) & (self.r_tag[wild] == tag)]
            cand = np.flatnonzero(
                (self.s_match < 0) & (self.s_dst == dst) & (self.s_tag == tag)
            )
            order = np.lexsort(
                (self.s_pos[cand], self.s_rank[cand], self.s_time[cand])
            )
            cand = cand[order]
            k = min(len(w), len(cand))
            self.s_match[cand[:k]] = w[:k]
            self.r_match[w[:k]] = cand[:k]

    # -- collective alignment -----------------------------------------

    def collective_sequences(self) -> dict[int, np.ndarray]:
        """Per-rank collective region-id sequences (active ranks only)."""
        return {
            rank: rec.coll_ref
            for rank, rec in sorted(self.records.items())
            if rec.n_events
        }

    def collective_epochs(self) -> int:
        """Number of aligned collective epochs (the longest sequence)."""
        seqs = self.collective_sequences()
        return max((len(s) for s in seqs.values()), default=0)


# ---------------------------------------------------------------------------
# Vector-clock happens-before engine
# ---------------------------------------------------------------------------


class VectorClockEngine:
    """Vector clocks over the match graph's cross-rank operations.

    Ops are each rank's sends, matched receives and collective epochs
    in program order.  The sweep is a worklist fixpoint: an op executes
    once its program-order predecessor has, plus (receives) its matched
    send and (collectives) every participant of the same epoch.  Ops
    that can never become ready — the graph encodes a deadlock — are
    finished in a deterministic degraded pass that ignores remote
    dependencies, so queries still terminate on broken graphs.

    Built lazily by :class:`HBView`: only wildcard-race queries need
    it, and only traces that actually contain wildcard receives (or
    ask via ``repro deps``) pay its O(ops × ranks) cost.
    """

    def __init__(self, graph: MatchGraph) -> None:
        self.graph = graph
        ranks = graph.ranks
        self._rank_index = {rank: i for i, rank in enumerate(ranks)}
        self._nr = len(ranks)
        self.vc_send = np.zeros((graph.num_sends, self._nr), dtype=_I64)
        self.vc_recv = np.zeros((graph.num_recvs, self._nr), dtype=_I64)
        self._send_done = np.zeros(graph.num_sends, dtype=bool)
        self._recv_done = np.zeros(graph.num_recvs, dtype=bool)
        self._sweep()

    def _rank_ops(self) -> dict[int, list[tuple[int, str, int]]]:
        """Per-rank (pos, kind, index) op lists in program order."""
        g = self.graph
        ops: dict[int, list[tuple[int, str, int]]] = {
            rank: [] for rank in g.ranks
        }
        for i in range(g.num_sends):
            ops[int(g.s_rank[i])].append((int(g.s_pos[i]), "s", i))
        for i in range(g.num_recvs):
            ops[int(g.r_rank[i])].append((int(g.r_pos[i]), "r", i))
        for rank, rec in g.records.items():
            for k, pos in enumerate(rec.coll_pos.tolist()):
                ops[rank].append((int(pos), "c", k))
        for rank in ops:
            ops[rank].sort()
        return ops

    def _sweep(self) -> None:
        g = self.graph
        nr = self._nr
        if nr == 0:
            return
        ops = self._rank_ops()
        epochs = g.collective_epochs()
        epoch_members: list[list[int]] = [[] for _ in range(epochs)]
        for rank, rec in g.records.items():
            for k in range(len(rec.coll_pos)):
                epoch_members[k].append(self._rank_index[rank])
        vc_epoch = np.zeros((epochs, nr), dtype=_I64)
        epoch_done = np.zeros(epochs, dtype=bool)
        frontier = np.zeros((nr, nr), dtype=_I64)  # per-rank current VC
        pointer = {rank: 0 for rank in g.ranks}
        rank_list = list(g.ranks)

        def run(ignore_remote: bool) -> bool:
            progressed = False
            for rank in rank_list:
                ri = self._rank_index[rank]
                seq = ops[rank]
                while pointer[rank] < len(seq):
                    _pos, kind, idx = seq[pointer[rank]]
                    vc = frontier[ri]
                    if kind == "s":
                        vc = vc.copy()
                        vc[ri] += 1
                        self.vc_send[idx] = vc
                        self._send_done[idx] = True
                    elif kind == "r":
                        m = int(g.r_match[idx])
                        if m >= 0 and not self._send_done[m]:
                            if not ignore_remote:
                                break
                            m = -1
                        vc = vc.copy()
                        if m >= 0:
                            np.maximum(vc, self.vc_send[m], out=vc)
                        vc[ri] += 1
                        self.vc_recv[idx] = vc
                        self._recv_done[idx] = True
                    else:  # collective epoch
                        members = epoch_members[idx]
                        at_epoch = all(
                            pointer[rank_list[m]] < len(ops[rank_list[m]])
                            and ops[rank_list[m]][pointer[rank_list[m]]][1:]
                            == ("c", idx)
                            for m in members
                        )
                        if not epoch_done[idx]:
                            if not at_epoch and not ignore_remote:
                                break
                            join = frontier[members].max(axis=0)
                            join = join.copy()
                            for m in members:
                                join[m] += 1
                            vc_epoch[idx] = join
                            epoch_done[idx] = True
                            if at_epoch:
                                # Advance every member through the epoch.
                                for m in members:
                                    frontier[m] = vc_epoch[idx]
                                    pointer[rank_list[m]] += 1
                                progressed = True
                                continue
                        vc = np.maximum(frontier[ri], vc_epoch[idx])
                    frontier[ri] = vc
                    pointer[rank] += 1
                    progressed = True
            return progressed

        while run(ignore_remote=False):
            pass
        # Deadlocked remainder: finish deterministically without the
        # remote joins so queries over broken graphs still terminate.
        while any(pointer[rank] < len(ops[rank]) for rank in rank_list):
            if not run(ignore_remote=True):  # pragma: no cover - safety
                break

    def happens_before(self, vc_a: np.ndarray, vc_b: np.ndarray) -> bool:
        """True when the op stamped ``vc_a`` causally precedes ``vc_b``."""
        return bool(np.all(vc_a <= vc_b) and np.any(vc_a < vc_b))

    def concurrent(self, vc_a: np.ndarray, vc_b: np.ndarray) -> bool:
        return not self.happens_before(vc_a, vc_b) and not self.happens_before(
            vc_b, vc_a
        )


class HBView:
    """What an ``scope="hb"`` rule receives: shared context + graph."""

    def __init__(self, shared: "LintShared", graph: MatchGraph) -> None:
        self.shared = shared
        self.graph = graph
        self._engine: VectorClockEngine | None = None

    @property
    def engine(self) -> VectorClockEngine:
        """The vector-clock engine, built on first use."""
        if self._engine is None:
            self._engine = VectorClockEngine(self.graph)
        return self._engine

    def region_name(self, ref: int) -> str:
        if 0 <= ref < self.shared.num_regions:
            return self.shared.region_names[ref]
        return f"region#{ref}"


# ---------------------------------------------------------------------------
# Graph export (repro deps)
# ---------------------------------------------------------------------------


def _channel_rows(graph: MatchGraph) -> list[dict[str, Any]]:
    """Aggregate the p2p sends into (src, dst, tag) channel rows."""
    rows: list[dict[str, Any]] = []
    ns = graph.num_sends
    if ns:
        chan = _group_ids(graph.s_rank, graph.s_dst, graph.s_tag)
        for g in np.unique(chan).tolist():
            sel = np.flatnonzero(chan == g)
            matched = int(np.sum(graph.s_match[sel] >= 0))
            rows.append(
                {
                    "src": int(graph.s_rank[sel[0]]),
                    "dst": int(graph.s_dst[sel[0]]),
                    "tag": int(graph.s_tag[sel[0]]),
                    "sends": len(sel),
                    "matched": matched,
                    "orphan_sends": len(sel) - matched,
                    "bytes": int(graph.s_size[sel].sum()),
                }
            )
    # Receive-only channels (orphan recvs with no send at all).
    nr = graph.num_recvs
    if nr:
        orphan = np.flatnonzero((graph.r_match < 0) & ~graph.r_wildcard)
        if len(orphan):
            chan = _group_ids(
                graph.r_src[orphan], graph.r_rank[orphan], graph.r_tag[orphan]
            )
            seen = {(row["src"], row["dst"], row["tag"]) for row in rows}
            for g in np.unique(chan).tolist():
                sel = orphan[np.flatnonzero(chan == g)]
                key = (
                    int(graph.r_src[sel[0]]),
                    int(graph.r_rank[sel[0]]),
                    int(graph.r_tag[sel[0]]),
                )
                if key in seen:
                    continue
                rows.append(
                    {
                        "src": key[0],
                        "dst": key[1],
                        "tag": key[2],
                        "sends": 0,
                        "matched": 0,
                        "orphan_sends": 0,
                        "bytes": 0,
                    }
                )
    rows.sort(key=lambda row: (row["src"], row["dst"], row["tag"]))
    return rows


def graph_to_json_dict(graph: MatchGraph) -> dict[str, Any]:
    """Machine-readable export of the match graph (stable schema)."""
    orphan_recvs: dict[tuple[int, int, int], int] = {}
    for i in np.flatnonzero(graph.r_match < 0).tolist():
        key = (
            int(graph.r_src[i]),
            int(graph.r_rank[i]),
            int(graph.r_tag[i]),
        )
        orphan_recvs[key] = orphan_recvs.get(key, 0) + 1
    channels = _channel_rows(graph)
    for row in channels:
        row["orphan_recvs"] = orphan_recvs.pop(
            (row["src"], row["dst"], row["tag"]), 0
        )
    for (src, dst, tag), count in sorted(orphan_recvs.items()):
        channels.append(
            {
                "src": src, "dst": dst, "tag": tag,
                "sends": 0, "matched": 0, "orphan_sends": 0, "bytes": 0,
                "orphan_recvs": count,
            }
        )
    channels.sort(key=lambda row: (row["src"], row["dst"], row["tag"]))
    wildcards = int(np.sum(graph.r_wildcard))
    return {
        "tool": "repro deps",
        "complete": graph.complete,
        "ranks": [
            {
                "rank": rank,
                "events": rec.n_events,
                "sends": len(rec.send_dst),
                "recvs": len(rec.recv_src),
                "collectives": len(rec.coll_ref),
                "ok": rec.ok,
            }
            for rank, rec in sorted(graph.records.items())
        ],
        "channels": channels,
        "collective_epochs": graph.collective_epochs(),
        "summary": {
            "sends": graph.num_sends,
            "recvs": graph.num_recvs,
            "matched": graph.num_matched,
            "wildcard_recvs": wildcards,
            "duration": graph.duration,
        },
    }


def graph_to_dot(graph: MatchGraph) -> str:
    """Graphviz DOT export: ranks as nodes, channels as edges."""
    doc = graph_to_json_dict(graph)
    lines = [
        "digraph deps {",
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace"];',
    ]
    for row in doc["ranks"]:
        style = "" if row["ok"] else ", style=dashed"
        lines.append(
            f'  r{row["rank"]} [label="rank {row["rank"]}\\n'
            f'{row["events"]} events"{style}];'
        )
    for row in doc["channels"]:
        orphans = row["orphan_sends"] + row["orphan_recvs"]
        color = ', color="red"' if orphans else ""
        lines.append(
            f'  r{row["src"]} -> r{row["dst"]} '
            f'[label="tag {row["tag"]}: {row["matched"]}/{row["sends"]}"'
            f"{color}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def match_records_for_trace(
    trace, config=None
) -> tuple[dict[int, MatchRecords], "LintShared"]:
    """Extract every rank's match records from an in-memory trace."""
    from .engine import LintShared, RankView
    from .model import LintConfig

    config = config if config is not None else LintConfig()
    shared = LintShared.from_definitions(
        trace.regions, trace.metrics, trace.num_processes, trace.ranks, config
    )
    records = {
        rank: extract_match_records(RankView(shared, rank, trace.events_of(rank)))
        for rank in trace.ranks
    }
    return records, shared


def match_graph_for_trace(trace, config=None) -> MatchGraph:
    """Build the global match graph from an in-memory trace."""
    records, shared = match_records_for_trace(trace, config)
    return MatchGraph.from_records(records, shared.num_processes)


def _iter_chain_parents(
    recv_by_rank: dict[int, np.ndarray],
    recv_pos_by_rank: dict[int, np.ndarray],
    s_rank: Iterable[int],
    s_pos: Iterable[int],
) -> Iterable[int]:
    """For each send, the latest qualifying waited recv before it (-1 none).

    Helper for the TL305 wait-chain linker: ``recv_by_rank`` maps a
    rank to the (chain-significant) recv row ids on that rank sorted by
    position, ``recv_pos_by_rank`` to their positions.
    """
    for rank, pos in zip(s_rank, s_pos):
        cand_pos = recv_pos_by_rank.get(int(rank))
        if cand_pos is None or not len(cand_pos):
            yield -1
            continue
        k = int(np.searchsorted(cand_pos, int(pos), side="left")) - 1
        yield int(recv_by_rank[int(rank)][k]) if k >= 0 else -1
