"""Built-in happens-before rules: cross-rank causality (TL3xx).

These rules consume the global :class:`~repro.lint.hb.MatchGraph`
(scope ``"hb"``) instead of a single rank's view or the summary
merge — they answer the questions the per-rank and summary rules
structurally cannot: is there a deadlock *cycle*?  Which sends race
for a wildcard receive?  Which rank *originated* this wait chain?

Every rule mutes itself when the graph is incomplete (some rank's
stream was unsorted or unbalanced): the structural TL0xx rules already
flag those streams, and match-based findings derived from a broken
stream would be phantoms.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .hb import HBView, _group_ids
from .model import Severity
from .registry import Finding, register_rule

__all__: list[str] = []


def _strongly_connected(adj: dict[int, set[int]]) -> list[list[int]]:
    """Tarjan SCC (iterative) over a small adjacency dict; components
    with at least one cycle, each sorted, in sorted order."""
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = [0]

    for root in sorted(adj):
        if root in index:
            continue
        work = [(root, iter(sorted(adj.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for nxt in it:
                if nxt not in index:
                    index[nxt] = low[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(sorted(adj.get(nxt, ())))))
                    advanced = True
                    break
                if nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                if len(comp) > 1 or node in adj.get(node, ()):
                    sccs.append(sorted(comp))
    sccs.sort()
    return sccs


@register_rule(
    "TL301",
    category="hb",
    scope="hb",
    severity=Severity.ERROR,
    columns=("tag", "size"),
)
def potential_deadlock_cycle(hbview: HBView) -> Iterator[Finding]:
    """Ranks wait on each other in a cycle — a potential deadlock.

    Every receive that no send ever satisfies makes its rank wait on
    the expected source; a cycle in that wait-for graph (A waits on B
    waits on A) is the classic send/recv ordering deadlock.  The trace
    only exists because the run terminated, so in practice this flags
    eager-buffering luck or a truncated hang.
    """
    g = hbview.graph
    if not g.complete:
        return
    unmatched = np.flatnonzero((g.r_match < 0) & ~g.r_wildcard)
    if not len(unmatched):
        return
    adj: dict[int, set[int]] = {}
    anchor: dict[int, int] = {}  # rank -> first unmatched recv row
    for i in unmatched.tolist():
        dst = int(g.r_rank[i])
        src = int(g.r_src[i])
        if src not in g.records or not g.records[src].n_events:
            continue  # unknown/empty source: TL009/TL304 territory
        adj.setdefault(dst, set()).add(src)
        if dst not in anchor or g.r_pos[i] < g.r_pos[anchor[dst]]:
            anchor[dst] = i
    for cycle in _strongly_connected(adj):
        first = anchor.get(cycle[0], -1)
        chain = " -> ".join(f"rank {r}" for r in cycle + [cycle[0]])
        yield Finding(
            f"unsatisfied receives form a wait-for cycle: {chain} "
            f"(each rank expects a message its partner never sends)",
            rank=cycle[0],
            position=int(g.r_pos[first]) if first >= 0 else -1,
            time=float(g.r_time[first]) if first >= 0 else None,
        )


@register_rule(
    "TL302",
    category="hb",
    scope="hb",
    severity=Severity.WARNING,
    columns=("tag", "size"),
)
def wildcard_receive_race(hbview: HBView) -> Iterator[Finding]:
    """Wildcard receive has concurrent candidate senders — match races.

    An ``MPI_ANY_SOURCE`` receive whose queue holds sends from two or
    more source ranks that are *concurrent* under happens-before (no
    causal order between them and the receive) can match either one
    depending on arrival timing: the recorded matching is one of
    several legal executions, and replays may diverge.
    """
    g = hbview.graph
    if not g.complete:
        return
    wild = np.flatnonzero(g.r_wildcard)
    if not len(wild):
        return
    engine = hbview.engine  # lazily built: only wildcard traces pay
    for w in wild.tolist():
        dst = int(g.r_rank[w])
        tag = int(g.r_tag[w])
        own = int(g.r_match[w])
        # Sends this receive could have drained instead: its own match,
        # sends left unmatched, and sends other *wildcards* of the same
        # queue drained.  Specifically-matched sends are excluded — a
        # named-source receive claims them in any execution.
        cand = np.flatnonzero((g.s_dst == dst) & (g.s_tag == tag))
        cand = cand[
            (g.s_match[cand] < 0)
            | (cand == own)
            | g.r_wildcard[np.clip(g.s_match[cand], 0, max(g.num_recvs - 1, 0))]
        ]
        vc_w = engine.vc_recv[w]
        sources: set[int] = set()
        for s in cand.tolist():
            if engine.happens_before(vc_w, engine.vc_send[s]):
                continue  # causally after the receive: not a candidate
            sources.add(int(g.s_rank[s]))
        if len(sources) >= 2:
            matched_src = int(g.s_rank[own]) if own >= 0 else -1
            who = ", ".join(str(r) for r in sorted(sources))
            got = (
                f"matched rank {matched_src}"
                if matched_src >= 0
                else "went unmatched"
            )
            yield Finding(
                f"wildcard receive (tag {tag}) {got} but ranks {{{who}}} "
                f"have concurrent sends in flight — the match is "
                f"timing-dependent",
                rank=dst,
                position=int(g.r_pos[w]),
                time=float(g.r_time[w]),
            )


@register_rule(
    "TL303",
    category="hb",
    scope="hb",
    severity=Severity.WARNING,
    columns=("tag", "size"),
)
def collective_order_mismatch(hbview: HBView) -> Iterator[Finding]:
    """Ranks disagree on the collective call sequence.

    Collectives must be invoked in the same order by every rank of the
    communicator.  The first epoch where the per-rank sequences name
    different operations — or where some rank has stopped calling
    collectives while others continue — is where a real run blocks.
    Unlike the per-count TL102 check this is order-sensitive and names
    the exact epoch.
    """
    g = hbview.graph
    if not g.complete:
        return
    seqs = g.collective_sequences()
    if len(seqs) < 2:
        return
    length = max(len(s) for s in seqs.values())
    for epoch in range(length):
        by_op: dict[int, list[int]] = {}
        absent: list[int] = []
        for rank, seq in seqs.items():
            if epoch < len(seq):
                by_op.setdefault(int(seq[epoch]), []).append(rank)
            else:
                absent.append(rank)
        if len(by_op) == 1 and not absent:
            continue
        parts = [
            f"ranks {_rank_set(ranks)} call "
            f"{hbview.region_name(ref)!r}"
            for ref, ranks in sorted(by_op.items())
        ]
        if absent:
            parts.append(f"ranks {_rank_set(absent)} call nothing")
        some_rank = min(r for ranks in by_op.values() for r in ranks)
        rec = g.records[some_rank]
        yield Finding(
            f"collective sequences diverge at epoch {epoch}: "
            + "; ".join(parts),
            rank=some_rank,
            position=int(rec.coll_pos[epoch]),
            time=float(rec.coll_enter[epoch]),
        )
        return  # later epochs are skewed by the first divergence


def _rank_set(ranks: list[int]) -> str:
    return "{" + ", ".join(str(r) for r in sorted(ranks)) + "}"


@register_rule(
    "TL304",
    category="hb",
    scope="hb",
    severity=Severity.WARNING,
    columns=("tag", "size"),
)
def orphan_messages(hbview: HBView) -> Iterator[Finding]:
    """Sends or receives never matched by the other side.

    After FIFO queue matching, a leftover send means the message was
    recorded leaving but never arriving (dropped events, tag mismatch,
    truncated stream); a leftover receive expects a message nobody
    sent.  Reported aggregated per (src, dst, tag) channel.
    """
    g = hbview.graph
    if not g.complete:
        return
    orphan_s = np.flatnonzero(g.s_match < 0)
    if len(orphan_s):
        chan = _group_ids(
            g.s_rank[orphan_s], g.s_dst[orphan_s], g.s_tag[orphan_s]
        )
        for gid in np.unique(chan).tolist():
            sel = orphan_s[np.flatnonzero(chan == gid)]
            first = int(sel[np.argmin(g.s_pos[sel])])
            src, dst = int(g.s_rank[first]), int(g.s_dst[first])
            tag = int(g.s_tag[first])
            yield Finding(
                f"{len(sel)} send(s) rank {src} -> rank {dst} (tag {tag}) "
                f"never matched by a receive",
                rank=src,
                position=int(g.s_pos[first]),
                time=float(g.s_time[first]),
            )
    orphan_r = np.flatnonzero((g.r_match < 0) & ~g.r_wildcard)
    if len(orphan_r):
        chan = _group_ids(
            g.r_src[orphan_r], g.r_rank[orphan_r], g.r_tag[orphan_r]
        )
        for gid in np.unique(chan).tolist():
            sel = orphan_r[np.flatnonzero(chan == gid)]
            first = int(sel[np.argmin(g.r_pos[sel])])
            src, dst = int(g.r_src[first]), int(g.r_rank[first])
            tag = int(g.r_tag[first])
            yield Finding(
                f"{len(sel)} receive(s) at rank {dst} from rank {src} "
                f"(tag {tag}) never satisfied by a send",
                rank=dst,
                position=int(g.r_pos[first]),
                time=float(g.r_time[first]),
            )
    orphan_w = np.flatnonzero((g.r_match < 0) & g.r_wildcard)
    if len(orphan_w):
        for dst in np.unique(g.r_rank[orphan_w]).tolist():
            sel = orphan_w[g.r_rank[orphan_w] == dst]
            first = int(sel[np.argmin(g.r_pos[sel])])
            yield Finding(
                f"{len(sel)} wildcard receive(s) at rank {int(dst)} "
                f"never satisfied by a send",
                rank=int(dst),
                position=int(g.r_pos[first]),
                time=float(g.r_time[first]),
            )


@register_rule(
    "TL305",
    category="hb",
    scope="hb",
    severity=Severity.INFO,
    columns=("tag", "size"),
)
def wait_chain_origin(hbview: HBView) -> Iterator[Finding]:
    """Wait chain propagates across ranks; names the originating rank.

    A receive that blocks for a significant share of the run delays
    its rank's *next* sends, whose receivers block in turn — the
    paper's idle-wave / late-sender propagation.  This rule links
    significantly-waited receives into chains through the match graph
    and attributes each chain to the rank (and enclosing region) of
    the send at its root: the place to look for the bottleneck, not
    the places that merely inherited the wait.
    """
    g = hbview.graph
    if not g.complete:
        return
    cfg = hbview.shared.config
    duration = g.duration
    if duration <= 0.0:
        return
    sig = np.flatnonzero(
        (g.r_match >= 0) & (g.r_wait >= cfg.hb_wait_fraction * duration)
    )
    if not len(sig):
        return
    # Per rank, the significant recv rows sorted by stream position —
    # the parent of a chain link is the latest significant receive on
    # the sender's rank that completed before the send was posted.
    by_rank: dict[int, np.ndarray] = {}
    pos_by_rank: dict[int, np.ndarray] = {}
    for rank in np.unique(g.r_rank[sig]).tolist():
        rows = sig[g.r_rank[sig] == rank]
        order = np.argsort(g.r_pos[rows], kind="stable")
        by_rank[int(rank)] = rows[order]
        pos_by_rank[int(rank)] = g.r_pos[rows[order]]
    parent = np.full(len(sig), -1, dtype=np.int64)  # index into sig
    row_to_sig = {int(row): i for i, row in enumerate(sig.tolist())}
    for i, row in enumerate(sig.tolist()):
        s = int(g.r_match[row])
        src = int(g.s_rank[s])
        cand_pos = pos_by_rank.get(src)
        if cand_pos is None:
            continue
        k = int(np.searchsorted(cand_pos, int(g.s_pos[s]), side="left")) - 1
        if k >= 0:
            parent[i] = row_to_sig[int(by_rank[src][k])]
    # Accumulate each root's chain (a forest: every node has <= 1 parent).
    children: dict[int, list[int]] = {}
    roots = []
    for i in range(len(sig)):
        if parent[i] < 0:
            roots.append(i)
        else:
            children.setdefault(int(parent[i]), []).append(i)
    for root in roots:
        members = [root]
        stack = [root]
        while stack:
            node = stack.pop()
            for child in children.get(node, ()):
                members.append(child)
                stack.append(child)
        rows = sig[members]
        ranks_involved = set(g.r_rank[rows].tolist())
        s_root = int(g.r_match[sig[root]])
        origin = int(g.s_rank[s_root])
        ranks_involved.add(origin)
        total_wait = float(g.r_wait[rows].sum())
        if (
            len(ranks_involved) < cfg.hb_chain_min_ranks
            or total_wait < cfg.hb_chain_wait_ratio * duration
        ):
            continue
        region = hbview.region_name(int(g.s_region[s_root]))
        if int(g.s_region[s_root]) < 0:
            region = "<toplevel>"
        yield Finding(
            f"wait chain across {len(ranks_involved)} ranks "
            f"({total_wait:.6g}s total blocked time, "
            f"{100 * total_wait / duration:.0f}% of the run) originates "
            f"at rank {origin} in {region!r}",
            rank=int(g.r_rank[sig[root]]),
            position=int(g.r_pos[sig[root]]),
            time=float(g.r_time[sig[root]]),
        )
