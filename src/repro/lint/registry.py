"""Rule registry of the tracelint engine.

A *rule* is a function that inspects a trace (or one rank's event
stream) and yields findings.  Rules register themselves with
:func:`register_rule`, declaring a stable code (``TLxxx``), a category,
a default severity and — crucially for the sharded engine — a *scope*:

``rank``
    The rule sees one rank's events at a time.  Rank-scoped rules run
    inside shard workers on chunked reads, so linting scales the same
    way the analysis engine does.
``trace``
    The rule sees the cross-rank picture: the merged per-rank
    summaries (:class:`~repro.lint.engine.RankSummary`).  Trace-scoped
    rules run once, in the parent, after the per-rank partials merged.
``hb``
    The rule sees the global message-match graph
    (:class:`~repro.lint.hb.HBView`): per-rank match records are
    extracted inside shard workers, assembled into one graph in the
    parent, and the rule runs once over the complete cross-rank
    happens-before structure.  The engine *refuses* to finalize a
    report with hb rules enabled unless match records for every rank
    are present — an hb rule can never silently see a partial trace.

Help text is derived from the rule function's docstring; the first
line becomes the SARIF ``shortDescription`` and the rule-catalog
entry in ``docs/lint.md``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from .model import LintConfig, Severity

__all__ = [
    "Finding",
    "Rule",
    "register_rule",
    "all_rules",
    "get_rule",
    "enabled_rules",
    "validate_subset_codes",
]


@dataclass(frozen=True, slots=True)
class Finding:
    """Lightweight result yielded by a rule's check function.

    The engine stamps the rule's code, category and (default) severity
    onto it to produce a full :class:`~repro.lint.model.Diagnostic`.
    """

    message: str
    rank: int = -1
    position: int = -1
    time: float | None = None
    severity: Severity | None = None  # override the rule default


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    code: str
    name: str
    category: str  # "structural" | "mpi" | "precondition" | "hb"
    scope: str  # "rank" | "trace" | "hb"
    default_severity: Severity
    check: Callable[..., Iterable[Finding]]
    #: legacy ``validate_trace`` issue code this rule subsumes, if any
    legacy_code: str | None = None
    #: event columns the check reads beyond the view baseline
    #: (time/kind/ref/partner); drives lazy column projection
    columns: tuple[str, ...] = ()

    @property
    def short_help(self) -> str:
        doc = inspect.getdoc(self.check) or self.name
        return doc.splitlines()[0].strip()

    @property
    def full_help(self) -> str:
        return inspect.getdoc(self.check) or self.name


_REGISTRY: dict[str, Rule] = {}


def register_rule(
    code: str,
    *,
    category: str,
    scope: str,
    severity: Severity,
    legacy_code: str | None = None,
    name: str | None = None,
    columns: tuple[str, ...] = (),
) -> Callable[[Callable[..., Iterable[Finding]]], Callable[..., Iterable[Finding]]]:
    """Class-of-2 decorator registering a check function as a rule.

    The decorated function keeps working as a plain function; the
    registry stores it alongside its metadata.  Codes must be unique
    and of the form ``TL`` + digits so ``--select TL1*`` style
    patterns behave predictably.
    """
    if scope not in ("rank", "trace", "hb"):
        raise ValueError(
            f"rule scope must be 'rank', 'trace' or 'hb', got {scope!r}"
        )
    if not (code.startswith("TL") and code[2:].isdigit()):
        raise ValueError(f"rule code must look like TL123, got {code!r}")

    def decorator(fn: Callable[..., Iterable[Finding]]):
        if code in _REGISTRY:
            raise ValueError(f"duplicate rule code {code}")
        _REGISTRY[code] = Rule(
            code=code,
            name=name or fn.__name__.replace("_", "-"),
            category=category,
            scope=scope,
            default_severity=severity,
            check=fn,
            legacy_code=legacy_code,
            columns=tuple(columns),
        )
        return fn

    return decorator


def _ensure_builtin_rules() -> None:
    # Importing the rule modules populates the registry exactly once.
    from . import rules_hb, rules_semantic, rules_structural  # noqa: F401


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by code."""
    _ensure_builtin_rules()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    _ensure_builtin_rules()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(f"no lint rule with code {code!r}") from None


def enabled_rules(config: LintConfig, scope: str | None = None) -> Iterator[Rule]:
    """Rules that survive the config's select/ignore, optionally by scope."""
    for rule in all_rules():
        if scope is not None and rule.scope != scope:
            continue
        if config.rule_enabled(rule.code):
            yield rule


def validate_subset_codes() -> tuple[str, ...]:
    """Codes of the rules subsuming the legacy ``validate_trace`` checks."""
    return tuple(r.code for r in all_rules() if r.legacy_code is not None)
