"""tracelint — rule-based static analysis over trace event streams.

Linting answers "is this trace analyzable, and will the paper's
pipeline produce meaningful output from it?" *without* replaying the
trace.  Rules span three categories:

``structural`` (TL0xx)
    Well-formedness of the event streams: enter/leave balance,
    timestamp order, dangling definition references.  These subsume
    the legacy ``validate_trace`` checks.
``mpi`` (TL1xx)
    Message semantics: send/receive count matching per rank pair,
    uniform collective participation, self-messages, zero-duration
    synchronization storms.
``precondition`` (TL2xx)
    The paper's analysis preconditions: the ``2p`` dominant-function
    invocation floor (Section IV), sync-classifier coverage
    (Section V), aligned per-rank segment counts, clock skew.
``hb`` (TL3xx)
    Cross-rank happens-before analysis over the global message-match
    graph (:mod:`repro.lint.hb`): potential deadlock cycles, wildcard
    receive races, collective order divergence, orphan messages and
    wait-chain root-cause attribution.  See ``docs/hb.md``.

Quick start::

    from repro.lint import lint_trace
    report = lint_trace(trace)
    print(report.to_text())
    report.raise_for_errors()        # pre-flight gate

or from the command line::

    repro lint trace.jsonl --format sarif -o findings.sarif

Custom rules register through the same decorator the built-ins use::

    from repro.lint import Finding, register_rule, Severity

    @register_rule("TL900", category="site", scope="rank",
                   severity=Severity.WARNING)
    def my_check(view):
        "One-line help shown in --format sarif and docs."
        if view.n > 10**9:
            yield Finding("suspiciously gigantic stream")
"""

from .engine import (
    LintShared,
    RankSummary,
    RankView,
    TraceView,
    finalize_report,
    hb_graph_path,
    hb_rules_enabled,
    lint_path,
    lint_trace,
    scan_rank,
    validate_config,
)
from .hb import (
    HBView,
    MatchGraph,
    MatchRecords,
    VectorClockEngine,
    extract_match_records,
    graph_to_dot,
    graph_to_json_dict,
    match_graph_for_trace,
)
from .model import Diagnostic, LintConfig, LintError, LintReport, Severity
from .registry import (
    Finding,
    Rule,
    all_rules,
    enabled_rules,
    get_rule,
    register_rule,
    validate_subset_codes,
)
from .sarif import sarif_dict

__all__ = [
    "Severity",
    "Diagnostic",
    "LintConfig",
    "LintError",
    "LintReport",
    "Finding",
    "Rule",
    "register_rule",
    "all_rules",
    "get_rule",
    "enabled_rules",
    "validate_subset_codes",
    "LintShared",
    "RankSummary",
    "RankView",
    "TraceView",
    "scan_rank",
    "finalize_report",
    "lint_trace",
    "lint_path",
    "validate_config",
    "sarif_dict",
    "HBView",
    "MatchGraph",
    "MatchRecords",
    "VectorClockEngine",
    "extract_match_records",
    "match_graph_for_trace",
    "graph_to_dot",
    "graph_to_json_dict",
    "hb_graph_path",
    "hb_rules_enabled",
]
