"""The tracelint execution engine.

Linting is a single streaming pass over each rank's event columns —
no stack replay, no segmentation.  Per rank the engine computes one
:class:`RankView` (vectorised enter/leave pairing, reference masks)
and one :class:`RankSummary` (cheap cross-rank partials: per-region
invocation counts and times, message counts per partner, stream
extent).  Rank-scoped rules consume the view; trace-scoped rules
consume the merged summaries.  This split is exactly what makes
linting shardable: workers scan their own ranks on chunked reads and
ship back only diagnostics plus summaries, never event data.

Entry points:

* :func:`lint_trace` — lint an in-memory :class:`~repro.trace.trace.Trace`;
* :func:`lint_path` — lint a trace file through the chunked reader,
  optionally fanning the per-rank scans out to worker processes
  (``shards``/``max_memory_mb`` mirror the analysis engine's knobs);
* :func:`scan_rank` — the per-rank kernel, reused by the sharded
  analysis engine's phase-1 workers for ``--preflight``.

Diagnostics are sorted by ``(code, rank, position, message)`` before
the report is assembled, so output is byte-identical regardless of
shard count or worker scheduling.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from .. import obs
from ..trace.definitions import MetricRegistry, RegionRegistry
from ..trace.events import EventKind, EventList
from ..trace.trace import Trace
from .model import Diagnostic, LintConfig, LintReport
from .registry import Finding, Rule, enabled_rules

__all__ = [
    "LintShared",
    "RankSummary",
    "RankView",
    "TraceView",
    "lint_trace",
    "lint_path",
    "scan_rank",
    "scan_view",
    "finalize_report",
    "validate_config",
    "LINT_COLUMNS",
    "lint_columns",
    "hb_rules_enabled",
    "hb_graph_path",
]

#: Event columns the view construction and summaries read regardless of
#: which rules are enabled.  Individual rules declare anything extra via
#: ``register_rule(..., columns=...)``; the projection tests keep both
#: declarations truthful.
LINT_COLUMNS = ("time", "kind", "ref", "partner")


def lint_columns(config: LintConfig) -> tuple[str, ...]:
    """Minimal event-column set needed to run ``config``'s rules.

    Union of the view baseline (:data:`LINT_COLUMNS`) and *every*
    enabled rule's declared extras — not just the rank-scoped ones:
    hb-scoped rules extract their match records inside the same worker
    read, so restricting the union to one scope would silently hand
    them placeholder columns.  Canonical column order keeps the
    projection deterministic.
    """
    from ..trace.events import _FIELDS

    need = set(LINT_COLUMNS)
    for rule in enabled_rules(config):
        need.update(rule.columns)
    return tuple(f for f in _FIELDS if f in need)


def hb_rules_enabled(config: LintConfig) -> bool:
    """True when the config enables at least one hb-scoped rule."""
    return any(True for _ in enabled_rules(config, scope="hb"))


@dataclass(frozen=True)
class LintShared:
    """Definition-level context shared by every rule invocation."""

    num_regions: int
    num_metrics: int
    num_processes: int
    region_names: tuple[str, ...]
    region_paradigm: np.ndarray  # int8 per region
    region_role: np.ndarray  # int8 per region
    sync_mask: np.ndarray  # bool per region (classifier-selected)
    known_ranks: frozenset[int]
    config: LintConfig

    @classmethod
    def from_definitions(
        cls,
        regions: RegionRegistry,
        metrics: MetricRegistry,
        num_processes: int,
        known_ranks: Iterable[int],
        config: LintConfig,
    ) -> "LintShared":
        paradigm = np.asarray([int(r.paradigm) for r in regions], dtype=np.int8)
        role = np.asarray([int(r.role) for r in regions], dtype=np.int8)
        return cls(
            num_regions=len(regions),
            num_metrics=len(metrics),
            num_processes=num_processes,
            region_names=tuple(r.name for r in regions),
            region_paradigm=paradigm,
            region_role=role,
            sync_mask=config.classifier.mask_registry(regions),
            known_ranks=frozenset(int(r) for r in known_ranks),
            config=config,
        )


@dataclass(frozen=True)
class RankSummary:
    """Cross-rank partial of one rank's stream (picklable, mergeable).

    Everything a trace-scoped rule needs, at a few hundred bytes per
    rank — this is what shard workers return instead of event data.
    """

    rank: int
    n_events: int
    t_first: float
    t_last: float
    #: ENTER events per region id
    enter_counts: np.ndarray
    #: summed enter→leave durations per region id (zeros when the
    #: stream is unsorted/unbalanced and pairing is impossible)
    region_time: np.ndarray
    balanced: bool
    #: SEND count per partner rank / RECV count per partner rank
    sends: dict[int, int] = field(default_factory=dict)
    recvs: dict[int, int] = field(default_factory=dict)


class RankView:
    """Vectorised single-pass products over one rank's event stream.

    Computed once per rank and handed to every rank-scoped rule, so no
    rule re-derives the enter/leave pairing.  All computations guard
    against unsorted, unbalanced or reference-broken streams — linting
    must never crash on the inputs it exists to reject.
    """

    def __init__(self, shared: LintShared, rank: int, events: EventList) -> None:
        self.shared = shared
        self.rank = rank
        self.events = events
        n = len(events)
        self.n = n
        ev = events
        self.sorted = bool(n < 2 or not np.any(np.diff(ev.time) < 0))
        self.first_unsorted = (
            -1
            if self.sorted
            else int(np.argmax(np.diff(ev.time) < 0)) + 1
        )

        kind = ev.kind
        self.enter_mask = kind == np.uint8(EventKind.ENTER)
        self.leave_mask = kind == np.uint8(EventKind.LEAVE)
        self.enter_leave = self.enter_mask | self.leave_mask
        self.metric_mask = kind == np.uint8(EventKind.METRIC)
        self.p2p_mask = (kind == np.uint8(EventKind.SEND)) | (
            kind == np.uint8(EventKind.RECV)
        )
        nr = shared.num_regions
        self.bad_region = self.enter_leave & ((ev.ref < 0) | (ev.ref >= nr))
        nm = shared.num_metrics
        self.bad_metric = self.metric_mask & ((ev.ref < 0) | (ev.ref >= nm))

        # -- enter/leave pairing (depth trick, as validate used to do) --
        self.el_idx = np.flatnonzero(self.enter_leave)
        self.underflow_index = -1  # absolute index of first orphan leave
        self.open_count = 0  # regions still open at end of stream
        self.first_unclosed = -1  # absolute index of first unmatched enter
        self.balanced = False
        self.enter_pos = np.empty(0, dtype=np.int64)  # into el_idx
        self.leave_pos = np.empty(0, dtype=np.int64)
        #: running enter/leave depth over el_idx; kept on balanced
        #: streams so the fused kernel can reuse the pairing for replay
        self.depth_after = np.empty(0, dtype=np.int64)
        if self.sorted and len(self.el_idx):
            kind_pm = np.where(
                self.enter_mask[self.el_idx], 1, -1
            ).astype(np.int64)
            depth_after = np.cumsum(kind_pm)
            underflow = np.flatnonzero(depth_after < 0)
            if len(underflow):
                self.underflow_index = int(self.el_idx[underflow[0]])
            elif depth_after[-1] != 0:
                self.open_count = int(depth_after[-1])
                # An enter is unmatched iff the depth never drops below
                # its own frame depth afterwards (reverse running min).
                suffix_min = np.minimum.accumulate(depth_after[::-1])[::-1]
                shifted = np.empty_like(suffix_min)
                shifted[:-1] = suffix_min[1:]
                shifted[-1] = np.iinfo(np.int64).max
                unmatched = (kind_pm > 0) & (shifted >= depth_after)
                first = np.flatnonzero(unmatched)
                if len(first):
                    self.first_unclosed = int(self.el_idx[first[0]])
            else:
                self.balanced = True
                self.depth_after = depth_after
                frame_depth = np.where(kind_pm > 0, depth_after, depth_after + 1)
                order = np.argsort(frame_depth, kind="stable")
                self.enter_pos = order[0::2]
                self.leave_pos = order[1::2]

        # -- per-invocation arrays (balanced streams only) --------------
        if self.balanced:
            refs = ev.ref[self.el_idx]
            self.inv_region = refs[self.enter_pos]
            self.inv_leave_region = refs[self.leave_pos]
            t = ev.time[self.el_idx]
            self.inv_enter_index = self.el_idx[self.enter_pos]
            self.inv_leave_index = self.el_idx[self.leave_pos]
            self.inv_duration = t[self.leave_pos] - t[self.enter_pos]
            self.inv_valid = (self.inv_region >= 0) & (self.inv_region < nr)
        else:
            self.inv_region = np.empty(0, dtype=np.int32)
            self.inv_leave_region = np.empty(0, dtype=np.int32)
            self.inv_enter_index = np.empty(0, dtype=np.int64)
            self.inv_leave_index = np.empty(0, dtype=np.int64)
            self.inv_duration = np.empty(0, dtype=np.float64)
            self.inv_valid = np.empty(0, dtype=bool)

    def time_at(self, index: int) -> float | None:
        if 0 <= index < self.n:
            return float(self.events.time[index])
        return None

    def summary(self) -> RankSummary:
        ev = self.events
        nr = self.shared.num_regions
        enter_refs = ev.ref[self.enter_mask]
        valid_enters = enter_refs[(enter_refs >= 0) & (enter_refs < nr)]
        enter_counts = np.bincount(valid_enters, minlength=nr).astype(np.int64)
        region_time = np.zeros(nr, dtype=np.float64)
        if self.balanced and len(self.inv_region):
            sel = self.inv_valid
            region_time = np.bincount(
                self.inv_region[sel],
                weights=self.inv_duration[sel],
                minlength=nr,
            ).astype(np.float64)
        sends: dict[int, int] = {}
        recvs: dict[int, int] = {}
        send_mask = ev.kind == np.uint8(EventKind.SEND)
        recv_mask = ev.kind == np.uint8(EventKind.RECV)
        for mask, out in ((send_mask, sends), (recv_mask, recvs)):
            if np.any(mask):
                partners, counts = np.unique(ev.partner[mask], return_counts=True)
                for p, c in zip(partners.tolist(), counts.tolist()):
                    out[int(p)] = int(c)
        return RankSummary(
            rank=self.rank,
            n_events=self.n,
            t_first=float(ev.time[0]) if self.n else 0.0,
            t_last=float(ev.time[-1]) if self.n else 0.0,
            enter_counts=enter_counts,
            region_time=region_time,
            balanced=self.balanced,
            sends=sends,
            recvs=recvs,
        )


@dataclass(frozen=True)
class TraceView:
    """Merged cross-rank picture handed to trace-scoped rules."""

    shared: LintShared
    summaries: dict[int, RankSummary]

    @property
    def ranks(self) -> list[int]:
        return sorted(self.summaries)

    def total_enter_counts(self) -> np.ndarray:
        total = np.zeros(self.shared.num_regions, dtype=np.int64)
        for s in self.summaries.values():
            total += s.enter_counts
        return total

    def total_region_time(self) -> np.ndarray:
        total = np.zeros(self.shared.num_regions, dtype=np.float64)
        for s in self.summaries.values():
            total += s.region_time
        return total

    @property
    def t_min(self) -> float:
        lows = [s.t_first for s in self.summaries.values() if s.n_events]
        return float(min(lows)) if lows else 0.0

    @property
    def t_max(self) -> float:
        highs = [s.t_last for s in self.summaries.values() if s.n_events]
        return float(max(highs)) if highs else 0.0


def _stamp(
    rule: Rule, config: LintConfig, finding: Finding, default_rank: int = -1
) -> Diagnostic:
    severity = finding.severity
    if severity is None:
        severity = config.severity_of(rule.code, rule.default_severity)
    rank = finding.rank if finding.rank >= 0 else default_rank
    return Diagnostic(
        code=rule.code,
        severity=severity,
        message=finding.message,
        rank=rank,
        position=finding.position,
        time=finding.time,
        category=rule.category,
    )


def scan_view(view: RankView) -> tuple[list[Diagnostic], RankSummary]:
    """Run every enabled rank-scoped rule over an existing view.

    Split out of :func:`scan_rank` so the fused analysis kernel can
    build the view once and reuse its pairing for stack replay.
    """
    shared = view.shared
    diags: list[Diagnostic] = []
    timed = obs.enabled()
    for rule in enabled_rules(shared.config, scope="rank"):
        t0 = time.perf_counter() if timed else 0.0
        for finding in rule.check(view):
            diags.append(
                _stamp(rule, shared.config, finding, default_rank=view.rank)
            )
        if timed:
            obs.counter(f"lint.rule.{rule.code}.s").add(
                time.perf_counter() - t0
            )
    return diags, view.summary()


def scan_rank(
    shared: LintShared, rank: int, events: EventList
) -> tuple[list[Diagnostic], RankSummary]:
    """Run every enabled rank-scoped rule over one rank's stream."""
    return scan_view(RankView(shared, rank, events))


def _trace_scope_diagnostics(
    shared: LintShared, summaries: dict[int, RankSummary]
) -> list[Diagnostic]:
    tview = TraceView(shared, summaries)
    diags: list[Diagnostic] = []
    for rule in enabled_rules(shared.config, scope="trace"):
        for finding in rule.check(tview):
            diags.append(_stamp(rule, shared.config, finding))
    return diags


def _hb_scope_diagnostics(shared: LintShared, match_records) -> list[Diagnostic]:
    """Assemble the global match graph and run the hb-scoped rules."""
    from .hb import HBView, MatchGraph

    graph = MatchGraph.from_records(match_records, shared.num_processes)
    hbview = HBView(shared, graph)
    diags: list[Diagnostic] = []
    timed = obs.enabled()
    for rule in enabled_rules(shared.config, scope="hb"):
        t0 = time.perf_counter() if timed else 0.0
        for finding in rule.check(hbview):
            diags.append(_stamp(rule, shared.config, finding))
        if timed:
            obs.counter(f"lint.rule.{rule.code}.s").add(
                time.perf_counter() - t0
            )
    return diags


def finalize_report(
    shared: LintShared,
    rank_diags: Iterable[Diagnostic],
    summaries: dict[int, RankSummary],
    trace_name: str = "",
    source: str | None = None,
    match_records=None,
) -> LintReport:
    """Run trace- and hb-scoped rules and assemble the sorted report.

    ``match_records`` maps every rank to its
    :class:`~repro.lint.hb.MatchRecords`.  When hb-scoped rules are
    enabled it is *required*: raising here (instead of quietly running
    the remaining rules) is what guarantees a cross-rank rule can
    never under-report off a partial, per-shard view of the trace.
    """
    diags = list(rank_diags)
    diags.extend(_trace_scope_diagnostics(shared, summaries))
    if hb_rules_enabled(shared.config):
        if match_records is None:
            raise ValueError(
                "hb-scope rules are enabled but no match records were "
                "provided; cross-rank rules cannot run on a partial trace"
            )
        missing = sorted(set(summaries) - set(match_records))
        if missing:
            raise ValueError(
                f"hb-scope rules are enabled but match records are missing "
                f"for ranks {missing}; cross-rank rules cannot run on a "
                f"partial trace"
            )
        diags.extend(_hb_scope_diagnostics(shared, match_records))
    diags.sort(key=lambda d: d.sort_key)
    return LintReport(
        diagnostics=tuple(diags),
        rules_run=tuple(
            r.code for r in enabled_rules(shared.config)
        ),
        num_events=sum(s.n_events for s in summaries.values()),
        num_ranks=len(summaries),
        trace_name=trace_name,
        source=source,
    )


def lint_trace(
    trace: Trace,
    config: LintConfig | None = None,
    known_ranks: Iterable[int] | None = None,
    source: str | None = None,
) -> LintReport:
    """Statically lint an in-memory trace (no replay, single pass).

    Parameters
    ----------
    config:
        Rule selection, severity overrides and thresholds; defaults to
        all rules at their default severities.
    known_ranks:
        Rank set message partners resolve against; defaults to the
        ranks present.  The sharded engine passes the *global* rank
        set so cross-shard partners are not misflagged.
    """
    config = config if config is not None else LintConfig()
    ranks = trace.ranks
    shared = LintShared.from_definitions(
        trace.regions,
        trace.metrics,
        trace.num_processes,
        ranks if known_ranks is None else known_ranks,
        config,
    )
    want_hb = hb_rules_enabled(config)
    if want_hb:
        from .hb import extract_match_records

    diags: list[Diagnostic] = []
    summaries: dict[int, RankSummary] = {}
    records: dict[int, object] | None = {} if want_hb else None
    for rank in ranks:
        view = RankView(shared, rank, trace.events_of(rank))
        rank_diags, summary = scan_view(view)
        diags.extend(rank_diags)
        summaries[rank] = summary
        if records is not None:
            records[rank] = extract_match_records(view)
    return finalize_report(
        shared,
        diags,
        summaries,
        trace_name=trace.name,
        source=source,
        match_records=records,
    )


def validate_config(allow_empty_streams: bool = False) -> LintConfig:
    """Config reproducing the legacy ``validate_trace`` behaviour: only
    the error-severity structural subset of the registry."""
    from .registry import validate_subset_codes

    return LintConfig(
        select=validate_subset_codes(),
        allow_empty_streams=allow_empty_streams,
    )


# ---------------------------------------------------------------------------
# Sharded path-mode linting
# ---------------------------------------------------------------------------


def _lint_shard_worker(payload: dict) -> dict:
    """Scan one rank group read through the chunked reader.

    Top-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it by reference; returns diagnostics and summaries only —
    plus, when the payload carries ``obs``, the worker's telemetry
    snapshot (merged by the parent in shard order).
    """
    from ..core.shard import _worker_obs_setup

    owns_obs = _worker_obs_setup(payload)
    try:
        with obs.span("lint.shard"):
            res = _lint_shard_worker_impl(payload)
    finally:
        col = obs.disable() if owns_obs else None
    if col is not None:
        res["obs"] = col.snapshot()
    return res


def _lint_shard_worker_impl(payload: dict) -> dict:
    from ..trace.reader import TraceIndex

    records_only = payload.get("records_only", False)
    want_hb = records_only or hb_rules_enabled(payload["config"])
    if want_hb:
        from .hb import HB_COLUMNS, extract_match_records

    index = TraceIndex(payload["path"])
    columns = lint_columns(payload["config"])
    if want_hb:
        from ..trace.events import _FIELDS

        need = set(columns) | set(HB_COLUMNS)
        columns = tuple(f for f in _FIELDS if f in need)
    sub = index.load(payload["ranks"], columns=columns)
    shared = LintShared.from_definitions(
        sub.regions,
        sub.metrics,
        payload["num_processes"],
        payload["known_ranks"],
        payload["config"],
    )
    diags: list[Diagnostic] = []
    summaries: dict[int, RankSummary] = {}
    records: dict[int, object] = {}
    for rank in sorted(payload["ranks"]):
        view = RankView(shared, rank, sub.events_of(rank))
        if not records_only:
            rank_diags, summary = scan_view(view)
            diags.extend(rank_diags)
            summaries[rank] = summary
        if want_hb:
            records[rank] = extract_match_records(view)
    res = {"diags": diags, "summaries": summaries, "name": sub.name}
    if want_hb:
        res["records"] = records
    return res


def lint_path(
    path: str | os.PathLike,
    config: LintConfig | None = None,
    shards: int | None = None,
    max_memory_mb: float | None = None,
    workers: int | None = None,
) -> LintReport:
    """Lint a trace file through the chunked reader.

    With ``shards``/``max_memory_mb`` the per-rank scans run in worker
    processes that each read only their rank group's bytes — the same
    partitioning the analysis engine uses (:func:`repro.core.shard.plan_shards`).
    Diagnostics are byte-identical for any shard count.
    """
    from ..core.shard import (
        _merge_worker_obs,
        _run_shard_tasks,
        plan_shards,
        shard_workers,
    )
    from ..trace.reader import TraceIndex

    config = config if config is not None else LintConfig()
    path = os.fspath(path)
    with obs.span("lint.path"):
        index = TraceIndex(path)
        counts = index.event_counts()
        plan = plan_shards(counts, shards=shards, max_memory_mb=max_memory_mb)
        known = plan.ranks
        payloads = [
            {
                "path": path,
                "ranks": tuple(group),
                "known_ranks": known,
                "num_processes": len(counts),
                "config": config,
                "shard": shard,
                "obs": obs.current_context(),
            }
            for shard, group in enumerate(plan.groups)
        ]
        nworkers = (
            shard_workers(plan.num_shards) if workers is None else workers
        )
        diags: list[Diagnostic] = []
        summaries: dict[int, RankSummary] = {}
        records: dict[int, object] | None = (
            {} if hb_rules_enabled(config) else None
        )
        name = ""
        for res in _run_shard_tasks(_lint_shard_worker, payloads, nworkers):
            _merge_worker_obs(res)
            diags.extend(res["diags"])
            summaries.update(res["summaries"])
            if records is not None:
                records.update(res.get("records", {}))
            name = res["name"] or name
        defs = index.definitions_trace()
        shared = LintShared.from_definitions(
            defs.regions, defs.metrics, len(counts), known, config
        )
        return finalize_report(
            shared,
            diags,
            summaries,
            trace_name=defs.name,
            source=path,
            match_records=records,
        )


def hb_graph_path(
    path: str | os.PathLike,
    config: LintConfig | None = None,
    shards: int | None = None,
    max_memory_mb: float | None = None,
    workers: int | None = None,
):
    """Build the global message-match graph from a trace file.

    Backs ``repro deps``: runs the same sharded per-rank extraction as
    :func:`lint_path` but skips rule scanning entirely — workers return
    only :class:`~repro.lint.hb.MatchRecords` and the parent assembles
    one :class:`~repro.lint.hb.MatchGraph`.
    """
    from ..core.shard import (
        _merge_worker_obs,
        _run_shard_tasks,
        plan_shards,
        shard_workers,
    )
    from ..trace.reader import TraceIndex
    from .hb import MatchGraph

    config = config if config is not None else LintConfig()
    path = os.fspath(path)
    with obs.span("lint.hb_graph"):
        index = TraceIndex(path)
        counts = index.event_counts()
        plan = plan_shards(counts, shards=shards, max_memory_mb=max_memory_mb)
        payloads = [
            {
                "path": path,
                "ranks": tuple(group),
                "known_ranks": plan.ranks,
                "num_processes": len(counts),
                "config": config,
                "shard": shard,
                "obs": obs.current_context(),
                "records_only": True,
            }
            for shard, group in enumerate(plan.groups)
        ]
        nworkers = (
            shard_workers(plan.num_shards) if workers is None else workers
        )
        records: dict[int, object] = {}
        for res in _run_shard_tasks(_lint_shard_worker, payloads, nworkers):
            _merge_worker_obs(res)
            records.update(res.get("records", {}))
        return MatchGraph.from_records(records, len(counts))
