"""Data model of the tracelint static-analysis pass.

Diagnostics are the lint analogue of compiler warnings: each one names
the rule that produced it (a stable ``TLxxx`` code), the severity, the
location in the event stream (rank, event index, timestamp) and a
human-readable message.  A :class:`LintReport` is a deterministic,
sorted collection of diagnostics with renderers for text, JSON and
SARIF 2.1.0 (:mod:`repro.lint.sarif`).
"""

from __future__ import annotations

import enum
import fnmatch
import json
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping

from ..core.classify import SyncClassifier, default_classifier

__all__ = [
    "Severity",
    "Diagnostic",
    "LintConfig",
    "LintError",
    "LintReport",
]


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering is meaningful (ERROR is highest)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r} (want info, warning or error)"
            ) from None

    @property
    def sarif_level(self) -> str:
        """SARIF 2.1.0 ``level`` string for this severity."""
        return {
            Severity.INFO: "note",
            Severity.WARNING: "warning",
            Severity.ERROR: "error",
        }[self]


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One finding of a lint rule.

    ``rank`` is -1 for trace-global findings; ``position`` is the event
    index inside the rank's stream (-1 when the finding has no single
    anchor event) and ``time`` the anchor event's timestamp.
    """

    code: str
    severity: Severity
    message: str
    rank: int = -1
    position: int = -1
    time: float | None = None
    category: str = ""

    @property
    def sort_key(self) -> tuple:
        return (self.code, self.rank, self.position, self.message)

    def __str__(self) -> str:
        where = f"rank {self.rank}" if self.rank >= 0 else "trace"
        loc = ""
        if self.position >= 0:
            loc = f" @ event {self.position}"
        if self.time is not None:
            loc += f" (t={self.time:.6g})"
        return (
            f"{self.severity.name.lower()}[{self.code}] {where}{loc}: "
            f"{self.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.name.lower(),
            "category": self.category,
            "rank": self.rank,
            "position": self.position,
            "time": self.time,
            "message": self.message,
        }


class LintError(ValueError):
    """Raised by the pre-flight gate when error-severity findings exist.

    Carries the full :class:`LintReport` so callers can still render
    warnings or machine-readable output from the failure.
    """

    def __init__(self, report: "LintReport", header: str = "invalid trace"):
        self.report = report
        errors = [d for d in report.diagnostics if d.severity >= Severity.ERROR]
        lines = "\n".join(str(d) for d in errors)
        super().__init__(f"{header}:\n{lines}")


@dataclass(frozen=True)
class LintConfig:
    """Knobs of a tracelint run.

    ``select``/``ignore`` hold fnmatch-style patterns over rule codes
    (``TL001``, ``TL1*``); an empty ``select`` means *all registered
    rules*.  ``severity_overrides`` remaps a rule's default severity,
    and the threshold fields parameterize the paper-precondition and
    MPI-semantic rules.  Instances are picklable so shard workers can
    receive them verbatim.
    """

    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()
    min_severity: Severity = Severity.INFO
    severity_overrides: tuple[tuple[str, Severity], ...] = ()
    allow_empty_streams: bool = False
    #: dominant-function floor: invocations >= factor * processes
    min_invocation_factor: float = 2.0
    #: TL202 fires when classified sync time / communication time < this
    sync_coverage_min: float = 0.5
    #: TL204 fires when a rank's start skew exceeds this fraction of the
    #: trace duration
    clock_skew_tolerance: float = 0.05
    #: TL104 fires when >= this fraction of sync invocations (and at
    #: least ``zero_sync_min`` of them) have exactly zero duration
    zero_sync_fraction: float = 0.25
    zero_sync_min: int = 8
    #: TL305 counts a receive as chain-significant when its blocked
    #: time reaches this fraction of the trace duration
    hb_wait_fraction: float = 0.05
    #: TL305 reports a wait chain only when it spans at least this many
    #: distinct ranks ...
    hb_chain_min_ranks: int = 3
    #: ... and its summed blocked time reaches this fraction of the
    #: trace duration.  Blocked time sums across concurrently waiting
    #: ranks, so values > 1 are meaningful; the default stays above
    #: what the mild phenomenon corpus (idle_wave/late_sender) exhibits
    #: and flags only chains that dominate the run.  Lower it (e.g. to
    #: 0.5) to use TL305 as a general idle-wave detector.
    hb_chain_wait_ratio: float = 2.0
    classifier: SyncClassifier = field(default_factory=default_classifier)

    def rule_enabled(self, code: str) -> bool:
        """Apply ``select``/``ignore`` patterns to a rule code."""
        if self.select and not any(
            fnmatch.fnmatchcase(code, pat) for pat in self.select
        ):
            return False
        return not any(fnmatch.fnmatchcase(code, pat) for pat in self.ignore)

    def severity_of(self, code: str, default: Severity) -> Severity:
        for pattern, severity in self.severity_overrides:
            if fnmatch.fnmatchcase(code, pattern):
                return severity
        return default

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "LintConfig":
        """Build a config from a parsed ``--config`` file mapping.

        Accepts the field names of this dataclass; ``select``/``ignore``
        may be lists, ``severity_overrides`` a ``{code: severity}``
        mapping, ``min_severity`` a string.
        """
        kwargs: dict[str, Any] = {}
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        for key, value in data.items():
            if key not in known:
                raise ValueError(f"unknown lint config key {key!r}")
            if key in ("select", "ignore"):
                value = tuple(str(v) for v in value)
            elif key == "min_severity":
                value = Severity.parse(str(value))
            elif key == "severity_overrides":
                value = tuple(
                    (str(code), Severity.parse(str(sev)))
                    for code, sev in dict(value).items()
                )
            elif key == "classifier":
                raise ValueError(
                    "classifier cannot be set from a config file; "
                    "construct a LintConfig programmatically"
                )
            kwargs[key] = value
        return cls(**kwargs)

    def with_overrides(self, **kwargs: Any) -> "LintConfig":
        return replace(self, **kwargs)


@dataclass(frozen=True)
class LintReport:
    """Deterministically ordered result of one tracelint run."""

    diagnostics: tuple[Diagnostic, ...]
    #: codes of the rules that actually ran (post select/ignore)
    rules_run: tuple[str, ...]
    num_events: int = 0
    num_ranks: int = 0
    trace_name: str = ""
    source: str | None = None

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def max_severity(self) -> Severity | None:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def counts(self) -> dict[str, int]:
        out = {s.name.lower(): 0 for s in Severity}
        for d in self.diagnostics:
            out[d.severity.name.lower()] += 1
        return out

    def exit_code(self) -> int:
        """CLI convention: 0 clean/info, 1 warnings, 2 errors."""
        top = self.max_severity
        if top is None or top <= Severity.INFO:
            return 0
        return 2 if top >= Severity.ERROR else 1

    def filtered(
        self,
        min_severity: Severity | None = None,
        select: Iterable[str] = (),
        ignore: Iterable[str] = (),
    ) -> "LintReport":
        """Report restricted by severity floor and code patterns."""
        select = tuple(select)
        ignore = tuple(ignore)

        def keep(d: Diagnostic) -> bool:
            if min_severity is not None and d.severity < min_severity:
                return False
            if select and not any(
                fnmatch.fnmatchcase(d.code, p) for p in select
            ):
                return False
            return not any(fnmatch.fnmatchcase(d.code, p) for p in ignore)

        return replace(
            self, diagnostics=tuple(d for d in self.diagnostics if keep(d))
        )

    def raise_for_errors(self, header: str = "invalid trace") -> None:
        """Raise :class:`LintError` if any error-severity finding exists."""
        top = self.max_severity
        if top is not None and top >= Severity.ERROR:
            raise LintError(self, header=header)

    # -- renderers -----------------------------------------------------

    def to_text(self) -> str:
        name = self.trace_name or self.source or "trace"
        lines = [
            f"tracelint: {name} — {self.num_ranks} ranks, "
            f"{self.num_events} events, {len(self.rules_run)} rules"
        ]
        for d in self.diagnostics:
            lines.append(str(d))
        counts = self.counts()
        lines.append(
            f"{counts['error']} errors, {counts['warning']} warnings, "
            f"{counts['info']} notes"
        )
        return "\n".join(lines)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "tool": "tracelint",
            "trace": self.trace_name,
            "source": self.source,
            "ranks": self.num_ranks,
            "events": self.num_events,
            "rules_run": list(self.rules_run),
            "counts": self.counts(),
            "exit_code": self.exit_code(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=False)

    def to_sarif_dict(self) -> dict[str, Any]:
        from .sarif import sarif_dict

        return sarif_dict(self)

    def to_sarif(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_sarif_dict(), indent=indent)
