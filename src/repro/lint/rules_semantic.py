"""Built-in semantic rules: MPI message semantics (TL1xx) and
paper-precondition checks (TL2xx).

The MPI rules encode cheap cross-checks over the message events —
matching send/receive counts per rank pair, uniform collective
participation, self-messages, zero-duration synchronization storms —
in the spirit of rule-based SPMD debugging (Liu et al.).  The
precondition rules check the assumptions the paper's pipeline makes
before any expensive analysis runs: a dominant-function candidate
must exist (the ``2p`` invocation floor, Section IV), the
synchronization classifier must actually cover the communication time
it is supposed to subtract (Section V), and the per-rank segment
counts and clocks must line up for segments to be comparable.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..trace.definitions import Paradigm, RegionRole
from .hb import COLLECTIVE_NAMES as _COLLECTIVE_NAMES
from .model import Severity
from .registry import Finding, register_rule

__all__: list[str] = []


# ---------------------------------------------------------------------------
# MPI semantics (TL1xx)
# ---------------------------------------------------------------------------


@register_rule(
    "TL101",
    category="mpi",
    scope="trace",
    severity=Severity.WARNING,
)
def p2p_count_mismatch(tview) -> Iterator[Finding]:
    """Send/receive counts disagree for a rank pair.

    For every ordered pair (a, b), the number of SEND events a→b must
    equal the number of RECV events recorded at b from a.  A mismatch
    means dropped message events (or a truncated stream) and skews
    every communication statistic.
    """
    summaries = tview.summaries
    for a in tview.ranks:
        for b, sent in sorted(summaries[a].sends.items()):
            if b not in summaries:
                continue  # unknown partner: TL009's business
            got = summaries[b].recvs.get(a, 0)
            if sent != got:
                yield Finding(
                    f"rank {a} sent {sent} messages to rank {b} but "
                    f"rank {b} recorded {got} receives",
                    rank=a,
                )


@register_rule(
    "TL102",
    category="mpi",
    scope="trace",
    severity=Severity.WARNING,
)
def collective_mismatch(tview) -> Iterator[Finding]:
    """Collective operation entered unevenly across ranks.

    Collectives (barrier, allreduce, alltoall, ...) must be called the
    same number of times by every rank; uneven counts indicate a
    deadlock-in-waiting or a torn trace.
    """
    shared = tview.shared
    if len(tview.ranks) < 2:
        return
    counts = np.stack(
        [tview.summaries[r].enter_counts for r in tview.ranks]
    )
    for region in range(shared.num_regions):
        if shared.region_paradigm[region] != int(Paradigm.MPI):
            continue
        if shared.region_names[region] not in _COLLECTIVE_NAMES:
            continue
        col = counts[:, region]
        lo, hi = int(col.min()), int(col.max())
        if lo != hi:
            lo_rank = tview.ranks[int(np.argmin(col))]
            hi_rank = tview.ranks[int(np.argmax(col))]
            yield Finding(
                f"collective {shared.region_names[region]!r} entered "
                f"{hi} times by rank {hi_rank} but only {lo} times by "
                f"rank {lo_rank}",
            )


@register_rule(
    "TL103",
    category="mpi",
    scope="rank",
    severity=Severity.WARNING,
)
def self_message(view) -> Iterator[Finding]:
    """Rank sends messages to itself.

    Self-sends are legal MPI but almost always a rank-translation bug
    in the measurement layer, and they inflate the communication
    matrix diagonal.
    """
    ev = view.events
    selfish = view.p2p_mask & (ev.partner == view.rank)
    if np.any(selfish):
        first = int(np.argmax(selfish))
        yield Finding(
            f"{int(np.sum(selfish))} message events have the rank itself "
            f"as partner (first at event {first})",
            position=first,
            time=view.time_at(first),
        )


@register_rule(
    "TL104",
    category="mpi",
    scope="rank",
    severity=Severity.WARNING,
)
def zero_duration_sync_storm(view) -> Iterator[Finding]:
    """Large share of synchronization calls take exactly zero time.

    Many zero-duration sync invocations usually mean the timer
    resolution was too coarse for the measurement — SOS-time then
    subtracts nothing and variations are blamed on compute.
    """
    if not view.balanced or not len(view.inv_region):
        return
    cfg = view.shared.config
    sel = view.inv_valid & view.shared.sync_mask[
        np.clip(view.inv_region, 0, view.shared.num_regions - 1)
    ]
    total = int(np.sum(sel))
    if total == 0:
        return
    zero = sel & (view.inv_duration == 0.0)
    nzero = int(np.sum(zero))
    if nzero >= max(cfg.zero_sync_min, 1) and nzero >= cfg.zero_sync_fraction * total:
        first = int(view.inv_enter_index[int(np.argmax(zero))])
        yield Finding(
            f"{nzero} of {total} synchronization invocations have zero "
            f"duration (first at event {first})",
            position=first,
            time=view.time_at(first),
        )


# ---------------------------------------------------------------------------
# Paper preconditions (TL2xx)
# ---------------------------------------------------------------------------


def _candidate_floor(tview) -> int:
    cfg = tview.shared.config
    return int(np.ceil(cfg.min_invocation_factor * tview.shared.num_processes))


def _user_mask(shared) -> np.ndarray:
    return shared.region_paradigm == int(Paradigm.USER)


@register_rule(
    "TL201",
    category="precondition",
    scope="trace",
    severity=Severity.ERROR,
)
def no_dominant_candidate(tview) -> Iterator[Finding]:
    """No function reaches the 2p invocation floor (paper Section IV).

    Dominant-function selection requires a USER-paradigm function
    invoked at least ``2p`` times; without one the trace cannot be
    segmented and the analysis pipeline will refuse it.
    """
    shared = tview.shared
    if not tview.summaries:
        return  # TL011 covers the empty trace
    floor = _candidate_floor(tview)
    counts = tview.total_enter_counts()
    user = _user_mask(shared)
    if not np.any(user & (counts >= floor)):
        best = int(counts[user].max()) if np.any(user) else 0
        yield Finding(
            f"no USER function is invoked at least {floor} times "
            f"(2p floor; best candidate reaches {best}) — "
            f"dominant-function selection will fail",
        )


@register_rule(
    "TL202",
    category="precondition",
    scope="trace",
    severity=Severity.WARNING,
)
def sync_classifier_coverage(tview) -> Iterator[Finding]:
    """Sync classifier covers too little of the communication time.

    SOS-time subtracts classified synchronization from each segment
    (paper Section V); when the classifier covers less than the
    configured share of the trace's communication/synchronization
    time, the subtraction is unsound and variations surface in the
    wrong places.
    """
    shared = tview.shared
    comm = (shared.region_paradigm == int(Paradigm.MPI)) | np.isin(
        shared.region_role,
        (int(RegionRole.SYNCHRONIZATION), int(RegionRole.COMMUNICATION)),
    )
    times = tview.total_region_time()
    comm_time = float(times[comm].sum())
    if comm_time <= 0.0:
        return
    covered = float(times[comm & shared.sync_mask].sum())
    coverage = covered / comm_time
    if coverage < shared.config.sync_coverage_min:
        yield Finding(
            f"sync classifier covers {100 * coverage:.1f}% of the "
            f"{comm_time:.6g}s communication time "
            f"(minimum {100 * shared.config.sync_coverage_min:.0f}%)",
        )


@register_rule(
    "TL203",
    category="precondition",
    scope="trace",
    severity=Severity.WARNING,
)
def segment_count_divergence(tview) -> Iterator[Finding]:
    """Ranks would produce different numbers of segments.

    Segments are comparable across ranks only when every rank invokes
    the dominant function equally often; diverging counts misalign the
    process × time heat map columns.
    """
    shared = tview.shared
    if len(tview.ranks) < 2:
        return
    floor = _candidate_floor(tview)
    counts = tview.total_enter_counts()
    user = _user_mask(shared)
    eligible = np.flatnonzero(user & (counts >= floor))
    if not len(eligible):
        return  # TL201 already covers the missing candidate
    times = tview.total_region_time()
    dominant = int(eligible[np.argmax(times[eligible])])
    per_rank = np.asarray(
        [tview.summaries[r].enter_counts[dominant] for r in tview.ranks]
    )
    lo, hi = int(per_rank.min()), int(per_rank.max())
    if lo != hi:
        lo_rank = tview.ranks[int(np.argmin(per_rank))]
        hi_rank = tview.ranks[int(np.argmax(per_rank))]
        yield Finding(
            f"dominant candidate {shared.region_names[dominant]!r} is "
            f"invoked {hi} times on rank {hi_rank} but {lo} times on "
            f"rank {lo_rank}; segments will not align across ranks",
        )


@register_rule(
    "TL204",
    category="precondition",
    scope="trace",
    severity=Severity.WARNING,
)
def clock_skew(tview) -> Iterator[Finding]:
    """Rank stream starts suspiciously far from the other ranks'.

    All ranks of an SPMD run start within moments of each other; a
    stream whose first timestamp deviates from the median start by
    more than the tolerance (default 5% of the trace duration)
    suggests unsynchronized clocks, which shifts that rank's segments
    against every visualization column.
    """
    shared = tview.shared
    active = [r for r in tview.ranks if tview.summaries[r].n_events]
    if len(active) < 2:
        return
    duration = tview.t_max - tview.t_min
    if duration <= 0.0:
        return
    starts = np.asarray([tview.summaries[r].t_first for r in active])
    median = float(np.median(starts))
    tolerance = shared.config.clock_skew_tolerance * duration
    for rank, start in zip(active, starts.tolist()):
        if abs(start - median) > tolerance:
            yield Finding(
                f"stream starts at t={start:.6g}, "
                f"{abs(start - median):.6g}s away from the median start "
                f"t={median:.6g} (tolerance {tolerance:.6g}s)",
                rank=rank,
                position=0,
                time=start,
            )
