"""Low-overhead sampling profiler for the analyzer itself.

Where spans answer *which phase* is slow, the sampler answers *which
code path inside the phase* — without instrumenting anything.  A
periodic interrupt captures the Python stack of the main thread;
samples aggregate into:

* **collapsed stacks** (``root;caller;callee N`` lines — FlameGraph /
  speedscope both ingest this),
* **speedscope JSON** (``"type": "sampled"`` profile for the
  speedscope.app UI),
* a synthetic **self-trace journal**: consecutive samples are diffed
  and the changes become ENTER/LEAVE events, so
  :meth:`repro.obs.Collector.attach_profile` can fold call paths into
  the exported ``.rpt`` v2 as one extra rank (``profile:main``) that
  the lint/hb/segmentation machinery analyses like any other location.

Two backends:

* ``signal`` (default on the main thread): ``signal.setitimer`` with
  ``ITIMER_REAL`` delivers ``SIGALRM``; the handler reads the current
  frame directly — no thread enumeration, wall-clock sampling.
* ``thread``: a daemon thread polls ``sys._current_frames()`` — works
  off the main thread or where signals are unavailable.

Overhead is bounded by construction — work happens only in the handler
(~stack-depth × dict-free frame walking per sample, at 5 ms default
interval) — and enforced by ``scripts/check_obs_overhead.py``, which
gates measured per-sample cost × sampling rate below 2 % of wall time.

Caveat: CPython runs signal handlers between bytecodes, so a long
uninterruptible C call (a big numpy reduction) defers the sample to
the call's end; attribution lands on the caller, which is the useful
answer anyway.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
from collections import Counter as _TallyCounter
from typing import Any

from .core import ENTER, LEAVE

__all__ = ["Profiler"]

#: Frames from these modules are elided — the profiler should not
#: profile itself, and obs plumbing is noise in a call-path view.
_HIDDEN_PREFIXES = ("repro.obs.profiler",)


def _frame_label(frame: Any) -> str:
    code = frame.f_code
    qualname = getattr(code, "co_qualname", code.co_name)
    module = frame.f_globals.get("__name__", "?")
    return f"{module}.{qualname}"


def _stack_of(frame: Any) -> tuple[str, ...]:
    """Root-first tuple of frame labels, obs plumbing elided."""
    labels: list[str] = []
    while frame is not None:
        label = _frame_label(frame)
        if not label.startswith(_HIDDEN_PREFIXES):
            labels.append(label)
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class Profiler:
    """Periodic stack sampler; see the module docstring.

    Samples are ``(t, stack)`` with ``t`` from the shared monotonic
    clock (so they align with collector journals) and ``stack`` a
    root-first tuple of ``module.qualname`` labels.
    """

    def __init__(self, interval: float = 0.005, clock: Any | None = None,
                 backend: str = "auto", max_samples: int = 1_000_000) -> None:
        if interval <= 0:
            raise ValueError("profiler interval must be positive")
        if backend not in ("auto", "signal", "thread"):
            raise ValueError(f"unknown profiler backend: {backend!r}")
        if clock is None:
            from ..measure.clock import RawMonotonicClock

            clock = RawMonotonicClock()
        self.interval = float(interval)
        self.clock = clock
        self.backend = backend
        self.max_samples = int(max_samples)
        self.samples: list[tuple[float, tuple[str, ...]]] = []
        self.dropped = 0
        self._running = False
        self._mode: str | None = None
        self._old_handler: Any = None
        self._thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._target_thread_id: int | None = None
        self._t_start = 0.0
        self._t_stop = 0.0

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "Profiler":
        if self._running:
            raise RuntimeError("profiler already running")
        self._running = True
        self._t_start = self.clock.now()
        use_signal = self.backend in ("auto", "signal")
        if use_signal and (
            threading.current_thread() is not threading.main_thread()
            or not hasattr(signal, "setitimer")
        ):
            if self.backend == "signal":
                raise RuntimeError(
                    "signal profiler backend requires the main thread"
                )
            use_signal = False
        if use_signal:
            self._mode = "signal"
            self._old_handler = signal.signal(signal.SIGALRM, self._on_signal)
            signal.setitimer(signal.ITIMER_REAL, self.interval, self.interval)
        else:
            self._mode = "thread"
            ident = threading.current_thread().ident
            self._target_thread_id = ident if ident is not None else 0
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._poll_loop, name="obs-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> "Profiler":
        if not self._running:
            return self
        self._running = False
        self._t_stop = self.clock.now()
        if self._mode == "signal":
            signal.setitimer(signal.ITIMER_REAL, 0.0, 0.0)
            if self._old_handler is not None:
                signal.signal(signal.SIGALRM, self._old_handler)
            self._old_handler = None
        elif self._thread is not None:
            self._stop_event.set()
            self._thread.join(timeout=2.0)
            self._thread = None
        self._mode = None
        return self

    def __enter__(self) -> "Profiler":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- sampling ------------------------------------------------------

    def _record(self, frame: Any) -> None:
        if len(self.samples) >= self.max_samples:
            self.dropped += 1
            return
        stack = _stack_of(frame)
        if stack:
            self.samples.append((self.clock.now(), stack))

    def _on_signal(self, signum: int, frame: Any) -> None:
        self._record(frame)

    def _poll_loop(self) -> None:
        target = self._target_thread_id
        while not self._stop_event.wait(self.interval):
            frame = sys._current_frames().get(target)
            if frame is not None:
                self._record(frame)

    # -- output --------------------------------------------------------

    @property
    def duration(self) -> float:
        stop = self._t_stop if self._t_stop else self.clock.now()
        return max(0.0, stop - self._t_start)

    def collapsed(self) -> str:
        """FlameGraph collapsed-stack format: ``a;b;c <count>`` lines."""
        tally: _TallyCounter = _TallyCounter(s for _, s in self.samples)
        return "\n".join(
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(tally.items())
        ) + ("\n" if tally else "")

    def speedscope(self, name: str = "repro") -> dict:
        """Speedscope ``"type": "sampled"`` profile document."""
        frame_index: dict[str, int] = {}
        frames: list[dict] = []
        sample_refs: list[list[int]] = []
        weights: list[float] = []
        t0 = self.samples[0][0] if self.samples else 0.0
        end = 0.0
        for t, stack in self.samples:
            ref = []
            for label in stack:
                idx = frame_index.get(label)
                if idx is None:
                    idx = frame_index[label] = len(frames)
                    frames.append({"name": label})
                ref.append(idx)
            sample_refs.append(ref)
            weights.append(self.interval)
            end = t - t0
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "version": "0.0.1",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0.0,
                    "endValue": max(end, len(weights) * self.interval),
                    "samples": sample_refs,
                    "weights": weights,
                }
            ],
            "exporter": "repro.obs.profiler",
        }

    def write(self, path: str | os.PathLike, name: str = "repro") -> None:
        """Write speedscope JSON (``.json``) or collapsed stacks."""
        path = os.fspath(path)
        if path.endswith(".json"):
            import json

            with open(path, "w", encoding="utf-8") as fh:
                json.dump(self.speedscope(name=name), fh)
        else:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(self.collapsed())

    def journal(self) -> dict:
        """Samples as one self-trace journal dict (ENTER/LEAVE entries).

        Consecutive stacks are diffed: frames leaving the common prefix
        emit LEAVE (deepest first), frames entering emit ENTER — a
        balanced, time-monotone call-path journal by construction.
        """
        entries: list[tuple] = []
        prev: tuple[str, ...] = ()
        last_t = self._t_start
        for t, stack in self.samples:
            common = 0
            limit = min(len(prev), len(stack))
            while common < limit and prev[common] == stack[common]:
                common += 1
            for label in reversed(prev[common:]):
                entries.append((LEAVE, t, label))
            for label in stack[common:]:
                entries.append((ENTER, t, label))
            prev = stack
            last_t = t
        t_end = max(self._t_stop or last_t, last_t)
        for label in reversed(prev):
            entries.append((LEAVE, t_end, label))
        return {
            "thread_name": "main",
            "thread_id": 0,
            "entries": entries,
            "open": [],
        }
