"""Telemetry primitives: spans, counters, gauges, and their collector.

The analyzer instruments its own hot seams (session stages, shard
workers, the fused kernel, trace I/O, the artifact cache, lint rules)
with the primitives in this module.  Design constraints, in order:

1. **Near-zero cost when disabled.**  Observability is off by default;
   every primitive checks one module-level flag before doing anything.
   ``span(...)`` returns a shared no-op singleton when disabled — no
   allocation, no clock read, no lock.  Instrumented modules hold their
   :class:`Counter` handles at import time so the disabled fast path is
   one attribute load and one flag test.
2. **Thread- and process-aware.**  Each thread records into its own
   append-only journal (no locks on the hot path); shard worker
   processes run their own collector and ship a picklable snapshot
   back with their result partials, which the parent merges in shard
   order — exactly how statistics partials travel.
3. **Monotonic, cross-process-comparable timestamps** via
   :class:`repro.measure.clock.RawMonotonicClock`, so worker journals
   merge onto one time axis with the parent's.

The collector's journals convert losslessly into a ``.rpt`` v2 trace
(:mod:`repro.obs.export`): spans become ENTER/LEAVE events, counter
and gauge samples become metric events — the analyzer's telemetry is
a trace the analyzer itself can analyse.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Iterator

__all__ = [
    "Collector",
    "Counter",
    "Gauge",
    "SpanRecord",
    "ThreadJournal",
    "collector",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "span",
    "traced",
]

#: Journal entry tags.  Entries are tuples ``(tag, time, name)`` for
#: span edges and ``(tag, time, name, value)`` for instrument samples.
ENTER, LEAVE, SAMPLE = 0, 1, 2

# Module-level switch: the whole fast-path story hangs off this one
# boolean.  ``span()``/``Counter.add()`` read it without any lock; the
# rare writers (enable/disable) hold ``_STATE_LOCK``.
_ENABLED: bool = False
_COLLECTOR: "Collector | None" = None
_STATE_LOCK = threading.Lock()


class ThreadJournal:
    """Append-only telemetry journal of one thread.

    Entries are time-ordered by construction (one writer, monotonic
    clock).  ``stack`` tracks currently-open span names so the export
    can close abandoned spans and tests can assert balance.
    """

    __slots__ = ("thread_name", "thread_id", "entries", "stack")

    def __init__(self, thread_name: str, thread_id: int) -> None:
        self.thread_name = thread_name
        self.thread_id = thread_id
        self.entries: list[tuple] = []
        self.stack: list[str] = []


class SpanRecord:
    """One finished span, as yielded by :meth:`Collector.iter_spans`."""

    __slots__ = ("name", "t_start", "t_stop", "depth", "journal")

    def __init__(self, name: str, t_start: float, t_stop: float,
                 depth: int, journal: int) -> None:
        self.name = name
        self.t_start = t_start
        self.t_stop = t_stop
        self.depth = depth
        self.journal = journal

    @property
    def duration(self) -> float:
        return self.t_stop - self.t_start


class Collector:
    """Owns the journals and instrument totals of one process.

    ``origin`` labels where the collector ran (``"main"`` in the
    parent, ``"shard-N"`` inside phase-1/2 workers); it prefixes the
    location names of the exported self-trace so shard workers appear
    as distinct ranks.
    """

    def __init__(self, clock: Any | None = None, origin: str = "main") -> None:
        if clock is None:
            from ..measure.clock import RawMonotonicClock

            clock = RawMonotonicClock()
        self.clock = clock
        self.origin = origin
        self.pid = os.getpid()
        self._local = threading.local()
        self._lock = threading.Lock()
        #: journals of this process, in creation order (main thread first)
        self.journals: list[ThreadJournal] = []
        #: snapshots merged from other processes, in merge order
        self.foreign: list[dict] = []
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}

    # -- journal access (hot path) -------------------------------------

    def _journal(self) -> ThreadJournal:
        jrn = getattr(self._local, "journal", None)
        if jrn is None:
            t = threading.current_thread()
            jrn = ThreadJournal(t.name, t.ident or 0)
            with self._lock:
                self.journals.append(jrn)
            self._local.journal = jrn
        return jrn

    def push(self, name: str) -> ThreadJournal:
        jrn = self._journal()
        jrn.entries.append((ENTER, self.clock.now(), name))
        jrn.stack.append(name)
        return jrn

    @staticmethod
    def pop(jrn: ThreadJournal, name: str, clock: Any) -> None:
        # Static so a Span can close into the journal it opened in even
        # if the active collector changed mid-span (keeps logs balanced).
        if jrn.stack and jrn.stack[-1] == name:
            jrn.stack.pop()
        jrn.entries.append((LEAVE, clock.now(), name))

    def sample(self, name: str, value: float) -> None:
        self._journal().entries.append(
            (SAMPLE, self.clock.now(), name, float(value))
        )

    # -- instruments ---------------------------------------------------

    def counter_add(self, name: str, amount: float) -> float:
        with self._lock:
            total = self._counters.get(name, 0.0) + amount
            self._counters[name] = total
        self._journal().entries.append(
            (SAMPLE, self.clock.now(), name, total)
        )
        return total

    def gauge_set(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)
        self._journal().entries.append(
            (SAMPLE, self.clock.now(), name, float(value))
        )

    def counters(self) -> dict[str, float]:
        """Counter totals, folding in merged foreign snapshots."""
        with self._lock:
            totals = dict(self._counters)
        for snap in self.foreign:
            for name, value in snap.get("counters", {}).items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def gauges(self) -> dict[str, float]:
        """Last-written gauge values (local process only)."""
        with self._lock:
            return dict(self._gauges)

    # -- cross-process shipping ----------------------------------------

    def snapshot(self) -> dict:
        """Picklable copy of everything this collector recorded.

        Shipped from shard workers back to the parent alongside their
        statistics partials; :meth:`merge` folds it in.
        """
        with self._lock:
            return {
                "origin": self.origin,
                "pid": self.pid,
                "journals": [
                    {
                        "thread_name": j.thread_name,
                        "thread_id": j.thread_id,
                        "entries": list(j.entries),
                        "open": list(j.stack),
                    }
                    for j in self.journals
                ],
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
            }

    def merge(self, snap: dict) -> None:
        """Fold a worker snapshot in (callers merge in shard order)."""
        with self._lock:
            self.foreign.append(snap)

    # -- span reconstruction -------------------------------------------

    def _all_journals(self) -> list[tuple[str, dict]]:
        """(origin, journal-dict) pairs: local first, then foreign in
        merge order — the deterministic rank order of the self-trace."""
        local = self.snapshot()
        out = [(local["origin"], j) for j in local["journals"]]
        for snap in self.foreign:
            out.extend((snap["origin"], j) for j in snap["journals"])
        return out

    def iter_spans(self) -> Iterator[SpanRecord]:
        """Finished spans across all journals (open spans are skipped)."""
        for index, (_origin, jrn) in enumerate(self._all_journals()):
            stack: list[tuple[str, float]] = []
            for entry in jrn["entries"]:
                tag = entry[0]
                if tag == ENTER:
                    stack.append((entry[2], entry[1]))
                elif tag == LEAVE and stack:
                    name, t0 = stack.pop()
                    yield SpanRecord(name, t0, entry[1], len(stack), index)


class Counter:
    """Monotonically accumulating total (hits, bytes, seconds, events).

    Handles are cheap, stateless name references: the value lives in
    the active collector, so ``enable()``/``disable()`` never
    invalidates a handle held by an instrumented module.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def add(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        c = _COLLECTOR
        if c is not None:
            c.counter_add(self.name, amount)

    inc = add

    @property
    def value(self) -> float:
        c = _COLLECTOR
        if c is None:
            return 0.0
        return c.counters().get(self.name, 0.0)


class Gauge:
    """Last-value instrument (queue depth, worker count)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def set(self, value: float) -> None:
        if not _ENABLED:
            return
        c = _COLLECTOR
        if c is not None:
            c.gauge_set(self.name, value)

    @property
    def value(self) -> float:
        c = _COLLECTOR
        if c is None:
            return 0.0
        return c.gauges().get(self.name, 0.0)


class Span:
    """Context manager recording one ENTER/LEAVE pair.

    Only constructed while observability is enabled (``span()`` hands
    out the no-op singleton otherwise).  The journal is captured at
    ``__enter__`` so the pair stays balanced even if ``disable()``
    runs mid-span.
    """

    __slots__ = ("name", "_journal", "_clock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._journal: ThreadJournal | None = None
        self._clock = None

    def __enter__(self) -> "Span":
        c = _COLLECTOR
        if _ENABLED and c is not None:
            self._journal = c.push(self.name)
            self._clock = c.clock
        return self

    def __exit__(self, *exc: object) -> None:
        jrn = self._journal
        if jrn is not None:
            Collector.pop(jrn, self.name, self._clock)
            self._journal = None


class _NullSpan:
    """Shared no-op span: the disabled fast path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str) -> "Span | _NullSpan":
    """Open a span named ``name`` (use as a context manager).

    Disabled mode returns a shared no-op object: the call costs one
    flag test, no allocation.
    """
    if not _ENABLED:
        return _NULL_SPAN
    return Span(name)


def traced(name: str | None = None) -> Callable:
    """Decorator form of :func:`span`.

    The flag is tested per call, so functions decorated at import time
    (while observability is off) still record once it is enabled.
    """

    def decorate(fn: Callable) -> Callable:
        import functools

        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _ENABLED:
                return fn(*args, **kwargs)
            with Span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# -- instrument handle cache ------------------------------------------------

_COUNTERS: dict[str, Counter] = {}
_GAUGES: dict[str, Gauge] = {}


def counter(name: str) -> Counter:
    """Shared :class:`Counter` handle for ``name``."""
    c = _COUNTERS.get(name)
    if c is None:
        c = _COUNTERS[name] = Counter(name)
    return c


def gauge(name: str) -> Gauge:
    """Shared :class:`Gauge` handle for ``name``."""
    g = _GAUGES.get(name)
    if g is None:
        g = _GAUGES[name] = Gauge(name)
    return g


# -- global switch ----------------------------------------------------------


def enabled() -> bool:
    """Whether telemetry is being recorded right now."""
    return _ENABLED


def collector() -> Collector | None:
    """The active collector, or ``None`` while disabled."""
    return _COLLECTOR


def enable(existing: Collector | None = None, origin: str = "main") -> Collector:
    """Switch telemetry on, installing (or reusing) a collector."""
    global _ENABLED, _COLLECTOR
    with _STATE_LOCK:
        if existing is not None:
            _COLLECTOR = existing
        elif _COLLECTOR is None:
            _COLLECTOR = Collector(origin=origin)
        _ENABLED = True
        return _COLLECTOR


def disable() -> Collector | None:
    """Switch telemetry off; returns the collector for late export."""
    global _ENABLED, _COLLECTOR
    with _STATE_LOCK:
        _ENABLED = False
        c, _COLLECTOR = _COLLECTOR, None
        return c
