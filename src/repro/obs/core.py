"""Telemetry primitives: spans, counters, gauges, and their collector.

The analyzer instruments its own hot seams (session stages, shard
workers, the fused kernel, trace I/O, the artifact cache, lint rules)
with the primitives in this module.  Design constraints, in order:

1. **Near-zero cost when disabled.**  Observability is off by default;
   every primitive checks one module-level flag before doing anything.
   ``span(...)`` returns a shared no-op singleton when disabled — no
   allocation, no clock read, no lock.  Instrumented modules hold their
   :class:`Counter` handles at import time so the disabled fast path is
   one attribute load and one flag test.
2. **Thread- and process-aware.**  Each thread records into its own
   append-only journal (no locks on the hot path); shard worker
   processes run their own collector and ship a picklable snapshot
   back with their result partials, which the parent merges in shard
   order — exactly how statistics partials travel.
3. **Monotonic, cross-process-comparable timestamps** via
   :class:`repro.measure.clock.RawMonotonicClock`, so worker journals
   merge onto one time axis with the parent's.

The collector's journals convert losslessly into a ``.rpt`` v2 trace
(:mod:`repro.obs.export`): spans become ENTER/LEAVE events, counter
and gauge samples become metric events — the analyzer's telemetry is
a trace the analyzer itself can analyse.
"""

from __future__ import annotations

import os
import threading
import uuid
from collections import deque
from typing import Any, Callable, Iterator

__all__ = [
    "Collector",
    "Counter",
    "Gauge",
    "SeriesRing",
    "SpanRecord",
    "ThreadJournal",
    "collector",
    "counter",
    "current_context",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "span",
    "traced",
]

#: Journal entry tags.  Entries are tuples ``(tag, time, name)`` for
#: span edges and ``(tag, time, name, value)`` for instrument samples.
ENTER, LEAVE, SAMPLE = 0, 1, 2

# Module-level switch: the whole fast-path story hangs off this one
# boolean.  ``span()``/``Counter.add()`` read it without any lock; the
# rare writers (enable/disable) hold ``_STATE_LOCK``.
_ENABLED: bool = False
_COLLECTOR: "Collector | None" = None
_STATE_LOCK = threading.Lock()


class ThreadJournal:
    """Append-only telemetry journal of one thread.

    Entries are time-ordered by construction (one writer, monotonic
    clock).  ``stack`` tracks currently-open span names so the export
    can close abandoned spans and tests can assert balance.
    """

    __slots__ = ("thread_name", "thread_id", "entries", "stack")

    def __init__(self, thread_name: str, thread_id: int) -> None:
        self.thread_name = thread_name
        self.thread_id = thread_id
        self.entries: list[tuple] = []
        self.stack: list[str] = []


class SpanRecord:
    """One finished span, as yielded by :meth:`Collector.iter_spans`."""

    __slots__ = ("name", "t_start", "t_stop", "depth", "journal")

    def __init__(self, name: str, t_start: float, t_stop: float,
                 depth: int, journal: int) -> None:
        self.name = name
        self.t_start = t_start
        self.t_stop = t_stop
        self.depth = depth
        self.journal = journal

    @property
    def duration(self) -> float:
        return self.t_stop - self.t_start


class SeriesRing:
    """Bounded time series of one instrument: O(windows) memory.

    Journals keep every individual sample, which is exactly right for a
    one-shot analysis but unbounded for a long-lived process (``repro
    monitor --follow``, the future daemon).  The ring aggregates samples
    into fixed-width time buckets instead: counters store the *increment
    sum* per bucket (a rate series), gauges store the last value seen in
    the bucket.  When the ring is full the oldest bucket is evicted, so
    memory is bounded by ``capacity`` regardless of run length.

    Buckets are kept sparse — ``(bucket_index, value)`` pairs in
    ascending bucket order — so an idle instrument costs nothing.
    """

    __slots__ = ("kind", "resolution", "capacity", "_buckets")

    def __init__(self, kind: str, resolution: float = 0.1,
                 capacity: int = 512) -> None:
        if resolution <= 0:
            raise ValueError("series resolution must be positive")
        if capacity < 1:
            raise ValueError("series capacity must be >= 1")
        self.kind = kind  # "counter" | "gauge"
        self.resolution = float(resolution)
        self.capacity = int(capacity)
        self._buckets: deque[tuple[int, float]] = deque()

    def update(self, t: float, value: float) -> None:
        """Fold one sample at time ``t`` into its bucket."""
        b = int(t / self.resolution)
        buckets = self._buckets
        if buckets:
            last_b, last_v = buckets[-1]
            if b >= last_b:
                if b == last_b:
                    if self.kind == "counter":
                        buckets[-1] = (b, last_v + value)
                    else:
                        buckets[-1] = (b, value)
                    return
            else:
                # Out-of-order sample (merged foreign series, clock
                # jitter): fold into an existing bucket if it is still
                # retained, drop it if already evicted.
                if b < buckets[0][0]:
                    return
                for i in range(len(buckets) - 1, -1, -1):
                    bi, vi = buckets[i]
                    if bi == b:
                        if self.kind == "counter":
                            buckets[i] = (bi, vi + value)
                        return
                    if bi < b:
                        buckets.insert(i + 1, (b, value))
                        break
                while len(buckets) > self.capacity:
                    buckets.popleft()
                return
        buckets.append((b, value))
        while len(buckets) > self.capacity:
            buckets.popleft()

    def items(self) -> list[tuple[float, float]]:
        """Retained ``(bucket_start_time, value)`` pairs, ascending."""
        return [(b * self.resolution, v) for b, v in self._buckets]

    def __len__(self) -> int:
        return len(self._buckets)

    # -- cross-process shipping ----------------------------------------

    def dump(self) -> dict:
        return {
            "kind": self.kind,
            "resolution": self.resolution,
            "items": [(b * self.resolution, v) for b, v in self._buckets],
        }

    def absorb(self, dumped: dict) -> None:
        """Fold a :meth:`dump` from another collector into this ring."""
        for t, v in dumped.get("items", ()):
            self.update(float(t), float(v))


class Collector:
    """Owns the journals and instrument totals of one process.

    ``origin`` labels where the collector ran (``"main"`` in the
    parent, ``"shard-N"`` inside phase-1/2 workers); it prefixes the
    location names of the exported self-trace so shard workers appear
    as distinct ranks.

    **Trace context.**  Every collector carries a ``trace_id`` (one hex
    id per causal trace), an ``epoch`` (the clock reading that is t=0
    of the exported timeline) and an optional ``parent_span`` (the span
    that launched this process).  Worker collectors inherit all three
    from the payload context (:func:`current_context`), so journals
    recorded in different processes stitch into *one* trace on *one*
    time axis — ``RawMonotonicClock`` is machine-wide, and sharing the
    epoch means a worker span can never appear to start before the
    parent stage that launched it.
    """

    def __init__(self, clock: Any | None = None, origin: str = "main",
                 trace_id: str | None = None, epoch: float | None = None,
                 parent_span: str | None = None,
                 series_resolution: float = 0.1,
                 series_capacity: int = 512) -> None:
        if clock is None:
            from ..measure.clock import RawMonotonicClock

            clock = RawMonotonicClock()
        self.clock = clock
        self.origin = origin
        self.pid = os.getpid()
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.epoch = float(epoch) if epoch is not None else float(clock.now())
        self.parent_span = parent_span
        self.series_resolution = float(series_resolution)
        self.series_capacity = int(series_capacity)
        self._local = threading.local()
        self._lock = threading.Lock()
        #: journals of this process, in creation order (main thread first)
        self.journals: list[ThreadJournal] = []
        #: snapshots merged from other processes, in merge order
        self.foreign: list[dict] = []
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._series: dict[str, SeriesRing] = {}

    # -- journal access (hot path) -------------------------------------

    def _journal(self) -> ThreadJournal:
        jrn = getattr(self._local, "journal", None)
        if jrn is None:
            t = threading.current_thread()
            jrn = ThreadJournal(t.name, t.ident or 0)
            with self._lock:
                self.journals.append(jrn)
            self._local.journal = jrn
        return jrn

    def push(self, name: str) -> ThreadJournal:
        jrn = self._journal()
        jrn.entries.append((ENTER, self.clock.now(), name))
        jrn.stack.append(name)
        return jrn

    @staticmethod
    def pop(jrn: ThreadJournal, name: str, clock: Any) -> None:
        # Static so a Span can close into the journal it opened in even
        # if the active collector changed mid-span (keeps logs balanced).
        if jrn.stack and jrn.stack[-1] == name:
            jrn.stack.pop()
        jrn.entries.append((LEAVE, clock.now(), name))

    def sample(self, name: str, value: float) -> None:
        self._journal().entries.append(
            (SAMPLE, self.clock.now(), name, float(value))
        )

    # -- instruments ---------------------------------------------------

    def counter_add(self, name: str, amount: float) -> float:
        now = self.clock.now()
        with self._lock:
            total = self._counters.get(name, 0.0) + amount
            self._counters[name] = total
            ring = self._series.get(name)
            if ring is None:
                ring = self._series[name] = SeriesRing(
                    "counter", self.series_resolution, self.series_capacity
                )
            ring.update(now - self.epoch, amount)
        self._journal().entries.append((SAMPLE, now, name, total))
        return total

    def gauge_set(self, name: str, value: float) -> None:
        now = self.clock.now()
        value = float(value)
        with self._lock:
            self._gauges[name] = value
            ring = self._series.get(name)
            if ring is None:
                ring = self._series[name] = SeriesRing(
                    "gauge", self.series_resolution, self.series_capacity
                )
            ring.update(now - self.epoch, value)
        self._journal().entries.append((SAMPLE, now, name, value))

    def _foreign_snaps(self) -> Iterator[dict]:
        """All merged snapshots, depth-first (children after parents).

        A shard worker can itself merge sub-snapshots (nested forks);
        those ride along in the worker snapshot's ``children`` list and
        must count toward totals just like direct merges.
        """
        stack = list(reversed(self.foreign))
        while stack:
            snap = stack.pop()
            yield snap
            stack.extend(reversed(snap.get("children", ())))

    def counters(self) -> dict[str, float]:
        """Counter totals, folding in merged foreign snapshots."""
        with self._lock:
            totals = dict(self._counters)
        for snap in self._foreign_snaps():
            for name, value in snap.get("counters", {}).items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def gauges(self) -> dict[str, float]:
        """Last-written gauge values (local process only)."""
        with self._lock:
            return dict(self._gauges)

    def series(self, name: str) -> list[tuple[float, float]]:
        """Merged time series of ``name``: ``(t, value)`` per bucket.

        Times are relative to the shared trace epoch.  Counter buckets
        sum across processes; gauge buckets keep the last write.
        Returns ``[]`` for instruments that never recorded.
        """
        with self._lock:
            ring = self._series.get(name)
            merged = SeriesRing(
                ring.kind if ring is not None else "counter",
                ring.resolution if ring is not None else self.series_resolution,
                ring.capacity if ring is not None else self.series_capacity,
            )
            if ring is not None:
                merged.absorb(ring.dump())
        for snap in self._foreign_snaps():
            dumped = snap.get("series", {}).get(name)
            if dumped:
                merged.absorb(dumped)
        return merged.items()

    def series_names(self) -> list[str]:
        """Names of every instrument with a recorded series."""
        with self._lock:
            names = set(self._series)
        for snap in self._foreign_snaps():
            names.update(snap.get("series", ()))
        return sorted(names)

    # -- cross-process shipping ----------------------------------------

    def snapshot(self) -> dict:
        """Picklable copy of everything this collector recorded.

        Shipped from shard workers back to the parent alongside their
        statistics partials; :meth:`merge` folds it in.  Snapshots this
        collector itself merged (nested forks — e.g. a shard worker
        that ran its own sub-workers) travel in ``children`` so no
        grandchild journal or counter is lost on the way up.
        """
        with self._lock:
            return {
                "origin": self.origin,
                "pid": self.pid,
                "trace_id": self.trace_id,
                "epoch": self.epoch,
                "parent_span": self.parent_span,
                "journals": [
                    {
                        "thread_name": j.thread_name,
                        "thread_id": j.thread_id,
                        "entries": list(j.entries),
                        "open": list(j.stack),
                    }
                    for j in self.journals
                ],
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "series": {k: r.dump() for k, r in self._series.items()},
                "children": list(self.foreign),
            }

    def merge(self, snap: dict) -> None:
        """Fold a worker snapshot in (callers merge in shard order)."""
        with self._lock:
            self.foreign.append(snap)

    def context(self) -> dict:
        """Picklable trace context to hand a child process.

        ``parent_span`` is the innermost span open on the calling
        thread — the causal parent of everything the child records.
        """
        jrn = getattr(self._local, "journal", None)
        parent = jrn.stack[-1] if jrn is not None and jrn.stack else None
        return {
            "trace_id": self.trace_id,
            "epoch": self.epoch,
            "parent_span": parent or self.parent_span,
        }

    # -- span reconstruction -------------------------------------------

    def _all_journals(self) -> list[tuple[str, dict]]:
        """(origin, journal-dict) pairs: local first, then foreign in
        depth-first merge order — the deterministic rank order of the
        self-trace.  Nested-fork children follow their parent snapshot."""
        local = self.snapshot()
        out = [(local["origin"], j) for j in local["journals"]]
        for snap in self._foreign_snaps():
            out.extend((snap["origin"], j) for j in snap["journals"])
        return out

    def attach_profile(self, profiler: Any,
                       origin: str | None = None) -> None:
        """Attach a stopped :class:`repro.obs.profiler.Profiler`.

        The profiler's samples fold into one synthetic ENTER/LEAVE
        journal (consecutive-stack diffing) merged as a foreign
        snapshot, so the self-trace grows a ``profile`` rank whose
        call-path regions are balanced and monotone by construction.
        """
        journal = profiler.journal()
        if not journal["entries"]:
            return
        self.merge({
            "origin": origin or "profile",
            "pid": self.pid,
            "trace_id": self.trace_id,
            "epoch": self.epoch,
            "parent_span": None,
            "journals": [journal],
            "counters": {"profile.samples": float(len(profiler.samples))},
            "gauges": {},
            "series": {},
            "children": [],
        })

    def iter_spans(self) -> Iterator[SpanRecord]:
        """Finished spans across all journals (open spans are skipped)."""
        for index, (_origin, jrn) in enumerate(self._all_journals()):
            stack: list[tuple[str, float]] = []
            for entry in jrn["entries"]:
                tag = entry[0]
                if tag == ENTER:
                    stack.append((entry[2], entry[1]))
                elif tag == LEAVE and stack:
                    name, t0 = stack.pop()
                    yield SpanRecord(name, t0, entry[1], len(stack), index)


class Counter:
    """Monotonically accumulating total (hits, bytes, seconds, events).

    Handles are cheap, stateless name references: the value lives in
    the active collector, so ``enable()``/``disable()`` never
    invalidates a handle held by an instrumented module.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def add(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        c = _COLLECTOR
        if c is not None:
            c.counter_add(self.name, amount)

    inc = add

    @property
    def value(self) -> float:
        c = _COLLECTOR
        if c is None:
            return 0.0
        return c.counters().get(self.name, 0.0)


class Gauge:
    """Last-value instrument (queue depth, worker count)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def set(self, value: float) -> None:
        if not _ENABLED:
            return
        c = _COLLECTOR
        if c is not None:
            c.gauge_set(self.name, value)

    @property
    def value(self) -> float:
        c = _COLLECTOR
        if c is None:
            return 0.0
        return c.gauges().get(self.name, 0.0)


class Span:
    """Context manager recording one ENTER/LEAVE pair.

    Only constructed while observability is enabled (``span()`` hands
    out the no-op singleton otherwise).  The journal is captured at
    ``__enter__`` so the pair stays balanced even if ``disable()``
    runs mid-span.
    """

    __slots__ = ("name", "_journal", "_clock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._journal: ThreadJournal | None = None
        self._clock = None

    def __enter__(self) -> "Span":
        c = _COLLECTOR
        if _ENABLED and c is not None:
            self._journal = c.push(self.name)
            self._clock = c.clock
        return self

    def __exit__(self, *exc: object) -> None:
        jrn = self._journal
        if jrn is not None:
            Collector.pop(jrn, self.name, self._clock)
            self._journal = None


class _NullSpan:
    """Shared no-op span: the disabled fast path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str) -> "Span | _NullSpan":
    """Open a span named ``name`` (use as a context manager).

    Disabled mode returns a shared no-op object: the call costs one
    flag test, no allocation.
    """
    if not _ENABLED:
        return _NULL_SPAN
    return Span(name)


def traced(name: str | None = None) -> Callable:
    """Decorator form of :func:`span`.

    The flag is tested per call, so functions decorated at import time
    (while observability is off) still record once it is enabled.
    """

    def decorate(fn: Callable) -> Callable:
        import functools

        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not _ENABLED:
                return fn(*args, **kwargs)
            with Span(label):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# -- instrument handle cache ------------------------------------------------

_COUNTERS: dict[str, Counter] = {}
_GAUGES: dict[str, Gauge] = {}


def counter(name: str) -> Counter:
    """Shared :class:`Counter` handle for ``name``."""
    c = _COUNTERS.get(name)
    if c is None:
        c = _COUNTERS[name] = Counter(name)
    return c


def gauge(name: str) -> Gauge:
    """Shared :class:`Gauge` handle for ``name``."""
    g = _GAUGES.get(name)
    if g is None:
        g = _GAUGES[name] = Gauge(name)
    return g


# -- global switch ----------------------------------------------------------


def enabled() -> bool:
    """Whether telemetry is being recorded right now."""
    return _ENABLED


def current_context() -> dict | None:
    """Trace context of the active collector, or ``None`` if disabled.

    This is what worker payloads carry: a picklable
    ``{"trace_id", "epoch", "parent_span"}`` dict that
    lets a child collector join the parent's causal trace on the
    parent's time axis.
    """
    c = _COLLECTOR
    if not _ENABLED or c is None:
        return None
    return c.context()


def collector() -> Collector | None:
    """The active collector, or ``None`` while disabled."""
    return _COLLECTOR


def enable(existing: Collector | None = None, origin: str = "main") -> Collector:
    """Switch telemetry on, installing (or reusing) a collector."""
    global _ENABLED, _COLLECTOR
    with _STATE_LOCK:
        if existing is not None:
            _COLLECTOR = existing
        elif _COLLECTOR is None:
            _COLLECTOR = Collector(origin=origin)
        _ENABLED = True
        return _COLLECTOR


def disable() -> Collector | None:
    """Switch telemetry off; returns the collector for late export."""
    global _ENABLED, _COLLECTOR
    with _STATE_LOCK:
        _ENABLED = False
        c, _COLLECTOR = _COLLECTOR, None
        return c
