"""Exporters for collected telemetry.

Three consumers, one journal format:

* :func:`self_trace` / :func:`write_self_trace` — the **dogfood
  exporter**.  Spans map to ENTER/LEAVE events, counter and gauge
  samples map to metric events, and every thread journal (main
  process threads first, then shard-worker snapshots in merge order)
  becomes a location — shard workers appear as ranks.  The result is
  a standard ``.rpt`` v2 trace: ``repro analyze self.rpt`` runs the
  paper's segmentation/SOS machinery over the analyzer's own phases.
* :func:`summarize` / :meth:`ObsSummary.format` — the human ``repro
  stats`` table: per-phase wall time, cache hit ratio, throughput.
  It is computed *from the self-trace representation* (live collectors
  are converted first), so the table and the exported file can never
  disagree.
* the JSON-lines log (:mod:`repro.obs.logs`) streams as the run
  happens; this module handles the end-of-run artifacts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..trace.builder import TraceBuilder
from ..trace.definitions import MetricMode
from ..trace.trace import Trace
from .core import ENTER, LEAVE, SAMPLE, Collector

__all__ = [
    "ObsSummary",
    "PhaseStat",
    "SELF_TRACE_ATTR",
    "self_trace",
    "summarize",
    "write_self_trace",
]

#: Trace attribute marking a telemetry export of the analyzer itself.
SELF_TRACE_ATTR = "repro.self_trace"


def _metric_unit(name: str) -> str:
    if name.endswith(".s") or name.endswith("_s"):
        return "s"
    if "bytes" in name:
        return "B"
    return "#"


def self_trace(collector: Collector, name: str = "repro-self-trace") -> Trace:
    """Convert ``collector``'s journals into an analysable trace.

    Locations are numbered in journal order — the parent process's
    threads first (main thread is rank 0), then each merged worker
    snapshot's threads in merge order, which for shard workers is
    ascending shard order (the parent merges them exactly like the
    statistics partials).  Timestamps share one monotonic axis
    (:class:`repro.measure.clock.RawMonotonicClock`) and are normalised
    against the collector's **trace epoch** — the same zero in every
    process of the trace, so a worker span can never start before the
    parent span that launched it.  (Snapshots without an epoch —
    pre-context pickles — fall back to earliest-entry normalisation.)
    """
    from .. import __version__

    journals = collector._all_journals()
    journals = [(origin, j) for origin, j in journals if j["entries"]]
    t0 = getattr(collector, "epoch", None)
    if t0 is None:
        t0 = min(j["entries"][0][1] for _, j in journals) if journals else 0.0

    ctx_attrs: dict[str, str] = {}
    for snap in collector._foreign_snaps():
        parent = snap.get("parent_span")
        if parent:
            ctx_attrs[f"ctx.{snap['origin']}.parent_span"] = str(parent)

    counters = collector.counters()
    builder = TraceBuilder(
        name=name,
        attributes={
            SELF_TRACE_ATTR: "1",
            "repro.version": __version__,
            "repro.trace_id": getattr(collector, "trace_id", "") or "",
            **ctx_attrs,
            **{f"counter.{k}": repr(v) for k, v in sorted(counters.items())},
            **{f"gauge.{k}": repr(v)
               for k, v in sorted(collector.gauges().items())},
        },
    )
    # Register definitions over *all* journals first so region/metric
    # ids are independent of which location first touched them.
    span_names: list[str] = []
    metric_names: list[str] = []
    seen_spans: set[str] = set()
    seen_metrics: set[str] = set()
    for _origin, jrn in journals:
        for entry in jrn["entries"]:
            label = entry[2]
            if entry[0] == SAMPLE:
                if label not in seen_metrics:
                    seen_metrics.add(label)
                    metric_names.append(label)
            elif label not in seen_spans:
                seen_spans.add(label)
                span_names.append(label)
    for label in sorted(span_names):
        builder.region(label)
    for label in sorted(metric_names):
        builder.metric(
            label,
            unit=_metric_unit(label),
            mode=MetricMode.ACCUMULATED,
        )

    for rank, (origin, jrn) in enumerate(journals):
        proc = builder.process(
            rank, name=f"{origin}:{jrn['thread_name']}", group="OBS"
        )
        last_t = 0.0
        for entry in jrn["entries"]:
            tag, t, label = entry[0], entry[1] - t0, entry[2]
            # The per-thread clock is monotonic, but defend against
            # float jitter at equal readings.
            t = max(t, last_t)
            last_t = t
            if tag == ENTER:
                proc.enter(t, label)
            elif tag == LEAVE:
                if proc.depth:
                    proc.leave(t)
            else:
                proc.metric(t, label, entry[3])
        # Close spans that were still open when the snapshot was taken
        # (e.g. an export from inside a long-running phase).
        while proc.depth:
            proc.leave(last_t)
    return builder.freeze()


def write_self_trace(
    collector: Collector, path: str | os.PathLike,
    name: str = "repro-self-trace",
) -> Trace:
    """Export ``collector`` as a ``.rpt`` v2 (or ``.jsonl``) file.

    The output is a valid trace by construction — it passes ``repro
    lint`` and feeds straight back into ``repro analyze``.  Writing is
    deterministic for a given collector, so repeated exports are
    bit-identical.
    """
    trace = self_trace(collector, name=name)
    path = os.fspath(path)
    if path.endswith(".jsonl"):
        from ..trace import write_jsonl

        write_jsonl(trace, path)
    else:
        from ..trace import write_binary

        write_binary(trace, path, version=2)
    return trace


# ---------------------------------------------------------------------------
# Human summary ("repro stats")
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PhaseStat:
    """Aggregated timing of one span name across all locations."""

    name: str
    count: int
    total_s: float  # inclusive (outermost frames)
    self_s: float  # exclusive (all frames)
    share: float  # of trace wall time


@dataclass(frozen=True, slots=True)
class ObsSummary:
    """Everything ``repro stats`` prints."""

    wall_s: float
    locations: int
    phases: tuple[PhaseStat, ...]
    counters: dict[str, float]
    gauges: dict[str, float]

    @property
    def cache_hit_ratio(self) -> float | None:
        hits = self.counters.get("cache.hit")
        misses = self.counters.get("cache.miss")
        if hits is None and misses is None:
            return None
        total = (hits or 0.0) + (misses or 0.0)
        return (hits or 0.0) / total if total else None

    @property
    def events_per_s(self) -> float | None:
        events = self.counters.get("analysis.events")
        if not events or self.wall_s <= 0:
            return None
        return events / self.wall_s

    def format(self) -> str:
        lines = [
            f"{'phase':<28}{'calls':>8}{'total s':>12}{'self s':>12}{'share':>8}"
        ]
        for p in self.phases:
            lines.append(
                f"{p.name:<28}{p.count:>8}{p.total_s:>12.4f}"
                f"{p.self_s:>12.4f}{100 * p.share:>7.1f}%"
            )
        if not self.phases:
            lines.append("  (no spans recorded)")
        lines.append("")
        lines.append(
            f"wall time: {self.wall_s:.4f}s across "
            f"{self.locations} location(s)"
        )
        ratio = self.cache_hit_ratio
        if ratio is not None:
            lines.append(
                f"artifact cache: {self.counters.get('cache.hit', 0):.0f} hits"
                f" / {self.counters.get('cache.miss', 0):.0f} misses"
                f" ({100 * ratio:.1f}% hit ratio)"
            )
        eps = self.events_per_s
        if eps is not None:
            lines.append(
                f"throughput: {self.counters['analysis.events']:.0f} events"
                f" / {self.wall_s:.4f}s = {eps / 1e6:.2f} M events/s"
            )
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name:<30} {self.counters[name]:.6g}")
        if self.gauges:
            lines.append("gauges:")
            for name in sorted(self.gauges):
                lines.append(f"  {name:<30} {self.gauges[name]:.6g}")
        return "\n".join(lines)


def _attr_values(trace: Trace, prefix: str) -> dict[str, float]:
    out: dict[str, float] = {}
    for key, value in trace.attributes.items():
        if key.startswith(prefix):
            try:
                out[key[len(prefix):]] = float(value)
            except ValueError:
                continue
    return out


def summarize(source: Collector | Trace) -> ObsSummary:
    """Build the ``repro stats`` summary from a collector or self-trace.

    A live :class:`Collector` is first converted with
    :func:`self_trace`, so the summary always reflects exactly what an
    export would contain.
    """
    trace = source if isinstance(source, Trace) else self_trace(source)
    if not trace.num_processes:
        # Empty collector (counters never fired, no spans): keep the
        # summary well-formed so `repro stats` can explain instead of
        # crashing on a degenerate trace.
        return ObsSummary(
            wall_s=0.0,
            locations=0,
            phases=(),
            counters=_attr_values(trace, "counter."),
            gauges=_attr_values(trace, "gauge."),
        )
    from ..profiles.replay import match_invocations
    from ..profiles.stats import compute_statistics

    tables = {
        rank: match_invocations(trace.events_of(rank)) for rank in trace.ranks
    }
    stats = compute_statistics(trace, tables)
    wall = float(trace.duration)
    phases = []
    for region_id, region in enumerate(trace.regions):
        count = int(stats.count[region_id])
        if not count:
            continue
        total = float(stats.inclusive_sum[region_id])
        phases.append(
            PhaseStat(
                name=region.name,
                count=count,
                total_s=total,
                self_s=float(stats.exclusive_sum[region_id]),
                share=total / wall if wall > 0 else 0.0,
            )
        )
    phases.sort(key=lambda p: (-p.total_s, p.name))
    return ObsSummary(
        wall_s=wall,
        locations=trace.num_processes,
        phases=tuple(phases),
        counters=_attr_values(trace, "counter."),
        gauges=_attr_values(trace, "gauge."),
    )
