"""repro.obs — self-observability for the analyzer.

The paper's thesis is that bottlenecks in a parallel run are invisible
without a trace; this package applies that thesis to the analysis
pipeline itself.  Spans and counters instrument the hot seams
(session stages, shard workers, the fused kernel, trace I/O, the
artifact cache, lint rules) and export three ways:

* a JSON-lines / text log stream (:func:`configure_logging`,
  ``REPRO_LOG=json``, ``REPRO_LOG_LEVEL``);
* a human summary table (``repro stats`` / ``--stats``);
* a **self-trace**: a valid ``.rpt`` v2 file in which spans are
  ENTER/LEAVE events, counters are metric events, and shard workers
  are ranks — ``repro analyze self.rpt`` finds the analyzer's own
  dominant phase.

Everything is off by default and costs one flag test per call site
when disabled.  See ``docs/observability.md``.
"""

from __future__ import annotations

from .core import (
    Collector,
    Counter,
    Gauge,
    SeriesRing,
    Span,
    SpanRecord,
    collector,
    counter,
    current_context,
    disable,
    enable,
    enabled,
    gauge,
    span,
    traced,
)
from .logs import configure_logging, get_logger, verbosity_level

__all__ = [
    "Collector",
    "Counter",
    "Gauge",
    "ObsSummary",
    "Profiler",
    "SeriesRing",
    "Span",
    "SpanRecord",
    "collector",
    "configure_logging",
    "counter",
    "current_context",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_logger",
    "render_prometheus",
    "self_trace",
    "span",
    "summarize",
    "traced",
    "verbosity_level",
    "write_metrics_file",
    "write_self_trace",
]

#: Export helpers pull in the trace layer; loaded on first use so that
#: instrumented low-level modules (the trace reader among them) can
#: ``import repro.obs`` without a circular import.  The profiler and
#: metrics exposition ride the same lazy hook to keep the disabled
#: import footprint minimal.
_LAZY = {
    "ObsSummary": ("export", "ObsSummary"),
    "self_trace": ("export", "self_trace"),
    "summarize": ("export", "summarize"),
    "write_self_trace": ("export", "write_self_trace"),
    "Profiler": ("profiler", "Profiler"),
    "render_prometheus": ("metrics", "render_prometheus"),
    "write_metrics_file": ("metrics", "write_metrics_file"),
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        module = importlib.import_module(f".{module_name}", __name__)
        value = getattr(module, attr)
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
