"""repro.obs — self-observability for the analyzer.

The paper's thesis is that bottlenecks in a parallel run are invisible
without a trace; this package applies that thesis to the analysis
pipeline itself.  Spans and counters instrument the hot seams
(session stages, shard workers, the fused kernel, trace I/O, the
artifact cache, lint rules) and export three ways:

* a JSON-lines / text log stream (:func:`configure_logging`,
  ``REPRO_LOG=json``, ``REPRO_LOG_LEVEL``);
* a human summary table (``repro stats`` / ``--stats``);
* a **self-trace**: a valid ``.rpt`` v2 file in which spans are
  ENTER/LEAVE events, counters are metric events, and shard workers
  are ranks — ``repro analyze self.rpt`` finds the analyzer's own
  dominant phase.

Everything is off by default and costs one flag test per call site
when disabled.  See ``docs/observability.md``.
"""

from __future__ import annotations

from .core import (
    Collector,
    Counter,
    Gauge,
    Span,
    SpanRecord,
    collector,
    counter,
    disable,
    enable,
    enabled,
    gauge,
    span,
    traced,
)
from .logs import configure_logging, get_logger, verbosity_level

__all__ = [
    "Collector",
    "Counter",
    "Gauge",
    "ObsSummary",
    "Span",
    "SpanRecord",
    "collector",
    "configure_logging",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_logger",
    "self_trace",
    "span",
    "summarize",
    "traced",
    "verbosity_level",
    "write_self_trace",
]

#: Export helpers pull in the trace layer; loaded on first use so that
#: instrumented low-level modules (the trace reader among them) can
#: ``import repro.obs`` without a circular import.
_LAZY = {
    "ObsSummary": "ObsSummary",
    "self_trace": "self_trace",
    "summarize": "summarize",
    "write_self_trace": "write_self_trace",
}


def __getattr__(name: str):
    if name in _LAZY:
        from . import export

        value = getattr(export, _LAZY[name])
        globals()[name] = value
        return value
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
