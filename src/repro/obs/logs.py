"""Logging configuration for the ``repro`` tool family.

One entry point — :func:`configure_logging` — replaces per-command
prints.  The CLI routes ``-v``/``-q``/``--log-level`` (and the
``REPRO_LOG_LEVEL`` environment variable) through it; ``REPRO_LOG=json``
switches the handler to structured JSON-lines output so analyzer
telemetry can be ingested by log pipelines.

Library modules obtain loggers via :func:`get_logger` (plain
``logging.getLogger`` under a ``repro.`` prefix) and stay silent by
default: the root ``repro`` logger sits at WARNING until configured.
"""

from __future__ import annotations

import json
import logging
import os
import sys
from typing import IO

__all__ = [
    "JsonLinesFormatter",
    "configure_logging",
    "get_logger",
    "verbosity_level",
]

#: Attributes of ``logging.LogRecord`` that are not user-supplied
#: ``extra`` fields (used to lift extras into the JSON payload).
_RECORD_FIELDS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, msg, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RECORD_FIELDS and not key.startswith("_"):
                try:
                    json.dumps(value)
                except (TypeError, ValueError):
                    value = repr(value)
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=False)


def verbosity_level(verbose: int = 0, quiet: int = 0) -> int:
    """Map ``-v``/``-q`` counts onto a logging level.

    Default WARNING; each ``-v`` steps towards DEBUG, each ``-q``
    towards CRITICAL.  ``-v -q`` cancel out.
    """
    steps = {-2: logging.CRITICAL, -1: logging.ERROR, 0: logging.WARNING,
             1: logging.INFO, 2: logging.DEBUG}
    n = max(-2, min(2, verbose - quiet))
    return steps[n]


def _parse_level(level: int | str) -> int:
    if isinstance(level, int):
        return level
    name = level.strip().upper()
    value = logging.getLevelName(name)
    if not isinstance(value, int):
        raise ValueError(f"unknown log level {level!r}")
    return value


def configure_logging(
    level: int | str | None = None,
    fmt: str | None = None,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger hierarchy.

    Parameters
    ----------
    level:
        Logging level (int or name).  ``None`` falls back to
        ``REPRO_LOG_LEVEL`` and finally WARNING.
    fmt:
        ``"text"`` (human one-liners) or ``"json"`` (JSON lines).
        ``None`` falls back to ``REPRO_LOG`` and finally text.
    stream:
        Destination (default ``sys.stderr`` so telemetry never mixes
        with report output on stdout).

    Reconfiguration replaces the handler installed by a previous call,
    so tests and long-lived sessions can switch formats freely.
    """
    if level is None:
        env = os.environ.get("REPRO_LOG_LEVEL", "").strip()
        level = _parse_level(env) if env else logging.WARNING
    else:
        level = _parse_level(level)
    if fmt is None:
        fmt = os.environ.get("REPRO_LOG", "text").strip().lower() or "text"
    if fmt not in ("text", "json"):
        raise ValueError(f"unknown log format {fmt!r} (want text or json)")

    logger = logging.getLogger("repro")
    for handler in [h for h in logger.handlers
                    if getattr(h, "_repro_obs", False)]:
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_obs = True  # type: ignore[attr-defined]
    if fmt == "json":
        handler.setFormatter(JsonLinesFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
    logger.addHandler(handler)
    logger.setLevel(level)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """Logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if name.startswith("repro"):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
