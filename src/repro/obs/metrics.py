"""Prometheus-style textfile exposition of collector telemetry.

One render path for two consumers: ``--metrics-file`` on ``analyze``
and ``monitor`` writes the file once per run (or periodically while
following a live trace), and the future ``repro serve`` daemon
(ROADMAP item 1) can serve the same bytes from ``/metrics``.

The format is the Prometheus text exposition format, version 0.0.4:

* counters are rendered as ``repro_<name>_total`` with ``# TYPE ...
  counter`` — totals fold merged worker snapshots in, exactly like
  :meth:`Collector.counters`;
* gauges are ``repro_<name>`` with ``# TYPE ... gauge``;
* the ring-buffer time series (:class:`repro.obs.SeriesRing`) surface
  their freshest bucket as ``repro_<name>_rate`` (counters; increments
  per bucket divided by the resolution) so a scraper sees recent
  activity, not just lifetime totals;
* ``repro_obs_info`` carries version/origin/trace id as labels.

Writes are atomic (temp file + ``os.replace``) so a scraper using the
node-exporter textfile collector never reads a torn file.
"""

from __future__ import annotations

import os
import re
import tempfile

from .core import Collector

__all__ = ["render_prometheus", "write_metrics_file"]

_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    """``cache.hit`` -> ``repro_cache_hit`` (Prometheus identifier)."""
    clean = _SANITIZE.sub("_", name).strip("_")
    return f"repro_{clean}"


def _fmt(value: float) -> str:
    # Integral values print without a trailing ``.0`` — counters are
    # almost always event counts and scrapers treat both the same.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(collector: Collector) -> str:
    """Render ``collector`` in the Prometheus text exposition format."""
    lines: list[str] = []

    def esc(s: str) -> str:
        return str(s).replace("\\", r"\\").replace('"', r'\"')

    lines.append("# TYPE repro_obs_info gauge")
    lines.append(
        "repro_obs_info{"
        f'origin="{esc(collector.origin)}",'
        f'trace_id="{esc(collector.trace_id)}"'
        "} 1"
    )

    for name, total in sorted(collector.counters().items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric}_total counter")
        lines.append(f"{metric}_total {_fmt(total)}")

    for name, value in sorted(collector.gauges().items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")

    # Freshest ring bucket as an instantaneous rate: what the series
    # machinery saw in the most recent resolution window.
    resolution = collector.series_resolution
    for name in collector.series_names():
        items = collector.series(name)
        if not items or name in collector.gauges():
            continue
        _, latest = items[-1]
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric}_rate gauge")
        lines.append(f"{metric}_rate {_fmt(latest / resolution)}")

    return "\n".join(lines) + "\n"


def write_metrics_file(collector: Collector, path: str | os.PathLike) -> str:
    """Atomically write the exposition for ``collector`` to ``path``."""
    path = os.fspath(path)
    text = render_prometheus(collector)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        prefix=".metrics-", suffix=".prom", dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return text
