"""Analytic network cost models for the MPI simulator.

Point-to-point transfers follow the classic latency/bandwidth
(Hockney) model; collectives use logarithmic tree costs, matching the
behaviour of common MPI implementations closely enough for the
*shape* of traces (who waits for whom, how costs grow with scale),
which is all the variation analysis consumes.

On top of the flat :class:`NetworkModel`, :class:`TopologyNetworkModel`
adds distance-dependent latency and per-link congestion queueing over
pluggable topology classes (:class:`FatTreeTopology`,
:class:`DragonflyTopology`, :class:`TorusTopology`).  The engine talks
to either through three hooks — :meth:`NetworkModel.path_latency`,
:meth:`NetworkModel.eager_completion`,
:meth:`NetworkModel.transfer_completion` — which the flat model
implements exactly as the classic formulas, so existing traces are
byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "NetworkModel",
    "Topology",
    "FatTreeTopology",
    "DragonflyTopology",
    "TorusTopology",
    "TopologyNetworkModel",
]


@dataclass(frozen=True, slots=True)
class NetworkModel:
    """Timing parameters of the simulated interconnect.

    Attributes
    ----------
    latency:
        One-way small-message latency in seconds.
    bandwidth:
        Sustained point-to-point bandwidth in bytes/second.
    eager_threshold:
        Message size (bytes) up to which sends complete without waiting
        for the receiver (eager protocol); larger messages use
        rendezvous and block until matched.
    send_overhead, recv_overhead:
        CPU-side per-message costs added to the caller.
    """

    latency: float = 1.0e-6
    bandwidth: float = 5.0e9
    eager_threshold: int = 64 * 1024
    send_overhead: float = 2.0e-7
    recv_overhead: float = 2.0e-7

    def transfer_time(self, size: int) -> float:
        """Wire time of one message of ``size`` bytes."""
        return self.latency + size / self.bandwidth

    def is_eager(self, size: int) -> bool:
        return size <= self.eager_threshold

    # -- engine hooks --------------------------------------------------
    #
    # The engine routes all point-to-point timing through these three
    # methods (plus ``reset`` between runs), so subclasses can make
    # them rank- and history-dependent.  The flat model keeps the
    # classic expressions verbatim.

    def reset(self) -> None:
        """Clear mutable transfer state before a run (flat model: none)."""

    def path_latency(self, src: int, dst: int) -> float:
        """One-way latency between two ranks."""
        return self.latency

    def eager_completion(self, src: int, dst: int, size: int, t_post: float) -> float:
        """Time the payload of an eager send arrives at the receiver."""
        return t_post + self.transfer_time(size)

    def transfer_completion(self, src: int, dst: int, size: int, start: float) -> float:
        """Completion time of a rendezvous payload starting at ``start``."""
        return start + size / self.bandwidth

    # -- collectives ---------------------------------------------------

    def _rounds(self, p: int) -> int:
        return max(1, math.ceil(math.log2(max(p, 2))))

    def barrier_cost(self, p: int) -> float:
        """Dissemination barrier: ceil(log2 p) latency-bound rounds."""
        return self._rounds(p) * self.latency

    def bcast_cost(self, size: int, p: int) -> float:
        """Binomial-tree broadcast."""
        return self._rounds(p) * self.transfer_time(size)

    def reduce_cost(self, size: int, p: int) -> float:
        """Binomial-tree reduction (compute cost folded into latency)."""
        return self._rounds(p) * self.transfer_time(size)

    def allreduce_cost(self, size: int, p: int) -> float:
        """Reduce + broadcast (factor 2 tree)."""
        return 2.0 * self._rounds(p) * self.transfer_time(size)

    def allgather_cost(self, size: int, p: int) -> float:
        """Ring allgather: (p-1) steps of the per-rank block."""
        return max(p - 1, 1) * self.transfer_time(size)

    def alltoall_cost(self, size: int, p: int) -> float:
        """Pairwise exchange: (p-1) rounds, one block per peer."""
        return max(p - 1, 1) * self.transfer_time(size)

    def gather_cost(self, size: int, p: int) -> float:
        """Root-bound gather: latency tree + root receives p-1 blocks."""
        return self._rounds(p) * self.latency + max(p - 1, 1) * size / self.bandwidth

    def scatter_cost(self, size: int, p: int) -> float:
        """Root-bound scatter (mirror of gather)."""
        return self.gather_cost(size, p)


# -- topologies ---------------------------------------------------------
#
# A topology maps rank pairs to routes: ordered tuples of hashable link
# ids.  Routes are deterministic (no randomized adaptive routing), so a
# given scenario always produces the same trace; links are undirected
# and shared both ways, which is what makes incast congestion visible.


class Topology:
    """Interface: deterministic routes between ranks."""

    #: Upper bound on hops of any route (used for collective costs).
    diameter: int = 0

    def route(self, src: int, dst: int) -> tuple:
        """Ordered link ids traversed from ``src`` to ``dst``."""
        raise NotImplementedError

    def hops(self, src: int, dst: int) -> int:
        return len(self.route(src, dst))


@dataclass(frozen=True, slots=True)
class FatTreeTopology(Topology):
    """Two-level fat-tree: hosts under leaf switches, leaves under spines.

    Routes are 0 hops (same host), 2 (same leaf: host links up and
    down) or 4 (via a spine chosen deterministically per leaf pair).
    Every host hangs off exactly one leaf, so an incast into one rank
    serializes on that rank's single down-link — the classic collapse.
    """

    leaf_arity: int = 16
    spines: int = 4
    diameter: int = 4

    def __post_init__(self) -> None:
        if self.leaf_arity <= 0 or self.spines <= 0:
            raise ValueError("leaf_arity and spines must be positive")

    def route(self, src: int, dst: int) -> tuple:
        if src == dst:
            return ()
        leaf_s, leaf_d = src // self.leaf_arity, dst // self.leaf_arity
        up = ("host", src)
        down = ("host", dst)
        if leaf_s == leaf_d:
            return (up, down)
        spine = (leaf_s * 31 + leaf_d) % self.spines
        return (up, ("leaf", leaf_s, spine), ("leaf", leaf_d, spine), down)

    def hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        return 2 if src // self.leaf_arity == dst // self.leaf_arity else 4


@dataclass(frozen=True, slots=True)
class TorusTopology(Topology):
    """k-ary n-dimensional torus with dimension-ordered shortest routing.

    Ranks map to mixed-radix coordinates over ``dims``; each hop is one
    step along the current dimension in the shorter wrap direction.
    """

    dims: tuple[int, ...] = (8, 8)

    def __post_init__(self) -> None:
        if not self.dims or any(d <= 0 for d in self.dims):
            raise ValueError("dims must be positive")
        object.__setattr__(self, "diameter", sum(d // 2 for d in self.dims))

    # diameter is derived from dims in __post_init__.
    diameter: int = 0

    def _coords(self, rank: int) -> list[int]:
        coords = []
        for d in self.dims:
            coords.append(rank % d)
            rank //= d
        return coords

    def route(self, src: int, dst: int) -> tuple:
        if src == dst:
            return ()
        cur = self._coords(src)
        goal = self._coords(dst)
        links = []
        for axis, d in enumerate(self.dims):
            while cur[axis] != goal[axis]:
                forward = (goal[axis] - cur[axis]) % d
                step = 1 if forward <= d - forward else -1
                nxt = (cur[axis] + step) % d
                a, b = cur[axis], nxt
                other = tuple(c for i, c in enumerate(cur) if i != axis)
                links.append((axis, min(a, b), max(a, b), other))
                cur[axis] = nxt
        return tuple(links)

    def hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        total = 0
        for axis, d in enumerate(self.dims):
            delta = (self._coords(dst)[axis] - self._coords(src)[axis]) % d
            total += min(delta, d - delta)
        return total


@dataclass(frozen=True, slots=True)
class DragonflyTopology(Topology):
    """Dragonfly: all-to-all routers inside a group, one global link
    per group pair, reached through a deterministic gateway router.

    Minimal routing: host up, intra-group to the gateway, global link,
    intra-group from the remote gateway, host down — at most 5 hops.
    """

    groups: int = 4
    routers: int = 4
    hosts_per_router: int = 4
    diameter: int = 5

    def __post_init__(self) -> None:
        if self.groups <= 0 or self.routers <= 0 or self.hosts_per_router <= 0:
            raise ValueError("dragonfly parameters must be positive")

    def _router(self, rank: int) -> tuple[int, int]:
        router = rank // self.hosts_per_router
        return router // self.routers % self.groups, router % self.routers

    def route(self, src: int, dst: int) -> tuple:
        if src == dst:
            return ()
        gs, rs = self._router(src)
        gd, rd = self._router(dst)
        links = [("host", src)]
        if gs == gd:
            if rs != rd:
                links.append(("intra", gs, min(rs, rd), max(rs, rd)))
        else:
            gw_s = (gs + gd) % self.routers
            gw_d = (gd + gs) % self.routers
            if rs != gw_s:
                links.append(("intra", gs, min(rs, gw_s), max(rs, gw_s)))
            links.append(("global", min(gs, gd), max(gs, gd)))
            if gw_d != rd:
                links.append(("intra", gd, min(gw_d, rd), max(gw_d, rd)))
        links.append(("host", dst))
        return tuple(links)


@dataclass(frozen=True, slots=True)
class TopologyNetworkModel(NetworkModel):
    """Distance- and congestion-aware network over a :class:`Topology`.

    Point-to-point payloads traverse their route store-and-forward:
    each link adds ``hop_latency`` plus the payload's serialization
    time at ``link_bandwidth``, and (with ``congestion``) queues behind
    earlier payloads still occupying the link.  The busy map carries
    state across messages within one run; the engine calls
    :meth:`reset` between runs so repeated simulations stay
    deterministic.

    Collective costs reuse the flat formulas with the topology's
    worst-case (diameter) latency, keeping them analytic.
    """

    topology: Topology | None = None
    #: Per-hop switch/router traversal latency in seconds.
    hop_latency: float = 5.0e-8
    #: Per-link bandwidth (bytes/s); 0 falls back to ``bandwidth``.
    link_bandwidth: float = 0.0
    #: Queue payloads behind earlier traffic on shared links.
    congestion: bool = True
    _busy: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.topology is None:
            raise ValueError("TopologyNetworkModel requires a topology")

    def reset(self) -> None:
        self._busy.clear()

    # -- point-to-point ------------------------------------------------

    def _traverse(self, src: int, dst: int, size: int, t: float) -> float:
        bw = self.link_bandwidth or self.bandwidth
        ser = size / bw
        t = t + self.latency  # injection overhead
        if not self.congestion:
            route = self.topology.route(src, dst)
            return t + len(route) * (self.hop_latency + ser)
        busy = self._busy
        for link in self.topology.route(src, dst):
            start = busy.get(link, 0.0)
            if start < t:
                start = t
            busy[link] = start + ser
            t = start + self.hop_latency + ser
        return t

    def path_latency(self, src: int, dst: int) -> float:
        return self.latency + self.hop_latency * self.topology.hops(src, dst)

    def eager_completion(self, src: int, dst: int, size: int, t_post: float) -> float:
        return self._traverse(src, dst, size, t_post)

    def transfer_completion(self, src: int, dst: int, size: int, start: float) -> float:
        return self._traverse(src, dst, size, start)

    # -- collectives ---------------------------------------------------

    def effective_latency(self) -> float:
        """Worst-case one-way latency used by the collective formulas."""
        return self.latency + self.hop_latency * self.topology.diameter

    def transfer_time(self, size: int) -> float:
        return self.effective_latency() + size / self.bandwidth

    def barrier_cost(self, p: int) -> float:
        return self._rounds(p) * self.effective_latency()

    def gather_cost(self, size: int, p: int) -> float:
        return (
            self._rounds(p) * self.effective_latency()
            + max(p - 1, 1) * size / self.bandwidth
        )
