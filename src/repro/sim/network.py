"""Analytic network cost model for the MPI simulator.

Point-to-point transfers follow the classic latency/bandwidth
(Hockney) model; collectives use logarithmic tree costs, matching the
behaviour of common MPI implementations closely enough for the
*shape* of traces (who waits for whom, how costs grow with scale),
which is all the variation analysis consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["NetworkModel"]


@dataclass(frozen=True, slots=True)
class NetworkModel:
    """Timing parameters of the simulated interconnect.

    Attributes
    ----------
    latency:
        One-way small-message latency in seconds.
    bandwidth:
        Sustained point-to-point bandwidth in bytes/second.
    eager_threshold:
        Message size (bytes) up to which sends complete without waiting
        for the receiver (eager protocol); larger messages use
        rendezvous and block until matched.
    send_overhead, recv_overhead:
        CPU-side per-message costs added to the caller.
    """

    latency: float = 1.0e-6
    bandwidth: float = 5.0e9
    eager_threshold: int = 64 * 1024
    send_overhead: float = 2.0e-7
    recv_overhead: float = 2.0e-7

    def transfer_time(self, size: int) -> float:
        """Wire time of one message of ``size`` bytes."""
        return self.latency + size / self.bandwidth

    def is_eager(self, size: int) -> bool:
        return size <= self.eager_threshold

    # -- collectives ---------------------------------------------------

    def _rounds(self, p: int) -> int:
        return max(1, math.ceil(math.log2(max(p, 2))))

    def barrier_cost(self, p: int) -> float:
        """Dissemination barrier: ceil(log2 p) latency-bound rounds."""
        return self._rounds(p) * self.latency

    def bcast_cost(self, size: int, p: int) -> float:
        """Binomial-tree broadcast."""
        return self._rounds(p) * self.transfer_time(size)

    def reduce_cost(self, size: int, p: int) -> float:
        """Binomial-tree reduction (compute cost folded into latency)."""
        return self._rounds(p) * self.transfer_time(size)

    def allreduce_cost(self, size: int, p: int) -> float:
        """Reduce + broadcast (factor 2 tree)."""
        return 2.0 * self._rounds(p) * self.transfer_time(size)

    def allgather_cost(self, size: int, p: int) -> float:
        """Ring allgather: (p-1) steps of the per-rank block."""
        return max(p - 1, 1) * self.transfer_time(size)

    def alltoall_cost(self, size: int, p: int) -> float:
        """Pairwise exchange: (p-1) rounds, one block per peer."""
        return max(p - 1, 1) * self.transfer_time(size)

    def gather_cost(self, size: int, p: int) -> float:
        """Root-bound gather: latency tree + root receives p-1 blocks."""
        return self._rounds(p) * self.latency + max(p - 1, 1) * size / self.bandwidth

    def scatter_cost(self, size: int, p: int) -> float:
        """Root-bound scatter (mirror of gather)."""
        return self.gather_cost(size, p)
