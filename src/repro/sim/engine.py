"""Discrete-event engine interpreting rank programs into traces.

The engine runs one Python generator per rank (see
:mod:`repro.sim.ops`), advances each rank's virtual clock, resolves
blocking MPI semantics (collectives complete when the slowest
participant arrives; receives complete when the matching message is
available; rendezvous sends block until matched) and records a
well-formed :class:`~repro.trace.trace.Trace` of the whole run.

Blocking semantics are what make the paper's SOS-time necessary in the
first place: a fast process spends the imbalance *waiting inside MPI*,
which the engine reproduces faithfully rather than hard-coding.

Scheduling uses the standard conservative co-routine approach: each
rank runs until it blocks; whenever a blocking condition resolves, the
affected ranks re-enter the ready queue.  If no rank can progress and
some are unfinished, the engine raises :class:`DeadlockError` naming
the blocked operations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Generator

from ..trace.builder import ProcessBuilder, TraceBuilder
from ..trace.definitions import Paradigm
from ..trace.trace import Trace
from . import ops
from .countermodel import CounterSet
from .network import NetworkModel
from .noise import NoiseModel, NoNoise

__all__ = ["Simulator", "SimResult", "DeadlockError", "simulate"]

#: Trace region names for the simulated MPI operations.
_MPI_REGION = {
    ops.Barrier: "MPI_Barrier",
    ops.Bcast: "MPI_Bcast",
    ops.Reduce: "MPI_Reduce",
    ops.Allreduce: "MPI_Allreduce",
    ops.Allgather: "MPI_Allgather",
    ops.Alltoall: "MPI_Alltoall",
    ops.Gather: "MPI_Gather",
    ops.Scatter: "MPI_Scatter",
    ops.Sendrecv: "MPI_Sendrecv",
    ops.Send: "MPI_Send",
    ops.Recv: "MPI_Recv",
    ops.Isend: "MPI_Isend",
    ops.Irecv: "MPI_Irecv",
    ops.Wait: "MPI_Wait",
    ops.Waitall: "MPI_Waitall",
}


class DeadlockError(RuntimeError):
    """No rank can progress but the program has not finished."""


@dataclass(slots=True)
class _SendRecord:
    """A posted send awaiting its matching receive."""

    src: int
    dest: int
    tag: int
    size: int
    post_time: float
    eager: bool
    #: Time the payload is available at the receiver (eager only).
    avail_time: float
    request: ops.Request | None = None  # for Isend
    #: Set for blocking rendezvous sends: rank to resume on match.
    blocked_rank: int | None = None


@dataclass(slots=True)
class _RecvRecord:
    """A posted receive awaiting its matching send."""

    src: int
    dest: int
    tag: int
    post_time: float
    request: ops.Request | None = None  # for Irecv
    #: Set for blocking receives: rank to resume on match.
    blocked_rank: int | None = None
    complete_time: float | None = None


@dataclass(slots=True)
class _CollectiveSlot:
    """Arrival bookkeeping for one collective occurrence."""

    op_name: str
    comm: ops.Comm
    arrivals: dict[int, float] = field(default_factory=dict)
    max_size: int = 0


class _RankState:
    __slots__ = (
        "rank",
        "gen",
        "clock",
        "status",
        "blocked_on",
        "resume_value",
        "builder",
        "counters",
        "coll_seq",
    )

    READY = 0
    BLOCKED = 1
    DONE = 2

    def __init__(self, rank: int, gen: Generator, builder: ProcessBuilder) -> None:
        self.rank = rank
        self.gen = gen
        self.clock = 0.0
        self.status = _RankState.READY
        self.blocked_on: str | None = None
        self.resume_value: object = None
        self.builder = builder
        self.counters: dict[str, float] = {}
        self.coll_seq: dict[int, int] = {}


@dataclass(slots=True)
class SimResult:
    """Output of one simulation run."""

    trace: Trace
    end_times: dict[int, float]
    messages: int
    collectives: int

    @property
    def makespan(self) -> float:
        return max(self.end_times.values()) if self.end_times else 0.0


class Simulator:
    """Interpret per-rank programs into a trace.

    Parameters
    ----------
    size:
        Number of ranks.
    program:
        ``program(rank, size) -> generator`` yielding
        :class:`repro.sim.ops.Op` objects.
    network:
        Interconnect cost model.
    noise:
        OS noise model applied to computations.
    counters:
        Counter specifications sampled during the run.
    name:
        Name of the produced trace.
    """

    def __init__(
        self,
        size: int,
        program: Callable[[int, int], Generator],
        network: NetworkModel | None = None,
        noise: NoiseModel | None = None,
        counters: CounterSet | None = None,
        name: str = "simulation",
        attributes: dict[str, str] | None = None,
    ) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self.network = network if network is not None else NetworkModel()
        self.noise = noise if noise is not None else NoNoise()
        self.counters = counters if counters is not None else CounterSet()
        self.tb = TraceBuilder(name=name, attributes=attributes)
        for spec in self.counters:
            self.tb.metric(spec.name, unit=spec.unit, mode=spec.mode,
                           description=spec.description)

        self._states = [
            _RankState(r, program(r, size), self.tb.process(r, name=f"Rank {r}"))
            for r in range(size)
        ]
        self._ready: deque[int] = deque(range(size))
        self._sends: dict[tuple[int, int, int], deque[_SendRecord]] = {}
        self._recvs: dict[tuple[int, int, int], deque[_RecvRecord]] = {}
        self._colls: dict[tuple[int, int], _CollectiveSlot] = {}
        self._waiters: dict[int, tuple[tuple[ops.Request, ...], int]] = {}
        self._messages = 0
        self._collectives = 0

    # -- public API -----------------------------------------------------

    def run(self) -> SimResult:
        """Execute all rank programs to completion and build the trace."""
        while self._ready:
            rank = self._ready.popleft()
            state = self._states[rank]
            if state.status != _RankState.READY:
                raise RuntimeError(
                    f"scheduler invariant violated: rank {rank} dequeued "
                    f"in state {state.status}"
                )
            self._step(state)
        blocked = [s for s in self._states if s.status == _RankState.BLOCKED]
        if blocked:
            detail = ", ".join(
                f"rank {s.rank} on {s.blocked_on}" for s in blocked[:8]
            )
            raise DeadlockError(f"simulation deadlocked: {detail}")
        trace = self.tb.freeze()
        return SimResult(
            trace=trace,
            end_times={s.rank: s.clock for s in self._states},
            messages=self._messages,
            collectives=self._collectives,
        )

    # -- scheduling core -----------------------------------------------------

    def _make_ready(self, rank: int, value: object = None) -> None:
        state = self._states[rank]
        state.status = _RankState.READY
        state.blocked_on = None
        state.resume_value = value
        self._ready.append(rank)

    def _step(self, state: _RankState) -> None:
        """Run one rank until it blocks or its program ends."""
        gen = state.gen
        while True:
            try:
                if state.resume_value is None:
                    op = next(gen)
                else:
                    value, state.resume_value = state.resume_value, None
                    op = gen.send(value)
            except StopIteration:
                state.status = _RankState.DONE
                self._emit_final_samples(state)
                return
            blocked = self._dispatch(state, op)
            if blocked:
                state.status = _RankState.BLOCKED
                return

    # -- op dispatch -----------------------------------------------------

    def _dispatch(self, state: _RankState, op: ops.Op) -> bool:
        """Interpret one op; return True if the rank must block."""
        if isinstance(op, ops.Compute):
            if op.seconds < 0 or op.interruption < 0:
                raise ValueError(
                    f"rank {state.rank}: negative Compute duration {op!r}"
                )
            self._do_compute(state, op)
        elif isinstance(op, ops.Elapse):
            if op.seconds < 0:
                raise ValueError(
                    f"rank {state.rank}: negative Elapse duration {op!r}"
                )
            state.clock += op.seconds
        elif isinstance(op, ops.Enter):
            region = self.tb.region(op.region)
            state.builder.enter(state.clock, region)
        elif isinstance(op, ops.Leave):
            region = None if op.region is None else self.tb.region(op.region)
            state.builder.leave(state.clock, region)
        elif isinstance(op, ops.Sample):
            metric = self.tb.metric(op.metric)
            value = (
                state.counters.get(op.metric, 0.0) if op.value is None else op.value
            )
            state.builder.metric(state.clock, metric, value)
        elif isinstance(op, (ops.Barrier, ops.Bcast, ops.Reduce,
                             ops.Allreduce, ops.Allgather, ops.Alltoall,
                             ops.Gather, ops.Scatter)):
            return self._do_collective(state, op)
        elif isinstance(op, ops.Sendrecv):
            return self._do_sendrecv(state, op)
        elif isinstance(op, ops.Send):
            return self._do_send(state, op)
        elif isinstance(op, ops.Recv):
            return self._do_recv(state, op)
        elif isinstance(op, ops.Isend):
            self._do_isend(state, op)
        elif isinstance(op, ops.Irecv):
            self._do_irecv(state, op)
        elif isinstance(op, ops.Wait):
            return self._do_wait(state, (op.request,), "MPI_Wait")
        elif isinstance(op, ops.Waitall):
            return self._do_wait(state, op.requests, "MPI_Waitall")
        else:
            raise TypeError(f"rank {state.rank} yielded non-op {op!r}")
        return False

    # -- computation -----------------------------------------------------

    def _do_compute(self, state: _RankState, op: ops.Compute) -> None:
        t0 = state.clock
        interruption = op.interruption + self.noise.interruption(
            state.rank, t0, op.seconds
        )
        wall = op.seconds + interruption
        region = self.tb.region(op.region) if op.region else None
        if region is not None:
            state.builder.enter(t0, region)
        state.clock = t0 + wall
        changed = []
        for spec in self.counters:
            inc = spec.increment(state.rank, op.seconds)
            if inc:
                state.counters[spec.name] = state.counters.get(spec.name, 0.0) + inc
                changed.append(spec.name)
        if op.counters:
            for name, inc in op.counters.items():
                self.tb.metric(name)  # lazily define
                state.counters[name] = state.counters.get(name, 0.0) + float(inc)
                if name not in changed:
                    changed.append(name)
        for name in changed:
            state.builder.metric(
                state.clock, self.tb.metrics.id_of(name), state.counters[name]
            )
        if region is not None:
            state.builder.leave(state.clock, region)

    def _emit_final_samples(self, state: _RankState) -> None:
        """Flush final counter values so step charts extend to the end."""
        for name, value in sorted(state.counters.items()):
            state.builder.metric(state.clock, self.tb.metrics.id_of(name), value)

    # -- MPI region helpers -----------------------------------------------------

    def _mpi_region(self, op: ops.Op) -> int:
        name = _MPI_REGION[type(op)]
        return self.tb.region(name, paradigm=Paradigm.MPI)

    # -- collectives -----------------------------------------------------

    def _resolve_comm(self, comm: ops.Comm) -> ops.Comm:
        if comm is ops.WORLD or (comm.id == 0 and not comm.ranks):
            return ops.Comm(id=0, ranks=tuple(range(self.size)))
        return comm

    def _collective_cost(self, op: ops.Op, size: int, p: int) -> float:
        net = self.network
        if isinstance(op, ops.Barrier):
            return net.barrier_cost(p)
        if isinstance(op, ops.Bcast):
            return net.bcast_cost(size, p)
        if isinstance(op, ops.Reduce):
            return net.reduce_cost(size, p)
        if isinstance(op, ops.Allreduce):
            return net.allreduce_cost(size, p)
        if isinstance(op, ops.Allgather):
            return net.allgather_cost(size, p)
        if isinstance(op, ops.Alltoall):
            return net.alltoall_cost(size, p)
        if isinstance(op, ops.Gather):
            return net.gather_cost(size, p)
        if isinstance(op, ops.Scatter):
            return net.scatter_cost(size, p)
        raise TypeError(f"not a collective: {op!r}")

    def _do_collective(self, state: _RankState, op) -> bool:
        comm = self._resolve_comm(op.comm)
        if state.rank not in comm.ranks:
            raise ValueError(
                f"rank {state.rank} calls a collective on communicator "
                f"{comm.id} it does not belong to"
            )
        seq = state.coll_seq.get(comm.id, 0)
        state.coll_seq[comm.id] = seq + 1
        key = (comm.id, seq)
        slot = self._colls.get(key)
        op_name = _MPI_REGION[type(op)]
        if slot is None:
            slot = _CollectiveSlot(op_name=op_name, comm=comm)
            self._colls[key] = slot
        elif slot.op_name != op_name:
            raise RuntimeError(
                f"collective mismatch on comm {comm.id} occurrence {seq}: "
                f"{slot.op_name} vs {op_name} (rank {state.rank})"
            )
        region = self._mpi_region(op)
        state.builder.enter(state.clock, region)
        slot.arrivals[state.rank] = state.clock
        slot.max_size = max(slot.max_size, getattr(op, "size", 0))

        if len(slot.arrivals) == comm.size:
            del self._colls[key]
            self._collectives += 1
            finish = max(slot.arrivals.values()) + self._collective_cost(
                op, slot.max_size, comm.size
            )
            for rank in comm.ranks:
                other = self._states[rank]
                other.clock = finish
                other.builder.leave(finish, region)
                if rank != state.rank:
                    self._make_ready(rank)
            return False  # caller continues immediately
        state.blocked_on = f"{op_name}(comm={comm.id}, seq={seq})"
        return True

    # -- point-to-point: posting -----------------------------------------------------

    def _send_queue(self, key) -> deque:
        return self._sends.setdefault(key, deque())

    def _recv_queue(self, key) -> deque:
        return self._recvs.setdefault(key, deque())

    def _pop_pending_recv(self, key) -> _RecvRecord | None:
        queue = self._recvs.get(key)
        if not queue:
            return None
        recv = queue.popleft()
        if not queue:
            del self._recvs[key]
        return recv

    def _pop_pending_send(self, key) -> _SendRecord | None:
        queue = self._sends.get(key)
        if not queue:
            return None
        send = queue.popleft()
        if not queue:
            del self._sends[key]
        return send

    def _do_sendrecv(self, state: _RankState, op: ops.Sendrecv) -> bool:
        """Combined exchange: post the receive, eager-send, then wait.

        Implemented as Irecv + Isend + Waitall so it can never deadlock
        even when all ranks call it simultaneously (the MPI guarantee).
        """
        region = self._mpi_region(op)
        t0 = state.clock
        state.builder.enter(t0, region)
        recv_size = op.size if op.recv_size is None else op.recv_size
        # Post receive.
        recv_request = ops.Request(state.rank, "recv", op.source, recv_size, op.tag)
        recv_record = _RecvRecord(
            src=op.source, dest=state.rank, tag=op.tag, post_time=t0,
            request=recv_request,
        )
        match = self._match_recv(recv_record)
        if match is not None:
            completion, send = match
            recv_request.complete_time = max(t0, completion)
            recv_request.size = send.size
        else:
            self._recv_queue((op.source, state.rank, op.tag)).append(recv_record)
        # Post send.
        state.builder.send(t0, op.dest, op.size, op.tag)
        send_request = ops.Request(state.rank, "send", op.dest, op.size, op.tag)
        eager = self.network.is_eager(op.size)
        send_record = _SendRecord(
            src=state.rank, dest=op.dest, tag=op.tag, size=op.size,
            post_time=t0, eager=eager,
            avail_time=t0 + self.network.transfer_time(op.size),
            request=send_request,
        )
        self._messages += 1
        if eager:
            send_request.complete_time = t0 + self.network.send_overhead
        pending = self._pop_pending_recv((state.rank, op.dest, op.tag))
        if pending is not None:
            if eager:
                payload_time = send_record.avail_time
            else:
                payload_time = self._rendezvous_completion(
                    send_record, pending.post_time
                )
                send_request.complete_time = payload_time
            self._deliver(pending, send_record, payload_time)
        else:
            self._send_queue((state.rank, op.dest, op.tag)).append(send_record)
        # Wait for both.
        requests = (recv_request, send_request)
        if all(r.done for r in requests):
            self._finish_wait(state, requests, region)
            return False
        self._waiters[state.rank] = (requests, region)
        state.blocked_on = f"MPI_Sendrecv(dest={op.dest}, source={op.source})"
        return True

    def _do_send(self, state: _RankState, op: ops.Send) -> bool:
        key = (state.rank, op.dest, op.tag)
        region = self._mpi_region(op)
        t0 = state.clock
        state.builder.enter(t0, region)
        state.builder.send(t0, op.dest, op.size, op.tag)
        eager = self.network.is_eager(op.size)
        record = _SendRecord(
            src=state.rank,
            dest=op.dest,
            tag=op.tag,
            size=op.size,
            post_time=t0,
            eager=eager,
            avail_time=t0 + self.network.transfer_time(op.size),
        )
        self._messages += 1
        if eager:
            recv = self._pop_pending_recv(key)
            if recv is not None:
                self._deliver(recv, record, record.avail_time)
            else:
                self._send_queue(key).append(record)
            state.clock = t0 + self.network.send_overhead
            state.builder.leave(state.clock, region)
            return False
        # Rendezvous: the send completes only once matched.
        recv = self._pop_pending_recv(key)
        if recv is not None:
            completion = self._rendezvous_completion(record, recv.post_time)
            self._deliver(recv, record, completion)
            state.clock = completion
            state.builder.leave(completion, region)
            return False
        record.blocked_rank = state.rank
        self._send_queue(key).append(record)
        state.blocked_on = f"MPI_Send(dest={op.dest}, tag={op.tag})"
        return True

    def _do_isend(self, state: _RankState, op: ops.Isend) -> None:
        key = (state.rank, op.dest, op.tag)
        region = self._mpi_region(op)
        t0 = state.clock
        state.builder.enter(t0, region)
        state.builder.send(t0, op.dest, op.size, op.tag)
        request = ops.Request(state.rank, "send", op.dest, op.size, op.tag)
        eager = self.network.is_eager(op.size)
        record = _SendRecord(
            src=state.rank,
            dest=op.dest,
            tag=op.tag,
            size=op.size,
            post_time=t0,
            eager=eager,
            avail_time=t0 + self.network.transfer_time(op.size),
            request=request,
        )
        self._messages += 1
        if eager:
            request.complete_time = t0 + self.network.send_overhead
        recv = self._pop_pending_recv(key)
        if recv is not None:
            if eager:
                payload_time = record.avail_time
            else:
                payload_time = self._rendezvous_completion(record, recv.post_time)
                request.complete_time = payload_time
            self._deliver(recv, record, payload_time)
        else:
            self._send_queue(key).append(record)
        state.clock = t0 + self.network.send_overhead
        state.builder.leave(state.clock, region)
        state.resume_value = request

    def _do_recv(self, state: _RankState, op: ops.Recv) -> bool:
        key = (op.source, state.rank, op.tag)
        region = self._mpi_region(op)
        t0 = state.clock
        state.builder.enter(t0, region)
        record = _RecvRecord(
            src=op.source, dest=state.rank, tag=op.tag, post_time=t0,
            blocked_rank=state.rank,
        )
        match = self._match_recv(record)
        if match is not None:
            completion, send = match
            finish = max(t0, completion) + self.network.recv_overhead
            state.clock = finish
            state.builder.recv(finish, op.source, send.size, op.tag)
            state.builder.leave(finish, region)
            return False
        self._recv_queue(key).append(record)
        state.blocked_on = f"MPI_Recv(source={op.source}, tag={op.tag})"
        return True

    def _do_irecv(self, state: _RankState, op: ops.Irecv) -> None:
        key = (op.source, state.rank, op.tag)
        region = self._mpi_region(op)
        t0 = state.clock
        state.builder.enter(t0, region)
        request = ops.Request(state.rank, "recv", op.source, op.size, op.tag)
        record = _RecvRecord(
            src=op.source, dest=state.rank, tag=op.tag, post_time=t0,
            request=request,
        )
        match = self._match_recv(record)
        if match is not None:
            completion, send = match
            request.complete_time = max(t0, completion)
            request.size = send.size
        else:
            self._recv_queue(key).append(record)
        state.clock = t0 + self.network.recv_overhead
        state.builder.leave(state.clock, region)
        state.resume_value = request

    # -- point-to-point: matching -----------------------------------------------------

    def _match_recv(
        self, record: _RecvRecord
    ) -> tuple[float, _SendRecord] | None:
        """Try to match a freshly posted receive.

        Returns ``(payload_time, send)`` on success.  If the matching
        send was a pending *rendezvous* send, the (blocked or
        nonblocking) sender side is completed here as well.
        """
        key = (record.src, record.dest, record.tag)
        send = self._pop_pending_send(key)
        if send is None:
            return None
        if send.eager:
            return send.avail_time, send
        completion = self._rendezvous_completion(send, record.post_time)
        self._finish_rendezvous_sender(send, completion)
        return completion, send

    def _rendezvous_completion(self, send: _SendRecord, recv_post: float) -> float:
        start = max(send.post_time + self.network.latency, recv_post)
        return start + send.size / self.network.bandwidth

    def _finish_rendezvous_sender(self, send: _SendRecord, completion: float) -> None:
        """Complete the sender side of a matched rendezvous send.

        Only called for sends that were *pending* in the queue, i.e.
        whose rank is currently blocked (blocking send) or running
        elsewhere (isend) — never for the rank being dispatched.
        """
        if send.request is not None:
            send.request.complete_time = completion
            self._check_waiters()
        if send.blocked_rank is not None:
            sender = self._states[send.blocked_rank]
            sender.clock = completion
            region = self.tb.region("MPI_Send", paradigm=Paradigm.MPI)
            sender.builder.leave(completion, region)
            self._make_ready(send.blocked_rank)

    def _deliver(self, recv: _RecvRecord, send: _SendRecord, payload_time: float) -> None:
        """Complete the receiver side of a match where the recv was pending."""
        if recv.request is not None:  # Irecv
            recv.request.complete_time = max(recv.post_time, payload_time)
            self._check_waiters()
            return
        # Blocking receive: resume the receiver.
        receiver = self._states[recv.blocked_rank]
        finish = max(receiver.clock, payload_time) + self.network.recv_overhead
        receiver.clock = finish
        receiver.builder.recv(finish, send.src, send.size, send.tag)
        region = self.tb.region("MPI_Recv", paradigm=Paradigm.MPI)
        receiver.builder.leave(finish, region)
        self._make_ready(recv.blocked_rank)

    # -- wait -----------------------------------------------------

    def _do_wait(
        self, state: _RankState, requests: tuple[ops.Request, ...], name: str
    ) -> bool:
        region = self.tb.region(name, paradigm=Paradigm.MPI)
        state.builder.enter(state.clock, region)
        if all(r.done for r in requests):
            self._finish_wait(state, requests, region)
            return False
        self._waiters[state.rank] = (requests, region)
        state.blocked_on = f"{name}({len(requests)} requests)"
        return True

    def _finish_wait(
        self, state: _RankState, requests: tuple[ops.Request, ...], region: int
    ) -> None:
        finish = max(
            [state.clock] + [r.complete_time for r in requests]  # type: ignore[list-item]
        )
        for r in requests:
            if r.kind == "recv":
                state.builder.recv(finish, r.peer, r.size, r.tag)
        state.clock = finish
        state.builder.leave(finish, region)

    def _check_waiters(self) -> None:
        """Resume ranks whose waited-on requests have all completed."""
        done = [
            rank
            for rank, (requests, _region) in self._waiters.items()
            if all(r.done for r in requests)
        ]
        for rank in done:
            requests, region = self._waiters.pop(rank)
            state = self._states[rank]
            self._finish_wait(state, requests, region)
            self._make_ready(rank)


def simulate(
    size: int,
    program: Callable[[int, int], Generator],
    network: NetworkModel | None = None,
    noise: NoiseModel | None = None,
    counters: CounterSet | None = None,
    name: str = "simulation",
    attributes: dict[str, str] | None = None,
) -> SimResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(
        size=size,
        program=program,
        network=network,
        noise=noise,
        counters=counters,
        name=name,
        attributes=attributes,
    ).run()
