"""Late-sender cascade: a slow producer starving a processing pipeline.

The classic late-sender inefficiency pattern (Scalasca/KOJAK
terminology): a receiver posts its ``MPI_Recv`` early and then sits in
it because the matching send happens late.  Arranged in a pipeline —
rank *r* receives from *r − 1*, post-processes, forwards to *r + 1* —
one slow head rank starves every downstream stage, and the waiting
*cascades*: the further down the chain, the longer the accumulated
wait.  A periodic barrier (the ``wait-at-barrier`` mix) re-couples all
ranks every ``barrier_every`` iterations, so both patterns appear in
one trace.

In the SOS heat map the cascade shows as waiting time growing
monotonically with the rank index during the slow head's episodes —
the mirror image of the serialization workload, where waiting grows
because of a shared resource rather than an upstream dependency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...trace.trace import Trace
from .. import ops
from ..countermodel import CounterSet
from ..engine import SimResult, simulate
from ..network import NetworkModel
from ..noise import NoiseModel

__all__ = ["LateSenderConfig", "generate", "generate_result"]


@dataclass(frozen=True)
class LateSenderConfig:
    """Parameters of the late-sender pipeline."""

    ranks: int = 12
    iterations: int = 20
    #: Per-stage processing cost per iteration.
    base_compute: float = 0.008
    #: Slowdown factor of the head rank during a slow episode.
    head_factor: float = 4.0
    #: The head is slow on iterations where ``it % slow_every == 0``.
    slow_every: int = 3
    #: Payload forwarded down the pipeline.
    msg_bytes: int = 4 * 1024
    #: A global barrier every this many iterations (0 = never): the
    #: wait-at-barrier mix riding on top of the cascade.
    barrier_every: int = 5

    def __post_init__(self) -> None:
        if self.ranks < 2:
            raise ValueError("a pipeline needs at least 2 ranks")
        if self.slow_every < 1:
            raise ValueError("slow_every must be >= 1")


def _program_factory(config: LateSenderConfig):
    def program(rank: int, size: int):
        yield ops.Enter("main")
        yield ops.Compute(config.base_compute / 4, region="setup")
        for it in range(config.iterations):
            yield ops.Enter("iteration")
            if rank == 0:
                slow = it % config.slow_every == 0
                cost = config.base_compute * (
                    config.head_factor if slow else 1.0
                )
                yield ops.Compute(cost, region="produce")
                yield ops.Send(1, size=config.msg_bytes, tag=11)
            else:
                # Post the receive first: the canonical late-sender
                # shape — the wait is attributed to MPI_Recv.
                yield ops.Recv(rank - 1, size=config.msg_bytes, tag=11)
                yield ops.Compute(config.base_compute, region="process")
                if rank < size - 1:
                    yield ops.Send(rank + 1, size=config.msg_bytes, tag=11)
            if config.barrier_every and (it + 1) % config.barrier_every == 0:
                yield ops.Barrier()
            yield ops.Leave("iteration")
        yield ops.Leave("main")

    return program


def generate_result(
    config: LateSenderConfig | None = None,
    network: NetworkModel | None = None,
    noise: NoiseModel | None = None,
) -> SimResult:
    """Simulate the pipeline and return the :class:`SimResult`."""
    if config is None:
        config = LateSenderConfig()
    return simulate(
        size=config.ranks,
        program=_program_factory(config),
        network=network,
        noise=noise,
        counters=CounterSet((CounterSet.cycles(),)),
        name="late-sender pipeline",
        attributes={
            "workload": "late_sender",
            "processes": str(config.ranks),
            "iterations": str(config.iterations),
            "head_factor": str(config.head_factor),
        },
    )


def generate(
    ranks: int = 12,
    iterations: int = 20,
    **overrides,
) -> Trace:
    """Generate a late-sender cascade trace (convenience wrapper)."""
    config = LateSenderConfig(ranks=ranks, iterations=iterations, **overrides)
    return generate_result(config).trace
