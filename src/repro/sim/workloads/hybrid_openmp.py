"""Hybrid MPI + OpenMP workload with a thread-level defect.

The paper's SOS subtraction explicitly covers OpenMP synchronization
("``omp barrier``", Section V).  This workload exercises that path: a
hybrid code where every rank runs OpenMP-parallel loops between MPI
collectives.  One rank suffers a *thread-level* problem (one slow core,
e.g. thermal throttling): its parallel regions take longer although the
distributed work is perfectly balanced — a bottleneck class that pure
MPI-level accounting attributes to the wrong place.

The simulator models the fork-join structure per rank: the parallel
loop's wall time is the slowest thread's time, followed by the implicit
``omp barrier`` whose duration is the thread-imbalance wait (recorded
with OpenMP paradigm so the classifier subtracts it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...trace.definitions import Paradigm, RegionRole
from ...trace.trace import Trace
from .. import ops
from ..countermodel import CounterSet
from ..engine import SimResult, Simulator
from ..network import NetworkModel
from ..noise import GaussianJitter, NoiseModel

__all__ = ["HybridConfig", "generate", "generate_result"]


@dataclass(frozen=True)
class HybridConfig:
    """Parameters of the hybrid MPI+OpenMP stand-in."""

    ranks: int = 16
    threads_per_rank: int = 8
    iterations: int = 20
    #: Total per-rank work per iteration (seconds of single-thread time).
    work_per_iteration: float = 0.08
    #: The defective rank and the slowdown of its one bad core.
    slow_rank: int = 5
    slow_thread_factor: float = 2.5
    #: Per-thread imbalance of the loop's work distribution (relative).
    thread_spread: float = 0.05
    jitter_sigma: float = 0.003
    seed: int = 20160819


def _thread_times(config: HybridConfig, rank: int, step: int) -> np.ndarray:
    """Per-thread execution time of one parallel loop instance."""
    rng = np.random.default_rng(
        (config.seed, rank, step, 0xC0FFEE)
    )
    base = config.work_per_iteration / config.threads_per_rank
    times = base * (
        1.0 + config.thread_spread * rng.uniform(-1.0, 1.0, config.threads_per_rank)
    )
    if rank == config.slow_rank:
        times[0] *= config.slow_thread_factor  # the throttled core
    return times


def _program_factory(config: HybridConfig):
    def program(rank: int, size: int):
        yield ops.Enter("main")
        yield ops.Compute(0.01, region="setup")
        for step in range(config.iterations):
            yield ops.Enter("timestep")
            times = _thread_times(config, rank, step)
            slowest = float(times.max())
            mean = float(times.mean())
            # Fork-join: the region's wall time is the slowest thread;
            # the average thread then sits in the implicit barrier for
            # (slowest - mean).  We record the compute part as the
            # parallel loop and the wait as an OpenMP barrier region.
            yield ops.Compute(mean, region="omp_parallel_for")
            yield ops.Enter("omp barrier")
            yield ops.Elapse(slowest - mean)
            yield ops.Leave("omp barrier")
            # MPI phase: neighbour exchange + global reduction.
            left, right = (rank - 1) % size, (rank + 1) % size
            r1 = yield ops.Irecv(left, size=8 * 1024, tag=step)
            r2 = yield ops.Irecv(right, size=8 * 1024, tag=step)
            s1 = yield ops.Isend(right, size=8 * 1024, tag=step)
            s2 = yield ops.Isend(left, size=8 * 1024, tag=step)
            yield ops.Waitall([r1, r2, s1, s2])
            yield ops.Allreduce(size=8)
            yield ops.Leave("timestep")
        yield ops.Leave("main")

    return program


def generate_result(
    config: HybridConfig | None = None,
    network: NetworkModel | None = None,
    noise: NoiseModel | None = None,
) -> SimResult:
    """Simulate the hybrid workload and return the :class:`SimResult`."""
    if config is None:
        config = HybridConfig()
    if not 0 <= config.slow_rank < config.ranks:
        raise ValueError("slow_rank outside the rank range")
    if noise is None:
        noise = GaussianJitter(sigma=config.jitter_sigma, seed=config.seed)
    simulator = Simulator(
        size=config.ranks,
        program=_program_factory(config),
        network=network,
        noise=noise,
        counters=CounterSet((CounterSet.cycles(),)),
        name="hybrid MPI+OpenMP",
        attributes={
            "workload": "hybrid_openmp",
            "processes": str(config.ranks),
            "threads_per_rank": str(config.threads_per_rank),
            "slow_rank": str(config.slow_rank),
        },
    )
    # Register the OpenMP regions with their proper paradigm up front so
    # the classifier treats the implicit barrier as synchronization.
    simulator.tb.region(
        "omp barrier", paradigm=Paradigm.OPENMP, role=RegionRole.SYNCHRONIZATION
    )
    simulator.tb.region("omp_parallel_for", paradigm=Paradigm.OPENMP,
                        role=RegionRole.COMPUTE)
    return simulator.run()


def generate(
    ranks: int = 16,
    iterations: int = 20,
    seed: int = 20160819,
    **overrides,
) -> Trace:
    """Generate a hybrid MPI+OpenMP trace (convenience wrapper)."""
    if "slow_rank" not in overrides and ranks != 16:
        # Keep the defect at the same relative position when scaled.
        overrides["slow_rank"] = (5 * ranks) // 16
    config = HybridConfig(ranks=ranks, iterations=iterations, seed=seed,
                          **overrides)
    return generate_result(config).trace
