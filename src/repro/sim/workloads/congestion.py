"""Congestion collapse: an incast serializing on one fat-tree down-link.

Every iteration all ranks dump a result block onto rank 0 (the classic
reduction-by-hand / checkpoint-writer pattern) before re-synchronizing
on a barrier.  On a flat network the incast costs one transfer time;
on a real fabric the payloads share the root's single down-link and
queue behind each other, so the root-side completion degrades linearly
with the rank count — congestion collapse.

The workload therefore runs on a :class:`TopologyNetworkModel` over a
two-level :class:`FatTreeTopology` with per-link queueing enabled.  In
the SOS heat map the collapse shows as waiting time at the barrier
growing with distance from the root's leaf switch, while the root's
own waiting stays near zero — a signature a flat latency/bandwidth
model cannot produce.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...trace.trace import Trace
from .. import ops
from ..countermodel import CounterSet
from ..engine import SimResult, simulate
from ..network import FatTreeTopology, NetworkModel, TopologyNetworkModel
from ..noise import NoiseModel

__all__ = ["CongestionConfig", "generate", "generate_result"]


@dataclass(frozen=True)
class CongestionConfig:
    """Parameters of the incast workload and its fat-tree fabric."""

    ranks: int = 64
    iterations: int = 30
    #: Per-rank compute between incasts (perfectly balanced).
    base_compute: float = 2.0e-3
    #: Result block each rank pushes to the root per iteration (eager,
    #: so the payloads queue on the fabric rather than rendezvous).
    message_bytes: int = 32 * 1024
    #: Hosts per leaf switch of the fat tree.
    leaf_arity: int = 16
    #: Spine switches above the leaves.
    spines: int = 4
    #: Per-link bandwidth (bytes/s) — the shared-resource bottleneck.
    link_bandwidth: float = 2.5e9

    def __post_init__(self) -> None:
        if self.ranks < 2:
            raise ValueError("an incast needs at least 2 ranks")
        if self.message_bytes <= 0:
            raise ValueError("message_bytes must be positive")


def _network(config: CongestionConfig) -> TopologyNetworkModel:
    return TopologyNetworkModel(
        topology=FatTreeTopology(
            leaf_arity=config.leaf_arity, spines=config.spines
        ),
        link_bandwidth=config.link_bandwidth,
    )


def _program_factory(config: CongestionConfig):
    def program(rank: int, size: int):
        yield ops.Enter("main")
        yield ops.Compute(config.base_compute / 4, region="setup")
        for _it in range(config.iterations):
            yield ops.Enter("iteration")
            yield ops.Compute(config.base_compute, region="work")
            if rank == 0:
                reqs = []
                for src in range(1, size):
                    req = yield ops.Irecv(
                        src, size=config.message_bytes, tag=13
                    )
                    reqs.append(req)
                yield ops.Waitall(reqs)
            else:
                s = yield ops.Isend(0, size=config.message_bytes, tag=13)
                yield ops.Waitall([s])
            yield ops.Barrier()
            yield ops.Leave("iteration")
        yield ops.Leave("main")

    return program


def generate_result(
    config: CongestionConfig | None = None,
    network: NetworkModel | None = None,
    noise: NoiseModel | None = None,
) -> SimResult:
    """Simulate the incast and return the :class:`SimResult`."""
    if config is None:
        config = CongestionConfig()
    if network is None:
        network = _network(config)
    return simulate(
        size=config.ranks,
        program=_program_factory(config),
        network=network,
        noise=noise,
        counters=CounterSet((CounterSet.cycles(),)),
        name="congestion incast",
        attributes={
            "workload": "congestion",
            "processes": str(config.ranks),
            "iterations": str(config.iterations),
            "message_bytes": str(config.message_bytes),
        },
    )


def generate(
    ranks: int = 64,
    iterations: int = 30,
    **overrides,
) -> Trace:
    """Generate a congestion-collapse trace (convenience wrapper)."""
    config = CongestionConfig(ranks=ranks, iterations=iterations, **overrides)
    return generate_result(config).trace
