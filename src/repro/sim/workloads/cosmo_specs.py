"""COSMO-SPECS stand-in: static decomposition + growing cloud (case A).

Reproduces the structure of the paper's first case study (Section
VII-A): the coupled weather code runs on a statically decomposed 2D
grid; COSMO's dynamics cost is uniform and cheap, SPECS' detailed cloud
microphysics is expensive and proportional to the local cloud
intensity.  A cloud grows over the simulation inside the subdomains of
ranks {44, 45, 54, 55, 64, 65} (10x10 process grid), peaking on rank
54 — so those ranks compute ever longer while everyone else waits in
MPI, which is precisely the Figure-4 picture:

* timeline: MPI share (red) grows over the run (Fig 4a),
* SOS heat map: exactly those ranks turn hot, rank 54 hottest (Fig 4b).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...balance.balancer import static_decomposition
from ...trace.trace import Trace
from .. import ops
from ..countermodel import CounterSet
from ..engine import SimResult, simulate
from ..network import NetworkModel
from ..noise import GaussianJitter, NoiseModel
from ..program import halo_exchange, neighbors_2d
from .base import CloudField, per_rank_cost

__all__ = ["CosmoSpecsConfig", "generate", "generate_result", "HOT_RANKS", "PEAK_RANK"]

#: Ranks whose subdomains the cloud covers (10x10 default layout).
HOT_RANKS = (44, 45, 54, 55, 64, 65)
#: Rank with the cloud centre, i.e. the hottest process (paper: 54).
PEAK_RANK = 54


@dataclass(frozen=True)
class CosmoSpecsConfig:
    """Parameters of the COSMO-SPECS stand-in.

    The defaults reproduce the paper's run: 100 processes on a 10x10
    grid.  ``cells_per_rank`` controls grid resolution (each rank owns
    a ``cells_per_rank x cells_per_rank`` block).
    """

    px: int = 10
    py: int = 10
    iterations: int = 60
    cells_per_rank: int = 3
    #: Mean COSMO dynamics cost per iteration (cheap, uniform).
    cosmo_cost: float = 0.002
    #: SPECS microphysics cost per unit cell weight.
    specs_cost_per_weight: float = 0.002
    #: Cloud growth: peak cell multiplier, ramp length and shape.
    cloud_amplitude: float = 7.0
    cloud_growth_steps: int | None = None  # default: iterations
    cloud_growth_exponent: float = 2.0
    #: Anisotropic Gaussian widths of the cloud in *rank* units.
    cloud_sigma_ranks: tuple[float, float] = (0.45, 0.75)
    halo_bytes: int = 32 * 1024
    coupling_bytes: int = 4 * 1024
    jitter_sigma: float = 0.005
    seed: int = 20160816

    @property
    def processes(self) -> int:
        return self.px * self.py

    @property
    def nx(self) -> int:
        return self.px * self.cells_per_rank

    @property
    def ny(self) -> int:
        return self.py * self.cells_per_rank

    def cloud(self) -> CloudField:
        """The cloud placed to load HOT_RANKS with its peak in PEAK_RANK.

        The centre sits inside rank (col 4, row 5) of the process grid,
        leaning toward columns 4-5 and rows 4-6, matching the published
        hot set for the default 10x10 layout.
        """
        c = self.cells_per_rank
        center = (4.9 * c, 5.45 * c)
        growth = (
            self.cloud_growth_steps
            if self.cloud_growth_steps is not None
            else self.iterations
        )
        sx, sy = self.cloud_sigma_ranks
        return CloudField(
            nx=self.nx,
            ny=self.ny,
            center=center,
            sigma=(sx * c, sy * c),
            max_amplitude=self.cloud_amplitude,
            growth_steps=growth,
            growth_exponent=self.cloud_growth_exponent,
        )


def _specs_costs(config: CosmoSpecsConfig) -> np.ndarray:
    """Per-(iteration, rank) SPECS compute seconds, shape (iters, p)."""
    cloud = config.cloud()
    assignment = static_decomposition(config.nx, config.ny, config.px, config.py)
    costs = np.empty((config.iterations, config.processes), dtype=np.float64)
    for step in range(config.iterations):
        weights = cloud.weights(step)
        costs[step] = per_rank_cost(weights, assignment, config.processes)
    return costs * config.specs_cost_per_weight


def _program_factory(config: CosmoSpecsConfig, specs_costs: np.ndarray):
    px, py = config.px, config.py

    def program(rank: int, size: int):
        nbrs = neighbors_2d(rank, px, py)
        yield ops.Enter("main")
        yield ops.Enter("model_setup")
        yield ops.Compute(0.05, region="read_namelist")
        yield ops.Bcast(size=64 * 1024)
        yield ops.Leave("model_setup")
        for step in range(config.iterations):
            yield ops.Enter("timeloop_iteration")
            # COSMO dynamics: cheap, uniform, plus its halo exchange.
            yield ops.Enter("cosmo_dynamics")
            yield ops.Compute(config.cosmo_cost, region="cosmo_solve")
            yield from halo_exchange(
                rank, nbrs, config.halo_bytes, tag=1, region=None
            )
            yield ops.Leave("cosmo_dynamics")
            # Coupling: exchange fields between the two models.
            yield ops.Enter("couple_models")
            yield ops.Allgather(size=config.coupling_bytes)
            yield ops.Leave("couple_models")
            # SPECS microphysics: expensive, cloud-dependent.
            yield ops.Enter("specs_microphysics")
            yield ops.Compute(
                float(specs_costs[step, rank]), region="specs_bin_microphysics"
            )
            yield from halo_exchange(
                rank, nbrs, config.halo_bytes, tag=2, region=None
            )
            yield ops.Leave("specs_microphysics")
            # Global timestep control.
            yield ops.Allreduce(size=8)
            yield ops.Leave("timeloop_iteration")
        yield ops.Leave("main")

    return program


def generate_result(
    config: CosmoSpecsConfig | None = None,
    network: NetworkModel | None = None,
    noise: NoiseModel | None = None,
) -> SimResult:
    """Simulate the workload and return the full :class:`SimResult`."""
    if config is None:
        config = CosmoSpecsConfig()
    if noise is None:
        noise = GaussianJitter(sigma=config.jitter_sigma, seed=config.seed)
    specs_costs = _specs_costs(config)
    return simulate(
        size=config.processes,
        program=_program_factory(config, specs_costs),
        network=network,
        noise=noise,
        counters=CounterSet((CounterSet.cycles(),)),
        name="COSMO-SPECS",
        attributes={
            "workload": "cosmo_specs",
            "processes": str(config.processes),
            "iterations": str(config.iterations),
        },
    )


def generate(
    processes: int = 100,
    iterations: int = 60,
    seed: int = 20160816,
    **overrides,
) -> Trace:
    """Generate a COSMO-SPECS trace (convenience wrapper).

    ``processes`` must be a perfect square (the process grid is
    square); the published configuration is 100.
    """
    side = int(round(processes**0.5))
    if side * side != processes:
        raise ValueError(f"processes must be a perfect square, got {processes}")
    config = CosmoSpecsConfig(
        px=side, py=side, iterations=iterations, seed=seed, **overrides
    )
    return generate_result(config).trace
