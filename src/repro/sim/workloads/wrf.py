"""WRF stand-in: floating-point-exception slowdown on one rank (case C).

The third case study (paper Section VII-C) runs the Weather Research
and Forecasting model (12 km CONUS benchmark) on 64 processes.  The
run starts with ~11 seconds of initialization and I/O; during the
iterations MPI accounts for ~25% of the time.  The hidden problem:
process 39 triggers a huge number of SSE floating-point exception
microtraps, computing measurably slower and making everyone wait.

The workload reproduces all three observables:

* an init+I/O phase of ``init_seconds`` at the start (Fig 6a, left);
* an MPI share of roughly a quarter during the iterations;
* rank ``slow_rank`` computes its physics ``fpu_slowdown`` times
  slower, with a correspondingly elevated
  ``FR_FPU_EXCEPTIONS_SSE_MICROTRAPS`` counter — so the counter heat
  map (Fig 6c) matches the SOS heat map (Fig 6b).
"""

from __future__ import annotations

from dataclasses import dataclass


from ...trace.trace import Trace
from .. import ops
from ..countermodel import CounterSet, FPU_EXCEPTIONS
from ..engine import SimResult, simulate
from ..network import NetworkModel
from ..noise import GaussianJitter, NoiseModel
from ..program import halo_exchange, neighbors_2d

__all__ = ["WRFConfig", "generate", "generate_result"]


@dataclass(frozen=True)
class WRFConfig:
    """Parameters of the WRF stand-in (defaults: the published run)."""

    px: int = 8
    py: int = 8
    iterations: int = 40
    #: Initialization + input I/O at the start (paper: ~11 s).
    init_seconds: float = 11.0
    #: Per-iteration cost of the dynamical core (density, winds, ...).
    dynamics_cost: float = 0.45
    #: Per-iteration cost of physical parameterisations (clouds, rain).
    physics_cost: float = 0.40
    #: Physics slowdown factor on the FPU-exception rank.
    fpu_slowdown: float = 1.8
    slow_rank: int = 39
    #: FPU exceptions per second of physics: baseline vs. slow rank.
    fpu_base_rate: float = 2.0e3
    fpu_hot_rate: float = 4.0e6
    halo_bytes: int = 96 * 1024
    jitter_sigma: float = 0.006
    seed: int = 20160818

    @property
    def processes(self) -> int:
        return self.px * self.py


def _program_factory(config: WRFConfig):
    def program(rank: int, size: int):
        nbrs = neighbors_2d(rank, config.px, config.py)
        slow = rank == config.slow_rank
        physics = config.physics_cost * (config.fpu_slowdown if slow else 1.0)
        fpu_rate = config.fpu_hot_rate if slow else config.fpu_base_rate

        yield ops.Enter("main")
        yield ops.Enter("wrf_init")
        yield ops.Compute(config.init_seconds * 0.7, region="model_setup")
        yield ops.Enter("input_io")
        yield ops.Compute(config.init_seconds * 0.3)
        yield ops.Bcast(size=8 * 1024 * 1024)
        yield ops.Leave("input_io")
        yield ops.Leave("wrf_init")

        for _step in range(config.iterations):
            yield ops.Enter("wrf_timestep")
            yield ops.Enter("dynamics")
            yield ops.Compute(config.dynamics_cost, region="advance_uvw")
            yield from halo_exchange(rank, nbrs, config.halo_bytes, tag=1, region=None)
            yield ops.Leave("dynamics")
            yield ops.Enter("physics")
            yield ops.Compute(
                physics,
                region="microphysics_driver",
                counters={FPU_EXCEPTIONS: physics * fpu_rate},
            )
            yield from halo_exchange(rank, nbrs, config.halo_bytes, tag=2, region=None)
            yield ops.Leave("physics")
            yield ops.Allreduce(size=8)  # CFL / stability check
            yield ops.Leave("wrf_timestep")
        yield ops.Leave("main")

    return program


def generate_result(
    config: WRFConfig | None = None,
    network: NetworkModel | None = None,
    noise: NoiseModel | None = None,
) -> SimResult:
    """Simulate the workload and return the full :class:`SimResult`."""
    if config is None:
        config = WRFConfig()
    if not 0 <= config.slow_rank < config.processes:
        raise ValueError("slow_rank outside the process range")
    if noise is None:
        noise = GaussianJitter(sigma=config.jitter_sigma, seed=config.seed)
    return simulate(
        size=config.processes,
        program=_program_factory(config),
        network=network,
        noise=noise,
        counters=CounterSet((CounterSet.cycles(),)),
        name="WRF 12km CONUS",
        attributes={
            "workload": "wrf",
            "processes": str(config.processes),
            "iterations": str(config.iterations),
            "slow_rank": str(config.slow_rank),
        },
    )


def generate(
    processes: int = 64,
    iterations: int = 40,
    seed: int = 20160818,
    **overrides,
) -> Trace:
    """Generate a WRF trace (convenience wrapper).

    ``processes`` must be a perfect square; the published run uses 64.
    """
    side = int(round(processes**0.5))
    if side * side != processes:
        raise ValueError(f"processes must be a perfect square, got {processes}")
    if "slow_rank" not in overrides and processes != 64:
        # Keep the anomaly at the same relative position as the paper's
        # rank 39 of 64 when the run is scaled.
        overrides["slow_rank"] = (39 * processes) // 64
    config = WRFConfig(px=side, py=side, iterations=iterations, seed=seed, **overrides)
    return generate_result(config).trace
