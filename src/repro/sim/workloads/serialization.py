"""Serialization bottleneck: a critical section taken in rank order.

GAPP (Glamdring et al.) finds lock- and resource-serialization
bottlenecks in threaded programs by spotting phases where nominally
parallel workers make progress one at a time.  The MPI analogue is a
shared resource guarded by a token: every iteration each rank performs
its parallel work, then must hold the token — passed rank 0 → 1 → ⋯ →
p−1 — to run its critical section.  The aggregate critical time is
serialized, so the iteration takes ``parallel + p * critical`` and
every rank spends ``O(rank)`` time waiting in ``MPI_Recv`` for the
token.

In the SOS heat map the pattern is a uniform per-segment wait that
*grows linearly with the rank index* but — unlike a late-sender
cascade — does not move over time: the bottleneck is structural, not
episodic.  The paper's detectors flag nothing rank-specific (no rank
is an outlier against the fitted linear profile is exactly the point:
the whole communicator is the bottleneck); the workload exists so the
corpus covers the case where variation is low but waiting is huge.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...trace.trace import Trace
from .. import ops
from ..countermodel import CounterSet
from ..engine import SimResult, simulate
from ..network import NetworkModel
from ..noise import NoiseModel

__all__ = ["SerializationConfig", "generate", "generate_result"]


@dataclass(frozen=True)
class SerializationConfig:
    """Parameters of the token-serialized critical section."""

    ranks: int = 10
    iterations: int = 16
    #: Perfectly parallel work per rank per iteration.
    parallel_compute: float = 0.006
    #: Critical-section time per rank per iteration (serialized!).
    critical_compute: float = 0.002
    #: Token payload (small: always eager).
    token_bytes: int = 64
    #: Synchronizing collective closing each iteration.
    collective: str = "allreduce"  # "allreduce" | "barrier" | "none"

    def __post_init__(self) -> None:
        if self.ranks < 2:
            raise ValueError("serialization needs at least 2 ranks")
        if self.collective not in ("allreduce", "barrier", "none"):
            raise ValueError(f"unknown collective {self.collective!r}")


def _program_factory(config: SerializationConfig):
    def program(rank: int, size: int):
        yield ops.Enter("main")
        yield ops.Compute(config.parallel_compute / 4, region="setup")
        for _it in range(config.iterations):
            yield ops.Enter("iteration")
            yield ops.Compute(config.parallel_compute, region="parallel_work")
            # The token starts at rank 0 each iteration and is passed
            # up the rank order; holding it serializes the critical
            # section exactly like a contended lock.
            if rank > 0:
                yield ops.Recv(rank - 1, size=config.token_bytes, tag=99)
            yield ops.Compute(config.critical_compute, region="critical_section")
            if rank < size - 1:
                yield ops.Send(rank + 1, size=config.token_bytes, tag=99)
            if config.collective == "allreduce":
                yield ops.Allreduce(size=8)
            elif config.collective == "barrier":
                yield ops.Barrier()
            yield ops.Leave("iteration")
        yield ops.Leave("main")

    return program


def generate_result(
    config: SerializationConfig | None = None,
    network: NetworkModel | None = None,
    noise: NoiseModel | None = None,
) -> SimResult:
    """Simulate the serialized workload and return the :class:`SimResult`."""
    if config is None:
        config = SerializationConfig()
    return simulate(
        size=config.ranks,
        program=_program_factory(config),
        network=network,
        noise=noise,
        counters=CounterSet((CounterSet.cycles(),)),
        name="token-serialization",
        attributes={
            "workload": "serialization",
            "processes": str(config.ranks),
            "iterations": str(config.iterations),
            "critical_compute": str(config.critical_compute),
        },
    )


def generate(
    ranks: int = 10,
    iterations: int = 16,
    **overrides,
) -> Trace:
    """Generate a serialization-bottleneck trace (convenience wrapper)."""
    config = SerializationConfig(
        ranks=ranks, iterations=iterations, **overrides
    )
    return generate_result(config).trace
