"""Parametric synthetic workloads with known ground truth.

Used by property-based tests, the detection-accuracy ablations (does
SOS find the planted anomaly where plain durations do not?) and the
scaling benchmarks.  Every anomaly is *planted* explicitly, so a test
can assert the analysis recovers exactly what was injected.
"""

from __future__ import annotations

from dataclasses import dataclass, field


import numpy as np

from ...trace.trace import Trace
from .. import ops
from ..countermodel import CounterSet
from ..engine import SimResult, simulate
from ..fastpath import HaloRing, LoopSpec
from ..network import NetworkModel
from ..noise import GaussianJitter, NoiseModel, NoNoise

__all__ = ["SyntheticConfig", "GroundTruth", "generate", "generate_result"]


@dataclass(frozen=True)
class GroundTruth:
    """What a correct analysis should find in a synthetic trace."""

    slow_ranks: tuple[int, ...]
    outlier_segments: tuple[tuple[int, int], ...]  # (rank, iteration)
    has_trend: bool


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic iterative workload.

    Structure per iteration: ``compute`` (region ``work``), an optional
    halo ring exchange, then a synchronizing collective; all wrapped in
    the ``iteration`` region that the dominant-function heuristic should
    select.

    Anomalies:

    * ``slow_ranks``: rank → multiplicative compute factor (persistent
      computational imbalance; the COSMO-SPECS pattern).
    * ``outliers``: (rank, iteration) → extra seconds for that single
      invocation (the FD4 interruption pattern).
    * ``trend_per_step``: fractional compute growth per iteration on
      *all* ranks (the gradual-slowdown pattern).
    """

    ranks: int = 16
    iterations: int = 20
    base_compute: float = 0.01
    slow_ranks: dict[int, float] = field(default_factory=dict)
    outliers: dict[tuple[int, int], float] = field(default_factory=dict)
    trend_per_step: float = 0.0
    halo_bytes: int = 8 * 1024
    use_halo: bool = True
    collective: str = "allreduce"  # "allreduce" | "barrier" | "none"
    subiters: int = 1
    jitter_sigma: float = 0.0
    seed: int = 1

    def ground_truth(self) -> GroundTruth:
        return GroundTruth(
            slow_ranks=tuple(sorted(self.slow_ranks)),
            outlier_segments=tuple(sorted(self.outliers)),
            has_trend=self.trend_per_step > 0,
        )

    def compute_seconds(self, rank: int, iteration: int) -> float:
        """Planted active compute time for one (rank, iteration)."""
        factor = self.slow_ranks.get(rank, 1.0)
        growth = (1.0 + self.trend_per_step) ** iteration
        return self.base_compute * factor * growth


def _program_factory(config: SyntheticConfig):
    collective = config.collective
    if collective not in ("allreduce", "barrier", "none"):
        raise ValueError(f"unknown collective {collective!r}")

    def program(rank: int, size: int):
        left, right = (rank - 1) % size, (rank + 1) % size
        yield ops.Enter("main")
        yield ops.Compute(0.001, region="setup")
        for it in range(config.iterations):
            yield ops.Enter("iteration")
            extra = config.outliers.get((rank, it), 0.0)
            for sub in range(config.subiters):
                seconds = config.compute_seconds(rank, it) / config.subiters
                interruption = extra if sub == 0 else 0.0
                yield ops.Compute(
                    seconds, region="work", interruption=interruption
                )
            if config.use_halo and size > 1:
                r1 = yield ops.Irecv(left, size=config.halo_bytes, tag=7)
                r2 = yield ops.Irecv(right, size=config.halo_bytes, tag=7)
                s1 = yield ops.Isend(right, size=config.halo_bytes, tag=7)
                s2 = yield ops.Isend(left, size=config.halo_bytes, tag=7)
                yield ops.Waitall([r1, r2, s1, s2])
            if collective == "allreduce":
                yield ops.Allreduce(size=8)
            elif collective == "barrier":
                yield ops.Barrier()
            yield ops.Leave("iteration")
        yield ops.Leave("main")

    return program


def _loop_spec(config: SyntheticConfig) -> LoopSpec:
    """The program above, declared for the vectorized fast path.

    Expressions mirror :meth:`SyntheticConfig.compute_seconds` exactly
    (same association), keeping fast-path traces bitwise identical to
    the interpreted generator.
    """
    size = config.ranks
    base = config.base_compute * np.array(
        [config.slow_ranks.get(r, 1.0) for r in range(size)]
    )

    def seconds(it: int) -> np.ndarray:
        growth = (1.0 + config.trend_per_step) ** it
        return base * growth / config.subiters

    extra = None
    if config.outliers:
        outliers = config.outliers

        def extra(it: int) -> np.ndarray:
            row = np.zeros(size)
            for (rank, iteration), seconds_ in outliers.items():
                if iteration == it and 0 <= rank < size:
                    row[rank] = seconds_
            return row

    halo = (
        HaloRing(bytes=config.halo_bytes, tag=7)
        if config.use_halo and size > 1
        else None
    )
    return LoopSpec(
        iterations=config.iterations,
        seconds=seconds,
        subiters=config.subiters,
        extra=extra,
        setup_seconds=0.001,
        halo=halo,
        collective=config.collective,
        collective_size=8,
    )


def generate_result(
    config: SyntheticConfig | None = None,
    network: NetworkModel | None = None,
    noise: NoiseModel | None = None,
) -> SimResult:
    """Simulate the synthetic workload and return the :class:`SimResult`."""
    if config is None:
        config = SyntheticConfig()
    if noise is None:
        noise = (
            GaussianJitter(sigma=config.jitter_sigma, seed=config.seed)
            if config.jitter_sigma > 0
            else NoNoise()
        )
    return simulate(
        size=config.ranks,
        program=_program_factory(config),
        network=network,
        noise=noise,
        counters=CounterSet((CounterSet.cycles(),)),
        name="synthetic",
        attributes={"workload": "synthetic"},
        loop=_loop_spec(config),
    )


def generate(config: SyntheticConfig | None = None, **overrides) -> Trace:
    """Generate a synthetic trace (convenience wrapper)."""
    if config is None:
        config = SyntheticConfig(**overrides)
    elif overrides:
        raise TypeError("pass either a config or keyword overrides, not both")
    return generate_result(config).trace
