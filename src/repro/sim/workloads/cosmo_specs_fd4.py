"""COSMO-SPECS+FD4 stand-in: dynamic balancing + OS interruption (case B).

The second case study (paper Section VII-B) extends COSMO-SPECS with
the FD4 dynamic load balancer, so the cloud-driven physics imbalance is
gone — and what remains visible is a *different* problem: one process
(rank 20) is interrupted by the operating system during a single SPECS
timestep, making one iteration slow for everyone.

The workload:

* partitions the block grid every iteration with the real
  :class:`~repro.balance.balancer.DynamicLoadBalancer` (Hilbert curve +
  exact chains-on-chains), so per-rank compute stays balanced even as
  the cloud grows;
* splits each iteration's SPECS work into ``specs_substeps`` separate
  ``specs_timestep`` invocations — the finer segmentation target of
  Figure 5c;
* injects one deterministic interruption into rank
  ``interrupt_rank`` during substep ``interrupt_substep`` of iteration
  ``interrupt_step``.  Counters do not advance during the
  interruption, so that invocation shows a low ``PAPI_TOT_CYC``
  relative to its wall time — the paper's root-cause signature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...balance.balancer import DynamicLoadBalancer
from ...trace.trace import Trace
from .. import ops
from ..countermodel import CounterSet
from ..engine import SimResult, simulate
from ..network import NetworkModel
from ..noise import GaussianJitter, NoiseModel
from ..program import halo_exchange
from .base import CloudField, per_rank_cost

__all__ = ["CosmoSpecsFD4Config", "generate", "generate_result"]


@dataclass(frozen=True)
class CosmoSpecsFD4Config:
    """Parameters of the COSMO-SPECS+FD4 stand-in (defaults: paper run).

    200 MPI processes; the block grid carries the same kind of growing
    cloud as the static case, but FD4 rebalances it away.
    """

    processes: int = 200
    iterations: int = 30
    #: Block grid linearised by the balancer (8 blocks per rank).
    blocks_x: int = 40
    blocks_y: int = 40
    #: COSMO dynamics cost per iteration (uniform).
    cosmo_cost: float = 0.004
    #: SPECS cost per unit block weight per iteration.
    specs_cost_per_weight: float = 0.00125
    #: SPECS timesteps per iteration (finer segmentation targets).
    specs_substeps: int = 4
    cloud_amplitude: float = 6.0
    cloud_sigma_blocks: float = 5.0
    halo_bytes: int = 16 * 1024
    #: The injected OS interruption.
    interrupt_rank: int = 20
    interrupt_step: int = 18
    interrupt_substep: int = 2
    interrupt_seconds: float = 0.08
    #: Balancer settings.
    curve: str = "hilbert"
    balance_method: str = "exact"
    balance_threshold: float = 1.05
    jitter_sigma: float = 0.004
    seed: int = 20160817


def _per_rank_loads(config: CosmoSpecsFD4Config) -> tuple[np.ndarray, np.ndarray]:
    """Balanced per-(iteration, rank) SPECS seconds and imbalance history.

    Runs the actual FD4-style balancer once per iteration on the cloud
    weights; returns ``(costs, imbalances)`` with ``costs`` of shape
    ``(iterations, processes)``.
    """
    cloud = CloudField(
        nx=config.blocks_x,
        ny=config.blocks_y,
        center=(config.blocks_x * 0.45, config.blocks_y * 0.55),
        sigma=config.cloud_sigma_blocks,
        max_amplitude=config.cloud_amplitude,
        growth_steps=config.iterations,
        drift=(0.08, 0.04),
    )
    balancer = DynamicLoadBalancer(
        config.blocks_x,
        config.blocks_y,
        config.processes,
        curve=config.curve,
        method=config.balance_method,
        threshold=config.balance_threshold,
    )
    costs = np.empty((config.iterations, config.processes), dtype=np.float64)
    imbalances = np.empty(config.iterations, dtype=np.float64)
    for step in range(config.iterations):
        weights = cloud.weights(step)
        result = balancer.balance(weights)
        load = per_rank_cost(weights, result.assignment, config.processes)
        costs[step] = load * config.specs_cost_per_weight
        imbalances[step] = result.imbalance
    return costs, imbalances


def _program_factory(config: CosmoSpecsFD4Config, specs_costs: np.ndarray):
    p = config.processes

    def program(rank: int, size: int):
        # SFC partitions are contiguous along the curve, so curve
        # neighbours exchange boundary data: a ring topology.
        nbrs = [(rank - 1) % p, (rank + 1) % p]
        yield ops.Enter("main")
        yield ops.Enter("model_setup")
        yield ops.Compute(0.05, region="read_namelist")
        yield ops.Bcast(size=64 * 1024)
        yield ops.Leave("model_setup")
        for step in range(config.iterations):
            yield ops.Enter("timeloop_iteration")
            yield ops.Enter("cosmo_dynamics")
            yield ops.Compute(config.cosmo_cost, region="cosmo_solve")
            yield from halo_exchange(rank, nbrs, config.halo_bytes, tag=1, region=None)
            yield ops.Leave("cosmo_dynamics")
            # FD4: gather weights, compute partition, migrate blocks.
            yield ops.Enter("fd4_balance")
            yield ops.Allgather(size=config.blocks_x * config.blocks_y // p * 8)
            yield ops.Compute(0.0005, region="fd4_partition")
            yield ops.Alltoall(size=2 * 1024)
            yield ops.Leave("fd4_balance")
            # SPECS microphysics, split into substeps.
            sub_cost = float(specs_costs[step, rank]) / config.specs_substeps
            for sub in range(config.specs_substeps):
                interruption = 0.0
                if (
                    rank == config.interrupt_rank
                    and step == config.interrupt_step
                    and sub == config.interrupt_substep
                ):
                    interruption = config.interrupt_seconds
                yield ops.Enter("specs_timestep")
                yield ops.Compute(
                    sub_cost,
                    region="specs_bin_microphysics",
                    interruption=interruption,
                )
                yield from halo_exchange(
                    rank, nbrs, config.halo_bytes, tag=2 + sub, region=None
                )
                yield ops.Leave("specs_timestep")
            yield ops.Allreduce(size=8)
            yield ops.Leave("timeloop_iteration")
        yield ops.Leave("main")

    return program


def generate_result(
    config: CosmoSpecsFD4Config | None = None,
    network: NetworkModel | None = None,
    noise: NoiseModel | None = None,
) -> SimResult:
    """Simulate the workload and return the full :class:`SimResult`."""
    if config is None:
        config = CosmoSpecsFD4Config()
    if not 0 <= config.interrupt_rank < config.processes:
        raise ValueError("interrupt_rank outside the process range")
    if noise is None:
        noise = GaussianJitter(sigma=config.jitter_sigma, seed=config.seed)
    specs_costs, imbalances = _per_rank_loads(config)
    result = simulate(
        size=config.processes,
        program=_program_factory(config, specs_costs),
        network=network,
        noise=noise,
        counters=CounterSet((CounterSet.cycles(),)),
        name="COSMO-SPECS+FD4",
        attributes={
            "workload": "cosmo_specs_fd4",
            "processes": str(config.processes),
            "iterations": str(config.iterations),
            "interrupt_rank": str(config.interrupt_rank),
            "interrupt_step": str(config.interrupt_step),
            "mean_balanced_imbalance": f"{float(imbalances.mean()):.4f}",
        },
    )
    return result


def generate(
    processes: int = 200,
    iterations: int = 30,
    seed: int = 20160817,
    **overrides,
) -> Trace:
    """Generate a COSMO-SPECS+FD4 trace (convenience wrapper)."""
    if "interrupt_rank" not in overrides and processes != 200:
        # Keep the interruption at the same relative position as the
        # paper's rank 20 of 200 when the run is scaled.
        overrides["interrupt_rank"] = max((20 * processes) // 200, 0)
    if "interrupt_step" not in overrides and iterations != 30:
        overrides["interrupt_step"] = max(int(iterations * 0.6), 0)
    config = CosmoSpecsFD4Config(
        processes=processes, iterations=iterations, seed=seed, **overrides
    )
    return generate_result(config).trace
