"""Shared physics stand-ins for the case-study workloads.

The original applications compute real atmospheric physics; for the
reproduction only the *cost structure* matters.  The central piece is
the :class:`CloudField`: a slowly growing 2D Gaussian "cloud" whose
local intensity drives the cost of the detailed microphysics, exactly
the mechanism the paper names as the root cause of the COSMO-SPECS load
imbalance ("the layout of clouds in the application domain determines
the local work", Section VII-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CloudField", "per_rank_cost"]


@dataclass(frozen=True)
class CloudField:
    """A growing (optionally drifting) Gaussian cloud on an ``nx x ny`` grid.

    ``weights(step)`` returns the per-cell work multiplier at a time
    step: ``1 + amplitude(step) * exp(-r^2 / 2)`` with the radius
    measured in (possibly anisotropic) sigma units.  The amplitude
    ramps from 0 to ``max_amplitude`` over ``growth_steps`` steps with
    a configurable exponent (exponent 2 keeps the cloud weak for the
    first half of the run and lets it dominate at the end — the
    Figure-4a progression).

    Coordinates are in *cell* units; ``center`` is the cloud centre at
    step 0 and ``drift`` the per-step movement.
    """

    nx: int
    ny: int
    center: tuple[float, float]
    sigma: float | tuple[float, float]
    max_amplitude: float = 8.0
    growth_steps: int = 50
    growth_exponent: float = 1.0
    drift: tuple[float, float] = (0.0, 0.0)

    def _sigmas(self) -> tuple[float, float]:
        if isinstance(self.sigma, tuple):
            return self.sigma
        return (float(self.sigma), float(self.sigma))

    def amplitude(self, step: int) -> float:
        """Cloud intensity multiplier at ``step`` (ramp, then flat)."""
        if self.growth_steps <= 0:
            return self.max_amplitude
        frac = min(1.0, max(step, 0) / self.growth_steps)
        return self.max_amplitude * frac**self.growth_exponent

    def weights(self, step: int) -> np.ndarray:
        """Per-cell cost multipliers, shape ``(ny, nx)``."""
        cx = self.center[0] + self.drift[0] * step
        cy = self.center[1] + self.drift[1] * step
        sx, sy = self._sigmas()
        x = np.arange(self.nx, dtype=np.float64) + 0.5
        y = np.arange(self.ny, dtype=np.float64) + 0.5
        r2 = ((x[None, :] - cx) / sx) ** 2 + ((y[:, None] - cy) / sy) ** 2
        blob = np.exp(-0.5 * r2)
        return 1.0 + self.amplitude(step) * blob


def per_rank_cost(weights: np.ndarray, assignment: np.ndarray, parts: int) -> np.ndarray:
    """Sum the flat per-cell ``weights`` into per-rank totals."""
    w = np.asarray(weights, dtype=np.float64).ravel()
    a = np.asarray(assignment, dtype=np.int64).ravel()
    if len(w) != len(a):
        raise ValueError("weights and assignment must have equal length")
    cost = np.zeros(parts, dtype=np.float64)
    np.add.at(cost, a, w)
    return cost
