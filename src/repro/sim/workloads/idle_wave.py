"""Idle-wave propagation: one perturbation travelling through a ring.

Afzal, Hager and Wellein ("Exploring Techniques for the Analysis of
Spontaneous Asynchronicity in MPI-Parallel Applications") show that a
single one-off delay on one rank of a bulk-synchronous
nearest-neighbour code does not stay put: because each rank only
synchronizes with its direct neighbours, the delay travels outward as
an *idle wave* — one neighbour hop per iteration — until it either
leaves the domain or collides with another wave.

This workload reproduces the phenomenon in its cleanest form: a
periodic ring of ranks exchanging halos with both neighbours every
iteration (no global collective, which would re-synchronize everyone
and destroy the wave), plus one scheduled interruption injected into
``source_rank`` during iteration ``burst_iteration``.  In the SOS
heat map the wave appears as a diagonal stripe of waiting time
spreading from the source rank — a pattern the paper's case studies
(which all end iterations on a collective) cannot show.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...trace.trace import Trace
from .. import ops
from ..countermodel import CounterSet
from ..engine import SimResult, simulate
from ..fastpath import HaloRing, LoopSpec
from ..network import NetworkModel
from ..noise import NoiseModel, ScheduledInterruptions

__all__ = ["IdleWaveConfig", "generate", "generate_result"]


@dataclass(frozen=True)
class IdleWaveConfig:
    """Parameters of the idle-wave ring."""

    ranks: int = 16
    iterations: int = 24
    #: Active compute per rank per iteration (perfectly balanced).
    base_compute: float = 0.01
    #: Halo payload exchanged with each ring neighbour.
    halo_bytes: int = 8 * 1024
    #: Rank receiving the one-off delay.
    source_rank: int = 8
    #: Iteration during which the delay strikes.
    burst_iteration: int = 4
    #: Length of the injected delay, in units of ``base_compute``.
    burst_factor: float = 6.0

    def __post_init__(self) -> None:
        if self.ranks < 3:
            raise ValueError("an idle wave needs at least 3 ranks")
        if not 0 <= self.source_rank < self.ranks:
            raise ValueError("source_rank outside the rank range")
        if not 0 <= self.burst_iteration < self.iterations:
            raise ValueError("burst_iteration outside the iteration range")


def _program_factory(config: IdleWaveConfig):
    def program(rank: int, size: int):
        left, right = (rank - 1) % size, (rank + 1) % size
        yield ops.Enter("main")
        yield ops.Compute(config.base_compute / 4, region="setup")
        for _it in range(config.iterations):
            yield ops.Enter("iteration")
            yield ops.Compute(config.base_compute, region="smooth")
            r1 = yield ops.Irecv(left, size=config.halo_bytes, tag=3)
            r2 = yield ops.Irecv(right, size=config.halo_bytes, tag=3)
            s1 = yield ops.Isend(right, size=config.halo_bytes, tag=3)
            s2 = yield ops.Isend(left, size=config.halo_bytes, tag=3)
            yield ops.Waitall([r1, r2, s1, s2])
            yield ops.Leave("iteration")
        yield ops.Leave("main")

    return program


def _burst_noise(config: IdleWaveConfig) -> ScheduledInterruptions:
    """One interruption window over the source rank's burst iteration.

    The window brackets the whole iteration: with perfectly balanced
    compute, iteration ``k`` starts no earlier than ``k * base`` and
    (absent other noise) the source rank's compute begins well inside
    ``[k * base, (k + 2) * ...)`` — one generous window guarantees the
    burst lands exactly once without tracking absolute times.
    """
    base = config.base_compute
    t0 = config.burst_iteration * base
    t1 = t0 + 2 * base + config.base_compute / 4
    return ScheduledInterruptions(
        events=((config.source_rank, t0, t1, config.burst_factor * base),)
    )


def generate_result(
    config: IdleWaveConfig | None = None,
    network: NetworkModel | None = None,
    noise: NoiseModel | None = None,
) -> SimResult:
    """Simulate the idle-wave ring and return the :class:`SimResult`."""
    if config is None:
        config = IdleWaveConfig()
    if noise is None:
        noise = _burst_noise(config)
    compute = np.full(config.ranks, config.base_compute)
    loop = LoopSpec(
        iterations=config.iterations,
        seconds=lambda it: compute,
        setup_seconds=config.base_compute / 4,
        compute_region="smooth",
        halo=HaloRing(bytes=config.halo_bytes, tag=3),
        collective="none",
    )
    return simulate(
        size=config.ranks,
        program=_program_factory(config),
        network=network,
        noise=noise,
        loop=loop,
        counters=CounterSet((CounterSet.cycles(),)),
        name="idle-wave ring",
        attributes={
            "workload": "idle_wave",
            "processes": str(config.ranks),
            "iterations": str(config.iterations),
            "source_rank": str(config.source_rank),
            "burst_iteration": str(config.burst_iteration),
        },
    )


def generate(
    ranks: int = 16,
    iterations: int = 24,
    **overrides,
) -> Trace:
    """Generate an idle-wave trace (convenience wrapper)."""
    if "source_rank" not in overrides:
        overrides["source_rank"] = ranks // 2
    if "burst_iteration" not in overrides:
        overrides["burst_iteration"] = max(1, min(4, iterations - 1))
    config = IdleWaveConfig(ranks=ranks, iterations=iterations, **overrides)
    return generate_result(config).trace
