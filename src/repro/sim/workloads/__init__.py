"""Case-study, phenomenon and synthetic workloads for the MPI simulator."""

from . import (
    base,
    congestion,
    cosmo_specs,
    cosmo_specs_fd4,
    hybrid_openmp,
    idle_wave,
    late_sender,
    serialization,
    synthetic,
    wrf,
)

__all__ = [
    "base",
    "congestion",
    "cosmo_specs",
    "cosmo_specs_fd4",
    "hybrid_openmp",
    "idle_wave",
    "late_sender",
    "serialization",
    "synthetic",
    "wrf",
]
