"""Vectorized fast path: whole BSP iterations as rank-vectors.

The general engine interprets one op at a time through Python
generators — flexible, but its throughput is bounded by per-event
Python work.  The bulk-synchronous workloads this project actually
generates (synthetic, idle-wave and friends) share one rigid shape:
a setup computation, then ``iterations`` rounds of per-rank compute,
an optional eager halo ring exchange, and an optional collective.

:class:`LoopSpec` declares that shape; :func:`run_fast` then computes
every rank's clock for a whole iteration as one NumPy vector — noise,
halo matching (a ``roll`` against each neighbour's send availability)
and collective synchronization included — and writes event rows
straight into shared column templates.  Per-event cost becomes a few
array stores instead of a generator resumption plus dispatch.

The fast path replicates the engine's floating-point expressions
operation for operation (same association, same ``max`` fold order,
same noise formulas via :func:`repro.sim.noise.vector_noise`), so its
traces are **bitwise identical** to the general interpreter's — the
differential tests in ``tests/test_sim_sink.py`` hold it to that.
Anything it cannot reproduce exactly (unknown noise models, rendezvous
halos, topology networks, mixed-zero counter rates) makes it return
``None`` and the general engine runs instead.  ``REPRO_SIM_NO_FASTPATH=1``
forces the fallback unconditionally.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..trace.definitions import Paradigm
from .network import NetworkModel
from .noise import vector_noise
from .sink import ColumnarTraceSink

if TYPE_CHECKING:
    from .engine import SimResult, Simulator

__all__ = ["LoopSpec", "HaloRing", "run_fast"]


@dataclass(frozen=True)
class HaloRing:
    """Nearest-neighbour ring exchange: Irecv(left), Irecv(right),
    Isend(right), Isend(left), Waitall — the halo idiom every BSP
    workload here uses."""

    bytes: int = 8 * 1024
    tag: int = 0


@dataclass(frozen=True)
class LoopSpec:
    """Declarative iteration structure of a bulk-synchronous program.

    ``seconds(it)`` returns the per-rank active seconds of **one
    sub-iteration** of iteration ``it`` (all ``subiters`` subs of an
    iteration use the same value, like the workloads do).  ``extra(it)``
    optionally returns per-rank interruption seconds added to the first
    sub-iteration (the planted-outlier hook).
    """

    iterations: int
    seconds: Callable[[int], "np.ndarray"]
    subiters: int = 1
    extra: Callable[[int], "np.ndarray"] | None = None
    setup_seconds: float | None = None
    setup_region: str = "setup"
    compute_region: str = "work"
    iteration_region: str = "iteration"
    main_region: str = "main"
    halo: HaloRing | None = None
    collective: str = "none"  # "none" | "allreduce" | "barrier"
    collective_size: int = 8


_ENTER, _LEAVE, _SEND, _RECV, _METRIC = 0, 1, 2, 3, 4


def _rank_matrix(fn, iters: int, size: int) -> np.ndarray | None:
    out = np.empty((iters, size), dtype=np.float64)
    for it in range(iters):
        row = np.asarray(fn(it), dtype=np.float64)
        if row.shape != (size,):
            return None
        out[it] = row
    return out


def run_fast(sim: "Simulator") -> "SimResult | None":
    """Run ``sim`` through the vectorized path; ``None`` if ineligible."""
    if os.environ.get("REPRO_SIM_NO_FASTPATH", "").strip() not in ("", "0"):
        return None
    spec: LoopSpec = sim.loop
    sink = sim.sink
    net = sim.network
    size = sim.size
    if type(sink) is not ColumnarTraceSink:
        return None
    if type(net) is not NetworkModel:
        # Topology/congestion models are history-dependent per message;
        # only the flat analytic model is vectorizable.
        return None
    halo = spec.halo
    if halo is not None and (size < 2 or not net.is_eager(halo.bytes)):
        return None
    if spec.collective not in ("none", "allreduce", "barrier"):
        return None
    if not spec.main_region or not spec.iteration_region or not spec.compute_region:
        return None
    iters = int(spec.iterations)
    S = int(spec.subiters)
    if iters < 0 or S < 1:
        return None
    noise_fn = vector_noise(sim.noise, size)
    if noise_fn is None:
        return None
    zero_noise = getattr(noise_fn, "always_zero", False)

    setup = spec.setup_seconds
    has_setup = setup is not None
    if has_setup and (setup < 0 or not spec.setup_region):
        return None

    sec = _rank_matrix(spec.seconds, iters, size)
    if sec is None or (iters and (sec < 0).any()):
        return None
    ex = None
    if spec.extra is not None and iters:
        ex = _rank_matrix(spec.extra, iters, size)
        if ex is None or (ex < 0).any():
            return None
        if not ex.any():
            ex = None

    # -- counters: per-(rank, phase) increments, exactly as the engine
    # computes them (scalar spec.increment calls), then cumulated.
    # Each spec must fire always or never; a spec whose rate is zero on
    # some computations but not others would change the event template
    # per rank, so such runs fall back.
    specs = sim._specs
    P = (1 if has_setup else 0) + iters * S
    emitted: list[int] = []
    inc_rows: list[np.ndarray] = []
    for k, cs in enumerate(specs):
        rows = np.empty((P, size))
        if has_setup:
            rows[0] = [cs.increment(r, setup) for r in range(size)]
        for it in range(iters):
            row = [cs.increment(r, float(s)) for r, s in enumerate(sec[it])]
            for s_i in range(S):
                rows[(1 if has_setup else 0) + it * S + s_i] = row
        if P == 0 or not rows.any():
            continue  # silent spec: no events, no final sample
        if not rows.all():
            return None  # mixed zero/nonzero increments
        emitted.append(k)
        inc_rows.append(rows)
    Ke = len(emitted)
    cum = np.empty((Ke, P, size))
    for j, rows in enumerate(inc_rows):
        np.cumsum(rows, axis=0, out=cum[j])
    mids = [sim._metric_ids[specs[k].name] for k in emitted]
    # Final samples are flushed sorted by counter name.
    order = sorted(range(Ke), key=lambda j: specs[emitted[j]].name)

    # -- region registration, in the exact order the interpreter would
    # first touch each definition.
    tb = sim.tb
    rid_main = tb.region(spec.main_region)
    rid_setup = tb.region(spec.setup_region) if has_setup else -1
    rid_iter = rid_work = rid_irecv = rid_isend = rid_wait = rid_coll = -1
    coll = spec.collective if iters else "none"
    if iters:
        rid_iter = tb.region(spec.iteration_region)
        rid_work = tb.region(spec.compute_region)
        if halo is not None:
            rid_irecv = tb.region("MPI_Irecv", paradigm=Paradigm.MPI)
            rid_isend = tb.region("MPI_Isend", paradigm=Paradigm.MPI)
            rid_wait = tb.region("MPI_Waitall", paradigm=Paradigm.MPI)
        if coll == "allreduce":
            rid_coll = tb.region("MPI_Allreduce", paradigm=Paradigm.MPI)
        elif coll == "barrier":
            rid_coll = tb.region("MPI_Barrier", paradigm=Paradigm.MPI)

    # -- row layout: head + iters * L + tail, identical on every rank.
    H = 1 + (2 + Ke if has_setup else 0)
    sub_len = 2 + Ke
    n_halo = 14 if halo is not None else 0
    n_coll = 2 if coll != "none" else 0
    L = 1 + S * sub_len + n_halo + n_coll + 1
    n = H + iters * L + 1 + Ke

    # Shared (rank-independent) column templates.
    kind_t = np.zeros(n, dtype=np.uint8)
    ref_t = np.full(n, -1, dtype=np.int32)
    size_t = np.zeros(n, dtype=np.int64)
    tag_t = np.zeros(n, dtype=np.int32)

    ref_t[0] = rid_main
    if has_setup:
        ref_t[1] = rid_setup
        kind_t[2:2 + Ke] = _METRIC
        ref_t[2:2 + Ke] = mids
        kind_t[2 + Ke] = _LEAVE
        ref_t[2 + Ke] = rid_setup

    # One iteration's template, tiled across all iterations.
    ik = np.zeros(L, dtype=np.uint8)
    iref = np.full(L, -1, dtype=np.int32)
    isz = np.zeros(L, dtype=np.int64)
    itg = np.zeros(L, dtype=np.int32)
    iref[0] = rid_iter
    for s_i in range(S):
        o = 1 + s_i * sub_len
        iref[o] = rid_work
        ik[o + 1:o + 1 + Ke] = _METRIC
        iref[o + 1:o + 1 + Ke] = mids
        ik[o + 1 + Ke] = _LEAVE
        iref[o + 1 + Ke] = rid_work
    o_halo = 1 + S * sub_len
    if halo is not None:
        hk = [_ENTER, _LEAVE, _ENTER, _LEAVE,          # two Irecvs
              _ENTER, _SEND, _LEAVE, _ENTER, _SEND, _LEAVE,  # two Isends
              _ENTER, _RECV, _RECV, _LEAVE]            # Waitall
        hr = [rid_irecv, rid_irecv, rid_irecv, rid_irecv,
              rid_isend, -1, rid_isend, rid_isend, -1, rid_isend,
              rid_wait, -1, -1, rid_wait]
        ik[o_halo:o_halo + 14] = hk
        iref[o_halo:o_halo + 14] = hr
        for o in (o_halo + 5, o_halo + 8, o_halo + 11, o_halo + 12):
            isz[o] = halo.bytes
            itg[o] = halo.tag
    o_coll = o_halo + n_halo
    if coll != "none":
        iref[o_coll] = rid_coll
        ik[o_coll + 1] = _LEAVE
        iref[o_coll + 1] = rid_coll
    ik[L - 1] = _LEAVE
    iref[L - 1] = rid_iter

    body = slice(H, H + iters * L)
    kind_t[body] = np.tile(ik, iters)
    ref_t[body] = np.tile(iref, iters)
    size_t[body] = np.tile(isz, iters)
    tag_t[body] = np.tile(itg, iters)

    tail = H + iters * L
    kind_t[tail] = _LEAVE
    ref_t[tail] = rid_main
    kind_t[tail + 1:] = _METRIC
    ref_t[tail + 1:] = [mids[j] for j in order]

    # -- the clock walk: one pass over iterations, all ranks at once.
    ro = net.recv_overhead
    so = net.send_overhead
    transfer = net.transfer_time(halo.bytes) if halo is not None else 0.0
    if coll == "allreduce":
        coll_cost = net.allreduce_cost(spec.collective_size, size)
    elif coll == "barrier":
        coll_cost = net.barrier_cost(size)
    else:
        coll_cost = 0.0

    T = np.empty((n, size))
    c = np.zeros(size)
    T[0] = 0.0
    if has_setup:
        T[1] = 0.0
        act = np.full(size, setup)
        if zero_noise:
            c = c + act
        else:
            itr = 0.0 + noise_fn(c, act)
            c = c + (act + itr)
        T[2:2 + Ke + 1] = c  # metrics + leave(setup)

    messages = 0
    for it in range(iters):
        base = H + it * L
        T[base] = c  # enter(iteration)
        act = sec[it]
        for s_i in range(S):
            o = base + 1 + s_i * sub_len
            t0 = c
            T[o] = t0  # enter(work)
            if zero_noise and (ex is None or s_i > 0):
                c = t0 + act
            else:
                nz = noise_fn(t0, act)
                itr = (ex[it] if (s_i == 0 and ex is not None) else 0.0) + nz
                c = t0 + (act + itr)
            T[o + 1:o + 2 + Ke] = c  # metrics + leave(work)
        if halo is not None:
            o = base + o_halo
            h0 = c            # Irecv(left) posted
            h1 = h0 + ro      # Irecv(right) posted
            h2 = h1 + ro      # Isend(right) posted
            h3 = h2 + so      # Isend(left) posted
            h4 = h3 + so      # Waitall entered
            avail1 = h2 + transfer  # payload of each rank's send-to-right
            avail2 = h3 + transfer  # payload of each rank's send-to-left
            # recv-from-left matches the left neighbour's send-to-right;
            # recv-from-right matches the right neighbour's send-to-left.
            comp_r1 = np.maximum(h0, np.roll(avail1, 1))
            comp_r2 = np.maximum(h1, np.roll(avail2, -1))
            # Engine fold: max(cw, r1, r2, s1, s2); the send completions
            # h3, h4 never exceed cw = h4, so they drop out.
            fin = np.maximum(np.maximum(h4, comp_r1), comp_r2)
            T[o] = h0
            T[o + 1] = h1
            T[o + 2] = h1
            T[o + 3] = h2
            T[o + 4] = h2
            T[o + 5] = h2   # SEND to right
            T[o + 6] = h3
            T[o + 7] = h3
            T[o + 8] = h3   # SEND to left
            T[o + 9] = h4
            T[o + 10] = h4  # enter(Waitall)
            T[o + 11:o + 14] = fin  # RECV left, RECV right, leave
            c = fin
            messages += 2 * size
        if coll != "none":
            o = base + o_coll
            T[o] = c
            finc = float(c.max()) + coll_cost
            c = np.full(size, finc)
            T[o + 1] = finc
        T[base + L - 1] = c  # leave(iteration)
    T[tail:] = c  # leave(main) + final counter samples

    # -- value column: zero except at metric rows.
    p0 = 1 if has_setup else 0
    if Ke:
        V = np.zeros((n, size))
        for j in range(Ke):
            if has_setup:
                V[2 + j] = cum[j, 0]
            if iters:
                idx = (
                    H + 2 + j
                    + L * np.arange(iters)[:, None]
                    + sub_len * np.arange(S)[None, :]
                ).ravel()
                V[idx] = cum[j, p0:].reshape(iters * S, size)
        for jj, j in enumerate(order):
            V[tail + 1 + jj] = cum[j, P - 1]
        VT = np.ascontiguousarray(V.T)
        del V
    else:
        VT = None
        value_shared = np.zeros(n)

    # -- partner column: only SEND/RECV rows are rank-dependent.
    partner_t = np.full(n, -1, dtype=np.int32)
    if halo is not None and iters:
        PM = np.repeat(partner_t[:, None], size, axis=1)
        ranks = np.arange(size, dtype=np.int32)
        left = np.roll(ranks, 1)    # (r - 1) % size
        right = np.roll(ranks, -1)  # (r + 1) % size
        steps = L * np.arange(iters)
        PM[H + o_halo + 5 + steps[:, None], :] = right[None, :]
        PM[H + o_halo + 8 + steps[:, None], :] = left[None, :]
        PM[H + o_halo + 11 + steps[:, None], :] = left[None, :]
        PM[H + o_halo + 12 + steps[:, None], :] = right[None, :]
        PT = np.ascontiguousarray(PM.T)
        del PM
    else:
        PT = None

    TT = np.ascontiguousarray(T.T)
    del T

    for r in range(size):
        sink.adopt(
            r,
            f"Rank {r}",
            {
                "time": TT[r],
                "kind": kind_t,
                "ref": ref_t,
                "partner": PT[r] if PT is not None else partner_t,
                "size": size_t,
                "tag": tag_t,
                "value": VT[r] if VT is not None else value_shared,
            },
        )

    from .engine import SimResult

    return SimResult(
        trace=None,  # frozen lazily from the sink on first access
        end_times={r: float(c[r]) for r in range(size)},
        messages=messages,
        collectives=iters if coll != "none" else 0,
        events=n * size,
        sched_ops=2 * size,
        sink=sink,
    )
