"""OS-noise models for the MPI simulator.

System noise — daemons, interrupts, page faults — preempts HPC
processes and stretches their computations without any progress in
hardware counters.  The second case study of the paper (COSMO-
SPECS+FD4, Section VII-B) traces exactly such an event: one process is
interrupted during a single function invocation, visible as a long
invocation with a *low* ``PAPI_TOT_CYC`` count.

A noise model maps each computation ``(rank, t_start, active_seconds)``
to the extra wall time injected into it.  Interruption time never
advances counters (the engine attributes counters to active time only).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "NoiseModel",
    "NoNoise",
    "GaussianJitter",
    "ScheduledInterruptions",
    "NoiseBursts",
    "ImbalanceRamp",
    "Straggler",
    "CompositeNoise",
    "scalar_noise",
    "vector_noise",
]


class NoiseModel:
    """Interface: :meth:`interruption` returns extra wall seconds."""

    def interruption(self, rank: int, t_start: float, active: float) -> float:
        """Extra (non-computing) wall time injected into this compute op."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class NoNoise(NoiseModel):
    """The quiet machine: no perturbation."""

    def interruption(self, rank: int, t_start: float, active: float) -> float:
        return 0.0


class GaussianJitter(NoiseModel):
    """Half-normal multiplicative jitter: each computation stretches by
    ``|N(0, sigma)| * active``.

    OS noise only ever *adds* wall time, so the half-normal shape (all
    mass above zero) is the natural fit; ``sigma`` scales the typical
    relative stretch.

    Deterministic per (seed, rank, start time): the model derives a
    fresh PRNG from a hash of those values, so identical simulations
    produce identical traces regardless of scheduling order.
    """

    def __init__(self, sigma: float = 0.01, seed: int = 0) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma
        self.seed = seed

    def interruption(self, rank: int, t_start: float, active: float) -> float:
        # Hash-based deterministic draw: independent of call ordering.
        key = np.uint64(
            (self.seed * 0x9E3779B97F4A7C15 + rank * 0xBF58476D1CE4E5B9)
            & 0xFFFFFFFFFFFFFFFF
        )
        mix = np.uint64(int(t_start * 1e9) & 0xFFFFFFFFFFFFFFFF)
        rng = np.random.default_rng(np.array([key, mix], dtype=np.uint64))
        draw = abs(float(rng.normal(0.0, self.sigma)))
        return draw * active


@dataclass(frozen=True)
class ScheduledInterruptions(NoiseModel):
    """Deterministic preemptions: (rank, window, duration) triples.

    A computation starting inside ``[t0, t1)`` on ``rank`` receives
    ``duration`` seconds of interruption (once per matching window).
    """

    events: tuple[tuple[int, float, float, float], ...] = ()
    # each entry: (rank, t0, t1, duration)

    def interruption(self, rank: int, t_start: float, active: float) -> float:
        total = 0.0
        for ev_rank, t0, t1, duration in self.events:
            if ev_rank == rank and t0 <= t_start < t1:
                total += duration
        return total


@dataclass(frozen=True)
class NoiseBursts(NoiseModel):
    """Periodic system-noise bursts on a subset of ranks.

    Every ``period`` seconds a daemon-like burst preempts the listed
    ranks for ``duration`` seconds: a computation *starting* inside
    ``[k * period + phase, k * period + phase + window)`` receives the
    full ``duration`` of interruption.  A single early burst on one
    rank of a nearest-neighbour workload is the canonical trigger of
    an idle wave (Afzal et al.): the delay propagates through the
    communication dependencies one neighbour per iteration.

    Fully deterministic from the dataclass fields — no hidden RNG —
    so identical simulations yield identical traces.
    """

    ranks: tuple[int, ...] = ()
    period: float = 1.0
    duration: float = 0.01
    #: Start of the first burst window.
    phase: float = 0.0
    #: Width of the susceptible window at the start of each period.
    window: float = 0.05

    def interruption(self, rank: int, t_start: float, active: float) -> float:
        if rank not in self.ranks or self.period <= 0.0:
            return 0.0
        offset = (t_start - self.phase) % self.period
        if t_start >= self.phase and offset < self.window:
            return self.duration
        return 0.0


@dataclass(frozen=True)
class ImbalanceRamp(NoiseModel):
    """Load imbalance that grows linearly over virtual time.

    The listed ranks are stretched by ``rate * min(t_start, t_cap)``
    relative seconds per active second — at ``t_start`` seconds into
    the run a computation of ``active`` seconds gains
    ``rate * t_start * active`` extra wall time.  Models a slowly
    developing imbalance (the COSMO-SPECS cloud-growth shape) as an
    injection knob rather than a hand-crafted workload.
    """

    ranks: tuple[int, ...] = ()
    rate: float = 0.1
    #: Time after which the ramp saturates (``inf`` = never).
    t_cap: float = float("inf")

    def interruption(self, rank: int, t_start: float, active: float) -> float:
        if rank not in self.ranks or self.rate <= 0.0:
            return 0.0
        return self.rate * min(max(t_start, 0.0), self.t_cap) * active


@dataclass(frozen=True)
class Straggler(NoiseModel):
    """Persistent multiplicative slowdown of selected ranks.

    Each listed rank computes ``factor`` times slower for the whole
    run: every computation of ``active`` seconds is stretched by
    ``(factor - 1) * active`` wall seconds without counter progress —
    the WRF case-study shape (one rank trapped in FPU microtraps),
    available as a composable injection.
    """

    ranks: tuple[int, ...] = ()
    factor: float = 1.5

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("straggler factor must be >= 1")

    def interruption(self, rank: int, t_start: float, active: float) -> float:
        if rank not in self.ranks:
            return 0.0
        return (self.factor - 1.0) * active


@dataclass(frozen=True)
class CompositeNoise(NoiseModel):
    """Sum of several noise models."""

    models: tuple[NoiseModel, ...] = ()

    def interruption(self, rank: int, t_start: float, active: float) -> float:
        return sum(m.interruption(rank, t_start, active) for m in self.models)


# -- compiled forms ---------------------------------------------------------
#
# The engine's inner loop used to call ``model.interruption`` once per
# Compute op, and the membership-style models (Straggler, ImbalanceRamp,
# NoiseBursts, ScheduledInterruptions) re-scanned their rank tuples on
# every call — O(events * ranks_listed).  ``scalar_noise`` hoists those
# schedules into per-rank arrays built once per run (O(ranks)), and
# ``vector_noise`` produces the whole-rank-vector form the vectorized
# fast path consumes.  Both forms evaluate the *same floating-point
# expressions* as the uncompiled models so traces stay bitwise
# identical; composites preserve per-model summation order.


def _member_list(ranks, size: int) -> list[bool]:
    member = [False] * size
    for r in ranks:
        if 0 <= r < size:
            member[r] = True
    return member


def scalar_noise(model: NoiseModel, size: int):
    """Compile ``model`` into a per-rank-indexed closure.

    Returns ``None`` when the model provably injects no noise (the
    engine then skips the call entirely); otherwise a callable
    ``fn(rank, t_start, active) -> float`` that matches
    ``model.interruption`` bit for bit.
    """
    if isinstance(model, NoNoise):
        return None
    if isinstance(model, Straggler):
        coeff = [0.0] * size
        factor = model.factor - 1.0
        for r in model.ranks:
            if 0 <= r < size:
                coeff[r] = factor
        if not any(coeff):
            return None

        def straggler(rank: int, t_start: float, active: float) -> float:
            return coeff[rank] * active

        return straggler
    if isinstance(model, ImbalanceRamp):
        if model.rate <= 0.0:
            return None
        member = _member_list(model.ranks, size)
        if not any(member):
            return None
        rate, t_cap = model.rate, model.t_cap

        def ramp(rank: int, t_start: float, active: float) -> float:
            if not member[rank]:
                return 0.0
            return rate * min(max(t_start, 0.0), t_cap) * active

        return ramp
    if isinstance(model, ScheduledInterruptions):
        by_rank: list[list[tuple[float, float, float]]] = [[] for _ in range(size)]
        for ev_rank, t0, t1, duration in model.events:
            if 0 <= ev_rank < size:
                by_rank[ev_rank].append((t0, t1, duration))
        if not any(by_rank):
            return None

        def scheduled(rank: int, t_start: float, active: float) -> float:
            total = 0.0
            for t0, t1, duration in by_rank[rank]:
                if t0 <= t_start < t1:
                    total += duration
            return total

        return scheduled
    if isinstance(model, NoiseBursts):
        member = _member_list(model.ranks, size)
        if not any(member) or model.period <= 0.0:
            return None
        period, duration = model.period, model.duration
        phase, window = model.phase, model.window

        def bursts(rank: int, t_start: float, active: float) -> float:
            if not member[rank]:
                return 0.0
            offset = (t_start - phase) % period
            if t_start >= phase and offset < window:
                return duration
            return 0.0

        return bursts
    if isinstance(model, CompositeNoise):
        fns = [scalar_noise(m, size) for m in model.models]
        if all(f is None for f in fns):
            return None
        # Models compiled to None contribute exactly 0.0, which the
        # uncompiled sum would have added too; keep the literal adds so
        # the accumulation order (and hence every bit) is unchanged.
        parts = [f if f is not None else (lambda rank, t, a: 0.0) for f in fns]

        def composite(rank: int, t_start: float, active: float) -> float:
            total = 0
            for f in parts:
                total = total + f(rank, t_start, active)
            return total

        return composite
    # Unknown / stateful models (GaussianJitter, user subclasses): call
    # straight through — correctness first, no compilation possible.
    return model.interruption


def vector_noise(model: NoiseModel, size: int):
    """Compile ``model`` into whole-rank-vector form for the fast path.

    Returns ``fn(t_start, active) -> ndarray`` taking per-rank vectors,
    or ``None`` when the model cannot be evaluated faithfully in vector
    form (the fast path then falls back to the general engine).  The
    returned callable carries ``always_zero=True`` when the model is
    provably silent, letting callers skip the add entirely.
    """
    zero = None

    def _zeros(t_start: np.ndarray, active: np.ndarray) -> np.ndarray:
        return np.zeros(size)

    _zeros.always_zero = True  # type: ignore[attr-defined]
    zero = _zeros

    if isinstance(model, NoNoise):
        return zero
    if isinstance(model, Straggler):
        coeff = np.zeros(size)
        for r in model.ranks:
            if 0 <= r < size:
                coeff[r] = model.factor - 1.0
        if not coeff.any():
            return zero

        def straggler(t_start: np.ndarray, active: np.ndarray) -> np.ndarray:
            return coeff * active

        return straggler
    if isinstance(model, ImbalanceRamp):
        member = np.array(_member_list(model.ranks, size))
        if model.rate <= 0.0 or not member.any():
            return zero
        rate_arr = np.where(member, model.rate, 0.0)
        t_cap = model.t_cap

        def ramp(t_start: np.ndarray, active: np.ndarray) -> np.ndarray:
            return rate_arr * np.minimum(np.maximum(t_start, 0.0), t_cap) * active

        return ramp
    if isinstance(model, ScheduledInterruptions):
        events = [
            (r, t0, t1, duration)
            for r, t0, t1, duration in model.events
            if 0 <= r < size
        ]
        if not events:
            return zero

        def scheduled(t_start: np.ndarray, active: np.ndarray) -> np.ndarray:
            out = np.zeros(size)
            for r, t0, t1, duration in events:
                ts = float(t_start[r])
                if t0 <= ts < t1:
                    out[r] += duration
            return out

        return scheduled
    if isinstance(model, NoiseBursts):
        members = [r for r in sorted(set(model.ranks)) if 0 <= r < size]
        if not members or model.period <= 0.0:
            return zero
        period, duration = model.period, model.duration
        phase, window = model.phase, model.window

        def bursts(t_start: np.ndarray, active: np.ndarray) -> np.ndarray:
            out = np.zeros(size)
            # Scalar evaluation per member rank keeps the window test
            # (Python float ``%``) identical to the uncompiled model.
            for r in members:
                ts = float(t_start[r])
                if ts >= phase and (ts - phase) % period < window:
                    out[r] = duration
            return out

        return bursts
    if isinstance(model, GaussianJitter):

        def jitter(t_start: np.ndarray, active: np.ndarray) -> np.ndarray:
            out = np.empty(size)
            for r in range(size):
                out[r] = model.interruption(r, float(t_start[r]), float(active[r]))
            return out

        return jitter
    if isinstance(model, CompositeNoise):
        fns = [vector_noise(m, size) for m in model.models]
        if any(f is None for f in fns):
            return None
        live = [f for f in fns if not getattr(f, "always_zero", False)]
        if not live:
            return zero

        def composite(t_start: np.ndarray, active: np.ndarray) -> np.ndarray:
            total = np.zeros(size)
            for f in live:
                total = total + f(t_start, active)
            return total

        return composite
    return None
