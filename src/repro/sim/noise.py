"""OS-noise models for the MPI simulator.

System noise — daemons, interrupts, page faults — preempts HPC
processes and stretches their computations without any progress in
hardware counters.  The second case study of the paper (COSMO-
SPECS+FD4, Section VII-B) traces exactly such an event: one process is
interrupted during a single function invocation, visible as a long
invocation with a *low* ``PAPI_TOT_CYC`` count.

A noise model maps each computation ``(rank, t_start, active_seconds)``
to the extra wall time injected into it.  Interruption time never
advances counters (the engine attributes counters to active time only).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "NoiseModel",
    "NoNoise",
    "GaussianJitter",
    "ScheduledInterruptions",
    "NoiseBursts",
    "ImbalanceRamp",
    "Straggler",
    "CompositeNoise",
]


class NoiseModel:
    """Interface: :meth:`interruption` returns extra wall seconds."""

    def interruption(self, rank: int, t_start: float, active: float) -> float:
        """Extra (non-computing) wall time injected into this compute op."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class NoNoise(NoiseModel):
    """The quiet machine: no perturbation."""

    def interruption(self, rank: int, t_start: float, active: float) -> float:
        return 0.0


class GaussianJitter(NoiseModel):
    """Half-normal multiplicative jitter: each computation stretches by
    ``|N(0, sigma)| * active``.

    OS noise only ever *adds* wall time, so the half-normal shape (all
    mass above zero) is the natural fit; ``sigma`` scales the typical
    relative stretch.

    Deterministic per (seed, rank, start time): the model derives a
    fresh PRNG from a hash of those values, so identical simulations
    produce identical traces regardless of scheduling order.
    """

    def __init__(self, sigma: float = 0.01, seed: int = 0) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.sigma = sigma
        self.seed = seed

    def interruption(self, rank: int, t_start: float, active: float) -> float:
        # Hash-based deterministic draw: independent of call ordering.
        key = np.uint64(
            (self.seed * 0x9E3779B97F4A7C15 + rank * 0xBF58476D1CE4E5B9)
            & 0xFFFFFFFFFFFFFFFF
        )
        mix = np.uint64(int(t_start * 1e9) & 0xFFFFFFFFFFFFFFFF)
        rng = np.random.default_rng(np.array([key, mix], dtype=np.uint64))
        draw = abs(float(rng.normal(0.0, self.sigma)))
        return draw * active


@dataclass(frozen=True)
class ScheduledInterruptions(NoiseModel):
    """Deterministic preemptions: (rank, window, duration) triples.

    A computation starting inside ``[t0, t1)`` on ``rank`` receives
    ``duration`` seconds of interruption (once per matching window).
    """

    events: tuple[tuple[int, float, float, float], ...] = ()
    # each entry: (rank, t0, t1, duration)

    def interruption(self, rank: int, t_start: float, active: float) -> float:
        total = 0.0
        for ev_rank, t0, t1, duration in self.events:
            if ev_rank == rank and t0 <= t_start < t1:
                total += duration
        return total


@dataclass(frozen=True)
class NoiseBursts(NoiseModel):
    """Periodic system-noise bursts on a subset of ranks.

    Every ``period`` seconds a daemon-like burst preempts the listed
    ranks for ``duration`` seconds: a computation *starting* inside
    ``[k * period + phase, k * period + phase + window)`` receives the
    full ``duration`` of interruption.  A single early burst on one
    rank of a nearest-neighbour workload is the canonical trigger of
    an idle wave (Afzal et al.): the delay propagates through the
    communication dependencies one neighbour per iteration.

    Fully deterministic from the dataclass fields — no hidden RNG —
    so identical simulations yield identical traces.
    """

    ranks: tuple[int, ...] = ()
    period: float = 1.0
    duration: float = 0.01
    #: Start of the first burst window.
    phase: float = 0.0
    #: Width of the susceptible window at the start of each period.
    window: float = 0.05

    def interruption(self, rank: int, t_start: float, active: float) -> float:
        if rank not in self.ranks or self.period <= 0.0:
            return 0.0
        offset = (t_start - self.phase) % self.period
        if t_start >= self.phase and offset < self.window:
            return self.duration
        return 0.0


@dataclass(frozen=True)
class ImbalanceRamp(NoiseModel):
    """Load imbalance that grows linearly over virtual time.

    The listed ranks are stretched by ``rate * min(t_start, t_cap)``
    relative seconds per active second — at ``t_start`` seconds into
    the run a computation of ``active`` seconds gains
    ``rate * t_start * active`` extra wall time.  Models a slowly
    developing imbalance (the COSMO-SPECS cloud-growth shape) as an
    injection knob rather than a hand-crafted workload.
    """

    ranks: tuple[int, ...] = ()
    rate: float = 0.1
    #: Time after which the ramp saturates (``inf`` = never).
    t_cap: float = float("inf")

    def interruption(self, rank: int, t_start: float, active: float) -> float:
        if rank not in self.ranks or self.rate <= 0.0:
            return 0.0
        return self.rate * min(max(t_start, 0.0), self.t_cap) * active


@dataclass(frozen=True)
class Straggler(NoiseModel):
    """Persistent multiplicative slowdown of selected ranks.

    Each listed rank computes ``factor`` times slower for the whole
    run: every computation of ``active`` seconds is stretched by
    ``(factor - 1) * active`` wall seconds without counter progress —
    the WRF case-study shape (one rank trapped in FPU microtraps),
    available as a composable injection.
    """

    ranks: tuple[int, ...] = ()
    factor: float = 1.5

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError("straggler factor must be >= 1")

    def interruption(self, rank: int, t_start: float, active: float) -> float:
        if rank not in self.ranks:
            return 0.0
        return (self.factor - 1.0) * active


@dataclass(frozen=True)
class CompositeNoise(NoiseModel):
    """Sum of several noise models."""

    models: tuple[NoiseModel, ...] = ()

    def interruption(self, rank: int, t_start: float, active: float) -> float:
        return sum(m.interruption(rank, t_start, active) for m in self.models)
