"""Hardware-counter models for the MPI simulator.

The simulator substitutes PAPI: counters advance as functions of
*active* computation time (interruptions and MPI waiting do not count),
so the case-study signatures emerge naturally:

* ``PAPI_TOT_CYC`` low for an invocation that was preempted by the OS
  (Section VII-B), because wall time passed without cycles;
* ``FR_FPU_EXCEPTIONS_SSE_MICROTRAPS`` high on the rank whose workload
  injects floating-point exceptions (Section VII-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from ..trace.definitions import MetricMode

__all__ = ["CounterSpec", "CounterSet", "PAPI_TOT_CYC", "FPU_EXCEPTIONS"]

PAPI_TOT_CYC = "PAPI_TOT_CYC"
FPU_EXCEPTIONS = "FR_FPU_EXCEPTIONS_SSE_MICROTRAPS"


@dataclass(frozen=True)
class CounterSpec:
    """Definition of one simulated counter.

    Attributes
    ----------
    name, unit, mode, description:
        Forwarded into the trace's metric registry.
    rate:
        ``rate(rank, active_seconds) -> increment`` applied for every
        computation; explicit per-op increments from
        :class:`repro.sim.ops.Compute` add on top.
    """

    name: str
    unit: str = "#"
    mode: MetricMode = MetricMode.ACCUMULATED
    description: str = ""
    rate: Callable[[int, float], float] | None = None

    def increment(self, rank: int, active: float) -> float:
        if self.rate is None:
            return 0.0
        return float(self.rate(rank, active))


class CounterSet:
    """The collection of counters recorded during one simulation."""

    def __init__(self, specs: tuple[CounterSpec, ...] = ()) -> None:
        self.specs = tuple(specs)
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("duplicate counter names")

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    @staticmethod
    def cycles(frequency_hz: float = 2.5e9) -> CounterSpec:
        """A ``PAPI_TOT_CYC``-style counter: cycles = active time x clock."""
        return CounterSpec(
            name=PAPI_TOT_CYC,
            unit="cycles",
            mode=MetricMode.ACCUMULATED,
            description="Total CPU cycles assigned to the process",
            rate=lambda rank, active: active * frequency_hz,
        )

    @staticmethod
    def fpu_exceptions(
        base_rate: float = 10.0,
        hot_ranks: Mapping[int, float] | None = None,
    ) -> CounterSpec:
        """FPU-exception counter with per-rank elevated rates.

        ``hot_ranks`` maps rank → exceptions per active second (overrides
        the base rate for those ranks).
        """
        hot = dict(hot_ranks or {})

        def rate(rank: int, active: float) -> float:
            return active * hot.get(rank, base_rate)

        return CounterSpec(
            name=FPU_EXCEPTIONS,
            unit="#",
            mode=MetricMode.ACCUMULATED,
            description="SSE floating-point exception microtraps",
            rate=rate,
        )
