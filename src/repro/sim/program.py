"""Reusable program fragments for rank generators.

Workload generators compose these helpers — halo exchanges, neighbour
topology, sub-generators — instead of hand-rolling Isend/Irecv patterns
in every model.
"""

from __future__ import annotations

from typing import Generator, Iterable

from . import ops

__all__ = ["grid_coords", "grid_rank", "neighbors_2d", "halo_exchange"]


def grid_coords(rank: int, px: int, py: int) -> tuple[int, int]:
    """(column, row) of ``rank`` in a row-major ``px x py`` process grid."""
    if not 0 <= rank < px * py:
        raise ValueError(f"rank {rank} outside {px}x{py} grid")
    return rank % px, rank // px


def grid_rank(col: int, row: int, px: int, py: int) -> int:
    """Inverse of :func:`grid_coords`."""
    if not (0 <= col < px and 0 <= row < py):
        raise ValueError(f"({col}, {row}) outside {px}x{py} grid")
    return row * px + col


def neighbors_2d(
    rank: int, px: int, py: int, periodic: bool = False
) -> list[int]:
    """Face neighbours (W, E, S, N order) of ``rank`` in the process grid.

    Non-periodic boundaries drop the missing neighbours.
    """
    col, row = grid_coords(rank, px, py)
    out: list[int] = []
    for dc, dr in ((-1, 0), (1, 0), (0, -1), (0, 1)):
        c, r = col + dc, row + dr
        if periodic:
            c %= px
            r %= py
        elif not (0 <= c < px and 0 <= r < py):
            continue
        out.append(grid_rank(c, r, px, py))
    return out


def halo_exchange(
    rank: int,
    neighbors: Iterable[int],
    size: int,
    tag: int = 0,
    region: str | None = "halo_exchange",
) -> Generator:
    """Nonblocking halo exchange with every neighbour.

    Posts all receives first, then all sends, then waits on everything —
    the canonical deadlock-free stencil pattern.  Yields from inside a
    user region when ``region`` is given.

    Message tags must distinguish the two directions of each pair: we
    tag with ``tag`` so concurrent exchanges in one iteration need
    distinct base tags.
    """
    nbrs = list(neighbors)
    if region is not None:
        yield ops.Enter(region)
    requests = []
    for nbr in nbrs:
        req = yield ops.Irecv(nbr, size=size, tag=tag)
        requests.append(req)
    for nbr in nbrs:
        req = yield ops.Isend(nbr, size=size, tag=tag)
        requests.append(req)
    if requests:
        yield ops.Waitall(requests)
    if region is not None:
        yield ops.Leave(region)
