"""Seeded scenario fuzzer, differential oracle and trace minimizer.

The repo carries four ways to compute the same analysis — the legacy
staged pipeline (validate → replay → statistics), the fused
single-pass kernel, the cursor-driven incremental kernel, and the
sharded multi-process engine — over two ``.rpt`` container versions.
Their contract is *bitwise* agreement, locked so far by differential
tests over a handful of hand-written scenarios.  This module grows the
evidence: random-but-reproducible scenarios, an oracle that runs every
engine/shard/chunk/format combination over each one, and a shrinker
that turns any divergence into a small self-contained repro.

Three pieces:

* :func:`generate_spec` — a single integer seed deterministically
  expands into a :class:`ScenarioSpec`: rank count, communication
  pattern (ring/grid/pairs/chain/token), collective mix, per-rank
  imbalance weights, clock skew, and injections drawn from the
  :mod:`repro.sim.noise` knobs (jitter, bursts, imbalance ramps,
  stragglers, scheduled interruptions).
* :func:`run_oracle` — simulates the spec and checks (a) structural
  invariants (monotone per-rank clocks, lint-clean structure,
  internally consistent statistics tables, v1/v2 fingerprint parity)
  and (b) the differential matrix: fused and incremental engines
  against the independent legacy implementation, and the sharded
  session engine across shard counts × chunk sizes × container
  versions against the unsharded reference analysis.
* :func:`minimize` — greedy scenario shrinking (drop ranks, drop
  iterations, zero injections, simplify patterns) while a failure
  predicate holds; :func:`write_repro` persists the minimized spec,
  its trace, and a runnable reproduction script.

Everything is deterministic from the seed: same seed → same spec,
same trace bytes, same oracle verdict.
"""

from __future__ import annotations

import os
import random
import json
import tempfile
import traceback
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from . import ops
from .countermodel import CounterSet
from .engine import SimResult, simulate
from .noise import (
    CompositeNoise,
    GaussianJitter,
    ImbalanceRamp,
    NoNoise,
    NoiseBursts,
    NoiseModel,
    ScheduledInterruptions,
    Straggler,
)
from .program import halo_exchange, neighbors_2d

__all__ = [
    "InjectionSpec",
    "ScenarioSpec",
    "OracleFailure",
    "OracleReport",
    "PATTERNS",
    "COLLECTIVES",
    "INJECTION_KINDS",
    "generate_spec",
    "build_program",
    "build_result",
    "build_trace",
    "run_oracle",
    "run_oracle_trace",
    "kind_preserving_predicate",
    "minimize",
    "write_repro",
    "fuzz_run",
    "ADVERSARY_KINDS",
    "ADVERSARY_EXPECT",
    "AdversarialScenario",
    "generate_adversarial",
    "build_adversarial_traces",
    "run_adversarial_oracle",
    "adversarial_run",
]

#: Deadlock-free-by-construction communication patterns.
PATTERNS = (
    "none",
    "halo_ring",
    "sendrecv_ring",
    "halo_grid",
    "pairs",
    "chain",
    "token_ring",
)

#: Collectives the generator mixes into iterations.
COLLECTIVES = (
    "none",
    "barrier",
    "allreduce",
    "bcast",
    "reduce",
    "allgather",
    "alltoall",
    "gather",
    "scatter",
)

#: Injection knobs sampled from :mod:`repro.sim.noise`.
INJECTION_KINDS = ("jitter", "burst", "ramp", "straggler", "interruption")

#: Default differential-oracle matrix axes.
SHARD_COUNTS = (1, 2, 3, 7)
CHUNK_SIZES = (1, 4096, None)  # one event, a page, the whole rank
VERSIONS = (1, 2)


# ---------------------------------------------------------------------------
# Scenario specification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InjectionSpec:
    """One sampled perturbation, mapped onto a noise model.

    ``magnitude`` is interpreted per kind: jitter sigma, burst/
    interruption duration in units of the scenario's base compute,
    ramp rate, or straggler slowdown minus one.
    """

    kind: str
    ranks: tuple[int, ...] = ()
    magnitude: float = 1.0
    t0: float = 0.0
    period: float = 1.0
    seed: int = 0

    def to_noise(self, base_compute: float) -> NoiseModel:
        if self.kind == "jitter":
            return GaussianJitter(sigma=self.magnitude, seed=self.seed)
        if self.kind == "burst":
            return NoiseBursts(
                ranks=self.ranks,
                period=self.period,
                duration=self.magnitude * base_compute,
                phase=self.t0,
                window=self.period / 4,
            )
        if self.kind == "ramp":
            return ImbalanceRamp(ranks=self.ranks, rate=self.magnitude)
        if self.kind == "straggler":
            return Straggler(ranks=self.ranks, factor=1.0 + self.magnitude)
        if self.kind == "interruption":
            return ScheduledInterruptions(
                events=tuple(
                    (rank, self.t0, self.t0 + self.period,
                     self.magnitude * base_compute)
                    for rank in self.ranks
                )
            )
        raise ValueError(f"unknown injection kind {self.kind!r}")


@dataclass(frozen=True)
class ScenarioSpec:
    """Complete, deterministic description of one fuzzed scenario."""

    seed: int
    ranks: int
    iterations: int
    pattern: str = "halo_ring"
    collective: str = "allreduce"
    collective_every: int = 1
    base_compute: float = 0.005
    msg_bytes: int = 1024
    subiters: int = 1
    #: Per-rank multiplicative compute weight (persistent imbalance).
    imbalance: tuple[float, ...] = ()
    #: Per-rank start offset in seconds (unsynchronized clocks).
    clock_skew: tuple[float, ...] = ()
    injections: tuple[InjectionSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.ranks < 2:
            raise ValueError("scenarios need at least 2 ranks")
        if self.iterations < 1:
            raise ValueError("scenarios need at least 1 iteration")
        if self.pattern not in PATTERNS:
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if self.collective not in COLLECTIVES:
            raise ValueError(f"unknown collective {self.collective!r}")

    # -- derived properties -------------------------------------------

    def weight(self, rank: int) -> float:
        if rank < len(self.imbalance):
            return self.imbalance[rank]
        return 1.0

    def skew(self, rank: int) -> float:
        if rank < len(self.clock_skew):
            return self.clock_skew[rank]
        return 0.0

    def size(self) -> int:
        """Scenario cost metric the minimizer shrinks: rank-iterations."""
        return self.ranks * self.iterations

    def noise_model(self) -> NoiseModel:
        models = tuple(
            inj.to_noise(self.base_compute) for inj in self.injections
        )
        if not models:
            return NoNoise()
        if len(models) == 1:
            return models[0]
        return CompositeNoise(models=models)

    def describe(self) -> str:
        extras = []
        if any(w != 1.0 for w in self.imbalance):
            extras.append("imbalance")
        if any(s > 0.0 for s in self.clock_skew):
            extras.append("skew")
        extras.extend(inj.kind for inj in self.injections)
        tail = f" +{','.join(extras)}" if extras else ""
        return (
            f"p={self.ranks} iters={self.iterations} "
            f"pattern={self.pattern} coll={self.collective}"
            f"/{self.collective_every}{tail}"
        )

    # -- serialization ------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        data = json.loads(text)
        data["imbalance"] = tuple(data.get("imbalance", ()))
        data["clock_skew"] = tuple(data.get("clock_skew", ()))
        data["injections"] = tuple(
            InjectionSpec(**{**inj, "ranks": tuple(inj.get("ranks", ()))})
            for inj in data.get("injections", ())
        )
        return cls(**data)


# ---------------------------------------------------------------------------
# Seeded generation
# ---------------------------------------------------------------------------


def _sample_injection(rng: random.Random, ranks: int, seed: int) -> InjectionSpec:
    kind = rng.choice(INJECTION_KINDS)
    count = rng.randint(1, max(1, ranks // 3))
    targets = tuple(sorted(rng.sample(range(ranks), count)))
    if kind == "jitter":
        return InjectionSpec(kind, magnitude=rng.uniform(0.002, 0.05),
                             seed=seed)
    if kind == "burst":
        return InjectionSpec(
            kind, ranks=targets,
            magnitude=rng.uniform(1.0, 8.0),
            t0=rng.uniform(0.0, 0.05),
            period=rng.uniform(0.02, 0.2),
        )
    if kind == "ramp":
        return InjectionSpec(kind, ranks=targets,
                             magnitude=rng.uniform(0.2, 3.0))
    if kind == "straggler":
        return InjectionSpec(kind, ranks=targets,
                             magnitude=rng.uniform(0.3, 2.5))
    return InjectionSpec(
        "interruption", ranks=targets,
        magnitude=rng.uniform(2.0, 10.0),
        t0=rng.uniform(0.0, 0.08),
        period=rng.uniform(0.01, 0.1),
    )


def generate_spec(seed: int) -> ScenarioSpec:
    """Expand ``seed`` into a scenario, fully deterministically.

    Sampling uses :class:`random.Random` (Mersenne Twister), whose
    sequences are stable across Python versions and platforms, so one
    integer pins the scenario forever.
    """
    rng = random.Random(seed * 0x9E3779B9 + 7)
    ranks = rng.randint(2, 12)
    # >= 3 iterations keeps the 2p dominant-candidate floor satisfied.
    iterations = rng.randint(3, 14)
    pattern = rng.choice(PATTERNS)
    collective = rng.choice(COLLECTIVES)
    collective_every = rng.choice((1, 1, 1, 2, 3))
    base_compute = rng.choice((0.002, 0.005, 0.01))
    msg_bytes = rng.choice((64, 1024, 8 * 1024, 128 * 1024))
    subiters = rng.choice((1, 1, 2, 3))

    imbalance: tuple[float, ...] = ()
    if rng.random() < 0.5:
        weights = [1.0] * ranks
        for _ in range(rng.randint(1, 2)):
            weights[rng.randrange(ranks)] = round(rng.uniform(1.2, 3.0), 3)
        imbalance = tuple(weights)

    clock_skew: tuple[float, ...] = ()
    if rng.random() < 0.25:
        clock_skew = tuple(
            round(rng.uniform(0.0, base_compute), 6) if rng.random() < 0.4
            else 0.0
            for _ in range(ranks)
        )

    injections = tuple(
        _sample_injection(rng, ranks, seed=seed * 31 + i)
        for i in range(rng.choice((0, 1, 1, 2)))
    )

    # A pattern-free, collective-free scenario has no inter-rank
    # coupling at all; keep at least one synchronization mechanism so
    # every scenario exercises the SOS machinery.
    if pattern == "none" and collective == "none":
        collective = "barrier"

    return ScenarioSpec(
        seed=seed,
        ranks=ranks,
        iterations=iterations,
        pattern=pattern,
        collective=collective,
        collective_every=collective_every,
        base_compute=base_compute,
        msg_bytes=msg_bytes,
        subiters=subiters,
        imbalance=imbalance,
        clock_skew=clock_skew,
        injections=injections,
    )


# ---------------------------------------------------------------------------
# Scenario → program → trace
# ---------------------------------------------------------------------------


def _grid_shape(ranks: int) -> tuple[int, int]:
    """Largest divisor pair (px, py) with px <= py for a process grid."""
    px = 1
    for d in range(2, int(ranks**0.5) + 1):
        if ranks % d == 0:
            px = d
    return px, ranks // px


def _exchange(spec: ScenarioSpec, rank: int, size: int):
    """One iteration's communication for ``rank`` (deadlock-free)."""
    bytes_ = spec.msg_bytes
    if spec.pattern == "none" or size < 2:
        return
    if spec.pattern == "halo_ring":
        left, right = (rank - 1) % size, (rank + 1) % size
        nbrs = [left, right] if left != right else [left]
        yield from halo_exchange(rank, nbrs, bytes_, tag=3, region=None)
    elif spec.pattern == "sendrecv_ring":
        left, right = (rank - 1) % size, (rank + 1) % size
        yield ops.Sendrecv(dest=right, source=left, size=bytes_, tag=4)
    elif spec.pattern == "halo_grid":
        px, py = _grid_shape(size)
        yield from halo_exchange(
            rank, neighbors_2d(rank, px, py), bytes_, tag=5, region=None
        )
    elif spec.pattern == "pairs":
        partner = rank ^ 1
        if partner < size:
            yield ops.Sendrecv(dest=partner, source=partner,
                               size=bytes_, tag=6)
    elif spec.pattern == "chain":
        if rank > 0:
            yield ops.Recv(rank - 1, size=bytes_, tag=7)
        if rank < size - 1:
            yield ops.Send(rank + 1, size=bytes_, tag=7)
    elif spec.pattern == "token_ring":
        if rank > 0:
            yield ops.Recv(rank - 1, size=bytes_, tag=8)
        yield ops.Compute(spec.base_compute / 4, region="critical_section")
        if rank < size - 1:
            yield ops.Send(rank + 1, size=bytes_, tag=8)
    else:  # pragma: no cover - guarded by ScenarioSpec validation
        raise ValueError(f"unknown pattern {spec.pattern!r}")


_COLLECTIVE_OPS = {
    "barrier": lambda: ops.Barrier(),
    "allreduce": lambda: ops.Allreduce(size=8),
    "bcast": lambda: ops.Bcast(size=256),
    "reduce": lambda: ops.Reduce(size=8),
    "allgather": lambda: ops.Allgather(size=64),
    "alltoall": lambda: ops.Alltoall(size=64),
    "gather": lambda: ops.Gather(size=64),
    "scatter": lambda: ops.Scatter(size=64),
}


def build_program(spec: ScenarioSpec):
    """Rank-program factory realizing ``spec``."""

    def program(rank: int, size: int):
        skew = spec.skew(rank)
        if skew > 0.0:
            yield ops.Elapse(skew)
        yield ops.Enter("main")
        yield ops.Compute(spec.base_compute / 4, region="setup")
        for it in range(spec.iterations):
            yield ops.Enter("iteration")
            per_sub = spec.base_compute * spec.weight(rank) / spec.subiters
            for _sub in range(spec.subiters):
                yield ops.Compute(per_sub, region="work")
            yield from _exchange(spec, rank, size)
            if (
                spec.collective != "none"
                and (it + 1) % spec.collective_every == 0
            ):
                yield _COLLECTIVE_OPS[spec.collective]()
            yield ops.Leave("iteration")
        yield ops.Leave("main")

    return program


def build_result(spec: ScenarioSpec) -> SimResult:
    """Simulate ``spec`` and return the full :class:`SimResult`."""
    return simulate(
        size=spec.ranks,
        program=build_program(spec),
        noise=spec.noise_model(),
        counters=CounterSet((CounterSet.cycles(),)),
        name=f"fuzz-{spec.seed}",
        attributes={
            "workload": "fuzz",
            "fuzz_seed": str(spec.seed),
            "pattern": spec.pattern,
        },
    )


def build_trace(spec: ScenarioSpec):
    """Simulate ``spec`` and return just the trace."""
    return build_result(spec).trace


# ---------------------------------------------------------------------------
# Differential oracle
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OracleFailure:
    """One divergence, crash or invariant violation."""

    cell: str
    message: str

    def __str__(self) -> str:
        return f"[{self.cell}] {self.message}"


@dataclass
class OracleReport:
    """Verdict of one oracle run over one scenario."""

    spec: ScenarioSpec | None
    fingerprint: str = ""
    cells: int = 0
    failures: list[OracleFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def failure_kinds(self) -> frozenset[str]:
        """Cell-name prefixes of the failures (``incremental``,
        ``session``, ``invariant``, ``reference``, ...)."""
        return frozenset(f.cell.split("/", 1)[0] for f in self.failures)

    def summary(self) -> str:
        head = self.spec.describe() if self.spec is not None else "corpus"
        if self.ok:
            return f"{head}: OK ({self.cells} cells)"
        lines = [f"{head}: {len(self.failures)} FAILURES"]
        lines.extend(f"  {f}" for f in self.failures[:20])
        if len(self.failures) > 20:
            lines.append(f"  ... and {len(self.failures) - 20} more")
        return "\n".join(lines)


_STAT_COLUMNS = (
    "count",
    "inclusive_sum",
    "exclusive_sum",
    "inclusive_min",
    "inclusive_max",
)
_TABLE_COLUMNS = ("region", "t_enter", "t_leave", "depth", "parent")


def _issue_keys(issues) -> list[tuple]:
    return [(i.rank, i.code, i.message, i.position, i.time) for i in issues]


def _diff_bootstrap(reference, got) -> list[str]:
    """Compare a FusedBootstrap against legacy (tables, partials, issues)."""
    tables, partials, issues = reference
    out: list[str] = []
    if _issue_keys(got.report.issues) != issues:
        out.append("validation issues differ from legacy validate_trace")
    if sorted(got.tables) != sorted(tables):
        out.append(
            f"table rank set differs: {sorted(got.tables)} vs {sorted(tables)}"
        )
        return out
    for rank in tables:
        for col in _TABLE_COLUMNS:
            if not np.array_equal(
                getattr(got.tables[rank], col), getattr(tables[rank], col)
            ):
                out.append(f"rank {rank} table column {col} differs")
        want_partial = partials[rank]
        if sorted(got.partials[rank]) != sorted(want_partial):
            out.append(f"rank {rank} partial key set differs")
            continue
        for stat, want in want_partial.items():
            if not np.array_equal(got.partials[rank][stat], want):
                out.append(f"rank {rank} partial {stat} differs")
    return out


def diff_analyses(reference, candidate) -> list[str]:
    """Bitwise comparison of two analyses; returns human-readable diffs.

    The library twin of the test suite's ``assert_identical_analysis``:
    every analysis product — dominant selection, profile statistics,
    SOS matrices, segmentation, heat map, detections, trends — must
    match exactly.
    """
    out: list[str] = []
    if candidate.dominant_name != reference.dominant_name:
        out.append(
            f"dominant differs: {candidate.dominant_name!r} "
            f"vs {reference.dominant_name!r}"
        )
    if candidate.selection.region != reference.selection.region:
        out.append("selected region id differs")
    for col in _STAT_COLUMNS:
        if not np.array_equal(
            getattr(candidate.profile.stats, col),
            getattr(reference.profile.stats, col),
        ):
            out.append(f"profile column {col} differs")
    if candidate.sos.ranks != reference.sos.ranks:
        out.append("SOS rank sets differ")
        return out
    for rank in reference.sos.ranks:
        ref, got = reference.sos[rank], candidate.sos[rank]
        for arr in ("duration", "sync_time", "sos"):
            if not np.array_equal(getattr(got, arr), getattr(ref, arr)):
                out.append(f"rank {rank} {arr} differs")
        ref_seg = reference.segmentation[rank]
        got_seg = candidate.segmentation[rank]
        for arr in ("t_start", "t_stop", "invocation_row"):
            if not np.array_equal(getattr(got_seg, arr), getattr(ref_seg, arr)):
                out.append(f"rank {rank} segment {arr} differs")
    ref_heat, ref_edges = reference.heat_matrix(bins=64)
    got_heat, got_edges = candidate.heat_matrix(bins=64)
    if not np.array_equal(got_edges, ref_edges):
        out.append("heat-map bin edges differ")
    if not np.array_equal(got_heat, ref_heat, equal_nan=True):
        out.append("heat-map matrix differs")
    ref_imb, got_imb = reference.imbalance, candidate.imbalance
    if got_imb.imbalance_pct != ref_imb.imbalance_pct:
        out.append("imbalance percentage differs")
    if [(h.rank, h.zscore) for h in got_imb.hot_ranks] != [
        (h.rank, h.zscore) for h in ref_imb.hot_ranks
    ]:
        out.append("hot-rank detections differ")
    if len(got_imb.hot_segments) != len(ref_imb.hot_segments):
        out.append("hot-segment counts differ")
    for trend_attr in ("trend", "duration_trend"):
        ref_t = getattr(reference, trend_attr)
        got_t = getattr(candidate, trend_attr)
        if got_t.slope != ref_t.slope or got_t.p_value != ref_t.p_value:
            out.append(f"{trend_attr} differs")
    return out


def _check_invariants(trace, tables, partials) -> list[OracleFailure]:
    """Structural invariants every generated trace must satisfy."""
    from ..lint import lint_trace
    from ..profiles.stats import FunctionStatistics, merge_statistics_arrays

    out: list[OracleFailure] = []
    for rank in trace.ranks:
        times = trace.events_of(rank).time
        if len(times) and np.any(np.diff(times) < 0):
            out.append(OracleFailure(
                "invariant/monotone", f"rank {rank} timestamps go backwards"
            ))
    report = lint_trace(trace)
    errors = [d for d in report.diagnostics
              if d.severity.name.lower() == "error"]
    if errors:
        out.append(OracleFailure(
            "invariant/lint",
            f"{len(errors)} lint errors, first: {errors[0].message}",
        ))
    # The generator is deadlock-free by construction, every send is
    # received, and every rank calls the same collective sequence — so
    # the cross-rank happens-before rules must never report a *defect*
    # (warning or worse: TL301-TL304) on a generated trace.  TL305 is
    # excluded on purpose: it is INFO-severity bottleneck *guidance*,
    # and scenarios with planted stragglers/noise legitimately contain
    # the wait chains it exists to attribute.
    hb_defects = [
        d for d in report.diagnostics
        if d.code.startswith("TL3")
        and d.severity.name.lower() in ("warning", "error")
    ]
    if hb_defects:
        out.append(OracleFailure(
            "invariant/hb",
            f"{len(hb_defects)} happens-before defect(s) on a "
            f"deadlock-free scenario, first: "
            f"[{hb_defects[0].code}] {hb_defects[0].message}",
        ))
    # Statistics-table consistency: partials merge to the aggregate,
    # and every aggregate row is internally coherent.
    stats = FunctionStatistics.from_partials(trace, partials)
    merged = merge_statistics_arrays(
        [partials[r] for r in sorted(partials)], len(trace.regions)
    )
    for col in _STAT_COLUMNS:
        if not np.array_equal(getattr(stats, col), merged[col]):
            out.append(OracleFailure(
                "invariant/stats", f"partial merge drifts on {col}"
            ))
    active = stats.count > 0
    if np.any(stats.count < 0):
        out.append(OracleFailure("invariant/stats", "negative counts"))
    if np.any(stats.inclusive_min[active] > stats.inclusive_max[active]):
        out.append(OracleFailure(
            "invariant/stats", "inclusive_min exceeds inclusive_max"
        ))
    tol = 1e-9 * max(1.0, float(np.abs(stats.inclusive_sum).max(initial=0.0)))
    if np.any(stats.exclusive_sum > stats.inclusive_sum + tol):
        out.append(OracleFailure(
            "invariant/stats", "exclusive_sum exceeds inclusive_sum"
        ))
    return out


@contextmanager
def _inprocess_workers():
    """Pin shard workers to 1 (in-process) unless the caller chose."""
    if os.environ.get("REPRO_SHARD_WORKERS", "").strip():
        yield
        return
    os.environ["REPRO_SHARD_WORKERS"] = "1"
    try:
        yield
    finally:
        os.environ.pop("REPRO_SHARD_WORKERS", None)


def _chunk_label(chunk: int | None) -> str:
    return "whole" if chunk is None else str(chunk)


def run_oracle_trace(
    trace,
    spec: ScenarioSpec | None = None,
    workdir: str | os.PathLike | None = None,
    shard_counts: Sequence[int] = SHARD_COUNTS,
    chunk_sizes: Sequence[int | None] = CHUNK_SIZES,
    versions: Sequence[int] = VERSIONS,
) -> OracleReport:
    """Run the full differential matrix over one trace.

    The reference products come from the independent legacy
    implementations (``validate_trace``, ``replay_trace``,
    ``rank_statistics_arrays``, and the in-memory ``analyze_trace``);
    each matrix cell recomputes them through a different engine/IO
    combination and any byte of disagreement is a failure.
    """
    from ..core import analyze_trace
    from ..core.fused import fused_bootstrap
    from ..core.incremental import incremental_bootstrap
    from ..core.session import AnalysisSession
    from ..profiles.replay import replay_trace
    from ..profiles.stats import rank_statistics_arrays
    from ..trace import write_binary
    from ..trace.fingerprint import fingerprint_trace
    from ..trace.reader import TraceIndex
    from ..trace.validate import validate_trace

    report = OracleReport(spec=spec)

    def run_cell(cell: str, fn) -> None:
        report.cells += 1
        try:
            for message in fn():
                report.failures.append(OracleFailure(cell, message))
        except Exception as err:  # noqa: BLE001 - a crash IS the finding
            detail = traceback.format_exception_only(type(err), err)[-1].strip()
            report.failures.append(OracleFailure(cell, f"crash: {detail}"))

    # Reference products (legacy staged path + production analysis).
    try:
        legacy_issues = _issue_keys(validate_trace(trace).issues)
        legacy_tables = replay_trace(trace)
        legacy_partials = {
            rank: rank_statistics_arrays(legacy_tables[rank], len(trace.regions))
            for rank in trace.ranks
        }
        reference = analyze_trace(trace)
        fp = fingerprint_trace(trace)
        report.fingerprint = fp.hexdigest
    except Exception as err:  # noqa: BLE001
        detail = traceback.format_exception_only(type(err), err)[-1].strip()
        report.failures.append(OracleFailure("reference", f"crash: {detail}"))
        return report

    legacy_ref = (legacy_tables, legacy_partials, legacy_issues)
    report.failures.extend(
        _check_invariants(trace, legacy_tables, legacy_partials)
    )

    with tempfile.TemporaryDirectory() as tmp, _inprocess_workers():
        root = Path(workdir) if workdir is not None else Path(tmp)
        root.mkdir(parents=True, exist_ok=True)
        paths: dict[int, Path] = {}
        for version in versions:
            path = root / f"scenario-v{version}.rpt"
            kwargs = {"codec": "raw"} if version == 2 else {}
            write_binary(trace, path, version=version, **kwargs)
            paths[version] = path

        # Container round-trip: fingerprints must survive both formats.
        def fingerprints() -> Iterator[str]:
            for version, path in paths.items():
                index = TraceIndex(path)
                loaded = fingerprint_trace(index.load())
                if loaded.hexdigest != fp.hexdigest:
                    yield f"v{version} load changes the trace fingerprint"
                for rank in trace.ranks:
                    if index.rank_digest(rank) != fp.rank_digest(rank):
                        yield f"v{version} rank {rank} digest differs"
                        break

        run_cell("io/fingerprint", fingerprints)

        for version in versions:
            index = TraceIndex(paths[version])

            def fused_cell(index=index):
                return _diff_bootstrap(legacy_ref, fused_bootstrap(index.load()))

            run_cell(f"fused/v{version}", fused_cell)

            for chunk in chunk_sizes:

                def incremental_cell(index=index, chunk=chunk):
                    got = incremental_bootstrap(
                        index.cursor(chunk_events=chunk)
                    )
                    return _diff_bootstrap(legacy_ref, got)

                run_cell(
                    f"incremental/v{version}/chunk={_chunk_label(chunk)}",
                    incremental_cell,
                )

        for version in versions:
            for shards in shard_counts:
                for chunk in chunk_sizes:

                    def session_cell(
                        version=version, shards=shards, chunk=chunk
                    ):
                        session = AnalysisSession(
                            None,
                            source_path=paths[version],
                            shards=shards,
                            chunk_events=chunk,
                        )
                        return diff_analyses(reference, session.analysis())

                    run_cell(
                        f"session/v{version}/shards={shards}"
                        f"/chunk={_chunk_label(chunk)}",
                        session_cell,
                    )

    return report


def _check_sink_parity(spec: ScenarioSpec, trace) -> list[OracleFailure]:
    """Re-simulate with the legacy object sink: bytes must not change.

    The production engine emits events into columnar buffers; the
    object sink is the original per-event ``TraceBuilder`` path.  Both
    must produce bitwise-identical traces for every scenario, which
    makes the sink itself part of the differential matrix rather than
    a trusted component.
    """
    from ..trace.fingerprint import fingerprint_trace

    from .engine import use_sink

    failures: list[OracleFailure] = []
    try:
        with use_sink("objects"):
            legacy = build_trace(spec)
    except Exception as err:  # noqa: BLE001 - a crash IS the finding
        detail = traceback.format_exception_only(type(err), err)[-1].strip()
        return [OracleFailure("sink/objects", f"crash: {detail}")]
    fp, fp_legacy = fingerprint_trace(trace), fingerprint_trace(legacy)
    if fp.hexdigest != fp_legacy.hexdigest:
        failures.append(
            OracleFailure(
                "sink/objects",
                "columnar and object sinks disagree on the trace fingerprint",
            )
        )
        for rank in trace.ranks:
            if fp.rank_digest(rank) != fp_legacy.rank_digest(rank):
                failures.append(
                    OracleFailure(
                        "sink/objects", f"rank {rank} digest differs"
                    )
                )
                break
    return failures


def run_oracle(
    spec: ScenarioSpec,
    workdir: str | os.PathLike | None = None,
    shard_counts: Sequence[int] = SHARD_COUNTS,
    chunk_sizes: Sequence[int | None] = CHUNK_SIZES,
    versions: Sequence[int] = VERSIONS,
) -> OracleReport:
    """Simulate ``spec`` and run the differential matrix on its trace."""
    try:
        trace = build_trace(spec)
    except Exception as err:  # noqa: BLE001 - generator bugs surface here
        detail = traceback.format_exception_only(type(err), err)[-1].strip()
        report = OracleReport(spec=spec)
        report.failures.append(OracleFailure("simulate", f"crash: {detail}"))
        return report
    report = run_oracle_trace(
        trace,
        spec=spec,
        workdir=workdir,
        shard_counts=shard_counts,
        chunk_sizes=chunk_sizes,
        versions=versions,
    )
    report.cells += 1
    report.failures.extend(_check_sink_parity(spec, trace))
    return report


# ---------------------------------------------------------------------------
# Minimization
# ---------------------------------------------------------------------------


def _with_ranks(spec: ScenarioSpec, ranks: int) -> ScenarioSpec:
    """Shrink the rank count, keeping dependent fields consistent."""
    ranks = max(2, ranks)
    injections = []
    for inj in spec.injections:
        kept = tuple(r for r in inj.ranks if r < ranks)
        if inj.kind == "jitter" or kept:
            injections.append(replace(inj, ranks=kept))
    return replace(
        spec,
        ranks=ranks,
        imbalance=spec.imbalance[:ranks],
        clock_skew=spec.clock_skew[:ranks],
        injections=tuple(injections),
    )


def _shrink_candidates(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Reduction attempts, most aggressive first."""
    if spec.ranks > 2:
        yield _with_ranks(spec, spec.ranks // 2)
        yield _with_ranks(spec, spec.ranks - 1)
    if spec.iterations > 1:
        yield replace(spec, iterations=max(1, spec.iterations // 2))
        yield replace(spec, iterations=spec.iterations - 1)
    for i in range(len(spec.injections)):
        yield replace(
            spec,
            injections=spec.injections[:i] + spec.injections[i + 1:],
        )
    if any(s > 0.0 for s in spec.clock_skew):
        yield replace(spec, clock_skew=())
    if any(w != 1.0 for w in spec.imbalance):
        yield replace(spec, imbalance=())
    if spec.subiters > 1:
        yield replace(spec, subiters=1)
    if spec.collective != "none" and spec.pattern != "none":
        yield replace(spec, collective="none")
    if spec.pattern != "none" and spec.collective != "none":
        yield replace(spec, pattern="none")
    if spec.msg_bytes > 64:
        yield replace(spec, msg_bytes=64)


def minimize(
    spec: ScenarioSpec,
    still_fails: Callable[[ScenarioSpec], bool],
    max_attempts: int = 200,
) -> ScenarioSpec:
    """Greedy scenario shrinking while ``still_fails`` holds.

    Repeatedly applies the first size reduction that keeps the failure
    reproducing — halving ranks or iterations, dropping injections,
    zeroing skew/imbalance, simplifying communication — until no
    reduction reproduces or ``max_attempts`` predicate calls are spent.
    The input spec must itself fail.

    ``still_fails`` should check for the *same* failure, not just any
    failure: a naive ``not run_oracle(s).ok`` predicate lets the
    shrinker walk into scenarios that fail for unrelated reasons (e.g.
    too few iterations for the dominant-candidate floor), producing a
    "repro" that fails even on healthy engines.  Use
    :func:`kind_preserving_predicate` for the standard behaviour.
    """
    if not still_fails(spec):
        raise ValueError("minimize() requires a failing scenario")
    attempts = 1
    current = spec
    progress = True
    while progress and attempts < max_attempts:
        progress = False
        for candidate in _shrink_candidates(current):
            if candidate == current:
                continue
            attempts += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
            if attempts >= max_attempts:
                break
    return current


def kind_preserving_predicate(
    report: OracleReport,
    **oracle_kwargs: Any,
) -> Callable[[ScenarioSpec], bool]:
    """Build a ``still_fails`` predicate that preserves the failure kind.

    Accepts a reduction only when re-running the oracle reproduces at
    least one failure whose cell-name prefix (``incremental``,
    ``session``, ``invariant``, ...) already appeared in ``report``.
    This keeps :func:`minimize` from shrinking into scenarios that fail
    for an unrelated reason — e.g. dropping below the ``2p``
    dominant-candidate floor crashes the *reference* pipeline, which a
    naive ``not ok`` predicate would happily count as "still failing".
    ``oracle_kwargs`` are forwarded to :func:`run_oracle` so tests can
    minimize against a reduced matrix.
    """
    kinds = report.failure_kinds()
    if not kinds:
        raise ValueError("report has no failures to preserve")
    return lambda s: bool(
        run_oracle(s, **oracle_kwargs).failure_kinds() & kinds
    )


def write_repro(
    report: OracleReport,
    directory: str | os.PathLike,
) -> Path:
    """Persist a failing scenario as a self-contained reproduction.

    Writes three artifacts under ``directory`` — the spec + failure
    list as JSON, the generated trace as ``.jsonl``, and a runnable
    ``repro-seed<N>.py`` that rebuilds the scenario and re-runs the
    oracle — and returns the script path.
    """
    if report.spec is None:
        raise ValueError("report carries no scenario spec")
    spec = report.spec
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    base = f"repro-seed{spec.seed}"

    (directory / f"{base}.json").write_text(json.dumps(
        {
            "spec": json.loads(spec.to_json()),
            "fingerprint": report.fingerprint,
            "cells": report.cells,
            "failures": [
                {"cell": f.cell, "message": f.message}
                for f in report.failures
            ],
        },
        indent=2,
        sort_keys=True,
    ) + "\n")

    from ..trace import write_jsonl

    write_jsonl(build_trace(spec), directory / f"{base}.jsonl")

    script = directory / f"{base}.py"
    script.write_text(
        '"""Self-contained fuzz reproduction (auto-generated).\n\n'
        "Run with repro importable (e.g. PYTHONPATH=src python "
        f"{base}.py).\n"
        '"""\n\n'
        "import sys\n\n"
        "from repro.sim.fuzz import ScenarioSpec, run_oracle\n\n"
        f"SPEC = {spec.to_json()!r}\n\n"
        "spec = ScenarioSpec.from_json(SPEC)\n"
        "report = run_oracle(spec)\n"
        "print(report.summary())\n"
        "sys.exit(0 if report.ok else 1)\n"
    )
    return script


# ---------------------------------------------------------------------------
# Campaign driver (CLI backend)
# ---------------------------------------------------------------------------


def fuzz_run(
    seed: int = 0,
    runs: int = 10,
    minimize_failures: bool = True,
    corpus_dir: str | os.PathLike | None = None,
    log: Callable[[str], None] = print,
) -> list[OracleReport]:
    """Run ``runs`` scenarios from consecutive seeds; minimize failures.

    Returns the per-scenario oracle reports (for failures, the report
    of the *minimized* scenario when minimization is enabled).  Repro
    artifacts are written under ``corpus_dir`` for every failure.
    """
    reports: list[OracleReport] = []
    for offset in range(runs):
        spec = generate_spec(seed + offset)
        report = run_oracle(spec)
        if report.ok:
            log(f"seed {spec.seed}: {report.summary()}")
            reports.append(report)
            continue
        log(f"seed {spec.seed}: {report.summary()}")
        if minimize_failures:
            minimized = minimize(
                spec, kind_preserving_predicate(report)
            )
            report = run_oracle(minimized)
            if report.ok:  # flaky failure: keep the original evidence
                report = run_oracle(spec)
            log(
                f"seed {spec.seed}: minimized "
                f"{spec.size()} -> {minimized.size()} rank-iterations"
            )
        if corpus_dir is not None and report.spec is not None:
            script = write_repro(report, corpus_dir)
            log(f"seed {spec.seed}: repro written to {script}")
        reports.append(report)
    return reports


# ---------------------------------------------------------------------------
# Adversarial mode: scenarios that DROP the deadlock-free guarantee
# ---------------------------------------------------------------------------

#: Defect kinds the adversarial generator plants, one per TL3xx rule.
ADVERSARY_KINDS = (
    "deadlock_cycle",
    "wildcard_race",
    "collective_drop",
    "orphan_send",
    "wait_chain",
)

#: The diagnostic each planted defect must provoke.
ADVERSARY_EXPECT = {
    "deadlock_cycle": "TL301",
    "wildcard_race": "TL302",
    "collective_drop": "TL303",
    "orphan_send": "TL304",
    "wait_chain": "TL305",
}


@dataclass(frozen=True)
class AdversarialScenario:
    """One planted-defect scenario: a healthy baseline plus a defect.

    The baseline spec is injection-free so the full TL3xx family —
    including the INFO-severity TL305 — is provably silent on it; the
    defective trace is derived from the baseline by event mutation
    (or, for ``wait_chain``, by re-simulating with an extreme
    straggler), because the simulator itself would hang or crash on a
    genuinely deadlocking program.
    """

    seed: int
    kind: str
    expected_code: str
    spec: ScenarioSpec

    def describe(self) -> str:
        return (
            f"kind={self.kind} expect={self.expected_code} "
            f"{self.spec.describe()}"
        )


def generate_adversarial(seed: int) -> AdversarialScenario:
    """Expand ``seed`` into an adversarial scenario, deterministically.

    Kinds rotate with the seed, so any 5 consecutive seeds cover every
    TL3xx rule; sizes are sampled within bounds that keep the planted
    defect detectable.
    """
    kind = ADVERSARY_KINDS[seed % len(ADVERSARY_KINDS)]
    rng = random.Random(seed * 0x51ED2705 + 13)
    common = dict(
        seed=seed,
        iterations=rng.randint(3, 6),
        base_compute=0.005,
        msg_bytes=rng.choice((64, 1024)),
        collective="none",
    )
    if kind == "deadlock_cycle":
        spec = ScenarioSpec(pattern="pairs", ranks=rng.choice((4, 6, 8)),
                            **common)
    elif kind == "wildcard_race":
        spec = ScenarioSpec(pattern="halo_ring", ranks=rng.randint(4, 8),
                            **common)
    elif kind == "collective_drop":
        common["collective"] = "barrier"
        spec = ScenarioSpec(pattern="none", ranks=rng.randint(3, 8),
                            **common)
    elif kind == "orphan_send":
        spec = ScenarioSpec(pattern="chain", ranks=rng.randint(3, 8),
                            **common)
    else:  # wait_chain
        spec = ScenarioSpec(pattern="chain", ranks=rng.randint(5, 8),
                            **common)
    return AdversarialScenario(
        seed=seed, kind=kind, expected_code=ADVERSARY_EXPECT[kind], spec=spec
    )


def _mutate_events(trace, rank: int, fn):
    """Rebuild ``trace`` with ``rank``'s event columns transformed.

    ``fn`` receives a dict of writable column copies and returns the
    (possibly length-changed) replacement dict.  Registries and
    Location objects are shared with the source trace — only the one
    EventList is rebuilt.
    """
    from ..trace.events import _FIELDS, EventList
    from ..trace.trace import Trace

    out = Trace(
        trace.regions,
        trace.metrics,
        name=trace.name,
        attributes=dict(trace.attributes),
    )
    for proc in trace.processes():
        events = proc.events
        if proc.rank == rank:
            cols = {f: getattr(events, f).copy() for f in _FIELDS}
            cols = fn(cols)
            events = EventList(*(cols[f] for f in _FIELDS))
        out.add_process(proc.location, events)
    return out


def _plant_deadlock_cycle(trace, spec: ScenarioSpec):
    """Retag both pair partners' sends: each side's receive starves."""
    from ..trace.events import EventKind

    out = trace
    for rank in (0, 1):
        def retag(cols, _r=rank):
            send = cols["kind"] == np.uint8(EventKind.SEND)
            cols["tag"][send] = 9900
            return cols

        out = _mutate_events(out, rank, retag)
    return out


def _plant_wildcard_race(trace, spec: ScenarioSpec):
    """Turn rank 0's receives into wildcards (MPI_ANY_SOURCE)."""
    from ..trace.events import EventKind

    def wildcard(cols):
        recv = cols["kind"] == np.uint8(EventKind.RECV)
        cols["partner"][recv] = -1
        return cols

    return _mutate_events(trace, 0, wildcard)


def _plant_collective_drop(trace, spec: ScenarioSpec):
    """Delete the last rank's first collective invocation entirely."""
    from ..lint.hb import COLLECTIVE_NAMES
    from ..trace.events import EventKind

    rank = trace.ranks[-1]
    coll_ids = {
        r.id for r in trace.regions if r.name in COLLECTIVE_NAMES
    }

    def drop(cols):
        enter = np.flatnonzero(
            (cols["kind"] == np.uint8(EventKind.ENTER))
            & np.isin(cols["ref"], list(coll_ids))
        )
        if not len(enter):
            raise ValueError("scenario has no collective to drop")
        i = int(enter[0])
        leave = np.flatnonzero(
            (cols["kind"] == np.uint8(EventKind.LEAVE))
            & (cols["ref"] == cols["ref"][i])
        )
        j = int(leave[leave > i][0])
        keep = np.ones(len(cols["time"]), dtype=bool)
        keep[[i, j]] = False
        return {f: arr[keep] for f, arr in cols.items()}

    return _mutate_events(trace, rank, drop)


def _plant_orphan_send(trace, spec: ScenarioSpec):
    """Retag rank 0's first send: one orphan send, one starved recv."""
    from ..trace.events import EventKind

    def retag(cols):
        send = np.flatnonzero(cols["kind"] == np.uint8(EventKind.SEND))
        if not len(send):
            raise ValueError("scenario has no send to orphan")
        cols["tag"][int(send[0])] = 9900
        return cols

    return _mutate_events(trace, 0, retag)


def _plant_wait_chain(trace, spec: ScenarioSpec):
    """Re-simulate with one huge preemption at the chain's head.

    A single long interruption on rank 0's first-iteration compute
    stalls every downstream rank of the chain for its full length:
    the chain's summed blocked time approaches ``(p - 1) ×`` the
    interruption while the run only grows by one interruption — the
    unambiguous, origin-attributable idle wave TL305 exists to name.
    (A straggler injection cannot get there: slowing every iteration
    stretches the denominator as fast as the waits.)
    """
    stall = 20.0 * spec.iterations  # in units of base_compute
    slow = replace(
        spec,
        injections=(
            InjectionSpec(
                "interruption",
                ranks=(0,),
                magnitude=stall,
                t0=0.0,
                period=spec.base_compute,
            ),
        ),
    )
    return build_trace(slow)


_PLANTERS = {
    "deadlock_cycle": _plant_deadlock_cycle,
    "wildcard_race": _plant_wildcard_race,
    "collective_drop": _plant_collective_drop,
    "orphan_send": _plant_orphan_send,
    "wait_chain": _plant_wait_chain,
}


def build_adversarial_traces(scenario: AdversarialScenario):
    """Return ``(healthy, defective)`` traces for one scenario."""
    healthy = build_trace(scenario.spec)
    defective = _PLANTERS[scenario.kind](healthy, scenario.spec)
    return healthy, defective


def run_adversarial_oracle(scenario: AdversarialScenario) -> OracleReport:
    """Check the TL3xx detector against one planted defect.

    Two assertions per scenario: the healthy baseline produces *zero*
    TL3xx findings of any severity, and the defective twin produces at
    least one finding with the planted kind's expected code.
    """
    from ..lint import lint_trace

    report = OracleReport(spec=scenario.spec)
    try:
        healthy, defective = build_adversarial_traces(scenario)
    except Exception as err:  # noqa: BLE001 - a crash IS the finding
        detail = traceback.format_exception_only(type(err), err)[-1].strip()
        report.cells += 1
        report.failures.append(
            OracleFailure("adversarial/crash", f"crash: {detail}")
        )
        return report

    report.cells += 1
    clean = [
        d for d in lint_trace(healthy).diagnostics
        if d.code.startswith("TL3")
    ]
    if clean:
        report.failures.append(OracleFailure(
            "adversarial/healthy",
            f"{scenario.kind}: healthy baseline raised "
            f"[{clean[0].code}] {clean[0].message}",
        ))

    report.cells += 1
    found = {
        d.code for d in lint_trace(defective).diagnostics
        if d.code.startswith("TL3")
    }
    if scenario.expected_code not in found:
        got = ", ".join(sorted(found)) or "nothing"
        report.failures.append(OracleFailure(
            "adversarial/missed",
            f"{scenario.kind}: planted defect not flagged — expected "
            f"{scenario.expected_code}, checker reported {got}",
        ))
    return report


def adversarial_run(
    seed: int = 0,
    runs: int = 5,
    log: Callable[[str], None] = print,
) -> list[OracleReport]:
    """Run ``runs`` adversarial scenarios from consecutive seeds.

    With the default 5 runs every TL3xx rule is exercised once (kinds
    rotate with the seed).  Returns per-scenario oracle reports.
    """
    reports: list[OracleReport] = []
    for offset in range(runs):
        scenario = generate_adversarial(seed + offset)
        report = run_adversarial_oracle(scenario)
        status = "ok" if report.ok else "FAIL"
        log(f"seed {scenario.seed}: {scenario.describe()} -> {status}")
        for failure in report.failures:
            log(f"  {failure}")
        reports.append(report)
    return reports
