"""Discrete-event MPI application simulator."""

from . import ops
from .countermodel import CounterSet, CounterSpec, FPU_EXCEPTIONS, PAPI_TOT_CYC
from .engine import DeadlockError, SimResult, Simulator, simulate
from .network import NetworkModel
from .noise import (
    CompositeNoise,
    GaussianJitter,
    ImbalanceRamp,
    NoNoise,
    NoiseBursts,
    NoiseModel,
    ScheduledInterruptions,
    Straggler,
)
from .program import grid_coords, grid_rank, halo_exchange, neighbors_2d

__all__ = [
    "CompositeNoise",
    "CounterSet",
    "CounterSpec",
    "DeadlockError",
    "FPU_EXCEPTIONS",
    "GaussianJitter",
    "ImbalanceRamp",
    "NetworkModel",
    "NoNoise",
    "NoiseBursts",
    "NoiseModel",
    "PAPI_TOT_CYC",
    "ScheduledInterruptions",
    "SimResult",
    "Simulator",
    "Straggler",
    "grid_coords",
    "grid_rank",
    "halo_exchange",
    "neighbors_2d",
    "ops",
    "simulate",
]
