"""Discrete-event MPI application simulator."""

from . import ops
from .countermodel import CounterSet, CounterSpec, FPU_EXCEPTIONS, PAPI_TOT_CYC
from .engine import DeadlockError, SimResult, Simulator, simulate, use_sink
from .fastpath import HaloRing, LoopSpec
from .network import (
    DragonflyTopology,
    FatTreeTopology,
    NetworkModel,
    Topology,
    TopologyNetworkModel,
    TorusTopology,
)
from .noise import (
    CompositeNoise,
    GaussianJitter,
    ImbalanceRamp,
    NoNoise,
    NoiseBursts,
    NoiseModel,
    ScheduledInterruptions,
    Straggler,
    scalar_noise,
    vector_noise,
)
from .program import grid_coords, grid_rank, halo_exchange, neighbors_2d
from .sink import ColumnarTraceSink, ObjectTraceSink

__all__ = [
    "ColumnarTraceSink",
    "CompositeNoise",
    "CounterSet",
    "CounterSpec",
    "DeadlockError",
    "DragonflyTopology",
    "FPU_EXCEPTIONS",
    "FatTreeTopology",
    "GaussianJitter",
    "HaloRing",
    "ImbalanceRamp",
    "LoopSpec",
    "NetworkModel",
    "NoNoise",
    "NoiseBursts",
    "NoiseModel",
    "ObjectTraceSink",
    "PAPI_TOT_CYC",
    "ScheduledInterruptions",
    "SimResult",
    "Simulator",
    "Straggler",
    "Topology",
    "TopologyNetworkModel",
    "TorusTopology",
    "grid_coords",
    "grid_rank",
    "halo_exchange",
    "neighbors_2d",
    "ops",
    "scalar_noise",
    "simulate",
    "use_sink",
    "vector_noise",
]
