"""Trace sinks: where the simulator's event stream lands.

The engine records events through a tiny recorder protocol (``enter``,
``leave``, ``send``, ``recv``, ``metric`` — the same surface as
:class:`repro.trace.builder.ProcessBuilder`).  Two sinks implement it:

``ColumnarTraceSink`` (the default)
    Each rank appends straight into preallocated NumPy column buffers
    with the canonical ``.rpt`` dtypes and default values prefilled, so
    an ENTER costs two array stores instead of seven list appends and
    freezing is a slice — no per-event Python objects are ever built.
    The buffers can be written directly into ``.rpt`` v2 per-column
    codec blobs (:meth:`ColumnarTraceSink.write`), bypassing
    :class:`~repro.trace.trace.Trace` construction entirely.

``ObjectTraceSink`` (``sink="objects"``)
    The legacy path through :class:`TraceBuilder`/:class:`ProcessBuilder`,
    retained as the differential oracle: its output is proven bitwise
    identical to the columnar sink by the sink-parity tests.

Both sinks share one :class:`TraceBuilder` for the definition
registries, so region/metric ids (and hence fingerprints) are
identical whichever sink records the events.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..obs import counter as obs_counter
from ..trace.builder import TraceBuilder
from ..trace.definitions import Location
from ..trace.events import EventKind, EventList
from ..trace.trace import Trace

__all__ = ["ColumnarRecorder", "ColumnarTraceSink", "ObjectTraceSink"]

_ENTER = int(EventKind.ENTER)
_LEAVE = int(EventKind.LEAVE)
_SEND = int(EventKind.SEND)
_RECV = int(EventKind.RECV)
_METRIC = int(EventKind.METRIC)

#: Canonical column order, matching ``repro.trace.events._FIELDS``.
_COLUMNS = ("time", "kind", "ref", "partner", "size", "tag", "value")


class ColumnarRecorder:
    """Stack-checked per-rank event writer into NumPy column buffers.

    Semantics (including every error message) mirror
    :class:`~repro.trace.builder.ProcessBuilder`; only the storage
    differs.  Buffers are prefilled with the column defaults
    (``kind=ENTER``, ``ref=-1``, ``partner=-1``, zeros elsewhere) so
    each event only stores the fields its kind actually carries.
    """

    __slots__ = (
        "location",
        "_tb",
        "_n",
        "_cap",
        "_last",
        "_stack",
        "_time",
        "_kind",
        "_ref",
        "_partner",
        "_size",
        "_tag",
        "_value",
    )

    def __init__(
        self, builder: TraceBuilder, location: Location, capacity: int = 32
    ) -> None:
        self._tb = builder
        self.location = location
        self._n = 0
        self._stack: list[int] = []
        self._last = float("-inf")
        self._alloc(max(int(capacity), 1))

    def _alloc(self, cap: int) -> None:
        self._cap = cap
        self._time = np.empty(cap, dtype=np.float64)
        self._kind = np.zeros(cap, dtype=np.uint8)  # default ENTER
        self._ref = np.full(cap, -1, dtype=np.int32)
        self._partner = np.full(cap, -1, dtype=np.int32)
        self._size = np.zeros(cap, dtype=np.int64)
        self._tag = np.zeros(cap, dtype=np.int32)
        self._value = np.zeros(cap, dtype=np.float64)

    def _grow(self) -> None:
        n, old = self._n, (
            self._time, self._kind, self._ref,
            self._partner, self._size, self._tag, self._value,
        )
        self._alloc(self._cap * 2)
        for name, arr in zip(_COLUMNS, old):
            getattr(self, f"_{name}")[:n] = arr[:n]

    # -- stack state ----------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def depth(self) -> int:
        return len(self._stack)

    @property
    def current_region(self) -> int | None:
        return self._stack[-1] if self._stack else None

    @property
    def now(self) -> float | None:
        return self._last if self._n else None

    # -- event writing --------------------------------------------------

    def _row(self, time: float) -> int:
        if time < self._last:
            raise ValueError(
                f"non-monotonic timestamp {time} after {self._last}"
            )
        self._last = time
        n = self._n
        if n == self._cap:
            self._grow()
        self._n = n + 1
        self._time[n] = time
        return n

    def enter(self, time: float, region: int | str) -> int:
        region_id = self._resolve(region)
        n = self._row(time)
        # kind buffer is prefilled with ENTER
        self._ref[n] = region_id
        self._stack.append(region_id)
        return region_id

    def leave(self, time: float, region: int | str | None = None) -> int:
        if not self._stack:
            raise ValueError(
                f"leave at t={time} on {self.location.name}: stack is empty"
            )
        top = self._stack[-1]
        if region is not None:
            region_id = self._resolve(region)
            if region_id != top:
                raise ValueError(
                    f"leave({self._region_name(region_id)!r}) at t={time} does not "
                    f"match open region {self._region_name(top)!r}"
                )
        self._stack.pop()
        n = self._row(time)
        self._kind[n] = _LEAVE
        self._ref[n] = top
        return top

    def call(self, t_enter: float, t_leave: float, region: int | str) -> None:
        if t_leave < t_enter:
            raise ValueError(f"negative duration: [{t_enter}, {t_leave}]")
        self.enter(t_enter, region)
        self.leave(t_leave)

    def send(self, time: float, partner: int, size: int = 0, tag: int = 0) -> None:
        n = self._row(time)
        self._kind[n] = _SEND
        self._partner[n] = partner
        self._size[n] = size
        self._tag[n] = tag

    def recv(self, time: float, partner: int, size: int = 0, tag: int = 0) -> None:
        n = self._row(time)
        self._kind[n] = _RECV
        self._partner[n] = partner
        self._size[n] = size
        self._tag[n] = tag

    def metric(self, time: float, metric: int | str, value: float) -> None:
        if isinstance(metric, str):
            metric = self._tb.metrics.id_of(metric)
        n = self._row(time)
        self._kind[n] = _METRIC
        self._ref[n] = metric
        self._value[n] = value

    # -- helpers --------------------------------------------------------

    def _resolve(self, region: int | str) -> int:
        if isinstance(region, str):
            return self._tb.regions.id_of(region)
        return int(region)

    def _region_name(self, region_id: int) -> str:
        return self._tb.regions[region_id].name

    def finish(self) -> None:
        if self._stack:
            open_names = [self._region_name(r) for r in self._stack]
            raise ValueError(
                f"{self.location.name}: unclosed regions at end of trace: "
                f"{open_names}"
            )

    # -- finalisation ---------------------------------------------------

    def columns(self) -> dict[str, np.ndarray]:
        """Trimmed views of the column buffers (no copies)."""
        n = self._n
        return {name: getattr(self, f"_{name}")[:n] for name in _COLUMNS}

    def freeze_events(self) -> EventList:
        cols = self.columns()
        return EventList(*(cols[name] for name in _COLUMNS))


class ObjectTraceSink:
    """Legacy sink: events through ``TraceBuilder``/``ProcessBuilder``."""

    kind = "objects"

    def __init__(self, builder: TraceBuilder) -> None:
        self.tb = builder

    def recorder(self, rank: int, name: str | None = None):
        return self.tb.process(rank, name=name)

    def freeze(self, check_stacks: bool = True) -> Trace:
        return self.tb.freeze(check_stacks=check_stacks)

    @property
    def num_events(self) -> int:
        return sum(len(pb._events) for pb in self.tb._processes.values())


class ColumnarTraceSink:
    """Default sink: per-rank preallocated NumPy column buffers.

    Ranks either record event by event through a
    :class:`ColumnarRecorder` (the general engine) or hand over
    fully-computed column arrays at once (:meth:`adopt`, used by the
    vectorized fast path).
    """

    kind = "columnar"

    def __init__(self, builder: TraceBuilder, capacity: int = 32) -> None:
        self.tb = builder
        self._capacity = capacity
        self._recorders: dict[int, ColumnarRecorder] = {}
        self._adopted: dict[int, tuple[Location, dict[str, np.ndarray]]] = {}

    def recorder(self, rank: int, name: str | None = None) -> ColumnarRecorder:
        rec = self._recorders.get(rank)
        if rec is None:
            location = Location(
                id=rank, name=name or f"Process {rank}", group="MPI"
            )
            rec = ColumnarRecorder(self.tb, location, capacity=self._capacity)
            self._recorders[rank] = rec
        return rec

    def adopt(
        self, rank: int, name: str, columns: dict[str, np.ndarray]
    ) -> None:
        """Install precomputed column arrays for one rank."""
        location = Location(id=rank, name=name, group="MPI")
        self._adopted[rank] = (location, columns)

    @property
    def num_events(self) -> int:
        total = sum(rec._n for rec in self._recorders.values())
        total += sum(len(cols["time"]) for _, cols in self._adopted.values())
        return total

    def rank_columns(self) -> Iterator[tuple[Location, int, dict[str, np.ndarray]]]:
        """Per-rank ``(location, n, columns)`` in ascending rank order."""
        for rank in sorted(self._recorders.keys() | self._adopted.keys()):
            rec = self._recorders.get(rank)
            if rec is not None:
                yield rec.location, rec._n, rec.columns()
            else:
                location, cols = self._adopted[rank]
                yield location, len(cols["time"]), cols

    def freeze(self, check_stacks: bool = True) -> Trace:
        trace = Trace(
            regions=self.tb.regions,
            metrics=self.tb.metrics,
            name=self.tb.name,
            attributes=self.tb.attributes,
        )
        for rank in sorted(self._recorders.keys() | self._adopted.keys()):
            rec = self._recorders.get(rank)
            if rec is not None:
                if check_stacks:
                    rec.finish()
                trace.add_process(rec.location, rec.freeze_events())
            else:
                location, cols = self._adopted[rank]
                trace.add_process(
                    location, EventList(*(cols[name] for name in _COLUMNS))
                )
        return trace

    def write(
        self,
        path,
        *,
        version: int | None = None,
        codec=None,
        compresslevel: int = 6,
    ) -> int:
        """Serialise the buffers straight to ``.rpt``; returns file bytes.

        This is the direct-to-v2 path: column buffers become codec
        blobs without building a :class:`Trace` or any
        :class:`EventList` in between.
        """
        from ..trace.binio import BIN_VERSION, write_binary_arrays

        total = write_binary_arrays(
            path,
            name=self.tb.name,
            attributes=self.tb.attributes,
            regions=self.tb.regions,
            metrics=self.tb.metrics,
            locations=self.rank_columns(),
            version=BIN_VERSION if version is None else version,
            codec=codec,
            compresslevel=compresslevel,
        )
        obs_counter("sim.bytes_written").add(total)
        return total
