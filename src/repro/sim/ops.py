"""Operations a simulated rank program can yield to the engine.

A workload is a plain Python generator per rank that yields these
operation objects; the :mod:`repro.sim.engine` interprets them, advances
virtual time, applies the network/noise models and records trace events.
The vocabulary mirrors the MPI calls the paper's case-study codes use.

Example
-------
::

    def program(rank: int, size: int):
        yield Enter("main")
        for _ in range(10):
            yield Enter("iteration")
            yield Compute(0.01 * (1 + rank / size), region="solve")
            yield Barrier()
            yield Leave("iteration")
        yield Leave("main")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

__all__ = [
    "Comm",
    "WORLD",
    "Op",
    "Compute",
    "Elapse",
    "Enter",
    "Leave",
    "Sample",
    "Barrier",
    "Bcast",
    "Reduce",
    "Allreduce",
    "Allgather",
    "Alltoall",
    "Gather",
    "Scatter",
    "Send",
    "Recv",
    "Sendrecv",
    "Isend",
    "Irecv",
    "Wait",
    "Waitall",
    "Request",
]


@dataclass(frozen=True, slots=True)
class Comm:
    """A communicator: an ordered group of ranks with a stable id.

    ``WORLD`` is a sentinel resolved by the engine to all ranks of the
    run; sub-communicators are built with explicit rank tuples.
    """

    id: int
    ranks: tuple[int, ...]

    @property
    def size(self) -> int:
        return len(self.ranks)

    def index_of(self, rank: int) -> int:
        return self.ranks.index(rank)


#: Sentinel communicator meaning "all ranks" (id 0 is reserved for it).
WORLD = Comm(id=0, ranks=())


class Op:
    """Base class of all yieldable operations (for isinstance checks)."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Compute(Op):
    """Busy computation for ``seconds`` of active CPU time.

    Parameters
    ----------
    seconds:
        Active computation time.  The noise model may add interruptions
        on top, extending wall time without adding counter progress.
    region:
        Region name recorded around the computation (optional — without
        it the time passes inside the currently open region).
    counters:
        Extra counter increments attributed to this computation, e.g.
        ``{"FR_FPU_EXCEPTIONS_SSE_MICROTRAPS": 5200.0}``.
    interruption:
        Deterministic extra wall time injected *into* this computation
        (models an OS preemption; counters do not advance during it).
    """

    seconds: float
    region: str | None = None
    counters: Mapping[str, float] | None = None
    interruption: float = 0.0


@dataclass(frozen=True, slots=True)
class Elapse(Op):
    """Let wall time pass without computing (idle / sleep)."""

    seconds: float


@dataclass(frozen=True, slots=True)
class Enter(Op):
    """Enter a user region."""

    region: str


@dataclass(frozen=True, slots=True)
class Leave(Op):
    """Leave the innermost user region (name checked when given)."""

    region: str | None = None


@dataclass(frozen=True, slots=True)
class Sample(Op):
    """Explicitly sample a counter at the current time."""

    metric: str
    value: float | None = None  # None: emit the engine-accumulated value


# -- collectives -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Barrier(Op):
    comm: Comm = WORLD


@dataclass(frozen=True, slots=True)
class Bcast(Op):
    size: int = 0
    root: int = 0
    comm: Comm = WORLD


@dataclass(frozen=True, slots=True)
class Reduce(Op):
    size: int = 0
    root: int = 0
    comm: Comm = WORLD


@dataclass(frozen=True, slots=True)
class Allreduce(Op):
    size: int = 0
    comm: Comm = WORLD


@dataclass(frozen=True, slots=True)
class Allgather(Op):
    size: int = 0
    comm: Comm = WORLD


@dataclass(frozen=True, slots=True)
class Alltoall(Op):
    size: int = 0
    comm: Comm = WORLD


@dataclass(frozen=True, slots=True)
class Gather(Op):
    size: int = 0
    root: int = 0
    comm: Comm = WORLD


@dataclass(frozen=True, slots=True)
class Scatter(Op):
    size: int = 0
    root: int = 0
    comm: Comm = WORLD


# -- point-to-point -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Send(Op):
    """Blocking send (eager below the threshold, rendezvous above)."""

    dest: int
    size: int = 0
    tag: int = 0


@dataclass(frozen=True, slots=True)
class Recv(Op):
    """Blocking receive, matched by (source, tag) in FIFO order."""

    source: int
    size: int = 0
    tag: int = 0


@dataclass(frozen=True, slots=True)
class Sendrecv(Op):
    """Combined send + receive (MPI_Sendrecv): deadlock-free exchange."""

    dest: int
    source: int
    size: int = 0
    recv_size: int | None = None  # defaults to ``size``
    tag: int = 0


@dataclass(frozen=True, slots=True)
class Isend(Op):
    """Nonblocking send; yields a :class:`Request`."""

    dest: int
    size: int = 0
    tag: int = 0


@dataclass(frozen=True, slots=True)
class Irecv(Op):
    """Nonblocking receive; yields a :class:`Request`."""

    source: int
    size: int = 0
    tag: int = 0


class Request:
    """Handle for a nonblocking operation (filled in by the engine)."""

    __slots__ = ("rank", "kind", "peer", "size", "tag", "complete_time")

    def __init__(self, rank: int, kind: str, peer: int, size: int, tag: int) -> None:
        self.rank = rank
        self.kind = kind  # "send" | "recv"
        self.peer = peer
        self.size = size
        self.tag = tag
        #: Virtual time at which the operation completes; None while pending.
        self.complete_time: float | None = None

    @property
    def done(self) -> bool:
        return self.complete_time is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"done@{self.complete_time:.6g}" if self.done else "pending"
        return f"Request({self.kind} rank={self.rank} peer={self.peer} {state})"


@dataclass(frozen=True, slots=True)
class Wait(Op):
    """Block until a nonblocking request completes (MPI_Wait)."""

    request: Request


@dataclass(frozen=True, slots=True)
class Waitall(Op):
    """Block until all listed requests complete (MPI_Waitall)."""

    requests: tuple[Request, ...]

    def __init__(self, requests: Sequence[Request]) -> None:
        object.__setattr__(self, "requests", tuple(requests))
