"""repro — detection and visualization of performance variations.

A from-scratch reproduction of Weber et al., *Detection and
Visualization of Performance Variations to Guide Identification of
Application Bottlenecks* (ICPP 2016), together with every substrate the
paper depends on: an OTF2-like trace model, a Score-P-like measurement
layer, a discrete-event MPI application simulator, an FD4-like dynamic
load balancer, and a Vampir-like SVG/PNG trace visualizer.

Typical use::

    from repro import analyze_trace
    from repro.sim.workloads import cosmo_specs

    trace = cosmo_specs.generate(processes=100, iterations=60, seed=7)
    result = analyze_trace(trace)
    print(result.report())

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-versus-measured record of every reproduced figure.
"""

from __future__ import annotations

__version__ = "1.0.0"

# Re-exported lazily to keep `import repro` cheap; heavy subpackages
# (sim, viz) are only imported when first touched.
_LAZY = {
    "analyze_trace": ("repro.core.pipeline", "analyze_trace"),
    "VariationAnalysis": ("repro.core.pipeline", "VariationAnalysis"),
    "AnalysisConfig": ("repro.core.pipeline", "AnalysisConfig"),
    "AnalysisSession": ("repro.core.session", "AnalysisSession"),
    "fingerprint_trace": ("repro.trace.fingerprint", "fingerprint_trace"),
    "Trace": ("repro.trace", "Trace"),
    "TraceBuilder": ("repro.trace", "TraceBuilder"),
    "read_trace": ("repro.trace", "read_trace"),
    "write_jsonl": ("repro.trace", "write_jsonl"),
    "write_binary": ("repro.trace", "write_binary"),
    "profile_trace": ("repro.profiles", "profile_trace"),
}

__all__ = ["__version__", *sorted(_LAZY)]


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(target[0])
    value = getattr(module, target[1])
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
