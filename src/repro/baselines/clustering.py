"""Computation-phase clustering (the González et al. baseline).

González, Giménez & Labarta [7] characterise the computation phases of
a run by clustering *compute bursts* (the exclusive stretches between
MPI calls) on features such as duration and instructions-per-cycle.
The paper's criticism: the result classifies phase *types* but "does
not highlight individual variations within processes".

Implementation: burst extraction from invocation tables, features
(duration, cycle rate when a cycles counter is present), and a
deterministic k-means (k-means++ seeding, own implementation — scipy's
kmeans does not guarantee determinism across versions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.metrics import metric_series
from ..profiles.profile import TraceProfile, profile_trace
from ..sim.countermodel import PAPI_TOT_CYC
from ..trace.definitions import Paradigm
from ..trace.trace import Trace
from ._common import resolve_inputs

__all__ = ["Burst", "ClusterResult", "extract_bursts", "kmeans", "cluster_phases"]


@dataclass(frozen=True, slots=True)
class Burst:
    """One computation burst (leaf USER-region invocation)."""

    rank: int
    t_start: float
    duration: float
    region: int
    cycle_rate: float  # cycles per second inside the burst (0 if unknown)


@dataclass(slots=True)
class ClusterResult:
    """K-means clustering of computation bursts."""

    bursts: list[Burst] = field(default_factory=list)
    labels: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    centroids: np.ndarray = field(default_factory=lambda: np.empty((0, 2)))
    inertia: float = 0.0

    def cluster_sizes(self) -> np.ndarray:
        if len(self.labels) == 0:
            return np.empty(0, dtype=np.int64)
        return np.bincount(self.labels, minlength=len(self.centroids))

    def outlier_bursts(self, max_share: float = 0.02) -> list[Burst]:
        """Bursts in clusters holding at most ``max_share`` of all bursts.

        Small clusters are the method's closest notion of "anomaly".
        """
        sizes = self.cluster_sizes()
        total = sizes.sum()
        if total == 0:
            return []
        small = np.flatnonzero(sizes <= max_share * total)
        return [
            b for b, label in zip(self.bursts, self.labels) if label in small
        ]


def extract_bursts(
    trace: Trace,
    profile: TraceProfile | None = None,
    min_duration: float = 0.0,
) -> list[Burst]:
    """Collect leaf USER-region invocations as computation bursts."""
    if profile is None:
        profile = profile_trace(trace)
    user_ids = np.asarray(
        [r.id for r in trace.regions if r.paradigm == Paradigm.USER],
        dtype=np.int32,
    )
    cycles = (
        metric_series(trace, PAPI_TOT_CYC)
        if PAPI_TOT_CYC in trace.metrics
        else None
    )
    bursts: list[Burst] = []
    for rank in trace.ranks:
        table = profile.tables[rank]
        if len(table) == 0:
            continue
        has_child = np.zeros(len(table), dtype=bool)
        has_child[table.parent[table.parent >= 0]] = True
        leaf = ~has_child & np.isin(table.region, user_ids)
        leaf &= table.inclusive >= min_duration
        series = cycles.get(rank) if cycles else None
        for row in np.flatnonzero(leaf):
            duration = float(table.inclusive[row])
            rate = 0.0
            if series is not None and duration > 0:
                delta = series.delta(
                    float(table.t_enter[row]), float(table.t_leave[row])
                )
                rate = delta / duration
            bursts.append(
                Burst(
                    rank=rank,
                    t_start=float(table.t_enter[row]),
                    duration=duration,
                    region=int(table.region[row]),
                    cycle_rate=rate,
                )
            )
    return bursts


def kmeans(
    points: np.ndarray,
    k: int,
    seed: int = 0,
    max_iter: int = 100,
    tol: float = 1e-9,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Deterministic k-means with k-means++ seeding.

    Returns ``(labels, centroids, inertia)``.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or len(pts) == 0:
        raise ValueError("points must be a non-empty 2D array")
    n = len(pts)
    k = min(k, n)
    rng = np.random.default_rng(seed)

    # k-means++ seeding.
    centroids = np.empty((k, pts.shape[1]))
    centroids[0] = pts[rng.integers(n)]
    d2 = np.sum((pts - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = d2.sum()
        if total <= 0:
            centroids[i:] = pts[rng.integers(n, size=k - i)]
            break
        probs = d2 / total
        centroids[i] = pts[rng.choice(n, p=probs)]
        d2 = np.minimum(d2, np.sum((pts - centroids[i]) ** 2, axis=1))

    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max_iter):
        dists = np.sum(
            (pts[:, None, :] - centroids[None, :, :]) ** 2, axis=2
        )
        labels = np.argmin(dists, axis=1)
        new_centroids = centroids.copy()
        for c in range(k):
            members = pts[labels == c]
            if len(members):
                new_centroids[c] = members.mean(axis=0)
        shift = float(np.abs(new_centroids - centroids).max())
        centroids = new_centroids
        if shift <= tol:
            break
    inertia = float(
        np.sum((pts - centroids[labels]) ** 2)
    )
    return labels, centroids, inertia


def cluster_phases(
    trace: Trace | None = None,
    k: int = 4,
    profile: TraceProfile | None = None,
    seed: int = 0,
    min_duration: float = 0.0,
    *,
    session=None,
) -> ClusterResult:
    """Cluster computation bursts on (log duration, cycle rate).

    Pass ``session`` to reuse a memoized session profile.
    """
    trace, profile = resolve_inputs(trace, profile, session)
    bursts = extract_bursts(trace, profile=profile, min_duration=min_duration)
    result = ClusterResult(bursts=bursts)
    if not bursts:
        return result
    duration = np.asarray([b.duration for b in bursts])
    rate = np.asarray([b.cycle_rate for b in bursts])
    log_dur = np.log10(np.maximum(duration, 1e-12))
    # Standardise features so one does not dominate.
    feats = np.column_stack([log_dur, rate])
    mean = feats.mean(axis=0)
    std = feats.std(axis=0)
    std[std == 0] = 1.0
    normed = (feats - mean) / std
    labels, centroids, inertia = kmeans(normed, k, seed=seed)
    result.labels = labels
    result.centroids = centroids * std + mean
    result.inertia = inertia
    return result
