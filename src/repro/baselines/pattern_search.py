"""Automatic inefficiency-pattern search (the Scalasca baseline).

Scalasca [21] scans traces for a fixed catalogue of wait-state
patterns and ranks them by severity.  We implement the three classic
patterns relevant to the case studies:

* **Wait at collective** — time ranks spend inside a collective before
  the last participant arrives.  The per-occurrence *delayer* (the
  last-arriving rank) is also attributed, approximating Scalasca's
  delay analysis.
* **Blocked receiver** — time spent inside blocking receive/wait
  operations (late-sender superset).
* **Computation imbalance** — per-function difference between the
  maximum and mean per-rank exclusive time (profile-style pattern).

The comparison point of the paper stands: patterns localise *where
time is lost* and rank it by severity, but (unlike the SOS heat map)
they do not show how imbalances evolve over time, and patterns outside
the catalogue go unnoticed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..profiles.profile import TraceProfile, profile_trace
from ..trace.definitions import Paradigm
from ..trace.trace import Trace
from ._common import resolve_inputs

__all__ = ["PatternInstance", "PatternSearchResult", "search_patterns"]

_COLLECTIVES = (
    "MPI_Barrier",
    "MPI_Bcast",
    "MPI_Reduce",
    "MPI_Allreduce",
    "MPI_Allgather",
    "MPI_Alltoall",
)
_BLOCKING_RECV = ("MPI_Recv", "MPI_Wait", "MPI_Waitall")


@dataclass(frozen=True, slots=True)
class PatternInstance:
    """One detected inefficiency pattern."""

    pattern: str
    severity: float  # lost seconds, summed over ranks
    region: str
    #: Ranks suffering the waiting time (top contributors).
    waiting_ranks: tuple[int, ...]
    #: Ranks causing the delay, when attributable.
    delaying_ranks: tuple[int, ...]
    detail: str = ""


@dataclass(slots=True)
class PatternSearchResult:
    """Severity-ranked pattern instances for one trace."""

    instances: list[PatternInstance] = field(default_factory=list)
    total_wait_time: float = 0.0

    def top(self, k: int = 5) -> list[PatternInstance]:
        return self.instances[:k]

    def delayers(self) -> list[int]:
        """All ranks attributed as delay root causes, most severe first."""
        seen: list[int] = []
        for inst in self.instances:
            for rank in inst.delaying_ranks:
                if rank not in seen:
                    seen.append(rank)
        return seen


def _collective_pattern(
    trace: Trace, profile: TraceProfile, region_name: str
) -> PatternInstance | None:
    """Wait-at-collective severity for one collective region."""
    if region_name not in trace.regions:
        return None
    region_id = trace.regions.id_of(region_name)
    ranks = trace.ranks
    enters: list[np.ndarray] = []
    for rank in ranks:
        table = profile.tables[rank]
        mask = table.region == region_id
        enters.append(table.t_enter[mask])
    counts = {len(e) for e in enters}
    if counts == {0}:
        return None
    if len(counts) != 1:
        # Occurrence counts differ (sub-communicators): fall back to
        # the common prefix so occurrences still line up.
        n = min(counts)
        if n == 0:
            return None
        enters = [e[:n] for e in enters]
    matrix = np.vstack(enters)  # (ranks, occurrences)
    last = matrix.max(axis=0)
    wait = last[None, :] - matrix  # waiting time per rank per occurrence
    severity = float(wait.sum())
    per_rank_wait = wait.sum(axis=1)
    # Delayer: the rank arriving last, counted per occurrence.
    delayer_counts = np.bincount(
        np.argmax(matrix, axis=0), minlength=len(ranks)
    )
    waiting_order = np.argsort(-per_rank_wait)[:5]
    delaying_order = np.argsort(-delayer_counts)
    delaying = tuple(
        int(ranks[i]) for i in delaying_order[:3] if delayer_counts[i] > 0
    )
    return PatternInstance(
        pattern="wait-at-collective",
        severity=severity,
        region=region_name,
        waiting_ranks=tuple(int(ranks[i]) for i in waiting_order),
        delaying_ranks=delaying,
        detail=(
            f"{matrix.shape[1]} occurrences; mean wait "
            f"{wait.mean():.3g}s per rank per occurrence"
        ),
    )


def _blocked_receiver_pattern(
    trace: Trace, profile: TraceProfile
) -> PatternInstance | None:
    """Total time inside blocking receive/wait operations."""
    region_ids = [
        trace.regions.id_of(name)
        for name in _BLOCKING_RECV
        if name in trace.regions
    ]
    if not region_ids:
        return None
    ranks = trace.ranks
    per_rank = np.zeros(len(ranks))
    for i, rank in enumerate(ranks):
        table = profile.tables[rank]
        mask = np.isin(table.region, region_ids)
        per_rank[i] = float(table.inclusive[mask].sum())
    severity = float(per_rank.sum())
    if severity <= 0:
        return None
    order = np.argsort(-per_rank)[:5]
    return PatternInstance(
        pattern="blocked-receiver",
        severity=severity,
        region="|".join(n for n in _BLOCKING_RECV if n in trace.regions),
        waiting_ranks=tuple(int(ranks[i]) for i in order),
        delaying_ranks=(),
        detail=f"max per-rank blocked time {per_rank.max():.3g}s",
    )


def _imbalance_patterns(
    trace: Trace, profile: TraceProfile, top_k: int
) -> list[PatternInstance]:
    """Per-function computation-imbalance severities."""
    instances = []
    for region in trace.regions:
        if region.paradigm != Paradigm.USER:
            continue
        per_rank = profile.per_rank_exclusive(region.id)
        total = float(per_rank.sum())
        if total <= 0:
            continue
        mean = float(per_rank.mean())
        severity = float((per_rank.max() - mean) * len(per_rank))
        if severity <= 0:
            continue
        ranks = np.asarray(trace.ranks)
        order = np.argsort(-per_rank)[:3]
        instances.append(
            PatternInstance(
                pattern="computation-imbalance",
                severity=severity,
                region=region.name,
                waiting_ranks=(),
                delaying_ranks=tuple(int(ranks[i]) for i in order),
                detail=(
                    f"max {per_rank.max():.3g}s vs mean {mean:.3g}s "
                    f"exclusive time"
                ),
            )
        )
    instances.sort(key=lambda p: -p.severity)
    return instances[:top_k]


def search_patterns(
    trace: Trace | None = None,
    profile: TraceProfile | None = None,
    top_k: int = 10,
    *,
    session=None,
) -> PatternSearchResult:
    """Run the full pattern catalogue over ``trace``.

    Pass ``session`` to reuse a memoized session profile.
    """
    trace, profile = resolve_inputs(trace, profile, session)
    if profile is None:
        profile = profile_trace(trace)
    result = PatternSearchResult()
    for name in _COLLECTIVES:
        inst = _collective_pattern(trace, profile, name)
        if inst is not None:
            result.instances.append(inst)
    blocked = _blocked_receiver_pattern(trace, profile)
    if blocked is not None:
        result.instances.append(blocked)
    result.instances.extend(_imbalance_patterns(trace, profile, top_k))
    result.instances.sort(key=lambda p: -p.severity)
    result.total_wait_time = sum(
        p.severity
        for p in result.instances
        if p.pattern in ("wait-at-collective", "blocked-receiver")
    )
    del result.instances[top_k:]
    return result
