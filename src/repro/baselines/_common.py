"""Shared session plumbing for the baseline analyses.

Every baseline consumes a trace plus (optionally) its profile.  With an
:class:`~repro.core.session.AnalysisSession` the profile comes from the
session's memoized stage graph, so running all four baselines after an
``analyze`` replays and re-profiles nothing.
"""

from __future__ import annotations

__all__ = ["resolve_inputs"]


def resolve_inputs(trace, profile, session):
    """Normalise (trace, profile, session) to a concrete (trace, profile).

    ``profile`` may still be None when neither a profile nor a session
    is given; callers fall back to :func:`repro.profiles.profile_trace`.
    """
    if session is not None:
        if trace is not None and trace is not session.trace:
            raise ValueError("session was created for a different trace")
        trace = session.trace
        if profile is None:
            profile = session.profile()
    if trace is None:
        raise TypeError("pass a trace or an AnalysisSession")
    return trace, profile
