"""Profile-only analysis (the TAU / HPCToolkit baseline).

Classical profilers aggregate over processes *and* time.  The paper's
Section II argues that "due to aggregation, the detection of runtime
imbalances and small slow sections can be hard or even impossible".
This baseline makes that limitation measurable: it sees total times per
function and per process, so it can notice a *persistent* per-rank skew
— but a single slow invocation (the FD4 interruption) or a drift over
time is invisible to it by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.imbalance import robust_zscores
from ..profiles.profile import TraceProfile, profile_trace
from ..trace.definitions import Paradigm
from ..trace.trace import Trace
from ._common import resolve_inputs

__all__ = ["ProfileOnlyFinding", "ProfileOnlyResult", "analyze_profile_only"]


@dataclass(frozen=True, slots=True)
class ProfileOnlyFinding:
    """One flagged function or rank from aggregated data."""

    kind: str  # "function-hotspot" | "rank-imbalance"
    name: str
    rank: int  # -1 for function-level findings
    value: float
    detail: str


@dataclass(slots=True)
class ProfileOnlyResult:
    """Everything a profile-aggregating tool can report.

    Notably absent (structurally impossible at this aggregation level):
    segment-level findings and temporal trends.
    """

    findings: list[ProfileOnlyFinding] = field(default_factory=list)
    mpi_share: float = 0.0
    top_functions: list[tuple[str, float]] = field(default_factory=list)

    #: Capability flags for the baseline-comparison harness.
    can_localize_time: bool = False
    can_localize_single_invocations: bool = False

    def flagged_ranks(self) -> list[int]:
        return [f.rank for f in self.findings if f.kind == "rank-imbalance"]


def analyze_profile_only(
    trace: Trace | None = None,
    profile: TraceProfile | None = None,
    rank_threshold: float = 3.0,
    min_relative_excess: float = 0.1,
    top_k: int = 10,
    *,
    session=None,
) -> ProfileOnlyResult:
    """Analyse ``trace`` using only aggregated profile data.

    Per-rank *total compute* (exclusive non-MPI time over the whole
    run) is the finest granularity available; rank anomalies are
    flagged with the same robust statistics as the main pipeline so
    the comparison isolates the effect of aggregation, not of the
    detector.

    Pass ``session`` to reuse a memoized
    :class:`~repro.core.session.AnalysisSession` profile instead of
    re-profiling.
    """
    trace, profile = resolve_inputs(trace, profile, session)
    if profile is None:
        profile = profile_trace(trace)
    result = ProfileOnlyResult()
    result.mpi_share = profile.paradigm_share(Paradigm.MPI)
    result.top_functions = [
        (r.name, r.exclusive_sum) for r in profile.stats.top_exclusive(top_k)
    ]
    for name, value in result.top_functions[:3]:
        result.findings.append(
            ProfileOnlyFinding(
                kind="function-hotspot",
                name=name,
                rank=-1,
                value=value,
                detail=f"top exclusive time {value:.6g}s (aggregated)",
            )
        )

    # Per-rank total compute time (whole-run aggregate).
    mpi_ids = set(int(i) for i in trace.mpi_region_ids())
    totals = np.zeros(trace.num_processes, dtype=np.float64)
    ranks = trace.ranks
    for i, rank in enumerate(ranks):
        table = profile.tables[rank]
        keep = ~np.isin(table.region, list(mpi_ids))
        totals[i] = float(table.exclusive[keep].sum())
    z = robust_zscores(totals)
    median = float(np.median(totals)) if len(totals) else 0.0
    for i in np.flatnonzero(
        (z > rank_threshold) & (totals > median * (1 + min_relative_excess))
    ):
        result.findings.append(
            ProfileOnlyFinding(
                kind="rank-imbalance",
                name=f"rank {ranks[i]}",
                rank=int(ranks[i]),
                value=float(totals[i]),
                detail=(
                    f"total compute {totals[i]:.6g}s vs median {median:.6g}s "
                    f"(z={z[i]:.2f}); run-total only, no time axis"
                ),
            )
        )
    result.findings.sort(key=lambda f: -f.value)
    return result
