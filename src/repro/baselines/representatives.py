"""Representative-process selection (the Mohror et al. baseline).

Mohror, Karavanic & Snavely [13] scale trace visualization by grouping
structurally equal processes whose temporal behaviour is sufficiently
similar and keeping one representative per group.  The paper's
criticism: "by basing the analysis on only a few representative
processes, performance problems may easily be hidden".

We implement the technique faithfully enough to measure that: each
process is summarised by its per-region exclusive-time vector, greedy
threshold clustering groups processes whose normalised distance is
below ``similarity_threshold``, and the first member of each cluster
becomes the representative.  Whether an anomalous rank survives into
the representative set then depends on the threshold — exactly the
failure mode the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..profiles.profile import TraceProfile, profile_trace
from ..trace.trace import Trace
from ._common import resolve_inputs

__all__ = ["RepresentativeResult", "select_representatives"]


@dataclass(slots=True)
class RepresentativeResult:
    """Clusters of similar processes and their representatives."""

    clusters: list[list[int]] = field(default_factory=list)
    representatives: list[int] = field(default_factory=list)
    #: rank -> cluster index
    assignment: dict[int, int] = field(default_factory=dict)
    reduction: float = 0.0  # 1 - representatives/processes

    def cluster_of(self, rank: int) -> list[int]:
        return self.clusters[self.assignment[rank]]

    def is_visible(self, rank: int) -> bool:
        """Would this rank's own data survive into the reduced view?"""
        return rank in self.representatives


def _feature_matrix(trace: Trace, profile: TraceProfile) -> np.ndarray:
    """Per-rank feature vectors: exclusive time per region."""
    ranks = trace.ranks
    n_regions = len(trace.regions)
    features = np.zeros((len(ranks), n_regions), dtype=np.float64)
    for i, rank in enumerate(ranks):
        table = profile.tables[rank]
        np.add.at(features[i], table.region, table.exclusive)
    return features


def select_representatives(
    trace: Trace | None = None,
    profile: TraceProfile | None = None,
    similarity_threshold: float = 0.1,
    *,
    session=None,
) -> RepresentativeResult:
    """Greedy threshold clustering of processes by behaviour.

    ``similarity_threshold`` is the maximum allowed relative L1
    distance between a process and its cluster representative.  Lower
    thresholds keep more processes visible (and scale worse) — the
    knob the original paper trades fidelity against with.
    """
    if similarity_threshold < 0:
        raise ValueError("similarity_threshold must be non-negative")
    trace, profile = resolve_inputs(trace, profile, session)
    if profile is None:
        profile = profile_trace(trace)
    features = _feature_matrix(trace, profile)
    ranks = trace.ranks

    scale = features.sum(axis=1, keepdims=True)
    scale[scale == 0] = 1.0

    result = RepresentativeResult()
    rep_vectors: list[np.ndarray] = []
    for i, rank in enumerate(ranks):
        vec = features[i]
        assigned = -1
        for c, rep_vec in enumerate(rep_vectors):
            denom = max(float(rep_vec.sum()), 1e-300)
            distance = float(np.abs(vec - rep_vec).sum()) / denom
            if distance <= similarity_threshold:
                assigned = c
                break
        if assigned < 0:
            assigned = len(rep_vectors)
            rep_vectors.append(vec)
            result.clusters.append([])
            result.representatives.append(rank)
        result.clusters[assigned].append(rank)
        result.assignment[rank] = assigned
    n = len(ranks)
    result.reduction = 1.0 - len(result.representatives) / n if n else 0.0
    return result
