"""Baseline analysis methods the paper compares against (Section II)."""

from .clustering import (
    Burst,
    ClusterResult,
    cluster_phases,
    extract_bursts,
    kmeans,
)
from .pattern_search import PatternInstance, PatternSearchResult, search_patterns
from .profile_only import (
    ProfileOnlyFinding,
    ProfileOnlyResult,
    analyze_profile_only,
)
from .representatives import RepresentativeResult, select_representatives

__all__ = [
    "Burst",
    "ClusterResult",
    "PatternInstance",
    "PatternSearchResult",
    "ProfileOnlyFinding",
    "ProfileOnlyResult",
    "RepresentativeResult",
    "analyze_profile_only",
    "cluster_phases",
    "extract_bursts",
    "kmeans",
    "search_patterns",
    "select_representatives",
]
