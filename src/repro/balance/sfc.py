"""Space-filling curves for grid linearisation.

FD4 (the dynamic load balancer of the COSMO-SPECS+FD4 case study)
orders grid blocks along a space-filling curve and then cuts the curve
into contiguous chunks, giving spatially compact partitions.  We
implement the two standard curves:

* **Morton (Z-order)** — cheap bit interleaving;
* **Hilbert** — one extra rotation step per bit level, but neighbouring
  indices are always neighbouring cells, which keeps partition
  boundaries short.

Both are fully vectorised over NumPy coordinate arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "morton_index",
    "morton_coords",
    "hilbert_index",
    "hilbert_coords",
    "curve_order",
]


def _as_uint(arr) -> np.ndarray:
    a = np.asarray(arr)
    if np.any(a < 0):
        raise ValueError("coordinates must be non-negative")
    return a.astype(np.uint64)


def _check_order(order: int) -> int:
    if not 0 < order <= 31:
        raise ValueError(f"curve order must be in [1, 31], got {order}")
    return int(order)


def morton_index(x, y, order: int = 16) -> np.ndarray:
    """Z-order index of 2D coordinates (bit interleaving).

    ``order`` is the number of bits per dimension; coordinates must be
    below ``2**order``.
    """
    order = _check_order(order)
    x = _as_uint(x)
    y = _as_uint(y)
    if np.any(x >= (1 << order)) or np.any(y >= (1 << order)):
        raise ValueError(f"coordinates exceed 2**{order} - 1")
    out = np.zeros(np.broadcast(x, y).shape, dtype=np.uint64)
    for bit in range(order):
        out |= ((x >> np.uint64(bit)) & np.uint64(1)) << np.uint64(2 * bit)
        out |= ((y >> np.uint64(bit)) & np.uint64(1)) << np.uint64(2 * bit + 1)
    return out


def morton_coords(index, order: int = 16) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`morton_index`."""
    order = _check_order(order)
    d = _as_uint(index)
    x = np.zeros(d.shape, dtype=np.uint64)
    y = np.zeros(d.shape, dtype=np.uint64)
    for bit in range(order):
        x |= ((d >> np.uint64(2 * bit)) & np.uint64(1)) << np.uint64(bit)
        y |= ((d >> np.uint64(2 * bit + 1)) & np.uint64(1)) << np.uint64(bit)
    return x, y


def hilbert_index(x, y, order: int = 16) -> np.ndarray:
    """Hilbert curve index of 2D coordinates.

    Classic iterative rotation algorithm (Lam & Shapiro), vectorised:
    walk bit levels from the highest to the lowest, accumulating the
    quadrant distance and rotating the coordinate frame.
    """
    order = _check_order(order)
    x = _as_uint(x).copy()
    y = _as_uint(y).copy()
    if np.any(x >= (1 << order)) or np.any(y >= (1 << order)):
        raise ValueError(f"coordinates exceed 2**{order} - 1")
    x, y = np.broadcast_arrays(x, y)
    x, y = x.copy(), y.copy()
    d = np.zeros(x.shape, dtype=np.uint64)
    s = np.uint64(1 << (order - 1))
    one = np.uint64(1)
    zero = np.uint64(0)
    while s > 0:
        rx = np.where((x & s) > 0, one, zero)
        ry = np.where((y & s) > 0, one, zero)
        d += s * s * ((np.uint64(3) * rx) ^ ry)
        # Rotate quadrant.
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - one - x, x)
        y_f = np.where(flip, s - one - y, y)
        x_new = np.where(swap, y_f, x_f)
        y_new = np.where(swap, x_f, y_f)
        x, y = x_new, y_new
        s >>= one
    return d


def hilbert_coords(index, order: int = 16) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`hilbert_index`."""
    order = _check_order(order)
    d = _as_uint(index).copy()
    t = d.copy()
    x = np.zeros(d.shape, dtype=np.uint64)
    y = np.zeros(d.shape, dtype=np.uint64)
    one = np.uint64(1)
    zero = np.uint64(0)
    s = np.uint64(1)
    top = np.uint64(1 << order)
    while s < top:
        rx = (t // np.uint64(2)) & one
        ry = (t ^ rx) & one
        # Rotate quadrant.
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = np.where(flip, s - one - x, x)
        y_f = np.where(flip, s - one - y, y)
        x_new = np.where(swap, y_f, x_f)
        y_new = np.where(swap, x_f, y_f)
        x, y = x_new, y_new
        x = x + s * rx
        y = y + s * ry
        t //= np.uint64(4)
        s <<= one
    return x, y


def curve_order(nx: int, ny: int, curve: str = "hilbert") -> np.ndarray:
    """Linearise an ``nx x ny`` grid along a space-filling curve.

    Returns the permutation of flat cell indices (row-major
    ``cell = iy * nx + ix``) in curve order.  Non-power-of-two grids
    are handled by embedding into the enclosing power-of-two square
    and skipping the out-of-grid positions (standard FD4 approach).
    """
    if nx <= 0 or ny <= 0:
        raise ValueError("grid dimensions must be positive")
    order = max(int(np.ceil(np.log2(max(nx, ny, 2)))), 1)
    ix, iy = np.meshgrid(np.arange(nx), np.arange(ny), indexing="xy")
    ix = ix.ravel()
    iy = iy.ravel()
    if curve == "hilbert":
        idx = hilbert_index(ix, iy, order=order)
    elif curve == "morton":
        idx = morton_index(ix, iy, order=order)
    elif curve == "row":
        idx = (iy.astype(np.uint64) << np.uint64(32)) | ix.astype(np.uint64)
    else:
        raise ValueError(f"unknown curve {curve!r}")
    flat = iy * nx + ix
    return flat[np.argsort(idx, kind="stable")]
