"""FD4-style dynamic load balancer for 2D block grids.

Combines the space-filling-curve linearisation with chains-on-chains
partitioning and adds the *dynamic* part: re-partition only when the
measured imbalance exceeds a threshold, and report how many cells
migrate (FD4 keeps migration incremental because consecutive SFC
partitions overlap heavily).

This substrate is exercised by the COSMO-SPECS+FD4 workload
(:mod:`repro.sim.workloads.cosmo_specs_fd4`): with balancing active,
the physics imbalance disappears from the SOS picture and the single
OS interruption stands out (paper Section VII-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .partition import (
    imbalance_of,
    partition_cost,
    partition_exact,
    partition_greedy,
    partition_uniform,
)
from .sfc import curve_order

__all__ = ["BalanceResult", "DynamicLoadBalancer", "static_decomposition"]


@dataclass(frozen=True, slots=True)
class BalanceResult:
    """Outcome of one (re)balance step."""

    assignment: np.ndarray  # flat cell index -> owning rank
    part_load: np.ndarray  # total weight per rank
    imbalance: float  # max/mean of part_load
    migrated_cells: int  # cells whose owner changed
    rebalanced: bool  # False when the threshold kept the old partition


def static_decomposition(nx: int, ny: int, px: int, py: int) -> np.ndarray:
    """Block-regular ``px x py`` decomposition (the COSMO baseline).

    Returns the flat cell→rank assignment with rank = ``pj * px + pi``
    for process column ``pi`` and row ``pj``.  Grid dimensions need not
    divide evenly; remainder cells go to the trailing processes.
    """
    if px <= 0 or py <= 0:
        raise ValueError("process grid must be positive")
    if nx < px or ny < py:
        raise ValueError("grid smaller than process grid")
    x_bounds = partition_uniform(nx, px)
    y_bounds = partition_uniform(ny, py)
    col = np.searchsorted(x_bounds, np.arange(nx), side="right") - 1
    row = np.searchsorted(y_bounds, np.arange(ny), side="right") - 1
    ranks = row[:, None] * px + col[None, :]  # (ny, nx)
    return ranks.ravel().astype(np.int64)


class DynamicLoadBalancer:
    """SFC + chains-on-chains partitioner with hysteresis.

    Parameters
    ----------
    nx, ny:
        Grid dimensions (cells or blocks).
    parts:
        Number of ranks.
    curve:
        ``"hilbert"`` (default), ``"morton"`` or ``"row"``.
    method:
        ``"exact"`` (optimal bottleneck) or ``"greedy"``.
    threshold:
        Re-partition only when ``max/mean`` imbalance of the *current*
        assignment under the new weights exceeds this value (FD4 uses a
        small tolerance to avoid migration churn).
    """

    def __init__(
        self,
        nx: int,
        ny: int,
        parts: int,
        curve: str = "hilbert",
        method: str = "exact",
        threshold: float = 1.05,
    ) -> None:
        if parts <= 0:
            raise ValueError("parts must be positive")
        if nx * ny < parts:
            raise ValueError("fewer cells than parts")
        if method not in ("exact", "greedy"):
            raise ValueError(f"unknown method {method!r}")
        if threshold < 1.0:
            raise ValueError("threshold is a max/mean ratio; must be >= 1.0")
        self.nx = nx
        self.ny = ny
        self.parts = parts
        self.method = method
        self.threshold = threshold
        #: Flat cell ids in curve order (fixed for the object's lifetime).
        self.order = curve_order(nx, ny, curve=curve)
        self._inverse = np.argsort(self.order, kind="stable")
        self._assignment: np.ndarray | None = None

    @property
    def assignment(self) -> np.ndarray | None:
        """Current flat cell→rank assignment (None before first balance)."""
        return self._assignment

    def _partition(self, ordered_weights: np.ndarray) -> np.ndarray:
        if self.method == "exact":
            return partition_exact(ordered_weights, self.parts)
        return partition_greedy(ordered_weights, self.parts)

    def _assignment_from_boundaries(self, boundaries: np.ndarray) -> np.ndarray:
        ranks_in_order = np.searchsorted(
            boundaries[1:], np.arange(len(self.order)), side="right"
        )
        assignment = np.empty(len(self.order), dtype=np.int64)
        assignment[self.order] = ranks_in_order
        return assignment

    def current_load(self, weights) -> np.ndarray:
        """Per-rank load of the current assignment under ``weights``."""
        if self._assignment is None:
            raise RuntimeError("no assignment yet; call balance() first")
        w = np.asarray(weights, dtype=np.float64).ravel()
        load = np.zeros(self.parts, dtype=np.float64)
        np.add.at(load, self._assignment, w)
        return load

    def balance(self, weights) -> BalanceResult:
        """(Re)partition for the given cell weights.

        The first call always partitions; subsequent calls only
        repartition when the existing assignment's imbalance under the
        new weights exceeds the threshold.
        """
        w = np.asarray(weights, dtype=np.float64).ravel()
        if len(w) != self.nx * self.ny:
            raise ValueError(
                f"expected {self.nx * self.ny} weights, got {len(w)}"
            )
        ordered = w[self.order]

        if self._assignment is not None:
            load = self.current_load(w)
            mean = float(load.mean())
            current_imb = float(load.max()) / mean if mean > 0 else 1.0
            if current_imb <= self.threshold:
                return BalanceResult(
                    assignment=self._assignment,
                    part_load=load,
                    imbalance=current_imb,
                    migrated_cells=0,
                    rebalanced=False,
                )

        boundaries = self._partition(ordered)
        assignment = self._assignment_from_boundaries(boundaries)
        migrated = (
            int(np.count_nonzero(assignment != self._assignment))
            if self._assignment is not None
            else 0
        )
        self._assignment = assignment
        return BalanceResult(
            assignment=assignment,
            part_load=partition_cost(ordered, boundaries),
            imbalance=imbalance_of(ordered, boundaries),
            migrated_cells=migrated,
            rebalanced=True,
        )
