"""FD4-like dynamic load balancing: space-filling curves + partitioning."""

from .balancer import BalanceResult, DynamicLoadBalancer, static_decomposition
from .partition import (
    imbalance_of,
    partition_cost,
    partition_exact,
    partition_greedy,
    partition_uniform,
)
from .sfc import (
    curve_order,
    hilbert_coords,
    hilbert_index,
    morton_coords,
    morton_index,
)

__all__ = [
    "BalanceResult",
    "DynamicLoadBalancer",
    "curve_order",
    "hilbert_coords",
    "hilbert_index",
    "imbalance_of",
    "morton_coords",
    "morton_index",
    "partition_cost",
    "partition_exact",
    "partition_greedy",
    "partition_uniform",
    "static_decomposition",
]
