"""Chains-on-chains partitioning: cut a weighted chain into p parts.

After linearising the grid along a space-filling curve
(:mod:`repro.balance.sfc`), load balancing reduces to the classic
*chains-on-chains* problem: split a sequence of task weights into ``p``
contiguous chunks minimising the heaviest chunk (the bottleneck).

Three algorithms, trading quality against cost:

* :func:`partition_uniform` — equal *counts*, ignores weights (the
  static baseline the paper's first case study suffers from);
* :func:`partition_greedy` — one sweep targeting the ideal average
  (fast, within a factor of ~2 of optimal);
* :func:`partition_exact` — optimal bottleneck via binary search over
  candidate bottleneck values with a greedy feasibility probe
  (O(n log n) including the prefix sums).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "partition_uniform",
    "partition_greedy",
    "partition_exact",
    "partition_cost",
    "imbalance_of",
]


def _check(weights: np.ndarray, parts: int) -> np.ndarray:
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise ValueError("weights must be one-dimensional")
    if np.any(w < 0) or not np.all(np.isfinite(w)):
        raise ValueError("weights must be finite and non-negative")
    if parts <= 0:
        raise ValueError("parts must be positive")
    return w


def partition_uniform(n_items: int, parts: int) -> np.ndarray:
    """Boundaries of an equal-count split (``parts + 1`` entries)."""
    if parts <= 0:
        raise ValueError("parts must be positive")
    if n_items < 0:
        raise ValueError("n_items must be non-negative")
    return np.linspace(0, n_items, parts + 1).round().astype(np.int64)


def partition_greedy(weights, parts: int) -> np.ndarray:
    """Greedy sweep: close a chunk once it reaches the ideal average.

    Returns boundaries ``b`` with ``b[0] == 0``, ``b[-1] == n`` and
    part ``k`` owning ``weights[b[k]:b[k+1]]``.  Guarantees every part
    is non-empty while items remain.
    """
    w = _check(weights, parts)
    n = len(w)
    boundaries = np.zeros(parts + 1, dtype=np.int64)
    boundaries[-1] = n
    if n == 0 or parts == 1:
        return boundaries
    total = float(w.sum())
    target = total / parts
    cursor = 0
    acc = 0.0
    for part in range(1, parts):
        remaining_parts = parts - part
        # Leave at least one item per remaining part.
        limit = n - remaining_parts
        while cursor < limit:
            nxt = acc + w[cursor]
            # Close the chunk at the point nearest to the target.
            if nxt >= target and (nxt - target) > (target - acc):
                break
            acc += w[cursor]
            cursor += 1
            if acc >= target:
                break
        boundaries[part] = cursor
        acc = 0.0
    return boundaries


def _feasible(prefix: np.ndarray, parts: int, bottleneck: float) -> np.ndarray | None:
    """Greedy probe: can the chain be cut into <= parts chunks of
    weight <= bottleneck?  Returns boundaries on success, None otherwise."""
    n = len(prefix) - 1
    boundaries = [0]
    start = 0
    for _ in range(parts):
        if start >= n:
            break
        # Furthest end with sum(weights[start:end]) <= bottleneck.
        limit = prefix[start] + bottleneck
        end = int(np.searchsorted(prefix, limit, side="right")) - 1
        if end <= start:
            return None  # single item exceeds the bottleneck
        boundaries.append(min(end, n))
        start = boundaries[-1]
    if start < n:
        return None
    while len(boundaries) < parts + 1:
        boundaries.append(n)
    return np.asarray(boundaries, dtype=np.int64)


def partition_exact(weights, parts: int) -> np.ndarray:
    """Optimal-bottleneck contiguous partition via parametric search.

    Binary-searches the bottleneck value between ``max(w)`` and
    ``sum(w)`` using the greedy feasibility probe; the final probe run
    yields the boundaries.  Floating-point weights are handled by
    iterating to a relative tolerance and then re-probing with the
    certified bottleneck.
    """
    w = _check(weights, parts)
    n = len(w)
    if n == 0:
        return np.zeros(parts + 1, dtype=np.int64)
    prefix = np.concatenate(([0.0], np.cumsum(w)))
    lo = float(w.max())
    hi = float(prefix[-1])
    if parts == 1:
        return np.asarray([0, n], dtype=np.int64)
    for _ in range(64):
        mid = 0.5 * (lo + hi)
        if _feasible(prefix, parts, mid) is not None:
            hi = mid
        else:
            lo = mid
        if hi - lo <= 1e-12 * max(hi, 1.0):
            break
    boundaries = _feasible(prefix, parts, hi * (1.0 + 1e-12))
    assert boundaries is not None, "feasibility probe must succeed at hi"
    return boundaries


def partition_cost(weights, boundaries) -> np.ndarray:
    """Per-part total weight for the given boundaries."""
    w = np.asarray(weights, dtype=np.float64)
    b = np.asarray(boundaries, dtype=np.int64)
    prefix = np.concatenate(([0.0], np.cumsum(w)))
    return prefix[b[1:]] - prefix[b[:-1]]


def imbalance_of(weights, boundaries) -> float:
    """Bottleneck imbalance ``max/mean`` of a partition (1.0 = perfect)."""
    costs = partition_cost(weights, boundaries)
    mean = float(costs.mean()) if len(costs) else 0.0
    if mean <= 0:
        return 1.0
    return float(costs.max()) / mean
