"""RGB raster canvas with primitive drawing operations.

A thin wrapper over a ``(height, width, 3)`` uint8 NumPy array.  All
fills are vectorised slices; lines use a vectorised DDA.  The canvas is
the raster backend behind the PNG renderings of the timeline and heat
charts.
"""

from __future__ import annotations

import numpy as np

from .colors import BACKGROUND
from .font5x7 import GLYPH_HEIGHT, render_text_mask, text_width

__all__ = ["Canvas"]

Color = tuple[int, int, int]


class Canvas:
    """A mutable RGB image with integer pixel coordinates.

    The origin is the top-left corner; x grows right, y grows down
    (image convention).  Out-of-bounds drawing is clipped, never an
    error — chart code can draw labels near edges without bounds
    arithmetic.
    """

    def __init__(self, width: int, height: int, background: Color = BACKGROUND) -> None:
        if width <= 0 or height <= 0:
            raise ValueError("canvas dimensions must be positive")
        self.width = int(width)
        self.height = int(height)
        self.pixels = np.empty((self.height, self.width, 3), dtype=np.uint8)
        self.pixels[:] = np.asarray(background, dtype=np.uint8)

    # -- clipping helpers -------------------------------------------------

    def _clip_x(self, x: int) -> int:
        return min(max(int(x), 0), self.width)

    def _clip_y(self, y: int) -> int:
        return min(max(int(y), 0), self.height)

    # -- primitives ----------------------------------------------------------

    def fill_rect(self, x: int, y: int, w: int, h: int, color: Color) -> None:
        """Fill the axis-aligned rectangle ``[x, x+w) x [y, y+h)``."""
        x0, x1 = self._clip_x(x), self._clip_x(x + w)
        y0, y1 = self._clip_y(y), self._clip_y(y + h)
        if x1 > x0 and y1 > y0:
            self.pixels[y0:y1, x0:x1] = np.asarray(color, dtype=np.uint8)

    def rect(self, x: int, y: int, w: int, h: int, color: Color) -> None:
        """1-pixel rectangle outline."""
        self.hline(x, x + w - 1, y, color)
        self.hline(x, x + w - 1, y + h - 1, color)
        self.vline(x, y, y + h - 1, color)
        self.vline(x + w - 1, y, y + h - 1, color)

    def hline(self, x0: int, x1: int, y: int, color: Color) -> None:
        if not 0 <= y < self.height:
            return
        a, b = sorted((int(x0), int(x1)))
        a, b = self._clip_x(a), self._clip_x(b + 1)
        if b > a:
            self.pixels[y, a:b] = np.asarray(color, dtype=np.uint8)

    def vline(self, x: int, y0: int, y1: int, color: Color) -> None:
        if not 0 <= x < self.width:
            return
        a, b = sorted((int(y0), int(y1)))
        a, b = self._clip_y(a), self._clip_y(b + 1)
        if b > a:
            self.pixels[a:b, x] = np.asarray(color, dtype=np.uint8)

    def line(self, x0: int, y0: int, x1: int, y1: int, color: Color) -> None:
        """Straight line segment (vectorised DDA)."""
        x0, y0, x1, y1 = int(x0), int(y0), int(x1), int(y1)
        n = max(abs(x1 - x0), abs(y1 - y0)) + 1
        xs = np.round(np.linspace(x0, x1, n)).astype(np.int64)
        ys = np.round(np.linspace(y0, y1, n)).astype(np.int64)
        keep = (xs >= 0) & (xs < self.width) & (ys >= 0) & (ys < self.height)
        self.pixels[ys[keep], xs[keep]] = np.asarray(color, dtype=np.uint8)

    def blit(self, x: int, y: int, image: np.ndarray) -> None:
        """Copy an ``(h, w, 3)`` uint8 image block (clipped)."""
        h, w = image.shape[:2]
        x0, y0 = int(x), int(y)
        x1, y1 = x0 + w, y0 + h
        cx0, cy0 = self._clip_x(x0), self._clip_y(y0)
        cx1, cy1 = self._clip_x(x1), self._clip_y(y1)
        if cx1 <= cx0 or cy1 <= cy0:
            return
        self.pixels[cy0:cy1, cx0:cx1] = image[
            cy0 - y0 : cy1 - y0, cx0 - x0 : cx1 - x0
        ]

    def blit_mask(self, x: int, y: int, mask: np.ndarray, color: Color) -> None:
        """Paint ``color`` where the boolean ``mask`` is true (clipped)."""
        h, w = mask.shape
        x0, y0 = int(x), int(y)
        cx0, cy0 = self._clip_x(x0), self._clip_y(y0)
        cx1, cy1 = self._clip_x(x0 + w), self._clip_y(y0 + h)
        if cx1 <= cx0 or cy1 <= cy0:
            return
        sub = mask[cy0 - y0 : cy1 - y0, cx0 - x0 : cx1 - x0]
        region = self.pixels[cy0:cy1, cx0:cx1]
        region[sub] = np.asarray(color, dtype=np.uint8)

    # -- text ----------------------------------------------------------

    def text(
        self,
        x: int,
        y: int,
        text: str,
        color: Color = (30, 30, 30),
        scale: int = 1,
        anchor: str = "lt",
    ) -> None:
        """Draw a line of 5x7 text.

        ``anchor`` selects the reference point: first char ``l``/``c``/``r``
        (horizontal), second ``t``/``m``/``b`` (vertical).
        """
        if not text:
            return
        w = text_width(text, scale)
        h = GLYPH_HEIGHT * scale
        ax, ay = (anchor + "t")[:2]
        if ax == "c":
            x -= w // 2
        elif ax == "r":
            x -= w
        if ay == "m":
            y -= h // 2
        elif ay == "b":
            y -= h
        self.blit_mask(x, y, render_text_mask(text, scale), color)

    def text_rotated(
        self, x: int, y: int, text: str, color: Color = (30, 30, 30), scale: int = 1
    ) -> None:
        """Draw text rotated 90° counter-clockwise (for y-axis labels)."""
        mask = render_text_mask(text, scale)
        rotated = mask.T[::-1]
        self.blit_mask(x, y - rotated.shape[0] // 2, rotated, color)
