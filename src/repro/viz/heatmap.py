"""Heat timelines: the paper's color-coded SOS metric view.

This is the visualization of Section VI: a process-by-time matrix where
each cell is color-coded from blue (cold, short) to red (hot, long).
The raster renderer consumes any ``(ranks, bins)`` matrix (SOS values
from :func:`repro.core.variation.binned_matrix`, counter rates from
:func:`repro.core.metrics.binned_metric_matrix`); the SVG renderer
draws one rectangle per *segment* with a tooltip, giving the
interactive feel of the Vampir overlay.
"""

from __future__ import annotations

import os

import numpy as np

from .canvas import Canvas
from .colors import COLD_HOT, Colormap, hex_color
from .figure import (
    ChartLayout,
    draw_time_axis,
    draw_title,
    format_seconds,
    rank_tick_rows,
)
from .legend import draw_colorbar, svg_colorbar
from .png import write_png
from .svg import SVGCanvas

__all__ = ["render_heat_png", "render_sos_svg", "heat_image"]


def _value_range(
    matrix: np.ndarray, vmin: float | None, vmax: float | None
) -> tuple[float, float]:
    finite = matrix[np.isfinite(matrix)]
    if len(finite) == 0:
        return 0.0, 1.0
    lo = float(finite.min()) if vmin is None else vmin
    hi = float(finite.max()) if vmax is None else vmax
    if hi <= lo:
        hi = lo + 1.0
    return lo, hi


def heat_image(
    matrix: np.ndarray,
    width: int,
    height: int,
    cmap: Colormap = COLD_HOT,
    vmin: float | None = None,
    vmax: float | None = None,
) -> np.ndarray:
    """Nearest-neighbour scaled RGB image of a value matrix."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.ndim != 2 or m.size == 0:
        raise ValueError("matrix must be 2D and non-empty")
    lo, hi = _value_range(m, vmin, vmax)
    rgb = cmap(m, lo, hi)  # (ranks, bins, 3)
    rows = np.minimum(
        (np.arange(height) * m.shape[0]) // height, m.shape[0] - 1
    )
    cols = np.minimum((np.arange(width) * m.shape[1]) // width, m.shape[1] - 1)
    return rgb[np.ix_(rows, cols)]


def render_heat_png(
    matrix: np.ndarray,
    edges: np.ndarray,
    path: str | os.PathLike | None = None,
    title: str = "SOS-time",
    cmap: Colormap = COLD_HOT,
    vmin: float | None = None,
    vmax: float | None = None,
    width: int = 1100,
    height: int | None = None,
    ranks: list[int] | None = None,
    colorbar_label: str = "seconds",
) -> Canvas:
    """Render a (ranks x bins) heat matrix to a PNG chart.

    Returns the canvas; additionally writes ``path`` when given.
    """
    m = np.asarray(matrix, dtype=np.float64)
    n_ranks = m.shape[0]
    if height is None:
        height = max(240, min(900, 70 + 4 * n_ranks))
    layout = ChartLayout(width=width, height=height)
    canvas = Canvas(width, height)
    draw_title(canvas, layout, title)

    lo, hi = _value_range(m, vmin, vmax)
    image = heat_image(m, layout.plot_w, layout.plot_h, cmap, lo, hi)
    canvas.blit(layout.plot_x, layout.plot_y, image)
    canvas.rect(
        layout.plot_x - 1,
        layout.plot_y - 1,
        layout.plot_w + 2,
        layout.plot_h + 2,
        (120, 120, 120),
    )

    t0, t1 = float(edges[0]), float(edges[-1])
    draw_time_axis(canvas, layout, t0, t1)
    rank_ids = ranks if ranks is not None else list(range(n_ranks))
    for row in rank_tick_rows(n_ranks):
        y = layout.plot_y + int((row + 0.5) * layout.plot_h / n_ranks)
        canvas.text(layout.plot_x - 6, y - 3, str(rank_ids[row]), anchor="rt")
    canvas.text_rotated(8, layout.plot_y + layout.plot_h // 2, "process")
    draw_colorbar(canvas, layout, cmap, lo, hi, label=colorbar_label)

    if path is not None:
        write_png(canvas.pixels, path)
    return canvas


def render_sos_svg(
    analysis,
    path: str | os.PathLike | None = None,
    title: str | None = None,
    cmap: Colormap = COLD_HOT,
    width: float = 1100.0,
    row_height: float = 5.0,
    max_rects: int = 60000,
) -> SVGCanvas:
    """Vector SOS heat map: one rect per segment, with value tooltips.

    Parameters
    ----------
    analysis:
        A :class:`repro.core.pipeline.VariationAnalysis`.
    max_rects:
        Safety cap; beyond it segments are batched per pixel column.
    """
    sos = analysis.sos
    seg = analysis.segmentation
    ranks = sos.ranks
    n_ranks = len(ranks)
    left, right, top, bottom = 64.0, 96.0, 30.0, 32.0
    plot_w = width - left - right
    plot_h = max(n_ranks * row_height, 60.0)
    height = top + plot_h + bottom

    svg = SVGCanvas(width, height)
    if title is None:
        title = f"SOS-time of {analysis.dominant_name!r} — {analysis.trace.name}"
    svg.text(left, 18, title, size=13, bold=True)

    matrix = sos.matrix()
    finite = matrix[np.isfinite(matrix)]
    lo = float(finite.min()) if len(finite) else 0.0
    hi = float(finite.max()) if len(finite) else 1.0
    if hi <= lo:
        hi = lo + 1.0
    t0, t1 = seg.t_min, seg.t_max
    span = (t1 - t0) or 1.0

    total = seg.total_segments
    stride = max(1, int(np.ceil(total / max_rects)))
    for row, rank in enumerate(ranks):
        rs = seg[rank]
        values = sos[rank].sos
        y = top + row * (plot_h / n_ranks)
        h = plot_h / n_ranks
        for j in range(0, len(rs), stride):
            x = left + (rs.t_start[j] - t0) / span * plot_w
            w = max((rs.t_stop[j] - rs.t_start[j]) / span * plot_w, 0.3)
            color = cmap(np.asarray([values[j]]), lo, hi)[0]
            svg.rect(
                x,
                y,
                w,
                h,
                hex_color(tuple(color)),
                title=(
                    f"rank {rank}, segment {j}: SOS "
                    f"{format_seconds(float(values[j]))}"
                ),
            )
    svg.rect(left, top, plot_w, plot_h, "none", stroke="#787878")
    # Time axis labels.
    from .figure import nice_ticks

    for tick in nice_ticks(t0, t1):
        x = left + (tick - t0) / span * plot_w
        svg.line(x, top + plot_h, x, top + plot_h + 4, stroke="#5a5a5a")
        svg.text(x, top + plot_h + 16, format_seconds(float(tick)), size=9,
                 anchor="middle")
    for row in rank_tick_rows(n_ranks):
        y = top + (row + 0.5) * (plot_h / n_ranks)
        svg.text(left - 6, y + 3, str(ranks[row]), size=9, anchor="end")
    svg_colorbar(svg, left + plot_w + 18, top, plot_h, cmap, lo, hi,
                 label="SOS [s]")

    if path is not None:
        svg.write(path)
    return svg
