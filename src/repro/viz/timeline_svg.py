"""Vector master timeline with per-invocation tooltips.

The raster timeline (:mod:`repro.viz.timeline`) scales to arbitrary
trace sizes by rasterising; this SVG variant keeps individual
invocations addressable (hover shows region name and duration), using
the same culling rules interactive viewers apply: skip frames narrower
than a pixel threshold and deeper than a depth limit, and cap the
total rectangle count.
"""

from __future__ import annotations

import os

import numpy as np

from ..profiles.replay import InvocationTable, replay_trace
from ..trace.definitions import Paradigm
from ..trace.trace import Trace
from .colors import hex_color, region_palette
from .figure import format_seconds, nice_ticks, rank_tick_rows
from .svg import SVGCanvas
from .timeline import match_messages

__all__ = ["render_timeline_svg"]


def render_timeline_svg(
    trace: Trace,
    path: str | os.PathLike | None = None,
    width: float = 1100.0,
    row_height: float = 12.0,
    tables: dict[int, InvocationTable] | None = None,
    t0: float | None = None,
    t1: float | None = None,
    min_pixels: float = 0.75,
    max_depth: int = 6,
    max_rects: int = 40000,
    show_messages: bool = False,
    max_messages: int = 800,
    title: str | None = None,
) -> SVGCanvas:
    """Render the master timeline as SVG (one rect per visible frame).

    Frames narrower than ``min_pixels`` or deeper than ``max_depth``
    are culled; if the visible frame count still exceeds
    ``max_rects``, the narrowest frames are dropped first.
    """
    if tables is None:
        tables = replay_trace(trace)
    ranks = trace.ranks
    n_ranks = len(ranks)
    if n_ranks == 0:
        raise ValueError("empty trace")

    lo = trace.t_min if t0 is None else t0
    hi = trace.t_max if t1 is None else t1
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo

    left, right, top, bottom = 64.0, 150.0, 30.0, 32.0
    plot_w = width - left - right
    plot_h = n_ranks * row_height
    height = top + plot_h + bottom
    svg = SVGCanvas(width, height)
    svg.text(left, 18, title or f"Timeline - {trace.name}", size=13, bold=True)

    mpi_mask = np.asarray(
        [r.paradigm == Paradigm.MPI for r in trace.regions], dtype=bool
    )
    palette = region_palette(len(trace.regions), mpi_mask)
    scale = plot_w / span

    # Collect candidate frames from all ranks with widths.
    frames = []  # (width_px, rank_row, x, region, t_enter, t_leave, depth)
    for row, rank in enumerate(ranks):
        table = tables[rank]
        if len(table) == 0:
            continue
        starts = np.maximum(table.t_enter, lo)
        stops = np.minimum(table.t_leave, hi)
        widths = (stops - starts) * scale
        keep = (widths >= min_pixels) & (table.depth <= max_depth)
        keep &= stops > starts
        for i in np.flatnonzero(keep):
            frames.append(
                (
                    float(widths[i]),
                    row,
                    left + (float(starts[i]) - lo) * scale,
                    int(table.region[i]),
                    float(table.t_enter[i]),
                    float(table.t_leave[i]),
                    int(table.depth[i]),
                )
            )
    if len(frames) > max_rects:
        frames.sort(key=lambda f: -f[0])
        frames = frames[:max_rects]
    # Draw shallow frames first so children overlay parents.
    frames.sort(key=lambda f: f[6])

    visible_regions: set[int] = set()
    for width_px, row, x, region, t_enter, t_leave, _depth in frames:
        visible_regions.add(region)
        svg.rect(
            x,
            top + row * row_height,
            width_px,
            row_height,
            hex_color(tuple(palette[region])),
            title=(
                f"{trace.regions[region].name} "
                f"[{format_seconds(t_enter)}, {format_seconds(t_leave)}] "
                f"({format_seconds(t_leave - t_enter)})"
            ),
        )

    if show_messages:
        for src, t_send, dst, t_recv in match_messages(trace, max_messages):
            if t_recv < lo or t_send > hi:
                continue
            rank_row = {rank: i for i, rank in enumerate(ranks)}
            svg.line(
                left + (max(t_send, lo) - lo) * scale,
                top + (rank_row[src] + 0.5) * row_height,
                left + (min(t_recv, hi) - lo) * scale,
                top + (rank_row[dst] + 0.5) * row_height,
                stroke="#141414",
                stroke_width=0.6,
                opacity=0.8,
            )

    svg.rect(left, top, plot_w, plot_h, "none", stroke="#787878")
    for tick in nice_ticks(lo, hi):
        x = left + (tick - lo) * scale
        svg.line(x, top + plot_h, x, top + plot_h + 4, stroke="#5a5a5a")
        svg.text(x, top + plot_h + 16, format_seconds(float(tick)), size=9,
                 anchor="middle")
    for row in rank_tick_rows(n_ranks):
        y = top + (row + 0.5) * row_height
        svg.text(left - 6, y + 3, str(ranks[row]), size=9, anchor="end")

    # Legend of visible regions (by palette order).
    lx = left + plot_w + 16
    for i, region in enumerate(sorted(visible_regions)[:12]):
        y = top + i * 14
        svg.rect(lx, y, 9, 9, hex_color(tuple(palette[region])),
                 stroke="#6e6e6e", stroke_width=0.5)
        svg.text(lx + 13, y + 8, trace.regions[region].name[:20], size=9)

    if path is not None:
        svg.write(path)
    return svg
