"""Master timeline: the classic Vampir process-by-time function view.

One horizontal strip per process; the color at each point is the
*innermost* region active at that time (painter's algorithm over the
invocation table — parents first, children overwrite).  Optional black
message lines connect matched send/receive pairs, reproducing
Figure 5a's "longer black lines" cue.
"""

from __future__ import annotations

import os
from collections import deque

import numpy as np

from ..profiles.replay import InvocationTable, replay_trace
from ..trace.events import EventKind
from ..trace.trace import Trace
from .canvas import Canvas
from .colors import region_palette
from .figure import ChartLayout, draw_time_axis, draw_title, rank_tick_rows
from .legend import draw_region_legend
from .png import write_png

__all__ = ["render_timeline_png", "match_messages", "region_strip"]


def region_strip(
    table: InvocationTable,
    t0: float,
    t1: float,
    bins: int,
) -> np.ndarray:
    """Innermost-region id per time bin for one process (-1 = idle).

    Painter's algorithm: rows are ordered parents-first, so assigning
    each invocation's pixel span in row order leaves the deepest region
    visible, exactly like a timeline chart.
    """
    strip = np.full(bins, -1, dtype=np.int32)
    if len(table) == 0 or t1 <= t0:
        return strip
    scale = bins / (t1 - t0)
    px0 = np.clip(((table.t_enter - t0) * scale).astype(np.int64), 0, bins)
    px1 = np.clip(np.ceil((table.t_leave - t0) * scale).astype(np.int64), 0, bins)
    regions = table.region
    for i in range(len(table)):
        a, b = px0[i], px1[i]
        if b > a:
            strip[a:b] = regions[i]
    return strip


def match_messages(
    trace: Trace, limit: int = 4000
) -> list[tuple[int, float, int, float]]:
    """Pair SEND and RECV events into message records.

    Returns up to ``limit`` tuples ``(src, t_send, dest, t_recv)``.
    Matching is FIFO per (src, dest, tag) channel, mirroring the MPI
    ordering guarantees the simulator (and real MPI) obey.
    """
    sends: dict[tuple[int, int, int], deque] = {}
    messages: list[tuple[int, float, int, float]] = []
    for proc in trace.processes():
        ev = proc.events
        mask = ev.kind == EventKind.SEND
        for i in np.flatnonzero(mask):
            key = (proc.rank, int(ev.partner[i]), int(ev.tag[i]))
            sends.setdefault(key, deque()).append(float(ev.time[i]))
    for proc in trace.processes():
        ev = proc.events
        mask = ev.kind == EventKind.RECV
        for i in np.flatnonzero(mask):
            key = (int(ev.partner[i]), proc.rank, int(ev.tag[i]))
            queue = sends.get(key)
            if queue:
                t_send = queue.popleft()
                messages.append((key[0], t_send, proc.rank, float(ev.time[i])))
                if len(messages) >= limit:
                    return messages
    return messages


def render_timeline_png(
    trace: Trace,
    path: str | os.PathLike | None = None,
    width: int = 1100,
    height: int | None = None,
    tables: dict[int, InvocationTable] | None = None,
    show_messages: bool = False,
    max_messages: int = 1500,
    legend_entries: int = 8,
    t0: float | None = None,
    t1: float | None = None,
) -> Canvas:
    """Render the master timeline of ``trace`` to a PNG chart.

    Returns the canvas; additionally writes ``path`` when given.
    """
    if tables is None:
        tables = replay_trace(trace)
    ranks = trace.ranks
    n_ranks = len(ranks)
    if n_ranks == 0:
        raise ValueError("empty trace")
    if height is None:
        height = max(240, min(900, 70 + 4 * n_ranks))
    layout = ChartLayout(width=width, height=height, right=140)
    canvas = Canvas(width, height)
    draw_title(canvas, layout, f"Timeline — {trace.name}")

    lo = trace.t_min if t0 is None else t0
    hi = trace.t_max if t1 is None else t1
    if hi <= lo:
        hi = lo + 1.0

    from ..trace.definitions import Paradigm

    mpi_mask = np.asarray(
        [r.paradigm == Paradigm.MPI for r in trace.regions], dtype=bool
    )
    palette = region_palette(len(trace.regions), mpi_mask)

    bins = layout.plot_w
    strips = np.full((n_ranks, bins), -1, dtype=np.int32)
    for row, rank in enumerate(ranks):
        strips[row] = region_strip(tables[rank], lo, hi, bins)

    # Expand to plot height and map region ids to colors.
    rows = np.minimum(
        (np.arange(layout.plot_h) * n_ranks) // layout.plot_h, n_ranks - 1
    )
    expanded = strips[rows]  # (plot_h, bins)
    image = np.empty((layout.plot_h, bins, 3), dtype=np.uint8)
    idle = expanded < 0
    image[idle] = (240, 240, 238)
    image[~idle] = palette[expanded[~idle]]
    canvas.blit(layout.plot_x, layout.plot_y, image)
    canvas.rect(
        layout.plot_x - 1,
        layout.plot_y - 1,
        layout.plot_w + 2,
        layout.plot_h + 2,
        (120, 120, 120),
    )

    if show_messages:
        span = hi - lo
        row_h = layout.plot_h / n_ranks
        rank_row = {rank: i for i, rank in enumerate(ranks)}
        for src, t_send, dst, t_recv in match_messages(trace, max_messages):
            if t_recv < lo or t_send > hi:
                continue
            x0 = layout.x_of(t_send, lo, hi)
            x1 = layout.x_of(t_recv, lo, hi)
            y0 = layout.plot_y + int((rank_row[src] + 0.5) * row_h)
            y1 = layout.plot_y + int((rank_row[dst] + 0.5) * row_h)
            canvas.line(x0, y0, x1, y1, (20, 20, 20))

    draw_time_axis(canvas, layout, lo, hi)
    for row in rank_tick_rows(n_ranks):
        y = layout.plot_y + int((row + 0.5) * layout.plot_h / n_ranks)
        canvas.text(layout.plot_x - 6, y - 3, str(ranks[row]), anchor="rt")
    canvas.text_rotated(8, layout.plot_y + layout.plot_h // 2, "process")

    # Legend: regions ranked by visible pixel share.
    visible = strips[strips >= 0]
    if len(visible):
        counts = np.bincount(visible, minlength=len(trace.regions))
        order = np.argsort(-counts)
        entries = [
            (trace.regions[int(r)].name, tuple(palette[int(r)]))
            for r in order[:legend_entries]
            if counts[r] > 0
        ]
        draw_region_legend(
            canvas, layout.plot_x + layout.plot_w + 18, layout.plot_y, entries
        )

    if path is not None:
        write_png(canvas.pixels, path)
    return canvas
