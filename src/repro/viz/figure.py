"""Shared chart scaffolding: layouts, axes, ticks, time formatting."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .canvas import Canvas

__all__ = [
    "ChartLayout",
    "nice_ticks",
    "format_seconds",
    "draw_time_axis",
    "draw_title",
    "rank_tick_rows",
]


@dataclass(frozen=True, slots=True)
class ChartLayout:
    """Pixel geometry of a chart: margins around a plot rectangle."""

    width: int
    height: int
    left: int = 64
    right: int = 96
    top: int = 30
    bottom: int = 32

    @property
    def plot_x(self) -> int:
        return self.left

    @property
    def plot_y(self) -> int:
        return self.top

    @property
    def plot_w(self) -> int:
        return max(self.width - self.left - self.right, 1)

    @property
    def plot_h(self) -> int:
        return max(self.height - self.top - self.bottom, 1)

    def x_of(self, t: float, t0: float, t1: float) -> int:
        """Map a time value to a pixel column inside the plot area."""
        span = t1 - t0
        frac = (t - t0) / span if span > 0 else 0.0
        return self.plot_x + int(round(frac * (self.plot_w - 1)))


def nice_ticks(lo: float, hi: float, target: int = 6) -> np.ndarray:
    """Human-friendly tick positions covering ``[lo, hi]``.

    Uses the classic 1/2/5 ladder.  Returns ticks inside the interval.
    """
    if not (math.isfinite(lo) and math.isfinite(hi)) or hi <= lo:
        return np.asarray([lo])
    span = hi - lo
    raw_step = span / max(target, 2)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    for mult in (1.0, 2.0, 5.0, 10.0):
        step = mult * magnitude
        if span / step <= target:
            break
    first = math.ceil(lo / step) * step
    ticks = np.arange(first, hi + 0.5 * step, step)
    return ticks[(ticks >= lo - 1e-12) & (ticks <= hi + 1e-12)]


def format_seconds(t: float) -> str:
    """Compact time label: 12.5s / 340ms / 25us."""
    a = abs(t)
    if a >= 100:
        return f"{t:.0f}s"
    if a >= 1:
        return f"{t:.3g}s"
    if a >= 1e-3:
        return f"{t * 1e3:.3g}ms"
    if a > 0:
        return f"{t * 1e6:.3g}us"
    return "0"


def draw_title(canvas: Canvas, layout: ChartLayout, title: str) -> None:
    canvas.text(layout.plot_x, max(layout.top - 20, 2), title, scale=2)


def draw_time_axis(
    canvas: Canvas, layout: ChartLayout, t0: float, t1: float
) -> None:
    """Horizontal time axis with ticks below the plot area."""
    y = layout.plot_y + layout.plot_h
    axis_color = (90, 90, 90)
    canvas.hline(layout.plot_x, layout.plot_x + layout.plot_w - 1, y, axis_color)
    for tick in nice_ticks(t0, t1):
        x = layout.x_of(float(tick), t0, t1)
        canvas.vline(x, y, y + 3, axis_color)
        canvas.text(x, y + 6, format_seconds(float(tick)), anchor="ct")


def rank_tick_rows(num_ranks: int, max_labels: int = 16) -> list[int]:
    """Which rank rows get a y-axis label (at most ``max_labels``)."""
    if num_ranks <= 0:
        return []
    if num_ranks <= max_labels:
        return list(range(num_ranks))
    step = max(1, int(math.ceil(num_ranks / max_labels)))
    rows = list(range(0, num_ranks, step))
    if rows[-1] != num_ranks - 1:
        rows.append(num_ranks - 1)
    return rows
