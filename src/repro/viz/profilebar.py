"""Flat-profile bar chart: top functions by aggregated time."""

from __future__ import annotations

import os

import numpy as np

from ..profiles.stats import FunctionStatistics
from .canvas import Canvas
from .colors import MPI_RED, _CATEGORY_COLORS
from .figure import format_seconds
from .png import write_png

__all__ = ["render_profile_png"]


def render_profile_png(
    stats: FunctionStatistics,
    path: str | os.PathLike | None = None,
    k: int = 12,
    metric: str = "exclusive",
    width: int = 760,
    title: str = "Flat profile",
) -> Canvas:
    """Horizontal bars of the top-``k`` functions.

    ``metric`` selects ``"exclusive"`` or ``"inclusive"`` aggregated
    time; exclusive is the default (inclusive-ranked bars are dominated
    by enclosing functions and say little).
    """
    if metric not in ("exclusive", "inclusive"):
        raise ValueError("metric must be 'exclusive' or 'inclusive'")
    rows = (
        stats.top_exclusive(k)
        if metric == "exclusive"
        else stats.rows()[:k]
    )
    values = np.asarray(
        [
            r.exclusive_sum if metric == "exclusive" else r.inclusive_sum
            for r in rows
        ]
    )
    bar_h, gap, left, right, top, bottom = 14, 7, 200, 90, 34, 14
    height = top + bottom + len(rows) * (bar_h + gap)
    canvas = Canvas(width, max(height, 120))
    canvas.text(12, 8, f"{title} ({metric} time)", scale=2)
    vmax = float(values.max()) if len(values) else 1.0
    plot_w = width - left - right
    for i, (row, value) in enumerate(zip(rows, values)):
        y = top + i * (bar_h + gap)
        w = int(round(plot_w * value / vmax)) if vmax > 0 else 0
        color = MPI_RED if row.name.startswith("MPI_") else _CATEGORY_COLORS[
            i % len(_CATEGORY_COLORS)
        ]
        canvas.text(left - 6, y + 3, row.name[:30], anchor="rt")
        canvas.fill_rect(left, y, max(w, 1), bar_h, color)
        canvas.rect(left, y, max(w, 1), bar_h, (110, 110, 110))
        canvas.text(left + max(w, 1) + 5, y + 3, format_seconds(float(value)))
    if path is not None:
        write_png(canvas.pixels, path)
    return canvas
